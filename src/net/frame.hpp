// Length-prefixed binary frame protocol for the remote serving transport.
//
// Every message on a connection is one frame. The 32-byte prefix is shared
// by all versions:
//
//   offset  size  field
//        0     4  magic               0x31414547 ("GEA1", LE)
//        4     2  version             1 or 2 (kProtocolVersion encodes 2)
//        6     2  type                FrameType
//        8     8  request id          client-chosen correlation id
//       16     8  deadline budget µs  remaining end-to-end budget (0 = none)
//       24     4  payload length      bytes following the header
//       28     4  payload checksum    FNV-1a 32 over the payload bytes
//
// Version 2 appends a 16-byte distributed-trace context between the prefix
// and the payload; version 1 frames put the payload straight at offset 32
// and still decode (with an empty trace context):
//
//       32     8  trace id            0 = untraced request
//       40     8  trace word          bit 63: sampled flag
//                                     bits 62..0: parent span id
//   [48 .. 48+len)  payload            (v1: [32 .. 32+len))
//
// A v2 frame whose trace context is internally inconsistent (trace id 0
// with a nonzero trace word) is quarantined as a recoverable decode error:
// the extent is known, the stream resyncs, the connection survives.
//
// The decoder is incremental (feed it a growing receive buffer; it answers
// "need more", "here is a frame", or an error) and *strict*: it validates
// magic, version, type, length bound, and checksum before a frame is
// surfaced. Errors are classified by whether the byte stream can be
// resynchronized:
//
//  - recoverable (valid magic + sane length, but bad version/type/checksum):
//    the whole frame's extent is known, so the decoder reports how many
//    bytes to skip and the connection can continue — the transport
//    quarantines the frame (counted, never fatal) in lenient mode;
//  - unrecoverable (bad magic, or a length field past the configured
//    ceiling): frame boundaries are lost or the peer is asking for an
//    absurd allocation; the only safe degradation is closing that one
//    connection.
//
// This mirrors the lenient/strict quarantine discipline used everywhere
// else in the pipeline (ROBUSTNESS.md): damage is detected, counted, and
// contained at the smallest possible blast radius.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/status.hpp"

namespace gea::net {

inline constexpr std::uint32_t kMagic = 0x31414547u;  // "GEA1" little-endian
inline constexpr std::uint16_t kProtocolVersion = 2;
/// Version-independent prefix (magic .. payload checksum).
inline constexpr std::size_t kHeaderPrefixBytes = 32;
/// v2 trace-context block appended to the prefix.
inline constexpr std::size_t kTraceContextBytes = 16;
/// Full v2 header; also the payload offset of every encoded frame.
inline constexpr std::size_t kHeaderBytes =
    kHeaderPrefixBytes + kTraceContextBytes;
/// Ceiling on payload length a peer may declare. A 23- or 41-feature
/// request is ~350 bytes; 1 MiB leaves headroom for future payloads while
/// refusing length-field attacks outright.
inline constexpr std::size_t kMaxPayloadBytes = 1 << 20;

enum class FrameType : std::uint16_t {
  kDetectRequest = 1,   // payload: feature vector (serve/transport codec)
  kDetectResponse = 2,  // payload: status code + verdict or error message
};

struct Frame {
  FrameType type = FrameType::kDetectRequest;
  std::uint64_t request_id = 0;
  std::uint64_t deadline_budget_us = 0;  // 0 = no deadline
  /// Distributed-trace context riding the v2 header. Default (trace_id 0)
  /// means untraced — v1 peers always decode to this.
  obs::TraceContext trace;
  std::vector<std::uint8_t> payload;
};

/// FNV-1a 32-bit over `data` — the payload checksum. Deterministic,
/// dependency-free, and plenty to catch truncation/bit-flip corruption
/// (this is an integrity check against accidents and fuzzed input, not a
/// cryptographic MAC).
std::uint32_t checksum32(std::span<const std::uint8_t> data);

/// Serialize header + payload. With `inject_fault` set (the server side),
/// the `net.frame.corrupt` fault point may flip one payload byte *after*
/// the checksum is computed, synthesizing in-flight corruption the peer's
/// validator must catch.
std::vector<std::uint8_t> encode_frame(const Frame& frame,
                                       bool inject_fault = false);

/// One step of the incremental decoder.
struct DecodeResult {
  enum class Kind {
    kNeedMore,  // buffer holds less than one full frame; read more bytes
    kFrame,     // `frame` is valid; drop `consumed` bytes from the buffer
    kError,     // malformed; see `status`/`recoverable`, drop `consumed`
  };
  Kind kind = Kind::kNeedMore;
  Frame frame;
  util::Status status;      // set iff kind == kError
  bool recoverable = false; // kError only: true = skip frame, keep the conn
  std::size_t consumed = 0; // bytes to drop from the front of the buffer
};

/// Try to extract one frame from the front of `data`. `max_payload` caps
/// the length field (kMaxPayloadBytes for servers; clients may use less).
/// With `inject_fault` set, `net.frame.corrupt` may flip a payload byte
/// before validation so the checksum path is deterministically testable.
DecodeResult decode_frame(std::span<const std::uint8_t> data,
                          std::size_t max_payload = kMaxPayloadBytes,
                          bool inject_fault = false);

const char* frame_type_name(FrameType type);

}  // namespace gea::net
