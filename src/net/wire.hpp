// Bounds-checked little-endian wire primitives shared by the frame codec
// and the payload codecs in serve/transport.
//
// Everything on the wire is explicit little-endian, serialized byte by
// byte, so the format does not depend on host endianness or struct layout.
// The Reader never trusts a length field: every get_* checks remaining()
// first and flips the reader into a sticky failed state instead of reading
// out of bounds, so a truncated or hostile payload degrades into one
// kParseError Status, never UB.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace gea::net::wire {

/// Append-only little-endian serializer over a caller-owned byte vector.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  void put_u8(std::uint8_t v) { out_.push_back(v); }

  void put_u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }

  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  /// IEEE-754 bit pattern, little-endian — bitwise round trip, no rounding.
  void put_f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
  }

  /// u32 length prefix + raw bytes.
  void put_string(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

  /// u32 count prefix + f64 elements.
  void put_f64_vector(const std::vector<double>& xs) {
    put_u32(static_cast<std::uint32_t>(xs.size()));
    for (double x : xs) put_f64(x);
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked deserializer. After any failed read the reader is
/// *sticky-failed*: every later get_* returns a zero value and ok() stays
/// false, so decoders can read a whole struct and check ok() once.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }

  std::uint8_t get_u8() {
    if (!take(1)) return 0;
    return data_[pos_ - 1];
  }

  std::uint16_t get_u16() {
    if (!take(2)) return 0;
    const std::size_t p = pos_ - 2;
    return static_cast<std::uint16_t>(data_[p] |
                                      (static_cast<std::uint16_t>(data_[p + 1])
                                       << 8));
  }

  std::uint32_t get_u32() {
    if (!take(4)) return 0;
    const std::size_t p = pos_ - 4;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(data_[p + i]) << (8 * i);
    }
    return v;
  }

  std::uint64_t get_u64() {
    if (!take(8)) return 0;
    const std::size_t p = pos_ - 8;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(data_[p + i]) << (8 * i);
    }
    return v;
  }

  double get_f64() {
    const std::uint64_t bits = get_u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// u32 length prefix + raw bytes; fails (without allocating) when the
  /// declared length exceeds the bytes actually present.
  std::string get_string() {
    const std::uint32_t n = get_u32();
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data()) + pos_, n);
    pos_ += n;
    return s;
  }

  /// u32 count prefix + f64 elements; same no-trust rule as get_string.
  std::vector<double> get_f64_vector() {
    const std::uint32_t n = get_u32();
    if (!ok_ || static_cast<std::size_t>(n) * 8 > remaining()) {
      ok_ = false;
      return {};
    }
    std::vector<double> xs(n);
    for (auto& x : xs) x = get_f64();
    return xs;
  }

  /// The one Status every payload decoder returns on a failed reader.
  util::Status parse_error(const char* what) const {
    return util::Status::error(util::ErrorCode::kParseError,
                               std::string("truncated or malformed ") + what);
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace gea::net::wire
