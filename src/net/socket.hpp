// Thin RAII layer over POSIX TCP sockets, non-blocking by default, with
// the wire-path fault points threaded through the syscall wrappers.
//
// Design rules:
//  - No exceptions, no blocking surprises: every operation reports through
//    IoResult / util::Status and EAGAIN is a first-class outcome, because
//    the transport's event loop multiplexes many connections over poll().
//  - EINTR is retried internally; SIGPIPE is suppressed (MSG_NOSIGNAL) so a
//    peer that vanished mid-write surfaces as an error, not a dead process.
//  - Fault injection is opt-in per socket (set_fault_injection): the
//    transport server arms it on the listener and on accepted connections,
//    while a client in the same process keeps clean sockets — that is what
//    makes counted fault plans deterministic in tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.hpp"

namespace gea::net {

/// Outcome of one read/write attempt on a non-blocking socket.
struct IoResult {
  std::size_t bytes = 0;     // transferred this call (0 is valid)
  bool would_block = false;  // EAGAIN/EWOULDBLOCK: retry after poll
  bool eof = false;          // orderly shutdown (read) / peer gone (write)
  util::Status status;       // non-OK on a real socket error
  bool ok() const { return status.is_ok(); }
};

/// Move-only owner of one socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Route this socket's syscalls through the net.* fault points.
  void set_fault_injection(bool enabled) { inject_ = enabled; }
  bool fault_injection() const { return inject_; }

  util::Status set_nonblocking();

  /// recv() wrapper. Fault points (injection enabled only):
  ///  - net.conn.drop: synthesizes a peer reset (reported as eof);
  ///  - net.read.short: keeps only half of what arrived, dropping the tail
  ///    (at least 1 byte is kept), desynchronizing the frame stream.
  IoResult read_some(std::uint8_t* buf, std::size_t len);

  /// send() wrapper (MSG_NOSIGNAL). Fault point (injection enabled only):
  ///  - net.write.stall: pretends the kernel accepted zero bytes, reported
  ///    as would_block so the caller's bounded write buffer absorbs it.
  IoResult write_some(const std::uint8_t* buf, std::size_t len);

  /// Single-fd poll with a millisecond timeout (<0 = wait forever).
  /// Returns the revents mask (0 on timeout); POLLIN/POLLOUT per `events`.
  util::Result<short> poll_one(short events, int timeout_ms);

 private:
  int fd_ = -1;
  bool inject_ = false;
};

/// Listening IPv4 socket bound to `host:port` (port 0 = ephemeral; the
/// bound port is readable afterwards via port()). Non-blocking, SO_REUSEADDR.
class ListenSocket {
 public:
  util::Status listen(const std::string& host, std::uint16_t port,
                      int backlog = 64);
  std::uint16_t port() const { return port_; }
  bool valid() const { return sock_.valid(); }
  int fd() const { return sock_.fd(); }
  void close() { sock_.close(); }

  void set_fault_injection(bool enabled) { sock_.set_fault_injection(enabled); }

  /// One accept() attempt. Outcomes:
  ///  - a valid, non-blocking Socket (fault injection inherited);
  ///  - invalid Socket + would_block=true: backlog empty, poll again;
  ///  - invalid Socket + error Status: transient accept failure (counted by
  ///    the caller; the listener itself stays healthy).
  /// Fault point net.accept.fail (injection enabled only) synthesizes the
  /// transient-failure outcome while leaving the pending connection queued,
  /// so the next poll round retries it.
  struct AcceptResult {
    Socket socket;
    bool would_block = false;
    util::Status status;
  };
  AcceptResult accept_one();

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

/// Non-blocking connect to `host:port`, waiting up to `timeout_ms` for the
/// handshake. The returned socket is non-blocking and clean (no fault
/// injection) — clients are the peer under test's victims, not its chaos.
util::Result<Socket> connect_to(const std::string& host, std::uint16_t port,
                                int timeout_ms);

}  // namespace gea::net
