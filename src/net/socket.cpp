#include "net/socket.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <utility>

#include "util/faultinject.hpp"

namespace gea::net {

using util::ErrorCode;
using util::Status;

namespace {

Status errno_status(const char* what) {
  return Status::error(ErrorCode::kUnavailable,
                       std::string(what) + ": " + ::strerror(errno));
}

}  // namespace

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      inject_(std::exchange(other.inject_, false)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    inject_ = std::exchange(other.inject_, false);
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Socket::set_nonblocking() {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    return errno_status("fcntl(O_NONBLOCK)");
  }
  return Status::ok();
}

IoResult Socket::read_some(std::uint8_t* buf, std::size_t len) {
  IoResult res;
  if (inject_ && util::fault(util::faults::kNetConnDrop)) {
    // Synthesized peer reset: surface as an orderly-looking EOF so the
    // caller tears the connection down through its normal path.
    res.eof = true;
    return res;
  }
  ssize_t n;
  do {
    n = ::recv(fd_, buf, len, 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      res.would_block = true;
      return res;
    }
    if (errno == ECONNRESET) {
      res.eof = true;
      return res;
    }
    res.status = errno_status("recv");
    return res;
  }
  if (n == 0) {
    res.eof = true;
    return res;
  }
  res.bytes = static_cast<std::size_t>(n);
  if (inject_ && res.bytes > 1 && util::fault(util::faults::kNetReadShort)) {
    // Keep a truncated prefix and *drop* the tail: the bytes already left
    // the kernel buffer, so the frame stream is now desynchronized and the
    // decoder/timeout layer must contain the damage.
    res.bytes /= 2;
  }
  return res;
}

IoResult Socket::write_some(const std::uint8_t* buf, std::size_t len) {
  IoResult res;
  if (inject_ && util::fault(util::faults::kNetWriteStall)) {
    res.would_block = true;  // kernel "accepted" nothing this round
    return res;
  }
  ssize_t n;
  do {
    n = ::send(fd_, buf, len, MSG_NOSIGNAL);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      res.would_block = true;
      return res;
    }
    if (errno == EPIPE || errno == ECONNRESET) {
      res.eof = true;
      return res;
    }
    res.status = errno_status("send");
    return res;
  }
  res.bytes = static_cast<std::size_t>(n);
  return res;
}

util::Result<short> Socket::poll_one(short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = events;
  pfd.revents = 0;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return errno_status("poll");
  return static_cast<short>(rc == 0 ? 0 : pfd.revents);
}

Status ListenSocket::listen(const std::string& host, std::uint16_t port,
                            int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  Socket sock(fd);

  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "not an IPv4 address: " + host);
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return errno_status("bind");
  }
  if (::listen(fd, backlog) < 0) return errno_status("listen");
  if (auto st = sock.set_nonblocking(); !st.is_ok()) return st;

  // Learn the ephemeral port the kernel picked for port 0.
  struct sockaddr_in bound;
  socklen_t blen = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &blen) <
      0) {
    return errno_status("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  sock_ = std::move(sock);
  return Status::ok();
}

ListenSocket::AcceptResult ListenSocket::accept_one() {
  AcceptResult res;
  if (sock_.fault_injection() && util::fault(util::faults::kNetAcceptFail)) {
    // Synthesized transient failure: the pending connection stays in the
    // kernel backlog; the caller counts the failure and polls again.
    res.status = Status::error(ErrorCode::kUnavailable,
                               "accept: injected transient failure");
    return res;
  }
  int fd;
  do {
    fd = ::accept(sock_.fd(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      res.would_block = true;
      return res;
    }
    // ECONNABORTED and friends: that one connection is gone, the listener
    // is fine. Report as a transient accept failure.
    res.status = errno_status("accept");
    return res;
  }
  Socket sock(fd);
  sock.set_fault_injection(sock_.fault_injection());
  if (auto st = sock.set_nonblocking(); !st.is_ok()) {
    res.status = std::move(st);
    return res;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  res.socket = std::move(sock);
  return res;
}

util::Result<Socket> connect_to(const std::string& host, std::uint16_t port,
                                int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_status("socket");
  Socket sock(fd);
  if (auto st = sock.set_nonblocking(); !st.is_ok()) return st;

  struct sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "not an IPv4 address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0 && errno != EINPROGRESS) return errno_status("connect");
  if (rc < 0) {
    // Handshake in progress: wait for writability, then check SO_ERROR.
    auto ev = sock.poll_one(POLLOUT, timeout_ms);
    if (!ev.is_ok()) return ev.status();
    if (ev.value() == 0) {
      return Status::error(ErrorCode::kDeadlineExceeded,
                           "connect timed out to " + host + ":" +
                               std::to_string(port));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      errno = err != 0 ? err : errno;
      return errno_status("connect");
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

}  // namespace gea::net
