#include "net/frame.hpp"

#include "net/wire.hpp"
#include "util/faultinject.hpp"

namespace gea::net {

using util::ErrorCode;
using util::Status;

std::uint32_t checksum32(std::span<const std::uint8_t> data) {
  std::uint32_t h = 0x811c9dc5u;  // FNV offset basis
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x01000193u;  // FNV prime
  }
  return h;
}

const char* frame_type_name(FrameType type) {
  switch (type) {
    case FrameType::kDetectRequest:
      return "detect_request";
    case FrameType::kDetectResponse:
      return "detect_response";
  }
  return "unknown";
}

namespace {

bool known_type(std::uint16_t t) {
  return t == static_cast<std::uint16_t>(FrameType::kDetectRequest) ||
         t == static_cast<std::uint16_t>(FrameType::kDetectResponse);
}

// v2 trace word: sampled flag in the top bit, parent span id below it.
constexpr std::uint64_t kSampledBit = 1ull << 63;
constexpr std::uint64_t kSpanMask = kSampledBit - 1;

std::uint64_t pack_trace_word(const obs::TraceContext& ctx) {
  return (ctx.span_id & kSpanMask) | (ctx.sampled ? kSampledBit : 0ull);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame, bool inject_fault) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + frame.payload.size());
  wire::Writer w(out);
  w.put_u32(kMagic);
  w.put_u16(kProtocolVersion);
  w.put_u16(static_cast<std::uint16_t>(frame.type));
  w.put_u64(frame.request_id);
  w.put_u64(frame.deadline_budget_us);
  w.put_u32(static_cast<std::uint32_t>(frame.payload.size()));
  w.put_u32(checksum32(frame.payload));
  w.put_u64(frame.trace.trace_id);
  w.put_u64(frame.trace.trace_id != 0 ? pack_trace_word(frame.trace) : 0ull);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  if (inject_fault && !frame.payload.empty() &&
      util::fault(util::faults::kNetFrameCorrupt)) {
    out[kHeaderBytes + frame.payload.size() / 2] ^= 0x40;
  }
  return out;
}

DecodeResult decode_frame(std::span<const std::uint8_t> data,
                          std::size_t max_payload, bool inject_fault) {
  DecodeResult res;
  if (data.size() < kHeaderPrefixBytes) return res;  // kNeedMore

  wire::Reader r(data);
  const std::uint32_t magic = r.get_u32();
  const std::uint16_t version = r.get_u16();
  const std::uint16_t type = r.get_u16();
  const std::uint64_t request_id = r.get_u64();
  const std::uint64_t budget_us = r.get_u64();
  const std::uint32_t payload_len = r.get_u32();
  const std::uint32_t payload_crc = r.get_u32();

  if (magic != kMagic) {
    // Frame boundaries are lost: nothing downstream of a bad magic can be
    // trusted, so the connection must be closed (unrecoverable).
    res.kind = DecodeResult::Kind::kError;
    res.status = Status::error(ErrorCode::kParseError, "bad frame magic");
    res.recoverable = false;
    res.consumed = data.size();
    return res;
  }
  if (payload_len > max_payload) {
    res.kind = DecodeResult::Kind::kError;
    res.status = Status::error(
        ErrorCode::kResourceExhausted,
        "frame payload length " + std::to_string(payload_len) +
            " exceeds limit " + std::to_string(max_payload));
    res.recoverable = false;
    res.consumed = data.size();
    return res;
  }
  // Header size is version-dependent: v1 puts the payload at the prefix
  // end, v2 inserts the trace-context block. An unknown version is assumed
  // current-version-shaped for extent purposes — the most likely resync
  // guess, since unknown versions usually come from a newer same-family
  // peer (or one flipped byte in a current-version frame).
  const std::size_t header_size =
      version == 1 ? kHeaderPrefixBytes : kHeaderBytes;
  const std::size_t total = header_size + payload_len;
  if (data.size() < total) return res;  // kNeedMore

  // The frame's extent is known from here on, so every further failure is
  // recoverable: report the full extent as consumed and the stream resyncs
  // at the next header. The parsed header fields are surfaced even on a
  // recoverable error so a server can echo the request id when it answers
  // with an error frame.
  res.consumed = total;
  res.frame.request_id = request_id;
  res.frame.deadline_budget_us = budget_us;
  if (version != 1 && version != kProtocolVersion) {
    res.kind = DecodeResult::Kind::kError;
    res.status = Status::error(ErrorCode::kInvalidArgument,
                               "unsupported protocol version " +
                                   std::to_string(version));
    res.recoverable = true;
    return res;
  }
  if (!known_type(type)) {
    res.kind = DecodeResult::Kind::kError;
    res.status = Status::error(ErrorCode::kInvalidArgument,
                               "unknown frame type " + std::to_string(type));
    res.recoverable = true;
    return res;
  }

  obs::TraceContext trace;
  if (version == kProtocolVersion) {
    const std::uint64_t trace_id = r.get_u64();
    const std::uint64_t word = r.get_u64();
    if (trace_id == 0 && word != 0) {
      // An untraced frame must have an all-zero context; a nonzero word
      // under trace id 0 means the peer (or the wire) scrambled the block.
      res.kind = DecodeResult::Kind::kError;
      res.status = Status::error(ErrorCode::kInvalidArgument,
                                 "malformed trace context");
      res.recoverable = true;
      return res;
    }
    trace.trace_id = trace_id;
    trace.span_id = word & kSpanMask;
    trace.sampled = (word & kSampledBit) != 0;
  }

  std::vector<std::uint8_t> payload(data.begin() + header_size,
                                    data.begin() + total);
  if (inject_fault && !payload.empty() &&
      util::fault(util::faults::kNetFrameCorrupt)) {
    payload[payload.size() / 2] ^= 0x40;
  }
  if (checksum32(payload) != payload_crc) {
    res.kind = DecodeResult::Kind::kError;
    res.status =
        Status::error(ErrorCode::kCorruptData, "frame checksum mismatch");
    res.recoverable = true;
    return res;
  }

  res.kind = DecodeResult::Kind::kFrame;
  res.frame.type = static_cast<FrameType>(type);
  res.frame.request_id = request_id;
  res.frame.deadline_budget_us = budget_us;
  res.frame.trace = trace;
  res.frame.payload = std::move(payload);
  return res;
}

}  // namespace gea::net
