// RAII trace spans with parent/child nesting, plus distributed trace
// context for spans that cross threads and processes.
//
// A TraceSpan marks a region of work ("pipeline.train", "serve.batch") on
// the current thread: construction pushes it onto a thread-local span
// stack and stamps a steady-clock start; destruction (or close()) pops it
// and records one TraceEvent — name, thread index, nesting depth, start
// offset, duration — into a bounded ring buffer owned by a TraceRecorder.
// The recorder also keeps all-time per-name aggregates (count/total/min/
// max), so "where did the run spend its time" is answerable even after the
// ring has wrapped, and exports the ring as Chrome trace_event JSON
// (obs/export.hpp) viewable in chrome://tracing or Perfetto.
//
// Distributed tracing: a TraceContext ({trace_id, span_id, sampled}) names
// one request's trace and the span that is currently its parent. Spans
// opened with an explicit context do NOT use the thread-local stack — the
// parent relationship comes from the context, so a request can be followed
// from a client thread, across the wire (net/frame.hpp carries the context
// in the v2 header), through the admission queue, and into whichever batch
// worker ran its inference, all under one trace_id. The recorder assembles
// per-trace views (trace(), recent_traces()) for the admin plane's /tracez.
//
// Determinism: spans read the clock and write to the recorder — nothing
// else. They never branch the instrumented code, so enabling or disabling
// tracing cannot change any computed result. Trace/span ids come from a
// process-global counter fed through a mixer — never from a util::Rng —
// so instrumentation cannot perturb any seeded stream.
//
// Unbalanced usage (a heap-held span destroyed out of LIFO order, or a
// span crossing a thread boundary) degrades gracefully: the stack entry is
// unlinked from wherever it sits and depths stay consistent for the
// remaining spans. Under GEA_OBS_NOOP spans still measure elapsed time
// (callers use them as stopwatches) but record nothing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace gea::obs {

/// One request's distributed-trace identity: which trace it belongs to and
/// which span is the current parent. trace_id == 0 means "untraced"; a
/// default-constructed context is the explicit way to say so.
struct TraceContext {
  std::uint64_t trace_id = 0;  // 0 = no trace
  std::uint64_t span_id = 0;   // parent for spans opened under this context
  bool sampled = false;        // exemplar/export hint, carried end to end

  bool valid() const { return trace_id != 0; }
};

/// Fresh process-unique ids (mixed counter, never 0, never an Rng draw).
std::uint64_t new_trace_id();
std::uint64_t new_span_id();

/// Root context for a new trace: fresh trace_id, no parent span.
TraceContext start_trace(bool sampled = true);

/// One completed span. Times are microseconds relative to the recorder's
/// epoch (its construction, or the last clear()).
struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;    // obs thread index, not the OS id
  std::uint32_t depth = 0;  // nesting depth at the time the span opened
  double start_us = 0.0;
  double dur_us = 0.0;
  // Distributed-trace identity; all zero for plain thread-local spans.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  bool sampled = false;
};

/// Bounded sink for completed spans plus all-time per-name aggregates.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder every TraceSpan uses by default.
  static TraceRecorder& global();

  /// Runtime switch (default on). Disabled spans cost one relaxed load.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void record(TraceEvent ev);

  /// Record a completed interval attributed to `ctx` without a live span:
  /// the queue-wait of a request measured between two events on different
  /// threads, for example. `start_us`/`dur_us` are in recorder-epoch
  /// microseconds (see now_us()). Returns the new span's id (0 when
  /// recording is disabled).
  std::uint64_t record_interval(const std::string& name,
                                const TraceContext& ctx, double start_us,
                                double dur_us);

  /// Ring contents, oldest first. At most capacity() events; older ones
  /// are overwritten (counted in dropped()).
  std::vector<TraceEvent> events() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const;

  /// Every ring event belonging to `trace_id`, ordered by start time —
  /// the per-trace assembly behind /tracez.
  std::vector<TraceEvent> trace(std::uint64_t trace_id) const;

  /// Distinct trace ids present in the ring, most recently finished first,
  /// capped at `limit`. Feed each to trace() to render it.
  std::vector<std::uint64_t> recent_traces(std::size_t limit = 32) const;

  struct SpanStats {
    std::uint64_t count = 0;
    double total_us = 0.0;
    double min_us = 0.0;
    double max_us = 0.0;
    double mean_us() const {
      return count == 0 ? 0.0 : total_us / static_cast<double>(count);
    }
  };

  /// All-time aggregates by span name (not bounded by the ring).
  std::map<std::string, SpanStats> aggregate() const;

  /// Drop ring + aggregates and restart the epoch.
  void clear();

  /// Microseconds since the recorder epoch, the unit of TraceEvent times.
  double now_us() const;

  static constexpr std::size_t kDefaultCapacity = 8192;

 private:
  const std::size_t capacity_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  // ring_[next_] is the oldest once full
  std::uint64_t dropped_ = 0;
  std::map<std::string, SpanStats> aggregate_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span. Construct to open, destroy (or close()) to record. Also
/// usable as a plain stopwatch via elapsed_ms(), which keeps working under
/// GEA_OBS_NOOP and after close().
///
/// Two parenting modes:
///  - thread-local (the classic constructor): parent/depth come from the
///    calling thread's span stack;
///  - explicit context: the span's parent is ctx.span_id and the span
///    never touches the thread-local stack, so it is safe to open on one
///    thread and close on another. context() hands children (and the wire)
///    the continuation context.
class TraceSpan {
 public:
  explicit TraceSpan(std::string name,
                     TraceRecorder& recorder = TraceRecorder::global());
  /// Explicit-context span: parented under `ctx` (which may be invalid, in
  /// which case the span records as an untraced, stack-free event).
  TraceSpan(std::string name, const TraceContext& ctx,
            TraceRecorder& recorder = TraceRecorder::global());
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Finish the span now (idempotent). elapsed_ms() freezes at this point.
  void close();

  /// Wall time since construction, frozen by close().
  double elapsed_ms() const;

  /// Nesting depth this span opened at (0 = top level on its thread).
  std::uint32_t depth() const { return depth_; }

  /// Continuation context for children of this span: same trace, this
  /// span as parent. Invalid when the span has no trace identity.
  TraceContext context() const {
    return TraceContext{trace_id_, span_id_, sampled_};
  }

 private:
  std::string name_;
  TraceRecorder* recorder_;
  std::chrono::steady_clock::time_point start_;
  double start_us_ = 0.0;
  double frozen_ms_ = -1.0;
  std::uint32_t depth_ = 0;
  bool open_ = false;
  bool on_stack_ = false;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_span_id_ = 0;
  bool sampled_ = false;
};

}  // namespace gea::obs
