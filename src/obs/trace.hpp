// RAII trace spans with parent/child nesting.
//
// A TraceSpan marks a region of work ("pipeline.train", "serve.batch") on
// the current thread: construction pushes it onto a thread-local span
// stack and stamps a steady-clock start; destruction (or close()) pops it
// and records one TraceEvent — name, thread index, nesting depth, start
// offset, duration — into a bounded ring buffer owned by a TraceRecorder.
// The recorder also keeps all-time per-name aggregates (count/total/min/
// max), so "where did the run spend its time" is answerable even after the
// ring has wrapped, and exports the ring as Chrome trace_event JSON
// (obs/export.hpp) viewable in chrome://tracing or Perfetto.
//
// Determinism: spans read the clock and write to the recorder — nothing
// else. They never branch the instrumented code, so enabling or disabling
// tracing cannot change any computed result.
//
// Unbalanced usage (a heap-held span destroyed out of LIFO order, or a
// span crossing a thread boundary) degrades gracefully: the stack entry is
// unlinked from wherever it sits and depths stay consistent for the
// remaining spans. Under GEA_OBS_NOOP spans still measure elapsed time
// (callers use them as stopwatches) but record nothing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace gea::obs {

/// One completed span. Times are microseconds relative to the recorder's
/// epoch (its construction, or the last clear()).
struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;    // obs thread index, not the OS id
  std::uint32_t depth = 0;  // nesting depth at the time the span opened
  double start_us = 0.0;
  double dur_us = 0.0;
};

/// Bounded sink for completed spans plus all-time per-name aggregates.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = kDefaultCapacity);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder every TraceSpan uses by default.
  static TraceRecorder& global();

  /// Runtime switch (default on). Disabled spans cost one relaxed load.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void record(TraceEvent ev);

  /// Ring contents, oldest first. At most capacity() events; older ones
  /// are overwritten (counted in dropped()).
  std::vector<TraceEvent> events() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const;

  struct SpanStats {
    std::uint64_t count = 0;
    double total_us = 0.0;
    double min_us = 0.0;
    double max_us = 0.0;
    double mean_us() const {
      return count == 0 ? 0.0 : total_us / static_cast<double>(count);
    }
  };

  /// All-time aggregates by span name (not bounded by the ring).
  std::map<std::string, SpanStats> aggregate() const;

  /// Drop ring + aggregates and restart the epoch.
  void clear();

  /// Microseconds since the recorder epoch, the unit of TraceEvent times.
  double now_us() const;

  static constexpr std::size_t kDefaultCapacity = 8192;

 private:
  const std::size_t capacity_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  // ring_[next_] is the oldest once full
  std::uint64_t dropped_ = 0;
  std::map<std::string, SpanStats> aggregate_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span. Construct to open, destroy (or close()) to record. Also
/// usable as a plain stopwatch via elapsed_ms(), which keeps working under
/// GEA_OBS_NOOP and after close().
class TraceSpan {
 public:
  explicit TraceSpan(std::string name,
                     TraceRecorder& recorder = TraceRecorder::global());
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Finish the span now (idempotent). elapsed_ms() freezes at this point.
  void close();

  /// Wall time since construction, frozen by close().
  double elapsed_ms() const;

  /// Nesting depth this span opened at (0 = top level on its thread).
  std::uint32_t depth() const { return depth_; }

 private:
  std::string name_;
  TraceRecorder* recorder_;
  std::chrono::steady_clock::time_point start_;
  double start_us_ = 0.0;
  double frozen_ms_ = -1.0;
  std::uint32_t depth_ = 0;
  bool open_ = false;
};

}  // namespace gea::obs
