#include "obs/trace.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace gea::obs {

namespace {

// Per-thread stack of open spans, for depth assignment and graceful
// unbalanced teardown. Entries are raw pointers owned by the spans.
thread_local std::vector<TraceSpan*> t_span_stack;

/// splitmix64 finalizer: turns a sequential counter into ids that look
/// uncorrelated (so ids from different subsystems interleave harmlessly in
/// exports) while staying deterministic in process order.
std::uint64_t mix_id(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x = x ^ (x >> 31);
  return x == 0 ? 1 : x;  // 0 is the "no trace / no span" sentinel
}

std::atomic<std::uint64_t> g_next_id{1};

}  // namespace

std::uint64_t new_trace_id() {
  return mix_id(g_next_id.fetch_add(1, std::memory_order_relaxed));
}

std::uint64_t new_span_id() {
  return mix_id(g_next_id.fetch_add(1, std::memory_order_relaxed));
}

TraceContext start_trace(bool sampled) {
  return TraceContext{new_trace_id(), 0, sampled};
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceRecorder::record(TraceEvent ev) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto& agg = aggregate_[ev.name];
  if (agg.count == 0 || ev.dur_us < agg.min_us) agg.min_us = ev.dur_us;
  if (agg.count == 0 || ev.dur_us > agg.max_us) agg.max_us = ev.dur_us;
  ++agg.count;
  agg.total_us += ev.dur_us;

  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    return;
  }
  ring_[next_] = std::move(ev);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::uint64_t TraceRecorder::record_interval(const std::string& name,
                                             const TraceContext& ctx,
                                             double start_us, double dur_us) {
  if (!enabled()) return 0;
  TraceEvent ev;
  ev.name = name;
  ev.tid = detail::thread_index();
  ev.start_us = start_us;
  ev.dur_us = dur_us;
  ev.trace_id = ctx.trace_id;
  ev.span_id = new_span_id();
  ev.parent_span_id = ctx.span_id;
  ev.sampled = ctx.sampled;
  const std::uint64_t id = ev.span_id;
  record(std::move(ev));
  return id;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest first: [next_, end) then [0, next_) once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceEvent> TraceRecorder::trace(std::uint64_t trace_id) const {
  std::vector<TraceEvent> out;
  if (trace_id == 0) return out;
  for (auto& ev : events()) {
    if (ev.trace_id == trace_id) out.push_back(std::move(ev));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

std::vector<std::uint64_t> TraceRecorder::recent_traces(
    std::size_t limit) const {
  // Ring order is completion order; walk newest-first and keep the first
  // sighting of each trace id.
  const auto evs = events();
  std::vector<std::uint64_t> out;
  for (auto it = evs.rbegin(); it != evs.rend() && out.size() < limit; ++it) {
    if (it->trace_id == 0) continue;
    if (std::find(out.begin(), out.end(), it->trace_id) == out.end()) {
      out.push_back(it->trace_id);
    }
  }
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::map<std::string, TraceRecorder::SpanStats> TraceRecorder::aggregate()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return aggregate_;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
  aggregate_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

TraceSpan::TraceSpan(std::string name, TraceRecorder& recorder)
    : name_(std::move(name)),
      recorder_(&recorder),
      start_(std::chrono::steady_clock::now()) {
#if !defined(GEA_OBS_NOOP)
  start_us_ = recorder_->now_us();
  depth_ = static_cast<std::uint32_t>(t_span_stack.size());
  t_span_stack.push_back(this);
  open_ = true;
  on_stack_ = true;
#endif
}

TraceSpan::TraceSpan(std::string name, const TraceContext& ctx,
                     TraceRecorder& recorder)
    : name_(std::move(name)),
      recorder_(&recorder),
      start_(std::chrono::steady_clock::now()) {
#if !defined(GEA_OBS_NOOP)
  start_us_ = recorder_->now_us();
  // Explicit-context spans stay off the thread-local stack: their parent
  // is the context, and they may be closed on a different thread.
  open_ = true;
  if (ctx.valid()) {
    trace_id_ = ctx.trace_id;
    parent_span_id_ = ctx.span_id;
    sampled_ = ctx.sampled;
    span_id_ = new_span_id();
  }
#else
  (void)ctx;
#endif
}

TraceSpan::~TraceSpan() { close(); }

void TraceSpan::close() {
  if (frozen_ms_ < 0.0) {
    frozen_ms_ = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
  }
  if (!open_) return;
  open_ = false;
  if (on_stack_) {
    // LIFO close is the common case; an unbalanced close (or a span whose
    // thread-local stack belongs to another thread) just unlinks itself so
    // later closes still find their own entries.
    auto it = std::find(t_span_stack.rbegin(), t_span_stack.rend(), this);
    if (it != t_span_stack.rend()) {
      t_span_stack.erase(std::next(it).base());
    }
  }
  TraceEvent ev;
  ev.name = name_;
  ev.tid = detail::thread_index();
  ev.depth = depth_;
  ev.start_us = start_us_;
  ev.dur_us = frozen_ms_ * 1000.0;
  ev.trace_id = trace_id_;
  ev.span_id = span_id_;
  ev.parent_span_id = parent_span_id_;
  ev.sampled = sampled_;
  recorder_->record(std::move(ev));
}

double TraceSpan::elapsed_ms() const {
  if (frozen_ms_ >= 0.0) return frozen_ms_;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

}  // namespace gea::obs
