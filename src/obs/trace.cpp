#include "obs/trace.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace gea::obs {

namespace {

// Per-thread stack of open spans, for depth assignment and graceful
// unbalanced teardown. Entries are raw pointers owned by the spans.
thread_local std::vector<TraceSpan*> t_span_stack;

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.reserve(capacity_);
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

double TraceRecorder::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceRecorder::record(TraceEvent ev) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto& agg = aggregate_[ev.name];
  if (agg.count == 0 || ev.dur_us < agg.min_us) agg.min_us = ev.dur_us;
  if (agg.count == 0 || ev.dur_us > agg.max_us) agg.max_us = ev.dur_us;
  ++agg.count;
  agg.total_us += ev.dur_us;

  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    return;
  }
  ring_[next_] = std::move(ev);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest first: [next_, end) then [0, next_) once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::map<std::string, TraceRecorder::SpanStats> TraceRecorder::aggregate()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return aggregate_;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  dropped_ = 0;
  aggregate_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

TraceSpan::TraceSpan(std::string name, TraceRecorder& recorder)
    : name_(std::move(name)),
      recorder_(&recorder),
      start_(std::chrono::steady_clock::now()) {
#if !defined(GEA_OBS_NOOP)
  start_us_ = recorder_->now_us();
  depth_ = static_cast<std::uint32_t>(t_span_stack.size());
  t_span_stack.push_back(this);
  open_ = true;
#endif
}

TraceSpan::~TraceSpan() { close(); }

void TraceSpan::close() {
  if (frozen_ms_ < 0.0) {
    frozen_ms_ = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start_)
                     .count();
  }
  if (!open_) return;
  open_ = false;
  // LIFO close is the common case; an unbalanced close (or a span whose
  // thread-local stack belongs to another thread) just unlinks itself so
  // later closes still find their own entries.
  auto it = std::find(t_span_stack.rbegin(), t_span_stack.rend(), this);
  if (it != t_span_stack.rend()) {
    t_span_stack.erase(std::next(it).base());
  }
  TraceEvent ev;
  ev.name = name_;
  ev.tid = detail::thread_index();
  ev.depth = depth_;
  ev.start_us = start_us_;
  ev.dur_us = frozen_ms_ * 1000.0;
  recorder_->record(std::move(ev));
}

double TraceSpan::elapsed_ms() const {
  if (frozen_ms_ >= 0.0) return frozen_ms_;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

}  // namespace gea::obs
