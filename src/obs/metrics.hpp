// Process-wide metrics: named counters, gauges, and fixed-bucket
// histograms behind one registry, so every subsystem (pipeline stages,
// training epochs, attack crafting, the thread pool, serving) reports into
// a single exportable surface instead of four disconnected mechanisms.
//
// Hot-path contract: Counter::inc and Histogram::observe write one
// thread-striped, cache-line-padded atomic cell with relaxed ordering —
// wait-free, no locks, no allocation — and snapshot() merges the cells.
// Metrics are observational only: they never consume an Rng, never branch
// on a value, and therefore cannot perturb the bitwise-reproducibility
// guarantees the parallel layer makes.
//
// Two off switches:
//  - compile time: -DGEA_OBS_NOOP compiles the hot-path bodies out entirely
//    (handles still exist; snapshots are empty-valued);
//  - run time: set_metrics_enabled(false), one relaxed load on the hot
//    path, used by bench/obs_overhead to measure the instrumentation cost.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gea::obs {

namespace detail {

/// Stripe count for per-metric cells. Threads hash onto stripes by a stable
/// per-thread index, so two pool workers rarely share a cache line.
inline constexpr std::size_t kShards = 16;

struct alignas(64) Cell {
  std::atomic<std::uint64_t> v{0};
};

/// Stable small integer for the calling thread (assigned on first use,
/// monotonically). Used to pick a stripe and to tag trace events.
std::uint32_t thread_index();

inline std::size_t shard_index() {
  return static_cast<std::size_t>(thread_index()) % kShards;
}

/// Runtime kill switch shared by every metric (see set_metrics_enabled).
extern std::atomic<bool> g_metrics_enabled;

inline bool enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Relaxed add on an atomic double (fetch_add on floating atomics is C++20
/// but not universally lock-free in older libstdc++; the CAS loop is).
inline void atomic_add(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Enable/disable all metric writes at runtime (default enabled). Reads
/// (snapshots) always work. Observational only — safe to flip mid-run.
void set_metrics_enabled(bool enabled);
bool metrics_enabled();

/// Monotonic counter. inc() is wait-free on the calling thread's stripe.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
#if !defined(GEA_OBS_NOOP)
    if (!detail::enabled()) return;
    cells_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  /// Sum over stripes. Relaxed: concurrent increments may or may not be
  /// visible, which is fine for an observational read.
  std::uint64_t value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  void reset();
  detail::Cell cells_[detail::kShards];
};

/// Last-writer-wins instantaneous value (queue depth, last epoch loss).
class Gauge {
 public:
  void set(double v) {
#if !defined(GEA_OBS_NOOP)
    if (!detail::enabled()) return;
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }

  void add(double d) {
#if !defined(GEA_OBS_NOOP)
    if (!detail::enabled()) return;
    detail::atomic_add(v_, d);
#else
    (void)d;
#endif
  }

  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  void reset() { v_.store(0.0, std::memory_order_relaxed); }
  std::atomic<double> v_{0.0};
};

/// Point-in-time histogram state. `buckets[i]` counts observations with
/// value <= bounds[i]; the final slot (buckets.size() == bounds.size() + 1)
/// is the +Inf overflow bucket. Counts are per-bucket, not cumulative.
struct HistogramSnapshot {
  /// One traced observation pinned to a bucket — the Prometheus exemplar
  /// (OpenMetrics `# {trace_id="..."} value` suffix on the bucket line).
  /// trace_id == 0 means the bucket has none.
  struct Exemplar {
    double value = 0.0;
    std::uint64_t trace_id = 0;
  };

  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  /// Parallel to `buckets` (may be empty when no observation ever carried
  /// a trace id). Within a bucket the slowest traced observation wins, so
  /// the +Inf/topmost exemplars name the worst traces seen.
  std::vector<Exemplar> exemplars;
  std::uint64_t count = 0;
  double sum = 0.0;

  double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  /// Bucket-interpolated quantile estimate, q in [0,1]. Coarse by design —
  /// exact percentiles stay with util::LatencyRecorder; this answers "which
  /// decade" from mergeable fixed buckets.
  double quantile(double q) const;
};

/// Fixed-bucket histogram with thread-striped cells. observe() is wait-free
/// apart from an uncontended CAS on the stripe's sum.
class Histogram {
 public:
  void observe(double v) {
#if !defined(GEA_OBS_NOOP)
    if (!detail::enabled()) return;
    Shard& s = *shards_[detail::shard_index()];
    s.buckets[bucket_for(v)].v.fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add(s.sum, v);
#else
    (void)v;
#endif
  }

  /// observe() plus an exemplar: when `trace_id` is nonzero the observation
  /// competes (under a mutex — only sampled requests pay it) to become its
  /// bucket's exported exemplar. Untraced calls are exactly observe().
  void observe(double v, std::uint64_t trace_id) {
#if !defined(GEA_OBS_NOOP)
    observe(v);
    if (trace_id != 0 && detail::enabled()) record_exemplar(v, trace_id);
#else
    (void)v;
    (void)trace_id;
#endif
  }

  const std::vector<double>& bounds() const { return bounds_; }
  HistogramSnapshot snapshot() const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);
  void reset();
  std::size_t bucket_for(double v) const;
  void record_exemplar(double v, std::uint64_t trace_id);

  struct Shard {
    explicit Shard(std::size_t n) : buckets(n) {}
    std::vector<detail::Cell> buckets;  // bounds.size() + 1 (overflow last)
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;  // ascending upper bounds
  std::unique_ptr<Shard> shards_[detail::kShards];

  // Exemplar slots, parallel to the bucket layout. Off the wait-free path:
  // only observations carrying a trace id (the sampled minority) lock.
  mutable std::mutex exemplar_mu_;
  std::vector<HistogramSnapshot::Exemplar> exemplars_;
};

/// Default latency buckets (milliseconds): ~1-2-5 decades from 10µs to 10s.
const std::vector<double>& default_latency_buckets_ms();

/// Everything the registry knows, copied at one point in time.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Name -> metric registry. Handles are created on first lookup, live for
/// the registry's lifetime, and are stable: callers may cache the returned
/// reference (the instrumented subsystems do) and write lock-free forever
/// after. Lookup itself takes a mutex — do it once, outside hot loops.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every built-in instrumentation site uses.
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` must be ascending; empty = default_latency_buckets_ms(). The
  /// first registration wins — a later call with different bounds returns
  /// the existing histogram unchanged.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  MetricsSnapshot snapshot() const;

  /// Zero every value, keeping handles valid (cached references survive).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace gea::obs
