// Text exporters over MetricsSnapshot and TraceRecorder.
//
// Three renderings, one data source:
//  - to_prometheus(): Prometheus exposition format ("/metrics" style) —
//    counters as *_total, gauges verbatim, histograms as cumulative
//    *_bucket{le="..."} series plus *_sum / *_count;
//  - summary(): the repo's one-paragraph human style (PipelineReport /
//    ServerStats convention) for logs and examples;
//  - write_chrome_trace(): the recorder's ring as Chrome trace_event JSON
//    ("X" complete events), loadable in chrome://tracing or Perfetto.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gea::obs {

/// Prometheus text exposition. Metric names are sanitized ('.', '-' and
/// other non-[a-zA-Z0-9_] characters become '_').
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// One-paragraph human rendering: counters, gauges, then histograms with
/// count/mean/approximate p50/p99.
std::string summary(const MetricsSnapshot& snapshot);

/// Per-span aggregate table (count, total/mean/min/max ms), widest first.
std::string span_summary(const TraceRecorder& recorder);

/// Serialize the recorder's ring to `path` as a Chrome trace_event JSON
/// document. Returns false when the file cannot be written.
bool write_chrome_trace(const std::string& path,
                        const TraceRecorder& recorder = TraceRecorder::global());

/// The trace JSON as a string (write_chrome_trace's payload).
std::string chrome_trace_json(const TraceRecorder& recorder);

}  // namespace gea::obs
