// Text exporters over MetricsSnapshot and TraceRecorder.
//
// Three renderings, one data source:
//  - to_prometheus(): Prometheus exposition format ("/metrics" style) —
//    counters as *_total, gauges verbatim, histograms as cumulative
//    *_bucket{le="..."} series plus *_sum / *_count;
//  - summary(): the repo's one-paragraph human style (PipelineReport /
//    ServerStats convention) for logs and examples;
//  - write_chrome_trace(): the recorder's ring as Chrome trace_event JSON
//    ("X" complete events), loadable in chrome://tracing or Perfetto.
#pragma once

#include <cstddef>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gea::obs {

/// Exposition-format name sanitizer: non-[a-zA-Z0-9_:] characters become
/// '_', and a leading digit gets a '_' prefix. Deterministic, collision-
/// tolerant (to_prometheus dedups families after sanitization).
std::string prometheus_sanitize_name(const std::string& name);

/// Label-value escaping per the exposition format: backslash, double-quote
/// and newline become \\, \" and \n.
std::string prometheus_escape_label(const std::string& value);

/// Prometheus text exposition. Metric names are sanitized via
/// prometheus_sanitize_name; each family gets exactly one # HELP and one
/// # TYPE line (later metrics whose sanitized name collides with an
/// already-emitted family are dropped rather than emitted twice).
/// Histogram bucket lines carry OpenMetrics-style exemplars
/// (`# {trace_id="..."} value`) for buckets whose slowest observation was
/// traced.
std::string to_prometheus(const MetricsSnapshot& snapshot);

/// One-paragraph human rendering: counters, gauges, then histograms with
/// count/mean/approximate p50/p99.
std::string summary(const MetricsSnapshot& snapshot);

/// Per-span aggregate table (count, total/mean/min/max ms), widest first.
std::string span_summary(const TraceRecorder& recorder);

/// Canonical text form of a trace id: 16 lowercase hex digits. This is the
/// string that appears both in exemplar labels and in /tracez, so the two
/// can be joined by grep.
std::string trace_id_hex(std::uint64_t trace_id);

/// Human-readable rendering of the recorder's most recent traces (newest
/// first, up to `limit`): one block per trace id listing its spans in start
/// order with offsets/durations, thread index and parentage. The admin
/// plane's /tracez body.
std::string tracez_text(const TraceRecorder& recorder,
                        std::size_t limit = 16);

/// Serialize the recorder's ring to `path` as a Chrome trace_event JSON
/// document. Returns false when the file cannot be written.
bool write_chrome_trace(const std::string& path,
                        const TraceRecorder& recorder = TraceRecorder::global());

/// The trace JSON as a string (write_chrome_trace's payload).
std::string chrome_trace_json(const TraceRecorder& recorder);

}  // namespace gea::obs
