#include "obs/export.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

namespace gea::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// HELP text is the raw (unsanitized) metric name — it preserves the
/// dotted form the rest of the repo uses. Exposition HELP escaping: only
/// backslash and newline.
std::string escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Emit the family preamble once; returns false (caller drops the metric)
/// when a previous metric already claimed this sanitized family name.
bool open_family(std::ostringstream& os, std::set<std::string>& emitted,
                 const std::string& family, const std::string& raw_name,
                 const char* type) {
  if (!emitted.insert(family).second) return false;
  os << "# HELP " << family << " " << escape_help(raw_name) << "\n";
  os << "# TYPE " << family << " " << type << "\n";
  return true;
}

}  // namespace

std::string prometheus_sanitize_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':')) {
      c = '_';
    }
  }
  if (out.empty()) return "_";
  if (std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string prometheus_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string trace_id_hex(std::uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return std::string(buf);
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  std::set<std::string> emitted;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string n = prometheus_sanitize_name(name);
    if (!open_family(os, emitted, n, name, "counter")) continue;
    os << n << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string n = prometheus_sanitize_name(name);
    if (!open_family(os, emitted, n, name, "gauge")) continue;
    os << n << " " << value << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string n = prometheus_sanitize_name(name);
    if (!open_family(os, emitted, n, name, "histogram")) continue;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= h.bounds.size(); ++i) {
      const bool overflow = i == h.bounds.size();
      if (overflow) {
        cumulative = h.count;
        os << n << "_bucket{le=\"+Inf\"} " << cumulative;
      } else {
        cumulative += h.buckets[i];
        std::ostringstream le;
        le << h.bounds[i];
        os << n << "_bucket{le=\"" << prometheus_escape_label(le.str())
           << "\"} " << cumulative;
      }
      // OpenMetrics exemplar: the slowest traced observation that landed
      // in this (non-cumulative) bucket, keyed by the trace id /tracez
      // uses, so a slow bucket line points straight at its trace.
      if (i < h.exemplars.size() && h.exemplars[i].trace_id != 0) {
        os << " # {trace_id=\"" << trace_id_hex(h.exemplars[i].trace_id)
           << "\"} " << h.exemplars[i].value;
      }
      os << "\n";
    }
    os << n << "_sum " << h.sum << "\n";
    os << n << "_count " << h.count << "\n";
  }
  return os.str();
}

std::string summary(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  if (snapshot.empty()) return "metrics: (none)";
  os << "metrics: " << snapshot.counters.size() << " counters, "
     << snapshot.gauges.size() << " gauges, " << snapshot.histograms.size()
     << " histograms";
  for (const auto& [name, value] : snapshot.counters) {
    os << "\n  " << name << " = " << value;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << "\n  " << name << " = " << value;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    os << "\n  " << name << " n=" << h.count << " mean=" << h.mean()
       << " p50~" << h.quantile(0.5) << " p99~" << h.quantile(0.99);
  }
  return os.str();
}

std::string span_summary(const TraceRecorder& recorder) {
  const auto agg = recorder.aggregate();
  std::vector<std::pair<std::string, TraceRecorder::SpanStats>> rows(
      agg.begin(), agg.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  std::ostringstream os;
  os << "spans: " << rows.size() << " names";
  for (const auto& [name, s] : rows) {
    os << "\n  " << name << " n=" << s.count << " total="
       << s.total_us / 1000.0 << "ms mean=" << s.mean_us() / 1000.0
       << "ms min=" << s.min_us / 1000.0 << "ms max=" << s.max_us / 1000.0
       << "ms";
  }
  return os.str();
}

std::string tracez_text(const TraceRecorder& recorder, std::size_t limit) {
  const auto ids = recorder.recent_traces(limit);
  std::ostringstream os;
  os << "tracez: " << ids.size() << " recent traces (ring holds "
     << recorder.events().size() << " spans, " << recorder.dropped()
     << " dropped)\n";
  for (const auto id : ids) {
    const auto spans = recorder.trace(id);
    double total_us = 0.0;
    bool sampled = false;
    for (const auto& ev : spans) {
      total_us = std::max(total_us, ev.start_us + ev.dur_us);
      sampled = sampled || ev.sampled;
    }
    const double origin_us = spans.empty() ? 0.0 : spans.front().start_us;
    os << "\ntrace_id=" << trace_id_hex(id) << " spans=" << spans.size()
       << " span_ms=" << (total_us - origin_us) / 1000.0
       << (sampled ? " sampled" : "") << "\n";
    for (const auto& ev : spans) {
      os << "  +" << (ev.start_us - origin_us) / 1000.0 << "ms " << ev.name
         << " dur=" << ev.dur_us / 1000.0 << "ms tid=" << ev.tid << " span="
         << trace_id_hex(ev.span_id)
         << (ev.parent_span_id != 0
                 ? " parent=" + trace_id_hex(ev.parent_span_id)
                 : std::string())
         << "\n";
    }
  }
  return os.str();
}

std::string chrome_trace_json(const TraceRecorder& recorder) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& ev : recorder.events()) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(ev.name)
       << "\",\"cat\":\"gea\",\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.tid
       << ",\"ts\":" << ev.start_us << ",\"dur\":" << ev.dur_us
       << ",\"args\":{\"depth\":" << ev.depth;
    if (ev.trace_id != 0) {
      os << ",\"trace_id\":\"" << trace_id_hex(ev.trace_id)
         << "\",\"span_id\":\"" << trace_id_hex(ev.span_id)
         << "\",\"parent_span_id\":\"" << trace_id_hex(ev.parent_span_id)
         << "\",\"sampled\":" << (ev.sampled ? "true" : "false");
    }
    os << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

bool write_chrome_trace(const std::string& path,
                        const TraceRecorder& recorder) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << chrome_trace_json(recorder);
  return out.good();
}

}  // namespace gea::obs
