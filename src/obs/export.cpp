#include "obs/export.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace gea::obs {

namespace {

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == ':')) {
      c = '_';
    }
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string n = sanitize(name);
    os << "# TYPE " << n << " counter\n" << n << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string n = sanitize(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << value << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string n = sanitize(name);
    os << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      os << n << "_bucket{le=\"" << h.bounds[i] << "\"} " << cumulative
         << "\n";
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << n << "_sum " << h.sum << "\n";
    os << n << "_count " << h.count << "\n";
  }
  return os.str();
}

std::string summary(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  if (snapshot.empty()) return "metrics: (none)";
  os << "metrics: " << snapshot.counters.size() << " counters, "
     << snapshot.gauges.size() << " gauges, " << snapshot.histograms.size()
     << " histograms";
  for (const auto& [name, value] : snapshot.counters) {
    os << "\n  " << name << " = " << value;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << "\n  " << name << " = " << value;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    os << "\n  " << name << " n=" << h.count << " mean=" << h.mean()
       << " p50~" << h.quantile(0.5) << " p99~" << h.quantile(0.99);
  }
  return os.str();
}

std::string span_summary(const TraceRecorder& recorder) {
  const auto agg = recorder.aggregate();
  std::vector<std::pair<std::string, TraceRecorder::SpanStats>> rows(
      agg.begin(), agg.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  std::ostringstream os;
  os << "spans: " << rows.size() << " names";
  for (const auto& [name, s] : rows) {
    os << "\n  " << name << " n=" << s.count << " total="
       << s.total_us / 1000.0 << "ms mean=" << s.mean_us() / 1000.0
       << "ms min=" << s.min_us / 1000.0 << "ms max=" << s.max_us / 1000.0
       << "ms";
  }
  return os.str();
}

std::string chrome_trace_json(const TraceRecorder& recorder) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& ev : recorder.events()) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(ev.name)
       << "\",\"cat\":\"gea\",\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.tid
       << ",\"ts\":" << ev.start_us << ",\"dur\":" << ev.dur_us
       << ",\"args\":{\"depth\":" << ev.depth << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

bool write_chrome_trace(const std::string& path,
                        const TraceRecorder& recorder) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << chrome_trace_json(recorder);
  return out.good();
}

}  // namespace gea::obs
