#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace gea::obs {

namespace detail {

std::atomic<bool> g_metrics_enabled{true};

std::uint32_t thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace detail

void set_metrics_enabled(bool enabled) {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool metrics_enabled() { return detail::enabled(); }

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (auto& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t prev = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < target) continue;
    // Interpolate within [lo, hi); the overflow bucket reports its lower
    // bound (there is no finite upper edge to interpolate toward).
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    if (i >= bounds.size()) return lo;
    const double hi = bounds[i];
    if (buckets[i] == 0) return hi;
    const double frac =
        (target - static_cast<double>(prev)) / static_cast<double>(buckets[i]);
    return lo + frac * (hi - lo);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_buckets_ms();
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram: bucket bounds must be ascending");
  }
  for (auto& shard : shards_) {
    shard = std::make_unique<Shard>(bounds_.size() + 1);
  }
  exemplars_.assign(bounds_.size() + 1, {});
}

void Histogram::record_exemplar(double v, std::uint64_t trace_id) {
  const std::size_t b = bucket_for(v);
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  auto& slot = exemplars_[b];
  // Slowest traced observation wins its bucket, so the export names the
  // worst trace each latency decade has seen since the last reset.
  if (slot.trace_id == 0 || v >= slot.value) {
    slot.value = v;
    slot.trace_id = trace_id;
  }
}

std::size_t Histogram::bucket_for(double v) const {
  // First bound >= v; past-the-end lands in the overflow slot.
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      snap.buckets[i] += shard->buckets[i].v.load(std::memory_order_relaxed);
    }
    snap.count += shard->count.load(std::memory_order_relaxed);
    snap.sum += shard->sum.load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(exemplar_mu_);
    snap.exemplars = exemplars_;
  }
  return snap;
}

void Histogram::reset() {
  for (auto& shard : shards_) {
    for (auto& b : shard->buckets) b.v.store(0, std::memory_order_relaxed);
    shard->count.store(0, std::memory_order_relaxed);
    shard->sum.store(0.0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  std::fill(exemplars_.begin(), exemplars_.end(),
            HistogramSnapshot::Exemplar{});
}

const std::vector<double>& default_latency_buckets_ms() {
  static const std::vector<double> buckets = {
      0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1.0,    2.5,    5.0,    10.0,
      25.0, 50.0,  100., 250., 500., 1000., 2500.0, 5000.0, 10000.0};
  return buckets;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::unique_ptr<Counter>(new Counter());
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::unique_ptr<Gauge>(new Gauge());
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::unique_ptr<Histogram>(new Histogram(std::move(bounds)));
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->snapshot();
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace gea::obs
