#include "attacks/vam.hpp"

#include <cmath>

namespace gea::attacks {

namespace {

/// Gradient of KL(p_ref || softmax(logits(z))) with respect to z:
///   sum_k (q_k - p_ref_k) * grad logit_k(z).
std::vector<double> kl_grad(ml::DifferentiableClassifier& clf,
                            const std::vector<double>& p_ref,
                            const std::vector<double>& z) {
  auto weights = clf.probabilities(z);
  for (std::size_t k = 0; k < weights.size(); ++k) weights[k] -= p_ref[k];
  return clf.grad_weighted(z, weights);
}

void normalize_l2(std::vector<double>& v) {
  const double n = detail::l2(v);
  if (n < 1e-12) return;
  for (auto& x : v) x /= n;
}

}  // namespace

std::vector<double> Vam::craft(ml::DifferentiableClassifier& clf,
                               const std::vector<double>& x,
                               std::size_t target) {
  (void)target;
  const auto p_ref = clf.probabilities(x);

  // Power iteration: d <- normalize(grad_d KL(p(x) || p(x + xi d))).
  std::vector<double> d(x.size());
  for (auto& v : d) v = rng_.normal();
  normalize_l2(d);
  for (std::size_t it = 0; it < cfg_.power_iterations; ++it) {
    std::vector<double> probe = x;
    for (std::size_t i = 0; i < probe.size(); ++i) probe[i] += cfg_.xi * d[i];
    d = kl_grad(clf, p_ref, probe);
    normalize_l2(d);
  }

  std::vector<double> adv = x;
  for (std::size_t i = 0; i < adv.size(); ++i) adv[i] += cfg_.epsilon * d[i];
  detail::clamp01(adv);

  // The virtual direction is sign-ambiguous; pick the side that moves the
  // prediction further from the anchor distribution.
  std::vector<double> adv_neg = x;
  for (std::size_t i = 0; i < adv_neg.size(); ++i) {
    adv_neg[i] -= cfg_.epsilon * d[i];
  }
  detail::clamp01(adv_neg);
  auto kl_of = [&](const std::vector<double>& z) {
    const auto q = clf.probabilities(z);
    double kl = 0.0;
    for (std::size_t k = 0; k < q.size(); ++k) {
      kl += p_ref[k] * std::log(std::max(p_ref[k], 1e-12) /
                                std::max(q[k], 1e-12));
    }
    return kl;
  };
  return kl_of(adv_neg) > kl_of(adv) ? adv_neg : adv;
}

}  // namespace gea::attacks
