#include "attacks/elasticnet.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gea::attacks {

std::vector<double> ElasticNet::craft(ml::DifferentiableClassifier& clf,
                                      const std::vector<double>& x,
                                      std::size_t target) {
  const std::size_t dim = clf.input_dim();
  const std::size_t classes = clf.num_classes();
  const double c = cfg_.initial_c;
  const double beta = cfg_.beta;

  // FISTA state: z is the shrunk iterate, y the momentum point.
  std::vector<double> z = x;
  std::vector<double> y = x;
  double t_k = 1.0;

  std::vector<double> best = x;
  double best_elastic = std::numeric_limits<double>::infinity();
  bool any_success = false;

  auto hinge_grad = [&](const std::vector<double>& point,
                        std::vector<double>& grad) {
    const auto zlog = clf.logits(point);
    std::size_t jmax = target == 0 ? 1 : 0;
    for (std::size_t j = 0; j < classes; ++j) {
      if (j != target && zlog[j] > zlog[jmax]) jmax = j;
    }
    const double margin = zlog[jmax] - zlog[target];
    if (margin > -cfg_.kappa) {
      std::vector<double> weights(classes, 0.0);
      weights[jmax] = 1.0;
      weights[target] = -1.0;
      const auto gh = clf.grad_weighted(point, weights);
      for (std::size_t i = 0; i < dim; ++i) grad[i] += c * gh[i];
    }
  };

  for (std::size_t it = 0; it < cfg_.iterations; ++it) {
    const double lr =
        cfg_.learning_rate /
        std::sqrt(1.0 + static_cast<double>(it));  // decaying step (EAD impl.)

    // Smooth part gradient at y: 2(y - x) + c * d f / d y.
    std::vector<double> grad(dim, 0.0);
    for (std::size_t i = 0; i < dim; ++i) grad[i] = 2.0 * (y[i] - x[i]);
    hinge_grad(y, grad);

    // Gradient step then ISTA shrinkage around the original x.
    std::vector<double> z_new(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      const double step = y[i] - lr * grad[i];
      const double diff = step - x[i];
      double shrunk;
      if (diff > beta) shrunk = x[i] + (diff - beta);
      else if (diff < -beta) shrunk = x[i] + (diff + beta);
      else shrunk = x[i];
      z_new[i] = std::clamp(shrunk, 0.0, 1.0);
    }

    // FISTA momentum.
    const double t_next = (1.0 + std::sqrt(1.0 + 4.0 * t_k * t_k)) / 2.0;
    for (std::size_t i = 0; i < dim; ++i) {
      y[i] = z_new[i] + (t_k - 1.0) / t_next * (z_new[i] - z[i]);
      y[i] = std::clamp(y[i], 0.0, 1.0);
    }
    t_k = t_next;
    z = std::move(z_new);

    if (clf.predict(z) == target) {
      double l1 = 0.0, l2sq = 0.0;
      for (std::size_t i = 0; i < dim; ++i) {
        const double d = z[i] - x[i];
        l1 += std::abs(d);
        l2sq += d * d;
      }
      const double elastic = beta * l1 + l2sq;
      if (elastic < best_elastic) {
        best_elastic = elastic;
        best = z;
        any_success = true;
      }
    }
  }
  return any_success ? best : z;
}

}  // namespace gea::attacks
