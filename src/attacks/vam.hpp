// Virtual Adversarial Method (Miyato et al., ICLR 2016).
//
// Finds the direction that locally maximizes KL(p(y|x) || p(y|x+r)) via
// power iteration, then steps eps along it. VAM needs no label — the
// model's own output distribution is the anchor — which is why the paper
// classifies it with the gradient family but reports weaker success.
// Paper config: eps = 0.3, 40 iterations (power-iteration budget).
#pragma once

#include "attacks/attack.hpp"
#include "util/rng.hpp"

namespace gea::attacks {

struct VamConfig {
  double epsilon = 0.3;
  std::size_t power_iterations = 40;
  /// Finite-difference probe radius for the power iteration.
  double xi = 1e-3;
  std::uint64_t seed = 7;
};

class Vam : public Attack {
 public:
  explicit Vam(VamConfig cfg = {}) : cfg_(cfg), rng_(cfg.seed) {}

  std::string name() const override { return "VAM"; }
  std::vector<double> craft(ml::DifferentiableClassifier& clf,
                            const std::vector<double>& x,
                            std::size_t target) override;
  AttackPtr clone() const override { return std::make_unique<Vam>(cfg_); }
  void reseed(std::uint64_t stream) override { rng_ = util::Rng(stream); }

 private:
  VamConfig cfg_;
  util::Rng rng_;
};

}  // namespace gea::attacks
