// Attack evaluation harness: runs an attack over a labeled sample set and
// produces the Table III statistics — misclassification rate (MR), average
// number of features changed (Avg.FG), and crafting time per sample (CT).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "attacks/attack.hpp"
#include "attacks/cw.hpp"
#include "attacks/deepfool.hpp"
#include "attacks/elasticnet.hpp"
#include "attacks/fgsm.hpp"
#include "attacks/jsma.hpp"
#include "attacks/mim.hpp"
#include "attacks/pgd.hpp"
#include "attacks/vam.hpp"
#include "features/validator.hpp"
#include "ml/model.hpp"

namespace gea::attacks {

/// Per-attack aggregate result (one Table III row).
struct AttackRow {
  std::string attack;
  std::size_t samples = 0;
  std::size_t misclassified = 0;
  double mr() const {
    return samples == 0
               ? 0.0
               : static_cast<double>(misclassified) / static_cast<double>(samples);
  }
  double avg_features_changed = 0.0;
  double craft_ms_per_sample = 0.0;
  /// Fraction of crafted AEs passing the distortion validator (extra column
  /// beyond the paper: quantifies "realistic feature values").
  double valid_fraction = 0.0;
  /// Mean L2 distortion of successful AEs (diagnostic).
  double mean_l2 = 0.0;
  /// Inputs skipped by the quarantine gate (non-finite row, wrong width, or
  /// a crafting exception); the run finishes on the rest.
  std::size_t quarantined = 0;
};

struct HarnessOptions {
  /// Threshold on |delta| in scaled units above which a feature counts as
  /// changed (Table III's FG column).
  double change_tolerance = 1e-4;
  /// Evaluate only samples the model classifies correctly first (attacks
  /// are measured against a working detector).
  bool skip_already_misclassified = true;
  /// Optional cap on evaluated samples (0 = all).
  std::size_t max_samples = 0;
  /// Strict: rethrow per-sample crafting failures instead of quarantining.
  bool strict = false;
  /// Worker threads for crafting: 0 = auto (GEA_THREADS /
  /// hardware_concurrency, serial while fault injection is armed), 1 =
  /// serial. Parallel crafting needs attack.clone() and clf.clone(); if
  /// either returns nullptr the harness logs a warning and runs serially.
  std::size_t threads = 0;
  /// Master seed for per-sample attack reseeding. Every craft runs under
  /// Rng(mix_seed(seed, row_index)), so stochastic attacks (PGD, VAM)
  /// produce the same vectors at any thread count.
  std::uint64_t seed = 0x5eed;
};

/// Run `attack` on every (row, label) pair; the target class is the
/// opposite label (binary task).
AttackRow run_attack(Attack& attack, ml::DifferentiableClassifier& clf,
                     const std::vector<std::vector<double>>& rows,
                     const std::vector<std::uint8_t>& labels,
                     const features::DistortionValidator* validator = nullptr,
                     const HarnessOptions& opts = {});

/// The eight methods with the exact SIV-B.2 hyper-parameters, in the
/// paper's Table III order.
std::vector<AttackPtr> make_paper_attacks();

}  // namespace gea::attacks
