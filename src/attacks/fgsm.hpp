// Fast Gradient Sign Method (Goodfellow et al., ICLR 2015).
//
// One step: x' = clamp(x + eps * sign(grad_x J(x, y))). Paper config
// (SIV-B.2): eps = 0.3.
#pragma once

#include "attacks/attack.hpp"

namespace gea::attacks {

struct FgsmConfig {
  double epsilon = 0.3;
};

class Fgsm : public Attack {
 public:
  explicit Fgsm(FgsmConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "FGSM"; }
  std::vector<double> craft(ml::DifferentiableClassifier& clf,
                            const std::vector<double>& x,
                            std::size_t target) override;
  AttackPtr clone() const override { return std::make_unique<Fgsm>(cfg_); }

 private:
  FgsmConfig cfg_;
};

}  // namespace gea::attacks
