#include "attacks/mim.hpp"

#include <algorithm>

namespace gea::attacks {

std::vector<double> Mim::craft(ml::DifferentiableClassifier& clf,
                               const std::vector<double>& x,
                               std::size_t target) {
  (void)target;
  const std::size_t label = clf.predict(x);
  const double alpha = cfg_.epsilon / static_cast<double>(cfg_.iterations);

  std::vector<double> adv = x;
  std::vector<double> momentum(x.size(), 0.0);
  for (std::size_t it = 0; it < cfg_.iterations; ++it) {
    const auto g = clf.grad_loss(adv, label);
    const double n1 = std::max(detail::l1(g), 1e-12);
    for (std::size_t i = 0; i < momentum.size(); ++i) {
      momentum[i] = cfg_.decay * momentum[i] + g[i] / n1;
    }
    for (std::size_t i = 0; i < adv.size(); ++i) {
      adv[i] += alpha * detail::sgn(momentum[i]);
      adv[i] = std::clamp(adv[i], x[i] - cfg_.epsilon, x[i] + cfg_.epsilon);
    }
    detail::clamp01(adv);
  }
  return adv;
}

}  // namespace gea::attacks
