#include "attacks/harness.hpp"

#include <cmath>
#include <stdexcept>

#include "util/log.hpp"
#include "util/timer.hpp"

namespace gea::attacks {

AttackRow run_attack(Attack& attack, ml::DifferentiableClassifier& clf,
                     const std::vector<std::vector<double>>& rows,
                     const std::vector<std::uint8_t>& labels,
                     const features::DistortionValidator* validator,
                     const HarnessOptions& opts) {
  if (rows.size() != labels.size()) {
    throw std::invalid_argument("run_attack: label count mismatch");
  }
  AttackRow out;
  out.attack = attack.name();

  double total_ms = 0.0;
  double total_changed = 0.0;
  double total_l2 = 0.0;
  std::size_t valid = 0;

  auto row_finite = [](const std::vector<double>& v) {
    for (double d : v) {
      if (!std::isfinite(d)) return false;
    }
    return true;
  };

  for (std::size_t s = 0; s < rows.size(); ++s) {
    if (opts.max_samples != 0 && out.samples >= opts.max_samples) break;
    const auto& x = rows[s];
    const std::size_t label = labels[s];

    // Quarantine gate: a NaN/Inf row would poison gradients and every
    // prediction downstream; a width mismatch would index out of bounds.
    if (x.size() != clf.input_dim() || !row_finite(x)) {
      if (opts.strict) {
        throw std::invalid_argument("run_attack: malformed input row " +
                                    std::to_string(s));
      }
      ++out.quarantined;
      util::log_warn("attack harness: quarantined malformed input row ", s);
      continue;
    }

    if (opts.skip_already_misclassified && clf.predict(x) != label) continue;
    const std::size_t target = label == 0 ? 1 : 0;

    util::Stopwatch sw;
    std::vector<double> adv;
    try {
      adv = attack.craft(clf, x, target);
      if (adv.size() != x.size() || !row_finite(adv)) {
        throw std::runtime_error("attack produced a malformed vector");
      }
    } catch (const std::exception& e) {
      if (opts.strict) throw;
      ++out.quarantined;
      util::log_warn("attack harness: quarantined sample ", s, " (",
                     attack.name(), "): ", e.what());
      continue;
    }
    total_ms += sw.elapsed_ms();
    ++out.samples;

    std::size_t changed = 0;
    double l2sq = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = adv[i] - x[i];
      if (std::abs(d) > opts.change_tolerance) ++changed;
      l2sq += d * d;
    }
    total_changed += static_cast<double>(changed);
    total_l2 += std::sqrt(l2sq);

    if (clf.predict(adv) != label) ++out.misclassified;
    if (validator != nullptr) {
      features::FeatureVector fv{};
      if (adv.size() != fv.size()) {
        throw std::invalid_argument("run_attack: validator dim mismatch");
      }
      for (std::size_t i = 0; i < fv.size(); ++i) fv[i] = adv[i];
      if (validator->validate(fv).admissible()) ++valid;
    }
  }

  if (out.samples > 0) {
    const auto n = static_cast<double>(out.samples);
    out.avg_features_changed = total_changed / n;
    out.craft_ms_per_sample = total_ms / n;
    out.mean_l2 = total_l2 / n;
    out.valid_fraction = validator ? static_cast<double>(valid) / n : 0.0;
  }
  return out;
}

std::vector<AttackPtr> make_paper_attacks() {
  std::vector<AttackPtr> attacks;
  attacks.push_back(std::make_unique<CarliniWagnerL2>(
      CwConfig{.learning_rate = 0.1, .iterations = 200}));
  attacks.push_back(std::make_unique<DeepFool>(
      DeepFoolConfig{.overshoot = 0.02, .iterations = 100}));
  attacks.push_back(std::make_unique<ElasticNet>(
      ElasticNetConfig{.learning_rate = 0.1, .iterations = 250}));
  attacks.push_back(std::make_unique<Fgsm>(FgsmConfig{.epsilon = 0.3}));
  attacks.push_back(std::make_unique<Jsma>(JsmaConfig{.theta = 0.3, .gamma = 0.6}));
  attacks.push_back(std::make_unique<Mim>(
      MimConfig{.epsilon = 0.3, .iterations = 10}));
  attacks.push_back(std::make_unique<Pgd>(
      PgdConfig{.epsilon = 0.3, .iterations = 40}));
  attacks.push_back(std::make_unique<Vam>(
      VamConfig{.epsilon = 0.3, .power_iterations = 40}));
  return attacks;
}

}  // namespace gea::attacks
