#include "attacks/harness.hpp"

#include <cmath>
#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace gea::attacks {

AttackRow run_attack(Attack& attack, ml::DifferentiableClassifier& clf,
                     const std::vector<std::vector<double>>& rows,
                     const std::vector<std::uint8_t>& labels,
                     const features::DistortionValidator* validator,
                     const HarnessOptions& opts) {
  if (rows.size() != labels.size()) {
    throw std::invalid_argument("run_attack: label count mismatch");
  }
  AttackRow out;
  out.attack = attack.name();

  // The whole run is one span; per-sample crafting times feed the
  // "attacks.craft_ms" histogram at the serial merge, which is exactly the
  // paper's Table III CT column as a queryable distribution.
  obs::TraceSpan run_span("attacks.run." + out.attack);
  auto& registry = obs::MetricsRegistry::global();
  obs::Histogram& craft_ms_hist = registry.histogram("attacks.craft_ms");
  obs::Counter& crafted_total = registry.counter("attacks.crafted_total");
  obs::Counter& misclassified_total =
      registry.counter("attacks.misclassified_total");
  obs::Counter& quarantined_total =
      registry.counter("attacks.quarantined_total");

  const std::size_t lanes_wanted = util::resolve_threads(
      {.threads = opts.threads, .label = "attack harness"});

  // Crafting mutates attack state (iterate buffers, Rng) and classifier
  // state (forward/backward caches), so each concurrent lane needs its own
  // replica. Lane 0 reuses the caller's objects; if either side cannot
  // clone, run serially rather than race.
  std::vector<AttackPtr> extra_attacks;
  std::vector<std::unique_ptr<ml::DifferentiableClassifier>> extra_clfs;
  std::size_t lanes = lanes_wanted;
  for (std::size_t i = 1; i < lanes_wanted; ++i) {
    auto ac = attack.clone();
    auto cc = clf.clone();
    if (!ac || !cc) {
      util::log_warn("attack harness: ", attack.name(),
                     " or classifier not cloneable; crafting serially");
      lanes = 1;
      extra_attacks.clear();
      extra_clfs.clear();
      break;
    }
    extra_attacks.push_back(std::move(ac));
    extra_clfs.push_back(std::move(cc));
  }

  double total_ms = 0.0;
  double total_changed = 0.0;
  double total_l2 = 0.0;
  std::size_t valid = 0;

  auto row_finite = [](const std::vector<double>& v) {
    for (double d : v) {
      if (!std::isfinite(d)) return false;
    }
    return true;
  };

  struct Slot {
    std::vector<double> adv;
    double ms = 0.0;
    std::exception_ptr error;
  };

  // Wave loop: under a sample cap, which rows get visited depends on how
  // many earlier crafts succeed (quarantined crafts do not count toward the
  // cap), so candidates are collected in waves of `cap - samples` and the
  // loop re-scans until the cap is met or the rows run out. This visits
  // exactly the rows the serial loop would.
  std::size_t pos = 0;
  while (pos < rows.size() &&
         (opts.max_samples == 0 || out.samples < opts.max_samples)) {
    const std::size_t need =
        opts.max_samples == 0 ? rows.size() : opts.max_samples - out.samples;

    // Serial scan in row order: quarantine gate (a NaN/Inf row would poison
    // gradients; a width mismatch would index out of bounds) and the
    // correctly-classified eligibility filter.
    std::vector<std::size_t> wave;
    while (pos < rows.size() && wave.size() < need) {
      const std::size_t s = pos++;
      const auto& x = rows[s];
      if (x.size() != clf.input_dim() || !row_finite(x)) {
        if (opts.strict) {
          throw std::invalid_argument("run_attack: malformed input row " +
                                      std::to_string(s));
        }
        ++out.quarantined;
        util::log_warn("attack harness: quarantined malformed input row ", s);
        continue;
      }
      if (opts.skip_already_misclassified && clf.predict(x) != labels[s]) {
        continue;
      }
      wave.push_back(s);
    }
    if (wave.empty()) break;

    // Parallel craft into index-addressed slots. One chunk per lane so each
    // chunk owns one replica; per-sample reseeding makes every craft a pure
    // function of (row, opts.seed), so neither chunking nor thread count
    // can change the vectors. Failures are captured per slot, not lost.
    std::vector<Slot> slots(wave.size());
    const auto status = util::parallel_for_ranges(
        wave.size(), lanes,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
          Attack& atk = chunk == 0 ? attack : *extra_attacks[chunk - 1];
          ml::DifferentiableClassifier& cc =
              chunk == 0 ? clf : *extra_clfs[chunk - 1];
          for (std::size_t i = begin; i < end; ++i) {
            const std::size_t s = wave[i];
            const auto& x = rows[s];
            const std::size_t target = labels[s] == 0 ? 1 : 0;
            atk.reseed(util::mix_seed(opts.seed, s));
            util::Stopwatch sw;
            try {
              auto adv = atk.craft(cc, x, target);
              if (adv.size() != x.size() || !row_finite(adv)) {
                throw std::runtime_error("attack produced a malformed vector");
              }
              slots[i].adv = std::move(adv);
            } catch (...) {
              slots[i].error = std::current_exception();
            }
            slots[i].ms = sw.elapsed_ms();
          }
          return util::Status::ok();
        },
        {.threads = lanes, .label = "attack harness"});
    if (!status.is_ok()) {
      // Per-sample failures live in slots; a Status here is a pool-level
      // failure (shutdown mid-run) and has no quarantine interpretation.
      throw std::runtime_error(status.to_string());
    }

    // Merge in index order: quarantine accounting, prediction, validation,
    // and the floating-point reductions all happen serially in row order,
    // so the statistics are bitwise reproducible.
    for (std::size_t i = 0; i < wave.size(); ++i) {
      const std::size_t s = wave[i];
      Slot& slot = slots[i];
      if (slot.error) {
        if (opts.strict) std::rethrow_exception(slot.error);
        ++out.quarantined;
        quarantined_total.inc();
        try {
          std::rethrow_exception(slot.error);
        } catch (const std::exception& e) {
          util::log_warn("attack harness: quarantined sample ", s, " (",
                         attack.name(), "): ", e.what());
        } catch (...) {
          util::log_warn("attack harness: quarantined sample ", s, " (",
                         attack.name(), "): non-standard exception");
        }
        continue;
      }
      const auto& x = rows[s];
      const auto& adv = slot.adv;
      total_ms += slot.ms;
      craft_ms_hist.observe(slot.ms);
      crafted_total.inc();
      ++out.samples;

      std::size_t changed = 0;
      double l2sq = 0.0;
      for (std::size_t j = 0; j < x.size(); ++j) {
        const double d = adv[j] - x[j];
        if (std::abs(d) > opts.change_tolerance) ++changed;
        l2sq += d * d;
      }
      total_changed += static_cast<double>(changed);
      total_l2 += std::sqrt(l2sq);

      if (clf.predict(adv) != labels[s]) {
        ++out.misclassified;
        misclassified_total.inc();
      }
      if (validator != nullptr) {
        features::FeatureVector fv{};
        if (adv.size() != fv.size()) {
          throw std::invalid_argument("run_attack: validator dim mismatch");
        }
        for (std::size_t j = 0; j < fv.size(); ++j) fv[j] = adv[j];
        if (validator->validate(fv).admissible()) ++valid;
      }
    }
  }

  if (out.samples > 0) {
    const auto n = static_cast<double>(out.samples);
    out.avg_features_changed = total_changed / n;
    out.craft_ms_per_sample = total_ms / n;
    out.mean_l2 = total_l2 / n;
    out.valid_fraction = validator ? static_cast<double>(valid) / n : 0.0;
  }
  return out;
}

std::vector<AttackPtr> make_paper_attacks() {
  std::vector<AttackPtr> attacks;
  attacks.push_back(std::make_unique<CarliniWagnerL2>(
      CwConfig{.learning_rate = 0.1, .iterations = 200}));
  attacks.push_back(std::make_unique<DeepFool>(
      DeepFoolConfig{.overshoot = 0.02, .iterations = 100}));
  attacks.push_back(std::make_unique<ElasticNet>(
      ElasticNetConfig{.learning_rate = 0.1, .iterations = 250}));
  attacks.push_back(std::make_unique<Fgsm>(FgsmConfig{.epsilon = 0.3}));
  attacks.push_back(std::make_unique<Jsma>(JsmaConfig{.theta = 0.3, .gamma = 0.6}));
  attacks.push_back(std::make_unique<Mim>(
      MimConfig{.epsilon = 0.3, .iterations = 10}));
  attacks.push_back(std::make_unique<Pgd>(
      PgdConfig{.epsilon = 0.3, .iterations = 40}));
  attacks.push_back(std::make_unique<Vam>(
      VamConfig{.epsilon = 0.3, .power_iterations = 40}));
  return attacks;
}

}  // namespace gea::attacks
