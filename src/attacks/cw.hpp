// Carlini & Wagner L2 attack (S&P 2017).
//
// Change of variables x' = (tanh(w) + 1) / 2 keeps iterates in [0,1]
// without projection; Adam minimizes ||x'-x||_2^2 + c * g(x') where
// g(x') = max(max_{j != t} Z_j - Z_t, -kappa). Paper config: learning rate
// 0.1, 200 iterations.
#pragma once

#include "attacks/attack.hpp"

namespace gea::attacks {

struct CwConfig {
  double learning_rate = 0.1;
  std::size_t iterations = 200;
  double initial_c = 1.0;
  /// Binary-search steps over c (1 = fixed c).
  std::size_t search_steps = 3;
  double kappa = 0.0;  // confidence margin
};

class CarliniWagnerL2 : public Attack {
 public:
  explicit CarliniWagnerL2(CwConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "C&W"; }
  std::vector<double> craft(ml::DifferentiableClassifier& clf,
                            const std::vector<double>& x,
                            std::size_t target) override;
  AttackPtr clone() const override {
    return std::make_unique<CarliniWagnerL2>(cfg_);
  }

 private:
  CwConfig cfg_;
};

}  // namespace gea::attacks
