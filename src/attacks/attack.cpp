#include "attacks/attack.hpp"

#include <algorithm>
#include <cmath>

namespace gea::attacks::detail {

void clamp01(std::vector<double>& x) {
  for (auto& v : x) v = std::clamp(v, 0.0, 1.0);
}

double sgn(double v) { return v > 0.0 ? 1.0 : (v < 0.0 ? -1.0 : 0.0); }

double l2(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double l1(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += std::abs(x);
  return s;
}

}  // namespace gea::attacks::detail
