// Momentum Iterative Method (Dong et al., CVPR 2018).
//
// Iterative sign steps on an L1-normalized momentum-accumulated gradient.
// Paper config: eps = 0.3, 10 iterations; decay mu = 1.0.
#pragma once

#include "attacks/attack.hpp"

namespace gea::attacks {

struct MimConfig {
  double epsilon = 0.3;
  std::size_t iterations = 10;
  double decay = 1.0;
};

class Mim : public Attack {
 public:
  explicit Mim(MimConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "MIM"; }
  std::vector<double> craft(ml::DifferentiableClassifier& clf,
                            const std::vector<double>& x,
                            std::size_t target) override;
  AttackPtr clone() const override { return std::make_unique<Mim>(cfg_); }

 private:
  MimConfig cfg_;
};

}  // namespace gea::attacks
