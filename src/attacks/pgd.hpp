// Projected Gradient Descent (Madry et al., ICLR 2018).
//
// Iterated FGSM steps projected back onto the L-inf ball of radius eps
// around the original input (and [0,1]^D). Paper config: eps = 0.3,
// 40 iterations.
#pragma once

#include "attacks/attack.hpp"
#include "util/rng.hpp"

namespace gea::attacks {

struct PgdConfig {
  double epsilon = 0.3;
  std::size_t iterations = 40;
  /// Step size; defaults to 2.5 * eps / iterations when <= 0.
  double step = -1.0;
  /// Start from a uniform random point inside the eps-ball.
  bool random_start = true;
  std::uint64_t seed = 1;
};

class Pgd : public Attack {
 public:
  explicit Pgd(PgdConfig cfg = {}) : cfg_(cfg), rng_(cfg.seed) {}

  std::string name() const override { return "PGD"; }
  std::vector<double> craft(ml::DifferentiableClassifier& clf,
                            const std::vector<double>& x,
                            std::size_t target) override;
  AttackPtr clone() const override { return std::make_unique<Pgd>(cfg_); }
  void reseed(std::uint64_t stream) override { rng_ = util::Rng(stream); }

 private:
  PgdConfig cfg_;
  util::Rng rng_;
};

}  // namespace gea::attacks
