// Adversarial attack interface.
//
// Attacks consume a DifferentiableClassifier and a *scaled* feature vector
// in [0,1]^D (the space the detector was trained in, mirroring how
// Cleverhans attacks image-normalized inputs) and emit a perturbed vector.
// All attacks clamp their output into [0,1]^D; the DistortionValidator
// then judges whether the crafted point is admissible as a CFG feature
// vector.
//
// Semantics: `craft(clf, x, target)` attempts a *targeted* attack toward
// class `target` for the methods defined that way in the paper (C&W, EAD,
// JSMA); the loss-ascent methods (FGSM, PGD, MIM, VAM) maximize the loss of
// the *current* label (the paper's untargeted use: with two classes the
// two notions coincide), and DeepFool is inherently untargeted. In every
// case, success for the Table III harness means the prediction flipped.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/model.hpp"

namespace gea::attacks {

class Attack {
 public:
  virtual ~Attack() = default;

  /// Display name as used in Table III ("C&W", "FGSM", ...).
  virtual std::string name() const = 0;

  /// Craft one adversarial example. `x` must lie in [0,1]^input_dim;
  /// `target` is the desired output class.
  virtual std::vector<double> craft(ml::DifferentiableClassifier& clf,
                                    const std::vector<double>& x,
                                    std::size_t target) = 0;

  /// Deep copy for per-worker use by the parallel harness (attacks carry
  /// only configuration plus at most an Rng). The default nullptr means
  /// "not cloneable": run_attack then falls back to its serial path.
  virtual std::unique_ptr<Attack> clone() const { return nullptr; }

  /// Reset internal randomness to a per-sample stream. The harness calls
  /// this with util::mix_seed(harness seed, sample index) before every
  /// craft, so stochastic attacks (PGD, VAM) produce the same example for a
  /// given sample regardless of thread count or evaluation order. No-op
  /// for deterministic attacks.
  virtual void reseed(std::uint64_t /*stream*/) {}
};

using AttackPtr = std::unique_ptr<Attack>;

// Shared numeric helpers.
namespace detail {

/// Elementwise clamp into [0,1].
void clamp01(std::vector<double>& x);
/// sign() with sign(0) = 0.
double sgn(double v);
/// L2 norm.
double l2(const std::vector<double>& v);
/// L1 norm.
double l1(const std::vector<double>& v);

}  // namespace detail

}  // namespace gea::attacks
