// Jacobian-based Saliency Map Attack (Papernot et al., EuroS&P 2016).
//
// Targeted, L0-oriented: repeatedly pick the feature pair with the highest
// adversarial saliency (increases the target logit while decreasing the
// others) and perturb it by theta, until the prediction flips or the gamma
// budget of modified features is spent. Paper config: theta = 0.3,
// gamma = 0.6 (fraction of the 23 features allowed to change).
#pragma once

#include "attacks/attack.hpp"

namespace gea::attacks {

struct JsmaConfig {
  double theta = 0.3;
  double gamma = 0.6;
};

class Jsma : public Attack {
 public:
  explicit Jsma(JsmaConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "JSMA"; }
  std::vector<double> craft(ml::DifferentiableClassifier& clf,
                            const std::vector<double>& x,
                            std::size_t target) override;
  AttackPtr clone() const override { return std::make_unique<Jsma>(cfg_); }

 private:
  JsmaConfig cfg_;
};

}  // namespace gea::attacks
