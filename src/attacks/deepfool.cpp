#include "attacks/deepfool.hpp"

#include <cmath>
#include <limits>

namespace gea::attacks {

std::vector<double> DeepFool::craft(ml::DifferentiableClassifier& clf,
                                    const std::vector<double>& x,
                                    std::size_t target) {
  (void)target;  // inherently untargeted
  const std::size_t k0 = clf.predict(x);
  const std::size_t classes = clf.num_classes();

  std::vector<double> adv = x;
  std::vector<double> total_r(x.size(), 0.0);

  for (std::size_t it = 0; it < cfg_.iterations; ++it) {
    if (clf.predict(adv) != k0) break;
    const auto f = clf.logits(adv);

    // Nearest boundary over the competing classes.
    double best_dist = std::numeric_limits<double>::infinity();
    std::vector<double> best_w;
    double best_fdiff = 0.0;
    for (std::size_t k = 0; k < classes; ++k) {
      if (k == k0) continue;
      std::vector<double> weights(classes, 0.0);
      weights[k] = 1.0;
      weights[k0] = -1.0;
      auto w = clf.grad_weighted(adv, weights);  // grad(f_k - f_k0)
      const double fdiff = f[k] - f[k0];
      const double wn = std::max(detail::l2(w), 1e-12);
      const double dist = std::abs(fdiff) / wn;
      if (dist < best_dist) {
        best_dist = dist;
        best_w = std::move(w);
        best_fdiff = fdiff;
      }
    }
    if (best_w.empty()) break;
    const double wn2 = std::max(detail::l2(best_w), 1e-12);
    // r = |f_k - f_k0| / ||w||^2 * w, nudged past the boundary.
    const double scale = (std::abs(best_fdiff) + 1e-6) / (wn2 * wn2);
    for (std::size_t i = 0; i < adv.size(); ++i) {
      const double r = scale * best_w[i];
      total_r[i] += r;
      adv[i] = x[i] + (1.0 + cfg_.overshoot) * total_r[i];
    }
    detail::clamp01(adv);
  }
  return adv;
}

}  // namespace gea::attacks
