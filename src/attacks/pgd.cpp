#include "attacks/pgd.hpp"

#include <algorithm>

namespace gea::attacks {

std::vector<double> Pgd::craft(ml::DifferentiableClassifier& clf,
                               const std::vector<double>& x,
                               std::size_t target) {
  (void)target;
  const std::size_t label = clf.predict(x);
  const double step =
      cfg_.step > 0.0 ? cfg_.step
                      : 2.5 * cfg_.epsilon / static_cast<double>(cfg_.iterations);

  std::vector<double> adv = x;
  if (cfg_.random_start) {
    for (auto& v : adv) v += rng_.uniform(-cfg_.epsilon, cfg_.epsilon);
    detail::clamp01(adv);
  }
  for (std::size_t it = 0; it < cfg_.iterations; ++it) {
    const auto g = clf.grad_loss(adv, label);
    for (std::size_t i = 0; i < adv.size(); ++i) {
      adv[i] += step * detail::sgn(g[i]);
      // Project onto the eps-ball around the original point.
      adv[i] = std::clamp(adv[i], x[i] - cfg_.epsilon, x[i] + cfg_.epsilon);
    }
    detail::clamp01(adv);
    if (clf.predict(adv) != label) break;  // early exit once misclassified
  }
  return adv;
}

}  // namespace gea::attacks
