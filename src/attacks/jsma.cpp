#include "attacks/jsma.hpp"

#include <cmath>
#include <vector>

namespace gea::attacks {

std::vector<double> Jsma::craft(ml::DifferentiableClassifier& clf,
                                const std::vector<double>& x,
                                std::size_t target) {
  const std::size_t dim = clf.input_dim();
  const std::size_t classes = clf.num_classes();
  const double theta = cfg_.theta;
  const bool increasing = theta > 0.0;

  std::vector<double> adv = x;
  std::vector<bool> saturated(dim, false);
  const auto max_changed =
      static_cast<std::size_t>(cfg_.gamma * static_cast<double>(dim));
  // Each step perturbs a pair of features.
  const std::size_t max_steps = (max_changed + 1) / 2;

  for (std::size_t step = 0; step < max_steps; ++step) {
    if (clf.predict(adv) == target) break;

    // Jacobian rows: d logit_k / d x.
    std::vector<std::vector<double>> jac(classes);
    for (std::size_t k = 0; k < classes; ++k) jac[k] = clf.grad_logit(adv, k);

    // alpha_i = dZ_t/dx_i, beta_i = sum_{k != t} dZ_k/dx_i.
    std::vector<double> alpha(dim), beta(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      alpha[i] = jac[target][i];
      double b = 0.0;
      for (std::size_t k = 0; k < classes; ++k) {
        if (k != target) b += jac[k][i];
      }
      beta[i] = b;
    }

    auto usable = [&](std::size_t i) {
      if (saturated[i]) return false;
      return increasing ? adv[i] < 1.0 - 1e-9 : adv[i] > 1e-9;
    };

    // Best pair by the Papernot saliency criterion:
    // maximize -(alpha_p + alpha_q)(beta_p + beta_q)
    // subject to alpha_p + alpha_q > 0 and beta_p + beta_q < 0.
    double best_score = 0.0;
    std::ptrdiff_t bp = -1, bq = -1;
    for (std::size_t p = 0; p < dim; ++p) {
      if (!usable(p)) continue;
      for (std::size_t q = p + 1; q < dim; ++q) {
        if (!usable(q)) continue;
        const double a = alpha[p] + alpha[q];
        const double b = beta[p] + beta[q];
        if (a <= 0.0 || b >= 0.0) continue;
        const double score = -a * b;
        if (score > best_score) {
          best_score = score;
          bp = static_cast<std::ptrdiff_t>(p);
          bq = static_cast<std::ptrdiff_t>(q);
        }
      }
    }
    if (bp < 0) {
      // Relaxed fallback (standard in practice): the single feature with
      // the largest positive pull toward the target.
      double best = 0.0;
      for (std::size_t i = 0; i < dim; ++i) {
        if (!usable(i)) continue;
        const double pull = alpha[i] - beta[i];
        if (pull > best) {
          best = pull;
          bp = static_cast<std::ptrdiff_t>(i);
        }
      }
      if (bp < 0) break;  // nothing helps; give up
    }

    auto bump = [&](std::ptrdiff_t idx) {
      if (idx < 0) return;
      auto& v = adv[static_cast<std::size_t>(idx)];
      v += theta;
      if (v >= 1.0) {
        v = 1.0;
        saturated[static_cast<std::size_t>(idx)] = true;
      }
      if (v <= 0.0) {
        v = 0.0;
        saturated[static_cast<std::size_t>(idx)] = true;
      }
    };
    bump(bp);
    bump(bq);
  }
  return adv;
}

}  // namespace gea::attacks
