// ElasticNet attack / EAD (Chen et al., AAAI 2018).
//
// Minimizes c*f(z) + beta*||z - x||_1 + ||z - x||_2^2 with the C&W hinge
// loss f, via FISTA: gradient steps on the smooth part followed by the
// iterative shrinkage-thresholding (ISTA) operator that gives the L1
// sparsity Table III reports (lowest Avg.FG among the near-100% attacks
// besides JSMA). Paper config: learning rate 0.1, 250 iterations.
#pragma once

#include "attacks/attack.hpp"

namespace gea::attacks {

struct ElasticNetConfig {
  double learning_rate = 0.1;
  std::size_t iterations = 250;
  double beta = 1e-2;  // L1 regularization strength
  double initial_c = 1.0;
  double kappa = 0.0;
};

class ElasticNet : public Attack {
 public:
  explicit ElasticNet(ElasticNetConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "ElasticNet"; }
  std::vector<double> craft(ml::DifferentiableClassifier& clf,
                            const std::vector<double>& x,
                            std::size_t target) override;
  AttackPtr clone() const override {
    return std::make_unique<ElasticNet>(cfg_);
  }

 private:
  ElasticNetConfig cfg_;
};

}  // namespace gea::attacks
