// DeepFool (Moosavi-Dezfooli et al., CVPR 2016).
//
// Iterative linearization: at each step, move to the nearest (L2) decision
// boundary of the locally linearized classifier. Paper config: overshoot
// 0.02, 100 iterations.
#pragma once

#include "attacks/attack.hpp"

namespace gea::attacks {

struct DeepFoolConfig {
  double overshoot = 0.02;
  std::size_t iterations = 100;
};

class DeepFool : public Attack {
 public:
  explicit DeepFool(DeepFoolConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "DeepFool"; }
  std::vector<double> craft(ml::DifferentiableClassifier& clf,
                            const std::vector<double>& x,
                            std::size_t target) override;
  AttackPtr clone() const override { return std::make_unique<DeepFool>(cfg_); }

 private:
  DeepFoolConfig cfg_;
};

}  // namespace gea::attacks
