#include "attacks/fgsm.hpp"

namespace gea::attacks {

std::vector<double> Fgsm::craft(ml::DifferentiableClassifier& clf,
                                const std::vector<double>& x,
                                std::size_t target) {
  // Ascend the loss of the current prediction. With two classes this walks
  // toward `target`; we keep the label-based formulation of the original
  // method.
  const std::size_t label = clf.predict(x);
  (void)target;
  const auto g = clf.grad_loss(x, label);
  std::vector<double> adv = x;
  for (std::size_t i = 0; i < adv.size(); ++i) {
    adv[i] += cfg_.epsilon * detail::sgn(g[i]);
  }
  detail::clamp01(adv);
  return adv;
}

}  // namespace gea::attacks
