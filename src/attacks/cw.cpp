#include "attacks/cw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gea::attacks {

namespace {

double atanh_clamped(double v) {
  // Map [0,1] -> (-1,1) -> R, avoiding infinities at the corners.
  const double t = std::clamp(v * 2.0 - 1.0, -1.0 + 1e-6, 1.0 - 1e-6);
  return 0.5 * std::log((1.0 + t) / (1.0 - t));
}

}  // namespace

std::vector<double> CarliniWagnerL2::craft(ml::DifferentiableClassifier& clf,
                                           const std::vector<double>& x,
                                           std::size_t target) {
  const std::size_t dim = clf.input_dim();
  const std::size_t classes = clf.num_classes();

  double c = cfg_.initial_c;
  double c_lo = 0.0, c_hi = -1.0;  // c_hi < 0 = unbounded above
  std::vector<double> best_adv = x;
  double best_l2 = std::numeric_limits<double>::infinity();
  bool any_success = false;

  for (std::size_t search = 0; search < cfg_.search_steps; ++search) {
    // w initialized at the original point.
    std::vector<double> w(dim);
    for (std::size_t i = 0; i < dim; ++i) w[i] = atanh_clamped(x[i]);

    // Adam state.
    std::vector<double> m(dim, 0.0), v(dim, 0.0);
    const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
    bool success_this_c = false;

    for (std::size_t it = 1; it <= cfg_.iterations; ++it) {
      // Forward map.
      std::vector<double> adv(dim), dadv_dw(dim);
      for (std::size_t i = 0; i < dim; ++i) {
        const double th = std::tanh(w[i]);
        adv[i] = (th + 1.0) / 2.0;
        dadv_dw[i] = (1.0 - th * th) / 2.0;
      }

      const auto z = clf.logits(adv);
      std::size_t jmax = target == 0 ? 1 : 0;
      for (std::size_t j = 0; j < classes; ++j) {
        if (j != target && z[j] > z[jmax]) jmax = j;
      }
      const double margin = z[jmax] - z[target];
      const bool attacking = margin > -cfg_.kappa;  // g(x') not yet clipped

      if (!attacking) {
        success_this_c = true;
        const double dist = [&] {
          double s = 0.0;
          for (std::size_t i = 0; i < dim; ++i) {
            s += (adv[i] - x[i]) * (adv[i] - x[i]);
          }
          return std::sqrt(s);
        }();
        if (dist < best_l2) {
          best_l2 = dist;
          best_adv = adv;
          any_success = true;
        }
      }

      // Gradient of ||adv - x||^2 + c * g(adv) w.r.t. w.
      std::vector<double> grad(dim, 0.0);
      for (std::size_t i = 0; i < dim; ++i) {
        grad[i] = 2.0 * (adv[i] - x[i]);
      }
      if (attacking) {
        std::vector<double> weights(classes, 0.0);
        weights[jmax] = 1.0;
        weights[target] = -1.0;
        const auto gh = clf.grad_weighted(adv, weights);
        for (std::size_t i = 0; i < dim; ++i) grad[i] += c * gh[i];
      }
      for (std::size_t i = 0; i < dim; ++i) grad[i] *= dadv_dw[i];

      // Adam update on w.
      const double bc1 = 1.0 - std::pow(b1, static_cast<double>(it));
      const double bc2 = 1.0 - std::pow(b2, static_cast<double>(it));
      for (std::size_t i = 0; i < dim; ++i) {
        m[i] = b1 * m[i] + (1.0 - b1) * grad[i];
        v[i] = b2 * v[i] + (1.0 - b2) * grad[i] * grad[i];
        w[i] -= cfg_.learning_rate * (m[i] / bc1) /
                (std::sqrt(v[i] / bc2) + eps);
      }
    }

    // Binary search over c: success -> try smaller (tighter distortion);
    // failure -> larger.
    if (success_this_c) {
      c_hi = c;
      c = (c_lo + c_hi) / 2.0;
    } else {
      c_lo = c;
      c = c_hi < 0.0 ? c * 10.0 : (c_lo + c_hi) / 2.0;
    }
  }

  if (!any_success) {
    // Return the last iterate's best effort: re-run the map on w is not
    // available here, so return the original (harness counts it a miss).
    return x;
  }
  return best_adv;
}

}  // namespace gea::attacks
