#include "features/validator.hpp"

#include <algorithm>
#include <cmath>

namespace gea::features {

FeatureVector DistortionValidator::clamp01(const FeatureVector& scaled) {
  FeatureVector out = scaled;
  for (auto& v : out) v = std::clamp(v, 0.0, 1.0);
  return out;
}

ValidationReport DistortionValidator::validate(const FeatureVector& scaled) const {
  ValidationReport rep;
  // Finiteness gate first: NaN compares false against every bound below, so
  // without this check a NaN-laden vector would sail through as admissible.
  if (std::size_t i = first_non_finite(scaled); i != kNumFeatures) {
    rep.in_range = false;
    rep.consistent = false;
    rep.violations.push_back(feature_name(i) + " is not finite");
    return rep;
  }
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    if (scaled[i] < -1e-9 || scaled[i] > 1.0 + 1e-9) {
      rep.in_range = false;
      rep.violations.push_back(feature_name(i) + " outside observed range");
    }
  }
  const FeatureVector raw = scaler_->inverse(clamp01(scaled));

  const double nodes = raw[kNumNodes];
  const double edges = raw[kNumEdges];
  if (nodes < 0.0) {
    rep.consistent = false;
    rep.violations.push_back("negative node count");
  }
  if (edges < 0.0) {
    rep.consistent = false;
    rep.violations.push_back("negative edge count");
  }
  // A simple digraph on n nodes has at most n(n-1) edges.
  const double n_round = std::round(nodes);
  if (n_round >= 0.0 && edges > n_round * (n_round - 1.0) + 0.5) {
    rep.consistent = false;
    rep.violations.push_back("edge count exceeds simple-digraph maximum");
  }
  // Density must match edges/nodes within a loose tolerance (the attack
  // moves features independently; wildly inconsistent triples are not
  // realizable by any graph).
  if (n_round >= 2.0) {
    const double implied = edges / (n_round * (n_round - 1.0));
    if (std::abs(implied - raw[kDensity]) > 0.15) {
      rep.consistent = false;
      rep.violations.push_back("density inconsistent with node/edge counts");
    }
  }
  // Bounded centralities live in [0,1]; max >= mean >= min within tuples.
  auto check_tuple = [&](std::size_t base, const char* what, bool bounded) {
    const double mn = raw[base + 0];
    const double mx = raw[base + 1];
    const double mean = raw[base + 3];
    if (bounded && (mn < -1e-6 || mx > 1.0 + 1e-6)) {
      rep.consistent = false;
      rep.violations.push_back(std::string(what) + " centrality outside [0,1]");
    }
    if (mn > mx + 1e-6 || mean > mx + 1e-6 || mean < mn - 1e-6) {
      rep.consistent = false;
      rep.violations.push_back(std::string(what) + " min/mean/max ordering violated");
    }
  };
  check_tuple(kBetweennessMin, "betweenness", true);
  check_tuple(kClosenessMin, "closeness", true);
  check_tuple(kDegreeMin, "degree", false);  // degree centrality can exceed 1
  check_tuple(kShortestPathMin, "shortest-path", false);
  return rep;
}

}  // namespace gea::features
