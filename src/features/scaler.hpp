// Min-max feature scaling to [0, 1].
//
// The attacks operate in scaled space (as Cleverhans does on image-like
// inputs); the scaler is fit on the training split only and applied to
// everything else. `inverse()` maps adversarial feature vectors back to raw
// feature units for the distortion validator.
#pragma once

#include <string>
#include <vector>

#include "features/features.hpp"
#include "util/status.hpp"

namespace gea::features {

class FeatureScaler {
 public:
  /// Fit per-feature [lo, hi] ranges. Features with zero range scale to 0.
  void fit(const std::vector<FeatureVector>& rows);

  bool fitted() const { return fitted_; }

  FeatureVector transform(const FeatureVector& raw) const;
  FeatureVector inverse(const FeatureVector& scaled) const;

  std::vector<FeatureVector> transform_all(
      const std::vector<FeatureVector>& rows) const;

  double lo(std::size_t i) const { return lo_.at(i); }
  double hi(std::size_t i) const { return hi_.at(i); }

  /// Persist the fitted ranges ("GEAS" magic + feature count + lo/hi pairs)
  /// so a trained detector can be reloaded without refitting.
  /// Serialization mirrors ml::Model's API shape (save/load throwing
  /// wrappers around Status-returning *_checked members), so checkpoint
  /// code can treat the two symmetrically — see serve::Checkpoint.
  util::Status save_checked(const std::string& path) const;

  /// Load ranges written by save_checked() into this instance. Rejects
  /// missing/truncated/corrupt files and non-finite or inverted ranges with
  /// a descriptive Status; on any error the instance is left untouched
  /// (staged load, like Model::load_checked).
  util::Status load_checked(const std::string& path);

  /// Throwing wrappers around the checked variants, mirroring Model.
  void load(const std::string& path);

  /// Backwards-compatible alias for save_checked().
  util::Status save(const std::string& path) const { return save_checked(path); }

  /// Factory form of load_checked(), kept for existing callers.
  static util::Result<FeatureScaler> load_from(const std::string& path);

 private:
  void require_fitted() const;

  FeatureVector lo_{};
  FeatureVector hi_{};
  bool fitted_ = false;
};

}  // namespace gea::features
