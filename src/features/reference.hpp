// Seed-era multi-pass featurization, retained verbatim as ground truth.
//
// These are the pre-FeatureEngine implementations: Brandes betweenness with
// per-call allocation, one reverse BFS per closeness sink, and a third
// all-sources BFS for the shortest-path population — three traversals where
// the engine runs one. They exist only so that
//  - tests/feature_engine_test.cpp can assert the engine is bitwise
//    identical to what the repo shipped before the refactor, and
//  - bench/featurize_bench.cpp can report the before/after throughput.
// Production code must use features::FeatureEngine (or the free
// extract_features, which delegates to it). No fault points fire here.
#pragma once

#include <vector>

#include "features/features.hpp"
#include "graph/digraph.hpp"

namespace gea::features::reference {

/// Seed Brandes betweenness (fresh queues/stacks per source).
std::vector<double> betweenness_centrality(const graph::DiGraph& g);

/// Seed closeness: one reverse BFS per sink, sources summed ascending.
std::vector<double> closeness_centrality(const graph::DiGraph& g);

/// Seed shortest-path population: one forward BFS per source, lengths
/// emitted in (source, target) lexicographic order.
std::vector<double> all_shortest_path_lengths(const graph::DiGraph& g);

/// The full seed extract_features pipeline over the three passes above
/// plus degree centrality. Bitwise ground truth for FeatureEngine.
FeatureVector extract_features(const graph::DiGraph& g);

}  // namespace gea::features::reference
