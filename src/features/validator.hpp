// Distortion validator (the "Distortion Validator" box of Fig. 1).
//
// Off-the-shelf attacks perturb scaled features freely; a crafted vector is
// only *admissible* if every feature stays inside the value range observed
// over real samples, and if the handful of integrality/consistency
// constraints a CFG imposes still hold (node/edge counts are non-negative
// integers; density matches |E|/(|V|(|V|-1)) within tolerance; bounded
// centralities stay in [0,1]).
#pragma once

#include <string>
#include <vector>

#include "features/features.hpp"
#include "features/scaler.hpp"

namespace gea::features {

struct ValidationReport {
  bool in_range = true;          // every scaled feature within [0,1]
  bool consistent = true;        // CFG consistency constraints hold
  std::vector<std::string> violations;

  bool admissible() const { return in_range && consistent; }
};

class DistortionValidator {
 public:
  explicit DistortionValidator(const FeatureScaler& scaler)
      : scaler_(&scaler) {}

  /// Validate a *scaled* feature vector.
  ValidationReport validate(const FeatureVector& scaled) const;

  /// Clamp a scaled vector into [0,1]^23 (the projection the bounded
  /// attacks use between iterations).
  static FeatureVector clamp01(const FeatureVector& scaled);

 private:
  const FeatureScaler* scaler_;
};

}  // namespace gea::features
