// FeatureEngine: the unified Table-II featurization path.
//
// One engine owns all traversal scratch (graph/sweep.hpp) plus the summary
// buffers, so extracting the 23 features costs a single all-sources sweep
// and — once warmed up to the largest graph seen — zero heap allocations.
// Output is bitwise identical to the seed-era multi-pass path (see
// features/reference.hpp and the property suite in
// tests/feature_engine_test.cpp).
//
// Threading: an engine is single-threaded by design (it IS the scratch).
// Parallel stages hold one engine per worker — corpus featurization builds
// one per chunk, serving and the GEA harness use the per-thread
// FeatureEngine::local(). A FeatureCache, by contrast, is thread-safe and
// meant to be shared across engines.
//
// FeatureCache: content-addressed (graph adjacency digest -> FeatureVector)
// bounded LRU. GEA sweeps re-featurize combined graphs that repeat across
// rows sharing a graft target, and serving sees repeat binaries; both skip
// the traversal entirely on a hit. Hit/miss/eviction counts feed the obs
// registry ("features.cache.*"). Cached vectors are always the clean
// computation — armed fault points (util/faultinject) corrupt only the
// returned copy, never the cache.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "features/features.hpp"
#include "graph/digraph.hpp"
#include "graph/sweep.hpp"
#include "util/stats.hpp"

namespace gea::obs {
class Counter;
class Gauge;
}  // namespace gea::obs

namespace gea::features {

class DiskFeatureCache;

/// Thread-safe bounded LRU over graph digests. Capacity is clamped to at
/// least one entry. All operations take one internal mutex — cheap next to
/// the traversal a hit avoids; do not hold it across featurization.
///
/// An optional *persistent tier* (features/disk_cache.hpp) sits beneath the
/// LRU: a memory miss consults the tier and promotes its answer (counted as
/// a hit — the caller got data without a traversal), and every computed
/// insert writes through, so warm re-runs over an on-disk corpus skip cold
/// featurization entirely. Promotions do not write through (the tier
/// already holds them).
class FeatureCache {
 public:
  explicit FeatureCache(std::size_t capacity);

  /// True and fills `out` on a hit (the entry becomes most recently used).
  bool lookup(const graph::GraphDigest& key, FeatureVector& out);
  /// Insert or refresh; evicts the least recently used entry when full.
  void insert(const graph::GraphDigest& key, const FeatureVector& fv);

  /// Attach/detach (nullptr) the persistent tier. The tier owns its own
  /// durability (flush); the LRU only reads through and writes through.
  void set_persistent_tier(std::shared_ptr<DiskFeatureCache> tier);
  const std::shared_ptr<DiskFeatureCache>& persistent_tier() const {
    return tier_;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  struct KeyHash {
    std::size_t operator()(const graph::GraphDigest& k) const {
      return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
    }
  };
  using Entry = std::pair<graph::GraphDigest, FeatureVector>;

  /// Insert under mu_ without consulting or writing the tier.
  void insert_locked(const graph::GraphDigest& key, const FeatureVector& fv);

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<graph::GraphDigest, std::list<Entry>::iterator, KeyHash>
      index_;
  std::shared_ptr<DiskFeatureCache> tier_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  // Registry handles resolved once at construction (lookup takes a lock).
  obs::Counter* obs_hits_;
  obs::Counter* obs_misses_;
  obs::Counter* obs_evictions_;
  obs::Gauge* obs_size_;
};

/// Single-sweep 23-feature extractor with reusable scratch and an optional
/// shared cache. See file comment for the threading contract.
class FeatureEngine {
 public:
  FeatureEngine() = default;
  explicit FeatureEngine(std::shared_ptr<FeatureCache> cache)
      : cache_(std::move(cache)) {}

  /// Extract the 23 Table-II features, via the engine's cache if set.
  FeatureVector extract(const graph::DiGraph& g) {
    return extract(g, cache_.get());
  }

  /// Extract with an explicit cache (nullptr = uncached). Lets per-thread
  /// engines share a caller-owned cache (the serving path) without
  /// rebinding the engine.
  FeatureVector extract(const graph::DiGraph& g, FeatureCache* cache);

  void set_cache(std::shared_ptr<FeatureCache> cache) {
    cache_ = std::move(cache);
  }
  const std::shared_ptr<FeatureCache>& cache() const { return cache_; }

  /// Bytes reserved across all scratch buffers. Stable across repeated
  /// extractions of graphs no larger than the largest seen — the
  /// no-per-graph-allocation invariant, asserted by the engine tests.
  std::size_t scratch_bytes() const;

  /// The calling thread's engine (no cache). This is what the free
  /// extract_features() uses, so every thread in a parallel stage gets
  /// scratch reuse without wiring an engine through.
  static FeatureEngine& local();

 private:
  FeatureVector compute(const graph::DiGraph& g);
  /// Shortest-path summary5 from the sweep's distance histogram — bitwise
  /// identical to util::summary5 over the population, without its copy and
  /// selection (see the implementation comment for the exactness argument).
  util::Summary5 path_length_summary() const;

  graph::SweepScratch scratch_;
  std::vector<double> betweenness_;
  std::vector<double> closeness_;
  std::vector<double> degree_;
  std::vector<double> lengths_;
  std::vector<std::uint64_t> hist_;
  std::vector<double> summary_tmp_;
  std::shared_ptr<FeatureCache> cache_;
};

}  // namespace gea::features
