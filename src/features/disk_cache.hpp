// DiskFeatureCache: the digest-keyed persistent tier beneath FeatureCache.
//
// One cache *segment* is a single file mapping graph digests to feature
// vectors. The 128-bit adjacency digest (graph/sweep.hpp) content-addresses
// the graph, so invalidation is free: a sample whose CFG changed simply
// stops hitting, and an entry can never be served for the wrong graph. The
// streaming corpus reader (dataset/stream.hpp) keeps one segment per shard,
// which bounds both the segment's size and the reader's resident set; a
// segment is equally usable standalone (e.g. a server-lifetime warm store).
//
// Segment layout (little-endian, net/wire discipline):
//
//   offset  size  field
//        0     4  magic               0x43414547 ("GEAC", LE)
//        4     2  version             kShardFormatVersion family (1)
//        6     2  reserved            0
//        8     8  entry count
//   then, per entry:
//        0     4  payload length      always kEntryPayloadBytes
//        4     4  payload checksum    FNV-1a 32
//        8   200  payload             u64 digest.lo | u64 digest.hi | 23 f64
//
// Durability: lookups and inserts are in-memory; flush() persists the whole
// segment atomically (temp file + rename), so a crash mid-flush leaves the
// previous segment intact and a stale temp file that the next flush simply
// overwrites. Loading quarantines damaged entries (bad CRC, short payload)
// individually and a truncated tail wholesale — a poisoned entry is
// recomputed by the caller, never returned. See ROBUSTNESS.md (dataset.*
// fault points).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "features/features.hpp"
#include "graph/sweep.hpp"
#include "util/status.hpp"

namespace gea::obs {
class Counter;
}  // namespace gea::obs

namespace gea::features {

inline constexpr std::uint32_t kCacheMagic = 0x43414547u;  // "GEAC" LE
inline constexpr std::uint16_t kCacheFormatVersion = 1;
inline constexpr std::size_t kCacheEntryPayloadBytes =
    16 + kNumFeatures * 8;  // digest + features

/// Quarantine accounting for one segment load.
struct DiskCacheLoadReport {
  std::size_t entries_loaded = 0;
  std::size_t entries_quarantined = 0;
  std::vector<std::string> diagnostics;
  std::size_t max_diagnostics = 8;
};

/// Thread-safe persistent digest -> FeatureVector segment. All operations
/// take one internal mutex; flush() is the only disk write.
class DiskFeatureCache {
 public:
  /// Load the segment at `path` (missing file = empty cache, not an
  /// error: a cold cache and an absent cache are the same thing). Damaged
  /// entries quarantine into `report`; in strict mode the first damaged
  /// entry fails the open instead. File-level damage (bad magic/version)
  /// also fails the open — the segment is then rebuilt from scratch by
  /// whoever owns it.
  static util::Result<DiskFeatureCache> open(std::string path,
                                             DiskCacheLoadReport* report = nullptr,
                                             bool strict = false);

  DiskFeatureCache(DiskFeatureCache&&) = default;
  DiskFeatureCache& operator=(DiskFeatureCache&&) = default;

  /// True and fills `out` on a hit.
  bool lookup(const graph::GraphDigest& key, FeatureVector& out);
  /// Insert or overwrite in memory; marks the segment dirty.
  void insert(const graph::GraphDigest& key, const FeatureVector& fv);

  std::size_t size() const;
  bool dirty() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  const std::string& path() const { return path_; }

  /// Atomically persist the segment if dirty (no-op otherwise). On error
  /// the in-memory state is unchanged and still flushable.
  util::Status flush();

 private:
  explicit DiskFeatureCache(std::string path);

  struct KeyHash {
    std::size_t operator()(const graph::GraphDigest& k) const {
      return static_cast<std::size_t>(k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL));
    }
  };

  // All mutable state lives behind one pointer so the cache stays movable
  // (Result<DiskFeatureCache> needs that) despite owning a mutex.
  struct State {
    mutable std::mutex mu;
    std::unordered_map<graph::GraphDigest, FeatureVector, KeyHash> map;
    bool dirty = false;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  std::string path_;
  std::unique_ptr<State> state_;
  // Registry handles ("features.disk.*"), resolved once at open.
  obs::Counter* obs_hits_ = nullptr;
  obs::Counter* obs_misses_ = nullptr;
  obs::Counter* obs_flushed_ = nullptr;
};

}  // namespace gea::features
