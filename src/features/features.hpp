// The 23 CFG-algorithmic features of Table II.
//
// Seven categories; the four distributional categories each contribute the
// 5-tuple {min, max, median, mean, stddev} over their per-node / per-pair
// population:
//
//   [ 0.. 4] betweenness centrality   (per node)
//   [ 5.. 9] closeness centrality     (per node)
//   [10..14] degree centrality        (per node)
//   [15..19] shortest path length     (per reachable ordered pair)
//   [20]     density                  |E| / (|V|(|V|-1))
//   [21]     number of edges
//   [22]     number of nodes
//
// Degenerate graphs (empty population) contribute zeros, mirroring how a
// one-block packed stub featurizes.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "util/threadpool.hpp"

namespace gea::features {

inline constexpr std::size_t kNumFeatures = 23;

using FeatureVector = std::array<double, kNumFeatures>;

/// Feature indices, named. The *Min..*Std blocks are contiguous.
enum Feature : std::size_t {
  kBetweennessMin = 0,
  kBetweennessMax,
  kBetweennessMedian,
  kBetweennessMean,
  kBetweennessStd,
  kClosenessMin,
  kClosenessMax,
  kClosenessMedian,
  kClosenessMean,
  kClosenessStd,
  kDegreeMin,
  kDegreeMax,
  kDegreeMedian,
  kDegreeMean,
  kDegreeStd,
  kShortestPathMin,
  kShortestPathMax,
  kShortestPathMedian,
  kShortestPathMean,
  kShortestPathStd,
  kDensity,
  kNumEdges,
  kNumNodes,
};

/// Category grouping used by Table II.
enum class Category {
  kBetweenness,
  kCloseness,
  kDegree,
  kShortestPath,
  kDensity,
  kEdges,
  kNodes,
};

/// Human-readable feature name, e.g. "closeness_median".
const std::string& feature_name(std::size_t index);
/// Category of a feature index.
Category feature_category(std::size_t index);
const char* category_name(Category c);
/// Number of features per category (Table II's right column).
std::size_t category_size(Category c);

/// Extract all 23 features from a CFG graph. Delegates to the calling
/// thread's features::FeatureEngine (see engine.hpp) — one traversal,
/// reused scratch, no cache. Hot loops that want a shared FeatureCache
/// hold an engine explicitly.
FeatureVector extract_features(const graph::DiGraph& g);

/// Per-sample extraction over a whole corpus, parallelized with chunked
/// static scheduling. Results land in pre-sized output slots, so the vector
/// is bitwise identical to a serial extraction loop regardless of thread
/// count (see util/threadpool.hpp for the determinism contract). Null graph
/// pointers yield an all-zero vector. A worker failure (uncaught extractor
/// exception) is propagated as a Status naming the sample.
util::Status extract_features_batch(
    const std::vector<const graph::DiGraph*>& graphs,
    std::vector<FeatureVector>& out, const util::ParallelOptions& opts = {});

/// True iff every component is finite. Quarantine gate: degenerate or
/// corrupted inputs must never leak NaN/Inf into scaling or training.
bool all_finite(const FeatureVector& f);

/// Index of the first non-finite component, or kNumFeatures if all finite.
std::size_t first_non_finite(const FeatureVector& f);

/// Indices whose value differs by more than `tol` between the two vectors.
std::vector<std::size_t> changed_features(const FeatureVector& a,
                                          const FeatureVector& b,
                                          double tol = 1e-9);

}  // namespace gea::features
