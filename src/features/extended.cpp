#include "features/extended.hpp"

#include <algorithm>
#include <stdexcept>

#include "features/engine.hpp"
#include "graph/algorithms.hpp"
#include "graph/spectral.hpp"
#include "util/stats.hpp"

namespace gea::features {

std::vector<double> extract_extended_features(const graph::DiGraph& g) {
  return extract_extended_features(g, FeatureEngine::local());
}

std::vector<double> extract_extended_features(const graph::DiGraph& g,
                                              FeatureEngine& engine,
                                              FeatureCache* cache) {
  const FeatureVector base =
      cache != nullptr ? engine.extract(g, cache) : engine.extract(g);
  std::vector<double> out(base.begin(), base.end());
  out.reserve(kNumExtendedFeatures);

  auto push5 = [&out](const util::Summary5& s) {
    out.push_back(s.min);
    out.push_back(s.max);
    out.push_back(s.median);
    out.push_back(s.mean);
    out.push_back(s.stddev);
  };
  push5(util::summary5(graph::eigenvector_centrality(g)));
  push5(util::summary5(graph::pagerank(g)));
  push5(util::summary5(graph::clustering_coefficient(g)));
  out.push_back(graph::diameter(g));
  out.push_back(static_cast<double>(graph::num_weakly_connected_components(g)));
  out.push_back(static_cast<double>(graph::num_strongly_connected_components(g)));
  return out;
}

std::string extended_feature_name(std::size_t index) {
  if (index < kNumFeatures) return feature_name(index);
  static const char* kSuffix[] = {"min", "max", "median", "mean", "std"};
  if (index < 28) return std::string("eigenvector_") + kSuffix[index - 23];
  if (index < 33) return std::string("pagerank_") + kSuffix[index - 28];
  if (index < 38) return std::string("clustering_") + kSuffix[index - 33];
  if (index == 38) return "diameter";
  if (index == 39) return "num_wcc";
  if (index == 40) return "num_scc";
  throw std::out_of_range("extended_feature_name: bad index");
}

void DynScaler::fit(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) throw std::invalid_argument("DynScaler::fit: no rows");
  lo_ = rows.front();
  hi_ = rows.front();
  for (const auto& r : rows) {
    if (r.size() != lo_.size()) {
      throw std::invalid_argument("DynScaler::fit: ragged rows");
    }
    for (std::size_t i = 0; i < r.size(); ++i) {
      lo_[i] = std::min(lo_[i], r[i]);
      hi_[i] = std::max(hi_[i], r[i]);
    }
  }
  fitted_ = true;
}

std::vector<double> DynScaler::transform(const std::vector<double>& raw) const {
  if (!fitted_) throw std::logic_error("DynScaler: not fitted");
  if (raw.size() != lo_.size()) {
    throw std::invalid_argument("DynScaler::transform: dim mismatch");
  }
  std::vector<double> out(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const double range = hi_[i] - lo_[i];
    out[i] = range > 0.0 ? (raw[i] - lo_[i]) / range : 0.0;
  }
  return out;
}

std::vector<std::vector<double>> DynScaler::transform_all(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<std::vector<double>> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(transform(r));
  return out;
}

}  // namespace gea::features
