#include "features/engine.hpp"

#include <cmath>
#include <limits>

#include "features/disk_cache.hpp"

#include "obs/metrics.hpp"
#include "util/faultinject.hpp"
#include "util/stats.hpp"

namespace gea::features {

FeatureCache::FeatureCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  auto& registry = obs::MetricsRegistry::global();
  obs_hits_ = &registry.counter("features.cache.hits");
  obs_misses_ = &registry.counter("features.cache.misses");
  obs_evictions_ = &registry.counter("features.cache.evictions");
  obs_size_ = &registry.gauge("features.cache.size");
}

bool FeatureCache::lookup(const graph::GraphDigest& key, FeatureVector& out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to front
    out = it->second->second;
    ++hits_;
    obs_hits_->inc();
    return true;
  }
  // Memory miss: consult the persistent tier and promote its answer. A
  // promotion counts as a hit — the caller got features without a
  // traversal — and is not written back through (the tier holds it).
  if (tier_ != nullptr && tier_->lookup(key, out)) {
    insert_locked(key, out);
    ++hits_;
    obs_hits_->inc();
    return true;
  }
  ++misses_;
  obs_misses_->inc();
  return false;
}

void FeatureCache::insert(const graph::GraphDigest& key,
                          const FeatureVector& fv) {
  std::lock_guard<std::mutex> lock(mu_);
  insert_locked(key, fv);
  if (tier_ != nullptr) tier_->insert(key, fv);  // write-through
}

void FeatureCache::insert_locked(const graph::GraphDigest& key,
                                 const FeatureVector& fv) {
  auto it = index_.find(key);
  if (it != index_.end()) {  // racing miss on another thread filled it first
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = fv;
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
    obs_evictions_->inc();
  }
  lru_.emplace_front(key, fv);
  index_.emplace(key, lru_.begin());
  obs_size_->set(static_cast<double>(lru_.size()));
}

void FeatureCache::set_persistent_tier(std::shared_ptr<DiskFeatureCache> tier) {
  std::lock_guard<std::mutex> lock(mu_);
  tier_ = std::move(tier);
}

std::size_t FeatureCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::uint64_t FeatureCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t FeatureCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t FeatureCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

FeatureVector FeatureEngine::extract(const graph::DiGraph& g,
                                     FeatureCache* cache) {
  FeatureVector f;
  if (cache != nullptr) {
    const graph::GraphDigest key = graph_digest(g);
    if (!cache->lookup(key, f)) {
      f = compute(g);
      cache->insert(key, f);
    }
  } else {
    f = compute(g);
  }

  // Fault points: a corrupted extractor (or a hostile sample engineered to
  // overflow one) hands downstream stages a non-finite vector. Applied to
  // the returned copy only — a cached entry stays clean — and checked once
  // per extract() whether the traversal ran or the cache answered, so the
  // counted-arming semantics match the seed path call for call.
  if (util::fault(util::faults::kFeatureNaN)) {
    f[kDensity] = std::numeric_limits<double>::quiet_NaN();
  }
  if (util::fault(util::faults::kFeatureInf)) {
    f[kShortestPathMean] = std::numeric_limits<double>::infinity();
  }
  return f;
}

FeatureVector FeatureEngine::compute(const graph::DiGraph& g) {
  FeatureVector f{};

  graph::SweepSinks sinks;
  sinks.betweenness = &betweenness_;
  sinks.closeness = &closeness_;
  sinks.path_lengths = &lengths_;
  sinks.path_length_hist = &hist_;
  graph::single_sweep(g, scratch_, sinks);

  // Degree centrality, inline into the reused buffer (same expression as
  // graph::degree_centrality).
  const std::size_t n = g.num_nodes();
  degree_.assign(n, 0.0);
  if (n >= 2) {
    const double denom = static_cast<double>(n - 1);
    for (std::size_t u = 0; u < n; ++u) {
      degree_[u] =
          static_cast<double>(g.degree(static_cast<graph::NodeId>(u))) / denom;
    }
  }

  // Division-by-zero guard for degenerate graphs: summary5 yields zeros on
  // empty populations (one-block CFG centralities, disconnected graphs with
  // no reachable pairs), but a NaN produced by any upstream arithmetic would
  // silently poison scaling and training — scrub each 5-tuple to zero here.
  auto put5 = [&f](std::size_t base, const util::Summary5& s) {
    const double vals[5] = {s.min, s.max, s.median, s.mean, s.stddev};
    for (std::size_t i = 0; i < 5; ++i) {
      f[base + i] = std::isfinite(vals[i]) ? vals[i] : 0.0;
    }
  };

  put5(kBetweennessMin, util::summary5(betweenness_, summary_tmp_));
  put5(kClosenessMin, util::summary5(closeness_, summary_tmp_));
  put5(kDegreeMin, util::summary5(degree_, summary_tmp_));
  put5(kShortestPathMin, path_length_summary());
  f[kDensity] = n < 2 ? 0.0 : g.density();
  f[kNumEdges] = static_cast<double>(g.num_edges());
  f[kNumNodes] = static_cast<double>(n);
  return f;
}

util::Summary5 FeatureEngine::path_length_summary() const {
  // The path-length population is small nonnegative integers (BFS
  // distances), so four of the five statistics follow exactly from the
  // sweep's distance histogram:
  //  - min/max/median are order statistics, read off cumulative counts
  //    with the same midpoint expression as util::median;
  //  - the mean's numerator is a sum of integers far below 2^53, so every
  //    partial sum is exact and summation order cannot change the bits.
  // Only the stddev deviation accumulation is genuinely order-sensitive,
  // so it alone walks the population in element order. Net effect: the
  // O(V^2)-element copy + selection of the generic summary5 path is gone.
  util::Summary5 s;
  const std::size_t cnt = lengths_.size();
  if (cnt == 0) return s;

  std::size_t min_d = 0, max_d = 0;
  std::uint64_t total = 0;
  bool first = true;
  for (std::size_t d = 0; d < hist_.size(); ++d) {
    const std::uint64_t c = hist_[d];
    if (c == 0) continue;
    if (first) {
      min_d = d;
      first = false;
    }
    max_d = d;
    total += c * d;
  }
  s.min = static_cast<double>(min_d);
  s.max = static_cast<double>(max_d);

  // k-th smallest (0-based) via cumulative counts.
  auto value_at = [this, min_d, max_d](std::size_t rank) {
    std::uint64_t cum = 0;
    for (std::size_t d = min_d; d <= max_d; ++d) {
      cum += hist_[d];
      if (cum > rank) return d;
    }
    return max_d;
  };
  const std::size_t mid = cnt / 2;
  const double hi = static_cast<double>(value_at(mid));
  if (cnt % 2 == 1) {
    s.median = hi;
  } else {
    const double lo = static_cast<double>(value_at(mid - 1));
    s.median = (lo + hi) / 2.0;  // util::median's midpoint expression
  }

  s.mean = static_cast<double>(total) / static_cast<double>(cnt);
  if (cnt >= 2) {
    const double m = s.mean;
    double acc = 0.0;
    for (double x : lengths_) acc += (x - m) * (x - m);
    s.stddev = std::sqrt(acc / static_cast<double>(cnt));
  }
  return s;
}

std::size_t FeatureEngine::scratch_bytes() const {
  return scratch_.footprint_bytes() +
         (betweenness_.capacity() + closeness_.capacity() +
          degree_.capacity() + lengths_.capacity() + summary_tmp_.capacity()) *
             sizeof(double) +
         hist_.capacity() * sizeof(std::uint64_t);
}

FeatureEngine& FeatureEngine::local() {
  thread_local FeatureEngine engine;
  return engine;
}

}  // namespace gea::features
