#include "features/reference.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <stack>

#include "graph/algorithms.hpp"
#include "graph/centrality.hpp"
#include "util/stats.hpp"

namespace gea::features::reference {

using graph::DiGraph;
using graph::kUnreachable;
using graph::NodeId;

std::vector<double> betweenness_centrality(const DiGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<double> bc(n, 0.0);
  if (n < 3) return bc;

  // Brandes (2001), unweighted directed version.
  std::vector<std::int64_t> sigma(n);      // shortest-path counts
  std::vector<std::int64_t> dist(n);       // BFS distance, -1 = unvisited
  std::vector<double> delta(n);            // dependency accumulator
  std::vector<std::vector<NodeId>> pred(n);

  for (std::size_t s = 0; s < n; ++s) {
    std::fill(sigma.begin(), sigma.end(), 0);
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(delta.begin(), delta.end(), 0.0);
    for (auto& p : pred) p.clear();

    std::stack<NodeId> order;
    std::deque<NodeId> queue;
    sigma[s] = 1;
    dist[s] = 0;
    queue.push_back(static_cast<NodeId>(s));
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      order.push(u);
      for (NodeId w : g.out_neighbors(u)) {
        if (dist[w] < 0) {
          dist[w] = dist[u] + 1;
          queue.push_back(w);
        }
        if (dist[w] == dist[u] + 1) {
          sigma[w] += sigma[u];
          pred[w].push_back(u);
        }
      }
    }
    while (!order.empty()) {
      const NodeId w = order.top();
      order.pop();
      for (NodeId u : pred[w]) {
        delta[u] += static_cast<double>(sigma[u]) /
                    static_cast<double>(sigma[w]) * (1.0 + delta[w]);
      }
      if (w != s) bc[w] += delta[w];
    }
  }

  const double norm = static_cast<double>(n - 1) * static_cast<double>(n - 2);
  for (auto& b : bc) b /= norm;
  return bc;
}

std::vector<double> closeness_centrality(const DiGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<double> c(n, 0.0);
  if (n < 2) return c;
  for (std::size_t v = 0; v < n; ++v) {
    const auto dist = graph::bfs_distances_reverse(g, static_cast<NodeId>(v));
    double total = 0.0;
    std::size_t reached = 0;  // nodes that can reach v, excluding v itself
    for (std::size_t u = 0; u < n; ++u) {
      if (u == v || dist[u] == kUnreachable) continue;
      total += static_cast<double>(dist[u]);
      ++reached;
    }
    if (reached == 0 || total == 0.0) continue;
    const double r = static_cast<double>(reached);
    c[v] = (r / total) * (r / static_cast<double>(n - 1));
  }
  return c;
}

std::vector<double> all_shortest_path_lengths(const DiGraph& g) {
  std::vector<double> lengths;
  const std::size_t n = g.num_nodes();
  for (std::size_t s = 0; s < n; ++s) {
    const auto dist = graph::bfs_distances(g, static_cast<NodeId>(s));
    for (std::size_t t = 0; t < n; ++t) {
      if (t != s && dist[t] != kUnreachable) {
        lengths.push_back(static_cast<double>(dist[t]));
      }
    }
  }
  return lengths;
}

FeatureVector extract_features(const DiGraph& g) {
  FeatureVector f{};

  auto put5 = [&f](std::size_t base, const util::Summary5& s) {
    const double vals[5] = {s.min, s.max, s.median, s.mean, s.stddev};
    for (std::size_t i = 0; i < 5; ++i) {
      f[base + i] = std::isfinite(vals[i]) ? vals[i] : 0.0;
    }
  };

  // Qualified: ADL on DiGraph would otherwise also find the gea::graph
  // overloads and make the calls ambiguous.
  put5(kBetweennessMin, util::summary5(reference::betweenness_centrality(g)));
  put5(kClosenessMin, util::summary5(reference::closeness_centrality(g)));
  put5(kDegreeMin, util::summary5(graph::degree_centrality(g)));
  put5(kShortestPathMin,
       util::summary5(reference::all_shortest_path_lengths(g)));
  f[kDensity] = g.num_nodes() < 2 ? 0.0 : g.density();
  f[kNumEdges] = static_cast<double>(g.num_edges());
  f[kNumNodes] = static_cast<double>(g.num_nodes());
  return f;
}

}  // namespace gea::features::reference
