// Extended, variable-width feature sets.
//
// The paper's detector consumes exactly the 23 Table II features; SII-B
// notes that further graph measures ("Eigenvector centrality, etc.") are
// candidates. This module provides a dynamic-width feature pipeline —
// extraction, naming, and min-max scaling over std::vector<double> — used
// by the extended-feature-set ablation (does a richer feature vector make
// the detector harder to attack?).
//
// Extended layout: the 23 base features, followed by
//   [23..27] eigenvector centrality  {min,max,median,mean,std}
//   [28..32] PageRank                {min,max,median,mean,std}
//   [33..37] clustering coefficient  {min,max,median,mean,std}
//   [38]     diameter
//   [39]     # weakly connected components
//   [40]     # strongly connected components
#pragma once

#include <string>
#include <vector>

#include "features/features.hpp"
#include "graph/digraph.hpp"

namespace gea::features {

class FeatureCache;
class FeatureEngine;

inline constexpr std::size_t kNumExtendedFeatures = 41;

/// Extract the 41-feature extended vector (base 23 via the calling
/// thread's FeatureEngine).
std::vector<double> extract_extended_features(const graph::DiGraph& g);

/// Same, with an explicit engine (scratch reuse across calls) and an
/// optional cache for the 23 base features — the spectral extras are
/// always computed. The serving path uses this.
std::vector<double> extract_extended_features(const graph::DiGraph& g,
                                              FeatureEngine& engine,
                                              FeatureCache* cache = nullptr);

/// Name of extended feature `index` (indices < 23 defer to feature_name).
std::string extended_feature_name(std::size_t index);

/// Min-max scaler over dynamic-width rows (the FeatureScaler counterpart
/// for extended vectors; zero-range features scale to 0).
class DynScaler {
 public:
  void fit(const std::vector<std::vector<double>>& rows);
  bool fitted() const { return fitted_; }
  std::size_t dim() const { return lo_.size(); }

  std::vector<double> transform(const std::vector<double>& raw) const;
  std::vector<std::vector<double>> transform_all(
      const std::vector<std::vector<double>>& rows) const;

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
  bool fitted_ = false;
};

}  // namespace gea::features
