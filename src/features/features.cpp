#include "features/features.hpp"

#include <cmath>
#include <stdexcept>

#include "features/engine.hpp"

namespace gea::features {

namespace {

const std::array<std::string, kNumFeatures>& names() {
  static const std::array<std::string, kNumFeatures> kNames = {
      "betweenness_min",  "betweenness_max",  "betweenness_median",
      "betweenness_mean", "betweenness_std",  "closeness_min",
      "closeness_max",    "closeness_median", "closeness_mean",
      "closeness_std",    "degree_min",       "degree_max",
      "degree_median",    "degree_mean",      "degree_std",
      "shortest_path_min", "shortest_path_max", "shortest_path_median",
      "shortest_path_mean", "shortest_path_std", "density",
      "num_edges",        "num_nodes",
  };
  return kNames;
}

}  // namespace

const std::string& feature_name(std::size_t index) {
  if (index >= kNumFeatures) throw std::out_of_range("feature_name: bad index");
  return names()[index];
}

Category feature_category(std::size_t index) {
  if (index < 5) return Category::kBetweenness;
  if (index < 10) return Category::kCloseness;
  if (index < 15) return Category::kDegree;
  if (index < 20) return Category::kShortestPath;
  if (index == kDensity) return Category::kDensity;
  if (index == kNumEdges) return Category::kEdges;
  if (index == kNumNodes) return Category::kNodes;
  throw std::out_of_range("feature_category: bad index");
}

const char* category_name(Category c) {
  switch (c) {
    case Category::kBetweenness: return "Betweenness centrality";
    case Category::kCloseness: return "Closeness centrality";
    case Category::kDegree: return "Degree centrality";
    case Category::kShortestPath: return "Shortest path";
    case Category::kDensity: return "Density";
    case Category::kEdges: return "# of Edges";
    case Category::kNodes: return "# of Nodes";
  }
  return "?";
}

std::size_t category_size(Category c) {
  switch (c) {
    case Category::kBetweenness:
    case Category::kCloseness:
    case Category::kDegree:
    case Category::kShortestPath:
      return 5;
    default:
      return 1;
  }
}

FeatureVector extract_features(const graph::DiGraph& g) {
  // The calling thread's engine: single-sweep traversal with scratch that
  // persists across calls, fault points included (see features/engine.hpp).
  return FeatureEngine::local().extract(g);
}

util::Status extract_features_batch(
    const std::vector<const graph::DiGraph*>& graphs,
    std::vector<FeatureVector>& out, const util::ParallelOptions& opts) {
  out.assign(graphs.size(), FeatureVector{});
  util::ParallelOptions popts = opts;
  popts.label = "extract_features_batch";
  return util::parallel_for(
      graphs.size(),
      [&](std::size_t i) -> util::Status {
        if (graphs[i] != nullptr) out[i] = extract_features(*graphs[i]);
        return util::Status::ok();
      },
      popts);
}

bool all_finite(const FeatureVector& f) {
  return first_non_finite(f) == kNumFeatures;
}

std::size_t first_non_finite(const FeatureVector& f) {
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    if (!std::isfinite(f[i])) return i;
  }
  return kNumFeatures;
}

std::vector<std::size_t> changed_features(const FeatureVector& a,
                                          const FeatureVector& b, double tol) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    const double d = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    if (d > tol) idx.push_back(i);
  }
  return idx;
}

}  // namespace gea::features
