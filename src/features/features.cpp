#include "features/features.hpp"

#include <stdexcept>

#include "graph/algorithms.hpp"
#include "graph/centrality.hpp"
#include "util/stats.hpp"

namespace gea::features {

namespace {

const std::array<std::string, kNumFeatures>& names() {
  static const std::array<std::string, kNumFeatures> kNames = {
      "betweenness_min",  "betweenness_max",  "betweenness_median",
      "betweenness_mean", "betweenness_std",  "closeness_min",
      "closeness_max",    "closeness_median", "closeness_mean",
      "closeness_std",    "degree_min",       "degree_max",
      "degree_median",    "degree_mean",      "degree_std",
      "shortest_path_min", "shortest_path_max", "shortest_path_median",
      "shortest_path_mean", "shortest_path_std", "density",
      "num_edges",        "num_nodes",
  };
  return kNames;
}

}  // namespace

const std::string& feature_name(std::size_t index) {
  if (index >= kNumFeatures) throw std::out_of_range("feature_name: bad index");
  return names()[index];
}

Category feature_category(std::size_t index) {
  if (index < 5) return Category::kBetweenness;
  if (index < 10) return Category::kCloseness;
  if (index < 15) return Category::kDegree;
  if (index < 20) return Category::kShortestPath;
  if (index == kDensity) return Category::kDensity;
  if (index == kNumEdges) return Category::kEdges;
  if (index == kNumNodes) return Category::kNodes;
  throw std::out_of_range("feature_category: bad index");
}

const char* category_name(Category c) {
  switch (c) {
    case Category::kBetweenness: return "Betweenness centrality";
    case Category::kCloseness: return "Closeness centrality";
    case Category::kDegree: return "Degree centrality";
    case Category::kShortestPath: return "Shortest path";
    case Category::kDensity: return "Density";
    case Category::kEdges: return "# of Edges";
    case Category::kNodes: return "# of Nodes";
  }
  return "?";
}

std::size_t category_size(Category c) {
  switch (c) {
    case Category::kBetweenness:
    case Category::kCloseness:
    case Category::kDegree:
    case Category::kShortestPath:
      return 5;
    default:
      return 1;
  }
}

FeatureVector extract_features(const graph::DiGraph& g) {
  FeatureVector f{};

  auto put5 = [&f](std::size_t base, const util::Summary5& s) {
    f[base + 0] = s.min;
    f[base + 1] = s.max;
    f[base + 2] = s.median;
    f[base + 3] = s.mean;
    f[base + 4] = s.stddev;
  };

  put5(kBetweennessMin, util::summary5(graph::betweenness_centrality(g)));
  put5(kClosenessMin, util::summary5(graph::closeness_centrality(g)));
  put5(kDegreeMin, util::summary5(graph::degree_centrality(g)));
  put5(kShortestPathMin, util::summary5(graph::all_shortest_path_lengths(g)));
  f[kDensity] = g.density();
  f[kNumEdges] = static_cast<double>(g.num_edges());
  f[kNumNodes] = static_cast<double>(g.num_nodes());
  return f;
}

std::vector<std::size_t> changed_features(const FeatureVector& a,
                                          const FeatureVector& b, double tol) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    const double d = a[i] > b[i] ? a[i] - b[i] : b[i] - a[i];
    if (d > tol) idx.push_back(i);
  }
  return idx;
}

}  // namespace gea::features
