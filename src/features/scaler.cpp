#include "features/scaler.hpp"

#include <algorithm>
#include <stdexcept>

namespace gea::features {

void FeatureScaler::fit(const std::vector<FeatureVector>& rows) {
  if (rows.empty()) throw std::invalid_argument("FeatureScaler::fit: no rows");
  lo_ = rows.front();
  hi_ = rows.front();
  for (const auto& r : rows) {
    for (std::size_t i = 0; i < kNumFeatures; ++i) {
      lo_[i] = std::min(lo_[i], r[i]);
      hi_[i] = std::max(hi_[i], r[i]);
    }
  }
  fitted_ = true;
}

void FeatureScaler::require_fitted() const {
  if (!fitted_) throw std::logic_error("FeatureScaler: not fitted");
}

FeatureVector FeatureScaler::transform(const FeatureVector& raw) const {
  require_fitted();
  FeatureVector out{};
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    const double range = hi_[i] - lo_[i];
    out[i] = range > 0.0 ? (raw[i] - lo_[i]) / range : 0.0;
  }
  return out;
}

FeatureVector FeatureScaler::inverse(const FeatureVector& scaled) const {
  require_fitted();
  FeatureVector out{};
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    out[i] = lo_[i] + scaled[i] * (hi_[i] - lo_[i]);
  }
  return out;
}

std::vector<FeatureVector> FeatureScaler::transform_all(
    const std::vector<FeatureVector>& rows) const {
  std::vector<FeatureVector> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(transform(r));
  return out;
}

}  // namespace gea::features
