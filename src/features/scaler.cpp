#include "features/scaler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/faultinject.hpp"

namespace gea::features {

void FeatureScaler::fit(const std::vector<FeatureVector>& rows) {
  if (rows.empty()) throw std::invalid_argument("FeatureScaler::fit: no rows");
  lo_ = rows.front();
  hi_ = rows.front();
  for (const auto& r : rows) {
    for (std::size_t i = 0; i < kNumFeatures; ++i) {
      lo_[i] = std::min(lo_[i], r[i]);
      hi_[i] = std::max(hi_[i], r[i]);
    }
  }
  fitted_ = true;
}

void FeatureScaler::require_fitted() const {
  if (!fitted_) throw std::logic_error("FeatureScaler: not fitted");
}

FeatureVector FeatureScaler::transform(const FeatureVector& raw) const {
  require_fitted();
  FeatureVector out{};
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    const double range = hi_[i] - lo_[i];
    out[i] = range > 0.0 ? (raw[i] - lo_[i]) / range : 0.0;
  }
  return out;
}

FeatureVector FeatureScaler::inverse(const FeatureVector& scaled) const {
  require_fitted();
  FeatureVector out{};
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    out[i] = lo_[i] + scaled[i] * (hi_[i] - lo_[i]);
  }
  return out;
}

namespace {
constexpr char kScalerMagic[4] = {'G', 'E', 'A', 'S'};
}

util::Status FeatureScaler::save_checked(const std::string& path) const {
  using util::ErrorCode;
  using util::Status;
  if (!fitted_) {
    return Status::error(ErrorCode::kFailedPrecondition,
                         "scaler not fitted").with_context("FeatureScaler::save");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::error(ErrorCode::kNotFound, "cannot open " + path)
        .with_context("FeatureScaler::save");
  }
  out.write(kScalerMagic, 4);
  const std::uint64_t n = kNumFeatures;
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  std::size_t to_write = kNumFeatures;
  if (util::fault(util::faults::kScalerTruncate)) {
    to_write = kNumFeatures / 2;  // simulate a torn write
  }
  out.write(reinterpret_cast<const char*>(lo_.data()),
            static_cast<std::streamsize>(to_write * sizeof(double)));
  out.write(reinterpret_cast<const char*>(hi_.data()),
            static_cast<std::streamsize>(to_write * sizeof(double)));
  if (!out) {
    return Status::error(ErrorCode::kInternal, "write failed for " + path)
        .with_context("FeatureScaler::save");
  }
  return Status::ok();
}

util::Status FeatureScaler::load_checked(const std::string& path) {
  using util::ErrorCode;
  using util::Status;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::error(ErrorCode::kNotFound, "cannot open " + path)
        .with_context("FeatureScaler::load");
  }
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kScalerMagic, 4) != 0) {
    return Status::error(ErrorCode::kParseError, "bad magic in " + path)
        .with_context("FeatureScaler::load");
  }
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in || n != kNumFeatures) {
    return Status::error(ErrorCode::kParseError,
                         "feature count mismatch in " + path)
        .with_context("FeatureScaler::load");
  }
  // Stage into a scratch instance so a truncated or corrupt file cannot
  // leave *this half-overwritten (same commit discipline as Model::load).
  FeatureScaler s;
  in.read(reinterpret_cast<char*>(s.lo_.data()),
          static_cast<std::streamsize>(kNumFeatures * sizeof(double)));
  in.read(reinterpret_cast<char*>(s.hi_.data()),
          static_cast<std::streamsize>(kNumFeatures * sizeof(double)));
  if (!in) {
    return Status::error(ErrorCode::kCorruptData, "truncated scaler file " + path)
        .with_context("FeatureScaler::load");
  }
  for (std::size_t i = 0; i < kNumFeatures; ++i) {
    if (!std::isfinite(s.lo_[i]) || !std::isfinite(s.hi_[i]) ||
        s.lo_[i] > s.hi_[i]) {
      return Status::error(ErrorCode::kCorruptData,
                           "non-finite or inverted range for feature " +
                               std::to_string(i) + " in " + path)
          .with_context("FeatureScaler::load");
    }
  }
  lo_ = s.lo_;
  hi_ = s.hi_;
  fitted_ = true;
  return Status::ok();
}

void FeatureScaler::load(const std::string& path) {
  if (auto st = load_checked(path); !st.is_ok()) {
    throw std::runtime_error(st.to_string());
  }
}

util::Result<FeatureScaler> FeatureScaler::load_from(const std::string& path) {
  FeatureScaler s;
  if (auto st = s.load_checked(path); !st.is_ok()) {
    return st.with_context("FeatureScaler::load_from");
  }
  return s;
}

std::vector<FeatureVector> FeatureScaler::transform_all(
    const std::vector<FeatureVector>& rows) const {
  std::vector<FeatureVector> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(transform(r));
  return out;
}

}  // namespace gea::features
