#include "features/disk_cache.hpp"

#include <filesystem>
#include <fstream>
#include <utility>

#include "net/frame.hpp"  // checksum32
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "util/faultinject.hpp"

namespace gea::features {

namespace fs = std::filesystem;
using util::ErrorCode;
using util::Status;

DiskFeatureCache::DiskFeatureCache(std::string path)
    : path_(std::move(path)), state_(std::make_unique<State>()) {
  auto& registry = obs::MetricsRegistry::global();
  obs_hits_ = &registry.counter("features.disk.hits");
  obs_misses_ = &registry.counter("features.disk.misses");
  obs_flushed_ = &registry.counter("features.disk.flushed_entries");
}

util::Result<DiskFeatureCache> DiskFeatureCache::open(
    std::string path, DiskCacheLoadReport* report, bool strict) {
  DiskFeatureCache cache(std::move(path));
  DiskCacheLoadReport local;
  DiskCacheLoadReport& rep = report != nullptr ? *report : local;

  std::ifstream in(cache.path_, std::ios::binary | std::ios::ate);
  if (!in) return cache;  // absent segment == cold cache

  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> data(size);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(data.data()),
               static_cast<std::streamsize>(size))) {
    return Status::error(ErrorCode::kParseError, "short read on " + cache.path_)
        .with_context("DiskFeatureCache::open");
  }

  auto diag = [&](const std::string& msg) {
    if (rep.diagnostics.size() < rep.max_diagnostics) {
      rep.diagnostics.push_back(cache.path_ + ": " + msg);
    }
  };

  net::wire::Reader header(std::span<const std::uint8_t>(
      data.data(), std::min<std::size_t>(data.size(), 16)));
  const std::uint32_t magic = header.get_u32();
  const std::uint16_t version = header.get_u16();
  header.get_u16();  // reserved
  const std::uint64_t declared = header.get_u64();
  if (!header.ok() || magic != kCacheMagic) {
    return Status::error(ErrorCode::kParseError, "bad cache segment magic")
        .with_context("DiskFeatureCache::open " + cache.path_);
  }
  if (version != kCacheFormatVersion) {
    return Status::error(ErrorCode::kParseError,
                         "cache segment version " + std::to_string(version) +
                             " unsupported")
        .with_context("DiskFeatureCache::open " + cache.path_);
  }

  // Entry loop, same recovery taxonomy as shard records: a bad CRC or short
  // payload quarantines one entry; broken framing quarantines the tail. A
  // quarantined entry is simply a future miss — the caller recomputes.
  std::size_t pos = 16;
  std::uint64_t seen = 0;
  while (pos < data.size()) {
    if (data.size() - pos < 8) {
      diag("truncated entry header at offset " + std::to_string(pos));
      break;
    }
    net::wire::Reader fr(std::span<const std::uint8_t>(data.data() + pos, 8));
    const std::uint32_t len = fr.get_u32();
    const std::uint32_t crc = fr.get_u32();
    if (len != kCacheEntryPayloadBytes) {
      diag("entry with bad length " + std::to_string(len) + " at offset " +
           std::to_string(pos));
      break;  // fixed-size framing is broken; stop trusting offsets
    }
    if (data.size() - pos - 8 < len) {
      diag("truncated entry payload at offset " + std::to_string(pos));
      break;
    }
    const std::span<const std::uint8_t> payload(data.data() + pos + 8, len);
    pos += 8 + len;
    ++seen;

    if (net::checksum32(payload) != crc) {
      ++rep.entries_quarantined;
      diag("entry " + std::to_string(seen - 1) + " checksum mismatch");
      if (strict) {
        return Status::error(ErrorCode::kCorruptData,
                             "entry " + std::to_string(seen - 1) +
                                 " checksum mismatch")
            .with_context("DiskFeatureCache::open " + cache.path_);
      }
      continue;
    }
    net::wire::Reader er(payload);
    graph::GraphDigest key;
    key.lo = er.get_u64();
    key.hi = er.get_u64();
    FeatureVector fv{};
    for (auto& x : fv) x = er.get_f64();
    cache.state_->map[key] = fv;
    ++rep.entries_loaded;
  }
  if (seen != declared) {
    const std::uint64_t lost = declared > seen ? declared - seen : 0;
    rep.entries_quarantined += static_cast<std::size_t>(lost);
    diag("header declares " + std::to_string(declared) + " entries, found " +
         std::to_string(seen));
    if (strict) {
      return Status::error(ErrorCode::kCorruptData,
                           "cache segment truncated: " + std::to_string(seen) +
                               "/" + std::to_string(declared) +
                               " entries present")
          .with_context("DiskFeatureCache::open " + cache.path_);
    }
  }
  return cache;
}

bool DiskFeatureCache::lookup(const graph::GraphDigest& key,
                              FeatureVector& out) {
  std::lock_guard<std::mutex> lock(state_->mu);
  auto it = state_->map.find(key);
  if (it == state_->map.end()) {
    ++state_->misses;
    obs_misses_->inc();
    return false;
  }
  out = it->second;
  ++state_->hits;
  obs_hits_->inc();
  return true;
}

void DiskFeatureCache::insert(const graph::GraphDigest& key,
                              const FeatureVector& fv) {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->map[key] = fv;
  state_->dirty = true;
}

std::size_t DiskFeatureCache::size() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->map.size();
}

bool DiskFeatureCache::dirty() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->dirty;
}

std::uint64_t DiskFeatureCache::hits() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->hits;
}

std::uint64_t DiskFeatureCache::misses() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->misses;
}

util::Status DiskFeatureCache::flush() {
  std::lock_guard<std::mutex> lock(state_->mu);
  if (!state_->dirty) return Status::ok();

  std::vector<std::uint8_t> bytes;
  bytes.reserve(16 + state_->map.size() * (8 + kCacheEntryPayloadBytes));
  net::wire::Writer w(bytes);
  w.put_u32(kCacheMagic);
  w.put_u16(kCacheFormatVersion);
  w.put_u16(0);
  w.put_u64(state_->map.size());
  std::vector<std::uint8_t> payload;
  for (const auto& [key, fv] : state_->map) {
    payload.clear();
    net::wire::Writer pw(payload);
    pw.put_u64(key.lo);
    pw.put_u64(key.hi);
    for (double x : fv) pw.put_f64(x);
    const std::uint32_t crc = net::checksum32(payload);
    if (util::fault(util::faults::kCacheCorruptEntry)) {
      // Bit rot after checksumming: the next open must quarantine this
      // entry and the caller must recompute — never serve it.
      payload[payload.size() / 2] ^= 0x10;
    }
    w.put_u32(static_cast<std::uint32_t>(payload.size()));
    w.put_u32(crc);
    bytes.insert(bytes.end(), payload.begin(), payload.end());
  }

  const std::string tmp = path_ + ".tmp";
  const bool die_mid_write = util::fault(util::faults::kCachePartialWrite);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::error(ErrorCode::kUnavailable, "cannot open " + tmp)
          .with_context("DiskFeatureCache::flush");
    }
    // Simulated crash mid-write: half the bytes reach the temp file and the
    // rename below never happens. The previous segment must stay intact and
    // the stale temp file must be ignored (the next flush overwrites it).
    const std::size_t n = die_mid_write ? bytes.size() / 2 : bytes.size();
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(n));
    if (!out) {
      return Status::error(ErrorCode::kUnavailable, "write failed on " + tmp)
          .with_context("DiskFeatureCache::flush");
    }
  }
  if (die_mid_write) {
    return Status::error(ErrorCode::kUnavailable,
                         "simulated crash mid-flush (partial temp file)")
        .with_context("DiskFeatureCache::flush " + path_);
  }
  std::error_code ec;
  fs::rename(tmp, path_, ec);
  if (ec) {
    return Status::error(ErrorCode::kUnavailable,
                         "rename " + tmp + ": " + ec.message())
        .with_context("DiskFeatureCache::flush");
  }
  obs_flushed_->inc(state_->map.size());
  state_->dirty = false;
  return Status::ok();
}

}  // namespace gea::features
