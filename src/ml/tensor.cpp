#include "ml/tensor.hpp"

#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace gea::ml {

namespace {
std::size_t total_size(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(total_size(shape_), 0.0f) {}

Tensor Tensor::from_values(std::vector<std::size_t> shape,
                           std::vector<float> values) {
  if (total_size(shape) != values.size()) {
    throw std::invalid_argument("Tensor::from_values: size mismatch");
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(values);
  return t;
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

void Tensor::reshape(std::vector<std::size_t> shape) {
  if (total_size(shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: size mismatch (" +
                                shape_string() + ")");
  }
  shape_ = std::move(shape);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  if (!same_shape(other)) throw std::invalid_argument("Tensor +=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  if (!same_shape(other)) throw std::invalid_argument("Tensor -=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& x : data_) x *= s;
  return *this;
}

double Tensor::l1_norm() const {
  double s = 0.0;
  for (float x : data_) s += std::abs(static_cast<double>(x));
  return s;
}

double Tensor::l2_norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * static_cast<double>(x);
  return std::sqrt(s);
}

double Tensor::linf_norm() const {
  double m = 0.0;
  for (float x : data_) m = std::max(m, std::abs(static_cast<double>(x)));
  return m;
}

std::string Tensor::shape_string() const {
  std::ostringstream ss;
  ss << '(';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) ss << ", ";
    ss << shape_[i];
  }
  ss << ')';
  return ss.str();
}

}  // namespace gea::ml
