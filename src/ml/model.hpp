// Sequential model container and the differentiable-classifier interface
// the adversarial attacks consume.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/layer.hpp"
#include "ml/tensor.hpp"
#include "util/status.hpp"

namespace gea::ml {

/// A sequential stack of layers.
class Model {
 public:
  Model() = default;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  /// Append a layer (builder style).
  Model& add(LayerPtr layer);

  /// Initialize all layer parameters.
  void init(util::Rng& rng);

  /// Forward pass. `training` enables dropout.
  Tensor forward(const Tensor& x, bool training = false);

  /// Batched inference-only forward: every layer takes its cache-free
  /// `Layer::infer` path, which is bitwise-identical to forward(x, false)
  /// per sample (asserted in tests/serve_test.cpp) but skips backward
  /// bookkeeping — the serving layer's batch path. backward() may not
  /// follow infer().
  Tensor infer(const Tensor& x);

  /// Backward pass from dL/d logits; must follow the matching forward().
  /// Returns dL/d input; parameter gradients are accumulated.
  Tensor backward(const Tensor& grad_out);

  std::vector<Param> params();
  void zero_grad();
  std::size_t num_parameters();

  /// Layer-by-layer architecture listing (the Fig. 5 text rendering).
  std::string summary();

  /// Save/load all parameter values (architecture must match at load).
  /// Throwing wrappers around the checked variants below.
  void save(const std::string& path);
  void load(const std::string& path);

  /// Status-returning serialization: missing files, bad magic, parameter
  /// count/size mismatches, and truncation come back as a descriptive error
  /// instead of an exception. load_checked leaves parameters untouched on
  /// any error (it stages into a scratch buffer before committing).
  util::Status save_checked(const std::string& path);
  util::Status load_checked(const std::string& path);

  /// True when every layer supports clone() — the gate parallel callers
  /// check before building per-worker replicas.
  bool clonable() const;

  /// Deep copy: same architecture, same weights, fresh forward/backward
  /// caches. Throws std::logic_error if any layer is not cloneable
  /// (clonable() lets callers check first and fall back to serial).
  Model clone() const;

  /// Copy parameter values (not gradients) from a same-architecture model.
  /// Used to refresh per-worker replicas between optimizer steps without
  /// re-cloning the layer stack.
  void copy_params_from(Model& other);

  /// Rebind every layer's internal Rng (dropout) to `rng`.
  void bind_rng(util::Rng* rng);

 private:
  std::vector<LayerPtr> layers_;
};

/// What an attack needs from a model: logits and input gradients over flat
/// feature vectors. Implementations adapt shape conventions internally.
class DifferentiableClassifier {
 public:
  virtual ~DifferentiableClassifier() = default;

  virtual std::size_t input_dim() const = 0;
  virtual std::size_t num_classes() const = 0;

  /// Logits for one input vector.
  virtual std::vector<double> logits(const std::vector<double>& x) = 0;

  /// Gradient of logit `k` with respect to the input.
  virtual std::vector<double> grad_logit(const std::vector<double>& x,
                                         std::size_t k) = 0;

  /// Gradient of sum_k weights[k] * logit_k(x) with respect to the input.
  /// The default composes grad_logit calls; implementations backed by
  /// reverse-mode autodiff override it with a single backward pass, which
  /// is what makes the iterative attacks cheap.
  virtual std::vector<double> grad_weighted(const std::vector<double>& x,
                                            const std::vector<double>& weights);

  /// Independent copy safe to use from another thread (the forward/backward
  /// caches inside a Model make a shared instance racy). nullptr means "not
  /// supported" and sends parallel harnesses down their serial fallback.
  virtual std::unique_ptr<DifferentiableClassifier> clone() const {
    return nullptr;
  }

  // Derived conveniences.
  std::vector<double> probabilities(const std::vector<double>& x);
  std::size_t predict(const std::vector<double>& x);
  /// Gradient of cross-entropy(label) w.r.t. the input.
  std::vector<double> grad_loss(const std::vector<double>& x,
                                std::size_t label);
};

/// Adapter: a Model whose input is (1, 1, D) and whose output is (1, K).
class ModelClassifier : public DifferentiableClassifier {
 public:
  ModelClassifier(Model& model, std::size_t input_dim, std::size_t num_classes)
      : model_(&model), dim_(input_dim), classes_(num_classes) {}

  std::size_t input_dim() const override { return dim_; }
  std::size_t num_classes() const override { return classes_; }
  std::vector<double> logits(const std::vector<double>& x) override;
  /// Logits for many inputs in one batched Model::infer pass. Row i of the
  /// result is bitwise-identical to logits(xs[i]).
  std::vector<std::vector<double>> logits_batch(
      const std::vector<std::vector<double>>& xs);
  std::vector<double> grad_logit(const std::vector<double>& x,
                                 std::size_t k) override;
  std::vector<double> grad_weighted(
      const std::vector<double>& x,
      const std::vector<double>& weights) override;

  /// Clones the underlying Model into a copy that owns its network, so the
  /// replica's lifetime is self-contained. Returns nullptr when the model
  /// has non-cloneable layers.
  std::unique_ptr<DifferentiableClassifier> clone() const override;

  Model& model() { return *model_; }

 private:
  /// Owning constructor used by clone().
  ModelClassifier(std::unique_ptr<Model> owned, std::size_t input_dim,
                  std::size_t num_classes)
      : model_(owned.get()),
        dim_(input_dim),
        classes_(num_classes),
        owned_(std::move(owned)) {}

  Tensor to_input(const std::vector<double>& x) const;

  Model* model_;
  std::size_t dim_;
  std::size_t classes_;
  std::unique_ptr<Model> owned_;  // set only for clones
};

}  // namespace gea::ml
