#include "ml/forest.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace gea::ml {

namespace {

double gini(std::size_t pos, std::size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(pos) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

std::uint32_t DecisionTree::build(const std::vector<std::vector<double>>& rows,
                                  const std::vector<std::uint8_t>& labels,
                                  std::vector<std::size_t>& indices,
                                  std::size_t begin, std::size_t end,
                                  std::size_t depth, const ForestConfig& cfg,
                                  util::Rng& rng) {
  const std::size_t n = end - begin;
  std::size_t positives = 0;
  for (std::size_t k = begin; k < end; ++k) positives += labels[indices[k]];

  const auto make_leaf = [&]() {
    Node leaf;
    leaf.feature = -1;
    leaf.value = n == 0 ? 0.5
                        : static_cast<double>(positives) / static_cast<double>(n);
    nodes_.push_back(leaf);
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  };

  if (depth >= cfg.max_depth || n < 2 * cfg.min_samples_leaf ||
      positives == 0 || positives == n) {
    return make_leaf();
  }

  const std::size_t dim = rows.front().size();
  std::size_t mtry = cfg.features_per_split;
  if (mtry == 0) {
    mtry = static_cast<std::size_t>(
        std::max(1.0, std::floor(std::sqrt(static_cast<double>(dim)))));
  }
  mtry = std::min(mtry, dim);

  // Candidate features (sampled without replacement).
  std::vector<std::size_t> feats(dim);
  std::iota(feats.begin(), feats.end(), 0);
  rng.shuffle(feats);
  feats.resize(mtry);

  double best_score = gini(positives, n);
  std::int32_t best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, std::uint8_t>> column(n);
  for (std::size_t f : feats) {
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t idx = indices[begin + k];
      column[k] = {rows[idx][f], labels[idx]};
    }
    std::sort(column.begin(), column.end());
    std::size_t left_pos = 0;
    for (std::size_t k = 1; k < n; ++k) {
      left_pos += column[k - 1].second;
      if (column[k].first == column[k - 1].first) continue;  // no boundary
      const std::size_t left_n = k, right_n = n - k;
      if (left_n < cfg.min_samples_leaf || right_n < cfg.min_samples_leaf) {
        continue;
      }
      const std::size_t right_pos = positives - left_pos;
      const double score =
          (static_cast<double>(left_n) * gini(left_pos, left_n) +
           static_cast<double>(right_n) * gini(right_pos, right_n)) /
          static_cast<double>(n);
      if (score + 1e-12 < best_score) {
        best_score = score;
        best_feature = static_cast<std::int32_t>(f);
        best_threshold = (column[k - 1].first + column[k].first) / 2.0;
      }
    }
  }
  if (best_feature < 0) return make_leaf();

  // Partition indices in place.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t idx) {
        return rows[idx][static_cast<std::size_t>(best_feature)] <=
               best_threshold;
      });
  const auto mid =
      static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return make_leaf();  // degenerate split

  const auto self = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back({});  // placeholder; children append after it
  nodes_[self].feature = best_feature;
  nodes_[self].threshold = best_threshold;
  const auto left = build(rows, labels, indices, begin, mid, depth + 1, cfg, rng);
  const auto right = build(rows, labels, indices, mid, end, depth + 1, cfg, rng);
  nodes_[self].left = left;
  nodes_[self].right = right;
  return self;
}

void DecisionTree::fit(const std::vector<std::vector<double>>& rows,
                       const std::vector<std::uint8_t>& labels,
                       const std::vector<std::size_t>& sample_indices,
                       const ForestConfig& cfg, util::Rng& rng) {
  if (rows.empty() || rows.size() != labels.size()) {
    throw std::invalid_argument("DecisionTree::fit: bad inputs");
  }
  nodes_.clear();
  std::vector<std::size_t> indices = sample_indices;
  build(rows, labels, indices, 0, indices.size(), 0, cfg, rng);
}

double DecisionTree::prob1(const std::vector<double>& x) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not fitted");
  std::uint32_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    const auto f = static_cast<std::size_t>(nodes_[cur].feature);
    cur = x[f] <= nodes_[cur].threshold ? nodes_[cur].left : nodes_[cur].right;
  }
  return nodes_[cur].value;
}

std::size_t DecisionTree::depth() const {
  // Depth via iterative walk (nodes are in preorder; compute from links).
  std::size_t max_depth = 0;
  std::vector<std::pair<std::uint32_t, std::size_t>> stack = {{0, 0}};
  while (!stack.empty()) {
    const auto [node, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    if (nodes_[node].feature >= 0) {
      stack.push_back({nodes_[node].left, d + 1});
      stack.push_back({nodes_[node].right, d + 1});
    }
  }
  return max_depth;
}

void RandomForest::fit(const std::vector<std::vector<double>>& rows,
                       const std::vector<std::uint8_t>& labels) {
  if (rows.empty() || rows.size() != labels.size()) {
    throw std::invalid_argument("RandomForest::fit: bad inputs");
  }
  trees_.clear();
  util::Rng rng(cfg_.seed);
  const auto n_boot = static_cast<std::size_t>(
      cfg_.subsample * static_cast<double>(rows.size()));
  for (std::size_t t = 0; t < cfg_.num_trees; ++t) {
    std::vector<std::size_t> boot(std::max<std::size_t>(n_boot, 1));
    for (auto& idx : boot) {
      idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(rows.size()) - 1));
    }
    DecisionTree tree;
    tree.fit(rows, labels, boot, cfg_, rng);
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::prob1(const std::vector<double>& x) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not fitted");
  double s = 0.0;
  for (const auto& t : trees_) s += t.prob1(x);
  return s / static_cast<double>(trees_.size());
}

std::uint8_t RandomForest::predict(const std::vector<double>& x) const {
  return prob1(x) >= 0.5 ? 1 : 0;
}

std::vector<std::uint8_t> RandomForest::predict_all(
    const std::vector<std::vector<double>>& rows) const {
  std::vector<std::uint8_t> out;
  out.reserve(rows.size());
  for (const auto& r : rows) out.push_back(predict(r));
  return out;
}

}  // namespace gea::ml
