#include "ml/pooling.hpp"

#include <stdexcept>

namespace gea::ml {

MaxPool1D::MaxPool1D(std::size_t window) : window_(window) {
  if (window == 0) throw std::invalid_argument("MaxPool1D: zero window");
}

Tensor MaxPool1D::forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 3) {
    throw std::invalid_argument("MaxPool1D::forward: expected rank-3, got " +
                                x.shape_string());
  }
  const std::size_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  const std::size_t lo = l / window_;
  if (lo == 0) throw std::invalid_argument("MaxPool1D: input shorter than window");
  in_shape_ = x.shape();
  Tensor y({n, c, lo});
  argmax_.assign(y.size(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      const float* xrow = x.data() + (i * c + ch) * l;
      float* yrow = y.data() + (i * c + ch) * lo;
      std::size_t* arow = argmax_.data() + (i * c + ch) * lo;
      for (std::size_t j = 0; j < lo; ++j) {
        std::size_t best = j * window_;
        for (std::size_t t = 1; t < window_; ++t) {
          const std::size_t idx = j * window_ + t;
          if (xrow[idx] > xrow[best]) best = idx;
        }
        yrow[j] = xrow[best];
        arow[j] = (i * c + ch) * l + best;
      }
    }
  }
  return y;
}

Tensor MaxPool1D::infer(const Tensor& x) {
  if (x.rank() != 3) {
    throw std::invalid_argument("MaxPool1D::infer: expected rank-3, got " +
                                x.shape_string());
  }
  const std::size_t n = x.dim(0), c = x.dim(1), l = x.dim(2);
  const std::size_t lo = l / window_;
  if (lo == 0) throw std::invalid_argument("MaxPool1D: input shorter than window");
  Tensor y({n, c, lo});
  for (std::size_t row = 0; row < n * c; ++row) {
    const float* xrow = x.data() + row * l;
    float* yrow = y.data() + row * lo;
    for (std::size_t j = 0; j < lo; ++j) {
      float best = xrow[j * window_];
      for (std::size_t t = 1; t < window_; ++t) {
        const float v = xrow[j * window_ + t];
        if (v > best) best = v;
      }
      yrow[j] = best;
    }
  }
  return y;
}

Tensor MaxPool1D::backward(const Tensor& grad_out) {
  if (grad_out.size() != argmax_.size()) {
    throw std::invalid_argument("MaxPool1D::backward: gradient size mismatch");
  }
  Tensor grad_in(in_shape_);
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    grad_in[argmax_[i]] += grad_out[i];
  }
  return grad_in;
}

std::string MaxPool1D::describe() const {
  return "MaxPool1D(window=" + std::to_string(window_) + ")";
}

}  // namespace gea::ml
