#include "ml/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gea::ml {

Tensor softmax(const Tensor& logits) {
  if (logits.rank() != 2) {
    throw std::invalid_argument("softmax: expected rank-2 logits");
  }
  const std::size_t n = logits.dim(0), k = logits.dim(1);
  Tensor p({n, k});
  for (std::size_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * k;
    float* prow = p.data() + i * k;
    float mx = row[0];
    for (std::size_t j = 1; j < k; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (std::size_t j = 0; j < k; ++j) {
      prow[j] = std::exp(row[j] - mx);
      sum += prow[j];
    }
    for (std::size_t j = 0; j < k; ++j) prow[j] /= sum;
  }
  return p;
}

double cross_entropy(const Tensor& logits,
                     const std::vector<std::uint8_t>& labels) {
  if (logits.dim(0) != labels.size()) {
    throw std::invalid_argument("cross_entropy: label count mismatch");
  }
  const Tensor p = softmax(logits);
  const std::size_t n = p.dim(0), k = p.dim(1);
  double loss = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (labels[i] >= k) throw std::invalid_argument("cross_entropy: bad label");
    const double pi = std::max(1e-12, static_cast<double>(p.at2(i, labels[i])));
    loss -= std::log(pi);
  }
  return loss / static_cast<double>(n);
}

Tensor cross_entropy_grad(const Tensor& logits,
                          const std::vector<std::uint8_t>& labels) {
  if (logits.dim(0) != labels.size()) {
    throw std::invalid_argument("cross_entropy_grad: label count mismatch");
  }
  Tensor g = softmax(logits);
  const std::size_t n = g.dim(0), k = g.dim(1);
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    g.at2(i, labels[i]) -= 1.0f;
    for (std::size_t j = 0; j < k; ++j) g.at2(i, j) *= inv_n;
  }
  return g;
}

std::vector<std::uint8_t> argmax_rows(const Tensor& scores) {
  if (scores.rank() != 2) {
    throw std::invalid_argument("argmax_rows: expected rank-2");
  }
  const std::size_t n = scores.dim(0), k = scores.dim(1);
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t best = 0;
    for (std::size_t j = 1; j < k; ++j) {
      if (scores.at2(i, j) > scores.at2(i, best)) best = j;
    }
    out[i] = static_cast<std::uint8_t>(best);
  }
  return out;
}

}  // namespace gea::ml
