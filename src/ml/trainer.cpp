#include "ml/trainer.hpp"

#include <numeric>
#include <stdexcept>

#include "kernels/config.hpp"
#include "ml/loss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"

namespace gea::ml {

namespace {

/// Registry handles for the per-epoch training metrics, resolved once.
/// Values are published after each epoch's arithmetic completes, so they
/// observe training without touching its numerics.
struct TrainMetrics {
  obs::Counter& epochs;
  obs::Histogram& epoch_ms;
  obs::Gauge& last_loss;
  obs::Gauge& last_accuracy;

  static TrainMetrics& get() {
    static TrainMetrics m = [] {
      auto& reg = obs::MetricsRegistry::global();
      return TrainMetrics{reg.counter("train.epochs_total"),
                          reg.histogram("train.epoch_ms"),
                          reg.gauge("train.last_loss"),
                          reg.gauge("train.last_accuracy")};
    }();
    return m;
  }

  void on_epoch(double loss, double accuracy, double wall_ms) {
    epochs.inc();
    epoch_ms.observe(wall_ms);
    last_loss.set(loss);
    last_accuracy.set(accuracy);
  }
};

/// Rows of `logits` whose argmax matches the label — the per-batch
/// training accuracy numerator, computed from logits already in hand.
std::size_t count_correct(const Tensor& logits,
                          const std::vector<std::uint8_t>& y) {
  std::size_t correct = 0;
  const auto pred = argmax_rows(logits);
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (pred[i] == y[i]) ++correct;
  }
  return correct;
}

}  // namespace

Tensor LabeledData::batch_tensor(const std::vector<std::size_t>& indices,
                                 std::size_t begin, std::size_t end) const {
  if (begin >= end || end > indices.size()) {
    throw std::invalid_argument("batch_tensor: bad range");
  }
  const std::size_t n = end - begin;
  const std::size_t d = rows.front().size();
  Tensor t({n, 1, d});
  for (std::size_t i = 0; i < n; ++i) {
    const auto& row = rows[indices[begin + i]];
    if (row.size() != d) throw std::invalid_argument("batch_tensor: ragged rows");
    for (std::size_t j = 0; j < d; ++j) {
      t[i * d + j] = static_cast<float>(row[j]);
    }
  }
  return t;
}

namespace {

/// Fixed chunk count for the data-parallel gradient path. The reduction
/// structure (chunk boundaries, merge order) depends only on the batch size
/// and this constant — never on the worker count — which is what makes
/// chunked training bitwise reproducible at any thread count.
constexpr std::size_t kGradChunks = 8;

TrainStats train_chunked(Model& model, const LabeledData& data,
                         const TrainConfig& cfg) {
  util::Rng rng(cfg.seed);
  Adam opt(cfg.learning_rate);
  TrainStats stats;

  // One replica + one dropout stream per chunk. Replicas are cloned once
  // and refreshed with the post-step parameters each batch.
  std::vector<Model> replicas;
  std::vector<util::Rng> chunk_rngs(kGradChunks, util::Rng(0));
  replicas.reserve(kGradChunks);
  for (std::size_t cidx = 0; cidx < kGradChunks; ++cidx) {
    replicas.push_back(model.clone());
    replicas.back().bind_rng(&chunk_rngs[cidx]);
  }

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    obs::TraceSpan epoch_span("train.epoch");
    rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    std::size_t correct = 0;
    std::size_t batch_index = 0;
    for (std::size_t begin = 0; begin < order.size();
         begin += cfg.batch_size, ++batch_index) {
      const std::size_t end = std::min(begin + cfg.batch_size, order.size());
      const std::size_t bn = end - begin;

      // Counter-derived dropout streams: a pure function of
      // (seed, epoch, batch, chunk), never a shared sequenced Rng.
      const std::uint64_t batch_seed =
          util::mix_seed(util::mix_seed(cfg.seed, epoch), batch_index);
      for (std::size_t cidx = 0; cidx < kGradChunks; ++cidx) {
        replicas[cidx].copy_params_from(model);
        replicas[cidx].zero_grad();
        chunk_rngs[cidx] = util::Rng(util::mix_seed(batch_seed, cidx));
      }

      std::vector<double> chunk_loss(kGradChunks, 0.0);
      std::vector<std::size_t> chunk_correct(kGradChunks, 0);
      const auto st = util::parallel_for_ranges(
          bn, kGradChunks,
          [&](std::size_t cb, std::size_t ce, std::size_t chunk) {
            if (cb == ce) return util::Status::ok();
            const std::size_t cn = ce - cb;
            const Tensor x = data.batch_tensor(order, begin + cb, begin + ce);
            std::vector<std::uint8_t> y(cn);
            for (std::size_t i = 0; i < cn; ++i) {
              y[i] = data.labels[order[begin + cb + i]];
            }
            Model& m = replicas[chunk];
            const Tensor logits = m.forward(x, /*training=*/true);
            chunk_loss[chunk] =
                cross_entropy(logits, y) * static_cast<double>(cn);
            chunk_correct[chunk] = count_correct(logits, y);
            Tensor grad = cross_entropy_grad(logits, y);
            // cross_entropy_grad normalizes by the chunk size; rescale so
            // the chunk-merged gradient equals the whole-batch mean.
            const float scale = static_cast<float>(cn) / static_cast<float>(bn);
            for (std::size_t i = 0; i < grad.size(); ++i) grad[i] *= scale;
            m.backward(grad);
            return util::Status::ok();
          },
          {.threads = cfg.threads, .label = "train"});
      if (!st.is_ok()) throw std::runtime_error(st.to_string());

      // Merge in fixed chunk order: a deterministic floating-point
      // reduction independent of which worker ran which chunk.
      model.zero_grad();
      auto master_params = model.params();
      for (std::size_t cidx = 0; cidx < kGradChunks; ++cidx) {
        auto rp = replicas[cidx].params();
        for (std::size_t p = 0; p < master_params.size(); ++p) {
          auto& dst = *master_params[p].grad;
          const auto& src = *rp[p].grad;
          for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
        }
      }
      double batch_loss = 0.0;
      for (double l : chunk_loss) batch_loss += l;
      for (std::size_t c : chunk_correct) correct += c;
      loss_sum += batch_loss / static_cast<double>(bn);
      ++batches;
      opt.step(model.params());
    }
    const double mean_loss = loss_sum / static_cast<double>(batches);
    stats.epoch_losses.push_back(mean_loss);
    TrainMetrics::get().on_epoch(
        mean_loss,
        static_cast<double>(correct) / static_cast<double>(order.size()),
        epoch_span.elapsed_ms());
    if (cfg.on_epoch) cfg.on_epoch(epoch, mean_loss);
    if (cfg.early_stop_loss > 0.0 && mean_loss < cfg.early_stop_loss) break;
  }
  stats.final_loss = stats.epoch_losses.empty() ? 0.0 : stats.epoch_losses.back();
  return stats;
}

}  // namespace

TrainStats train(Model& model, const LabeledData& data, const TrainConfig& cfg) {
  if (data.rows.empty()) throw std::invalid_argument("train: empty dataset");
  if (data.rows.size() != data.labels.size()) {
    throw std::invalid_argument("train: label count mismatch");
  }
  // Name the dense-math config this run trains on, so throughput numbers in
  // logs are attributable to the kernel layer (tuned vs default vs scalar).
  util::log_info("train: kernels [", kernels::active_config_summary(), "]");
  if (cfg.threads != 1) {
    if (model.clonable()) return train_chunked(model, data, cfg);
    util::log_warn(
        "train: model has non-cloneable layers; using the serial path");
  }
  util::Rng rng(cfg.seed);
  Adam opt(cfg.learning_rate);
  TrainStats stats;

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    obs::TraceSpan epoch_span("train.epoch");
    rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    std::size_t correct = 0;
    for (std::size_t begin = 0; begin < order.size(); begin += cfg.batch_size) {
      const std::size_t end = std::min(begin + cfg.batch_size, order.size());
      const Tensor x = data.batch_tensor(order, begin, end);
      std::vector<std::uint8_t> y(end - begin);
      for (std::size_t i = 0; i < y.size(); ++i) y[i] = data.labels[order[begin + i]];

      model.zero_grad();
      const Tensor logits = model.forward(x, /*training=*/true);
      loss_sum += cross_entropy(logits, y);
      correct += count_correct(logits, y);
      ++batches;
      const Tensor grad = cross_entropy_grad(logits, y);
      model.backward(grad);
      opt.step(model.params());
    }
    const double mean_loss = loss_sum / static_cast<double>(batches);
    stats.epoch_losses.push_back(mean_loss);
    TrainMetrics::get().on_epoch(
        mean_loss,
        static_cast<double>(correct) / static_cast<double>(order.size()),
        epoch_span.elapsed_ms());
    if (cfg.on_epoch) cfg.on_epoch(epoch, mean_loss);
    if (cfg.early_stop_loss > 0.0 && mean_loss < cfg.early_stop_loss) break;
  }
  stats.final_loss = stats.epoch_losses.empty() ? 0.0 : stats.epoch_losses.back();
  return stats;
}

std::vector<std::uint8_t> predict_all(Model& model, const LabeledData& data,
                                      std::size_t batch_size) {
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::uint8_t> out;
  out.reserve(data.size());
  for (std::size_t begin = 0; begin < order.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, order.size());
    const Tensor logits =
        model.forward(data.batch_tensor(order, begin, end), /*training=*/false);
    for (auto label : argmax_rows(logits)) out.push_back(label);
  }
  return out;
}

ConfusionMatrix evaluate(Model& model, const LabeledData& data) {
  return confusion(predict_all(model, data), data.labels);
}

}  // namespace gea::ml
