#include "ml/trainer.hpp"

#include <numeric>
#include <stdexcept>

#include "ml/loss.hpp"

namespace gea::ml {

Tensor LabeledData::batch_tensor(const std::vector<std::size_t>& indices,
                                 std::size_t begin, std::size_t end) const {
  if (begin >= end || end > indices.size()) {
    throw std::invalid_argument("batch_tensor: bad range");
  }
  const std::size_t n = end - begin;
  const std::size_t d = rows.front().size();
  Tensor t({n, 1, d});
  for (std::size_t i = 0; i < n; ++i) {
    const auto& row = rows[indices[begin + i]];
    if (row.size() != d) throw std::invalid_argument("batch_tensor: ragged rows");
    for (std::size_t j = 0; j < d; ++j) {
      t[i * d + j] = static_cast<float>(row[j]);
    }
  }
  return t;
}

TrainStats train(Model& model, const LabeledData& data, const TrainConfig& cfg) {
  if (data.rows.empty()) throw std::invalid_argument("train: empty dataset");
  if (data.rows.size() != data.labels.size()) {
    throw std::invalid_argument("train: label count mismatch");
  }
  util::Rng rng(cfg.seed);
  Adam opt(cfg.learning_rate);
  TrainStats stats;

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < order.size(); begin += cfg.batch_size) {
      const std::size_t end = std::min(begin + cfg.batch_size, order.size());
      const Tensor x = data.batch_tensor(order, begin, end);
      std::vector<std::uint8_t> y(end - begin);
      for (std::size_t i = 0; i < y.size(); ++i) y[i] = data.labels[order[begin + i]];

      model.zero_grad();
      const Tensor logits = model.forward(x, /*training=*/true);
      loss_sum += cross_entropy(logits, y);
      ++batches;
      const Tensor grad = cross_entropy_grad(logits, y);
      model.backward(grad);
      opt.step(model.params());
    }
    const double mean_loss = loss_sum / static_cast<double>(batches);
    stats.epoch_losses.push_back(mean_loss);
    if (cfg.on_epoch) cfg.on_epoch(epoch, mean_loss);
    if (cfg.early_stop_loss > 0.0 && mean_loss < cfg.early_stop_loss) break;
  }
  stats.final_loss = stats.epoch_losses.empty() ? 0.0 : stats.epoch_losses.back();
  return stats;
}

std::vector<std::uint8_t> predict_all(Model& model, const LabeledData& data,
                                      std::size_t batch_size) {
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::uint8_t> out;
  out.reserve(data.size());
  for (std::size_t begin = 0; begin < order.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, order.size());
    const Tensor logits =
        model.forward(data.batch_tensor(order, begin, end), /*training=*/false);
    for (auto label : argmax_rows(logits)) out.push_back(label);
  }
  return out;
}

ConfusionMatrix evaluate(Model& model, const LabeledData& data) {
  return confusion(predict_all(model, data), data.labels);
}

}  // namespace gea::ml
