// Fully connected layer: y = W x + b over (N, in) batches.
//
// Lowered onto kernels::gemm: forward/infer map to one batch-wide GEMM
// (x * W^T + b), backward to two accumulating GEMMs. The per-element
// k-ordered chain keeps per-sample and batched results bitwise identical
// and matches the seed loop order exactly (kernels/reference.hpp).
#pragma once

#include "ml/layer.hpp"

namespace gea::ml {

class Dense : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  /// Inference fast path: forward() without the input cache copy.
  Tensor infer(const Tensor& x) override;
  std::vector<Param> params() override;
  std::string describe() const override;
  void init(util::Rng& rng) override;
  LayerPtr clone() const override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  std::vector<float> w_;   // (out, in) row-major
  std::vector<float> b_;   // (out)
  std::vector<float> gw_;
  std::vector<float> gb_;
  Tensor last_input_;
};

}  // namespace gea::ml
