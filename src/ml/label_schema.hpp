// Label schema: the single authority on how many classes a classifier
// head has, what each class is called, and which class means "benign".
//
// The paper's pipeline stops at benign/malicious; the follow-up line
// (arXiv:1902.03955, arXiv:2005.07145) classifies the same CFG features
// into malware *families*. Every layer that used to hard-code two classes
// — shard record validation, CSV label parsing, the CNN head width,
// metrics, checkpoints, serve verdicts, the GEA harness — now consumes one
// LabelSchema instead, so adding a family is a one-line schema change that
// cannot silently desync producers and consumers:
//
//   - a schema serializes to one canonical line and back (manifest v2,
//     checkpoint schema file, tests), and
//   - a 64-bit FNV-1a digest over that line pins it across process and
//     wire boundaries (v2 detect payloads, BENCH_family.json).
//
// The default-constructed schema IS the paper's binary convention
// (class 0 = benign, class 1 = malicious), which is what keeps every
// pre-refactor K=2 result bitwise identical: binary callers see the same
// labels, the same head width, and the same serialized artifacts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace gea::ml {

class LabelSchema {
 public:
  /// The paper's binary convention: {"benign", "malicious"}, benign = 0.
  LabelSchema();

  /// Validated construction: at least two classes, unique non-empty names
  /// (no ',', '|', or control characters — they delimit the serialized
  /// form), benign_class in range.
  static util::Result<LabelSchema> make(std::vector<std::string> names,
                                        std::size_t benign_class);

  static LabelSchema binary() { return LabelSchema(); }

  std::size_t num_classes() const { return names_.size(); }
  const std::string& name(std::size_t k) const { return names_[k]; }
  const std::vector<std::string>& names() const { return names_; }
  std::size_t benign_class() const { return benign_; }
  bool is_benign(std::size_t k) const { return k == benign_; }

  /// True for the default two-class benign/malicious schema.
  bool is_binary() const;

  /// Class id for a name; nullopt for unknown names (hostile input).
  std::optional<std::size_t> class_from_name(std::string_view name) const;

  /// Does an integer label fit this schema?
  bool valid_label(std::uint64_t label) const {
    return label < names_.size();
  }

  /// Collapse a schema class to the paper's binary label convention
  /// (0 = benign, 1 = malicious) — the K=2 compatibility shim used by
  /// hierarchical detect-then-classify and binary metric reporting.
  std::uint8_t to_binary(std::size_t k) const { return is_benign(k) ? 0 : 1; }

  /// The i-th non-benign class (i in [0, num_classes()-2]), and its
  /// inverse. The hierarchical detect-then-classify head indexes its
  /// stage-2 output this way.
  std::size_t malicious_class(std::size_t i) const;
  std::size_t malicious_index(std::size_t k) const;

  /// Canonical one-line form: "gea-schema-v1|benign=<idx>|<n0>,<n1>,...".
  std::string serialize() const;
  static util::Result<LabelSchema> deserialize(std::string_view text);

  /// FNV-1a 64 over serialize(): the pin carried by manifests, checkpoint
  /// schema files, and v2 detect payloads. Any change to the class list,
  /// order, names, or benign class changes the digest.
  std::uint64_t digest() const;

  bool operator==(const LabelSchema& other) const {
    return benign_ == other.benign_ && names_ == other.names_;
  }
  bool operator!=(const LabelSchema& other) const { return !(*this == other); }

 private:
  LabelSchema(std::vector<std::string> names, std::size_t benign)
      : names_(std::move(names)), benign_(benign) {}

  std::vector<std::string> names_;
  std::size_t benign_ = 0;
};

}  // namespace gea::ml
