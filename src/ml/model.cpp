#include "ml/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ml/loss.hpp"
#include "util/faultinject.hpp"

namespace gea::ml {

Model& Model::add(LayerPtr layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

void Model::init(util::Rng& rng) {
  for (auto& l : layers_) l->init(rng);
}

Tensor Model::forward(const Tensor& x, bool training) {
  Tensor cur = x;
  for (auto& l : layers_) cur = l->forward(cur, training);
  return cur;
}

Tensor Model::infer(const Tensor& x) {
  Tensor cur = x;
  for (auto& l : layers_) cur = l->infer(cur);
  return cur;
}

Tensor Model::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

std::vector<Param> Model::params() {
  std::vector<Param> all;
  for (auto& l : layers_) {
    for (auto& p : l->params()) all.push_back(p);
  }
  return all;
}

void Model::zero_grad() {
  for (auto& p : params()) {
    std::fill(p.grad->begin(), p.grad->end(), 0.0f);
  }
}

std::size_t Model::num_parameters() {
  std::size_t n = 0;
  for (auto& p : params()) n += p.value->size();
  return n;
}

std::string Model::summary() {
  std::ostringstream ss;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    ss << "  [" << i << "] " << layers_[i]->describe() << '\n';
  }
  ss << "  total parameters: " << num_parameters() << '\n';
  return ss.str();
}

bool Model::clonable() const {
  for (const auto& l : layers_) {
    if (!l->clone()) return false;
  }
  return true;
}

Model Model::clone() const {
  Model copy;
  for (const auto& l : layers_) {
    auto c = l->clone();
    if (!c) {
      throw std::logic_error("Model::clone: layer '" + l->describe() +
                             "' is not cloneable");
    }
    copy.layers_.push_back(std::move(c));
  }
  return copy;
}

void Model::copy_params_from(Model& other) {
  auto dst = params();
  auto src = other.params();
  if (dst.size() != src.size()) {
    throw std::logic_error("Model::copy_params_from: architecture mismatch");
  }
  for (std::size_t i = 0; i < dst.size(); ++i) {
    if (dst[i].value->size() != src[i].value->size()) {
      throw std::logic_error("Model::copy_params_from: parameter size mismatch");
    }
    *dst[i].value = *src[i].value;
  }
}

void Model::bind_rng(util::Rng* rng) {
  for (auto& l : layers_) l->bind_rng(rng);
}

namespace {
constexpr char kMagic[4] = {'G', 'E', 'A', 'M'};
}

void Model::save(const std::string& path) {
  if (auto st = save_checked(path); !st.is_ok()) {
    throw std::runtime_error(st.to_string());
  }
}

void Model::load(const std::string& path) {
  if (auto st = load_checked(path); !st.is_ok()) {
    throw std::runtime_error(st.to_string());
  }
}

util::Status Model::save_checked(const std::string& path) {
  using util::ErrorCode;
  using util::Status;
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::error(ErrorCode::kNotFound, "cannot open " + path)
        .with_context("Model::save");
  }
  out.write(kMagic, 4);
  auto ps = params();
  // Torn-write fault: drop the tail of the parameter stream so the file
  // passes the magic/count checks but fails mid-read, exactly like a crash
  // or full disk during checkpointing.
  if (util::fault(util::faults::kModelTruncate) && ps.size() > 1) {
    ps.resize(ps.size() / 2);
  }
  const std::uint64_t n = ps.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const auto& p : ps) {
    const std::uint64_t len = p.value->size();
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write(reinterpret_cast<const char*>(p.value->data()),
              static_cast<std::streamsize>(len * sizeof(float)));
  }
  if (!out) {
    return Status::error(ErrorCode::kInternal, "write failed for " + path)
        .with_context("Model::save");
  }
  return Status::ok();
}

util::Status Model::load_checked(const std::string& path) {
  using util::ErrorCode;
  using util::Status;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::error(ErrorCode::kNotFound, "cannot open " + path)
        .with_context("Model::load");
  }
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::error(ErrorCode::kParseError, "bad magic in " + path)
        .with_context("Model::load");
  }
  auto ps = params();
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in || n != ps.size()) {
    return Status::error(ErrorCode::kCorruptData,
                         "parameter count mismatch in " + path + " (file has " +
                             std::to_string(n) + ", model has " +
                             std::to_string(ps.size()) + ")")
        .with_context("Model::load");
  }
  // Stage into scratch buffers so a truncated file cannot leave the model
  // half-overwritten.
  std::vector<std::vector<float>> staged(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    std::uint64_t len = 0;
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!in || len != ps[i].value->size()) {
      return Status::error(ErrorCode::kCorruptData,
                           "parameter size mismatch in " + path)
          .with_context("Model::load");
    }
    staged[i].resize(len);
    in.read(reinterpret_cast<char*>(staged[i].data()),
            static_cast<std::streamsize>(len * sizeof(float)));
    if (!in) {
      return Status::error(ErrorCode::kCorruptData, "truncated file " + path)
          .with_context("Model::load");
    }
  }
  for (std::size_t i = 0; i < ps.size(); ++i) {
    std::copy(staged[i].begin(), staged[i].end(), ps[i].value->begin());
  }
  return Status::ok();
}

// ---------------------------------------------------------------------------
// DifferentiableClassifier

std::vector<double> DifferentiableClassifier::probabilities(
    const std::vector<double>& x) {
  const auto z = logits(x);
  double mx = z[0];
  for (double v : z) mx = std::max(mx, v);
  std::vector<double> p(z.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    p[i] = std::exp(z[i] - mx);
    sum += p[i];
  }
  for (auto& v : p) v /= sum;
  return p;
}

std::size_t DifferentiableClassifier::predict(const std::vector<double>& x) {
  const auto z = logits(x);
  std::size_t best = 0;
  for (std::size_t i = 1; i < z.size(); ++i) {
    if (z[i] > z[best]) best = i;
  }
  return best;
}

std::vector<double> DifferentiableClassifier::grad_weighted(
    const std::vector<double>& x, const std::vector<double>& weights) {
  std::vector<double> g(input_dim(), 0.0);
  for (std::size_t k = 0; k < num_classes(); ++k) {
    if (std::abs(weights[k]) < 1e-15) continue;
    const auto gk = grad_logit(x, k);
    for (std::size_t i = 0; i < g.size(); ++i) g[i] += weights[k] * gk[i];
  }
  return g;
}

std::vector<double> DifferentiableClassifier::grad_loss(
    const std::vector<double>& x, std::size_t label) {
  // d/dx [-log softmax_label] = sum_k (p_k - [k==label]) * d logit_k / dx.
  auto weights = probabilities(x);
  weights[label] -= 1.0;
  return grad_weighted(x, weights);
}

// ---------------------------------------------------------------------------
// ModelClassifier

Tensor ModelClassifier::to_input(const std::vector<double>& x) const {
  if (x.size() != dim_) {
    throw std::invalid_argument("ModelClassifier: expected dim " +
                                std::to_string(dim_));
  }
  Tensor t({1, 1, dim_});
  for (std::size_t i = 0; i < dim_; ++i) t[i] = static_cast<float>(x[i]);
  return t;
}

std::vector<double> ModelClassifier::logits(const std::vector<double>& x) {
  const Tensor out = model_->forward(to_input(x), /*training=*/false);
  if (out.rank() != 2 || out.dim(0) != 1 || out.dim(1) != classes_) {
    throw std::logic_error("ModelClassifier: unexpected output shape " +
                           out.shape_string());
  }
  std::vector<double> z(classes_);
  for (std::size_t i = 0; i < classes_; ++i) z[i] = out[i];
  return z;
}

std::vector<std::vector<double>> ModelClassifier::logits_batch(
    const std::vector<std::vector<double>>& xs) {
  if (xs.empty()) return {};
  Tensor batch({xs.size(), 1, dim_});
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i].size() != dim_) {
      throw std::invalid_argument("ModelClassifier::logits_batch: row " +
                                  std::to_string(i) + " has dim " +
                                  std::to_string(xs[i].size()) + ", expected " +
                                  std::to_string(dim_));
    }
    for (std::size_t j = 0; j < dim_; ++j) {
      batch[i * dim_ + j] = static_cast<float>(xs[i][j]);
    }
  }
  const Tensor out = model_->infer(batch);
  if (out.rank() != 2 || out.dim(0) != xs.size() || out.dim(1) != classes_) {
    throw std::logic_error("ModelClassifier: unexpected batch output shape " +
                           out.shape_string());
  }
  std::vector<std::vector<double>> z(xs.size(), std::vector<double>(classes_));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (std::size_t k = 0; k < classes_; ++k) z[i][k] = out.at2(i, k);
  }
  return z;
}

std::unique_ptr<DifferentiableClassifier> ModelClassifier::clone() const {
  if (!model_->clonable()) return nullptr;
  auto owned = std::make_unique<Model>(model_->clone());
  return std::unique_ptr<DifferentiableClassifier>(
      new ModelClassifier(std::move(owned), dim_, classes_));
}

std::vector<double> ModelClassifier::grad_logit(const std::vector<double>& x,
                                                std::size_t k) {
  if (k >= classes_) throw std::invalid_argument("grad_logit: bad class");
  std::vector<double> weights(classes_, 0.0);
  weights[k] = 1.0;
  return grad_weighted(x, weights);
}

std::vector<double> ModelClassifier::grad_weighted(
    const std::vector<double>& x, const std::vector<double>& weights) {
  if (weights.size() != classes_) {
    throw std::invalid_argument("grad_weighted: weight count mismatch");
  }
  (void)model_->forward(to_input(x), /*training=*/false);
  Tensor seed({1, classes_});
  for (std::size_t k = 0; k < classes_; ++k) {
    seed.at2(0, k) = static_cast<float>(weights[k]);
  }
  // Parameter gradients accumulate as a side effect; training never
  // interleaves with attacks, and trainers zero grads each step anyway.
  const Tensor gin = model_->backward(seed);
  std::vector<double> g(dim_);
  for (std::size_t i = 0; i < dim_; ++i) g[i] = gin[i];
  return g;
}

}  // namespace gea::ml
