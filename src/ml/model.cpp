#include "ml/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "ml/loss.hpp"

namespace gea::ml {

Model& Model::add(LayerPtr layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

void Model::init(util::Rng& rng) {
  for (auto& l : layers_) l->init(rng);
}

Tensor Model::forward(const Tensor& x, bool training) {
  Tensor cur = x;
  for (auto& l : layers_) cur = l->forward(cur, training);
  return cur;
}

Tensor Model::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

std::vector<Param> Model::params() {
  std::vector<Param> all;
  for (auto& l : layers_) {
    for (auto& p : l->params()) all.push_back(p);
  }
  return all;
}

void Model::zero_grad() {
  for (auto& p : params()) {
    std::fill(p.grad->begin(), p.grad->end(), 0.0f);
  }
}

std::size_t Model::num_parameters() {
  std::size_t n = 0;
  for (auto& p : params()) n += p.value->size();
  return n;
}

std::string Model::summary() {
  std::ostringstream ss;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    ss << "  [" << i << "] " << layers_[i]->describe() << '\n';
  }
  ss << "  total parameters: " << num_parameters() << '\n';
  return ss.str();
}

namespace {
constexpr char kMagic[4] = {'G', 'E', 'A', 'M'};
}

void Model::save(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("Model::save: cannot open " + path);
  out.write(kMagic, 4);
  const auto ps = params();
  const std::uint64_t n = ps.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const auto& p : ps) {
    const std::uint64_t len = p.value->size();
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write(reinterpret_cast<const char*>(p.value->data()),
              static_cast<std::streamsize>(len * sizeof(float)));
  }
  if (!out) throw std::runtime_error("Model::save: write failed for " + path);
}

void Model::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("Model::load: cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("Model::load: bad magic in " + path);
  }
  auto ps = params();
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in || n != ps.size()) {
    throw std::runtime_error("Model::load: parameter count mismatch in " + path);
  }
  for (auto& p : ps) {
    std::uint64_t len = 0;
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    if (!in || len != p.value->size()) {
      throw std::runtime_error("Model::load: parameter size mismatch in " + path);
    }
    in.read(reinterpret_cast<char*>(p.value->data()),
            static_cast<std::streamsize>(len * sizeof(float)));
    if (!in) throw std::runtime_error("Model::load: truncated file " + path);
  }
}

// ---------------------------------------------------------------------------
// DifferentiableClassifier

std::vector<double> DifferentiableClassifier::probabilities(
    const std::vector<double>& x) {
  const auto z = logits(x);
  double mx = z[0];
  for (double v : z) mx = std::max(mx, v);
  std::vector<double> p(z.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    p[i] = std::exp(z[i] - mx);
    sum += p[i];
  }
  for (auto& v : p) v /= sum;
  return p;
}

std::size_t DifferentiableClassifier::predict(const std::vector<double>& x) {
  const auto z = logits(x);
  std::size_t best = 0;
  for (std::size_t i = 1; i < z.size(); ++i) {
    if (z[i] > z[best]) best = i;
  }
  return best;
}

std::vector<double> DifferentiableClassifier::grad_weighted(
    const std::vector<double>& x, const std::vector<double>& weights) {
  std::vector<double> g(input_dim(), 0.0);
  for (std::size_t k = 0; k < num_classes(); ++k) {
    if (std::abs(weights[k]) < 1e-15) continue;
    const auto gk = grad_logit(x, k);
    for (std::size_t i = 0; i < g.size(); ++i) g[i] += weights[k] * gk[i];
  }
  return g;
}

std::vector<double> DifferentiableClassifier::grad_loss(
    const std::vector<double>& x, std::size_t label) {
  // d/dx [-log softmax_label] = sum_k (p_k - [k==label]) * d logit_k / dx.
  auto weights = probabilities(x);
  weights[label] -= 1.0;
  return grad_weighted(x, weights);
}

// ---------------------------------------------------------------------------
// ModelClassifier

Tensor ModelClassifier::to_input(const std::vector<double>& x) const {
  if (x.size() != dim_) {
    throw std::invalid_argument("ModelClassifier: expected dim " +
                                std::to_string(dim_));
  }
  Tensor t({1, 1, dim_});
  for (std::size_t i = 0; i < dim_; ++i) t[i] = static_cast<float>(x[i]);
  return t;
}

std::vector<double> ModelClassifier::logits(const std::vector<double>& x) {
  const Tensor out = model_->forward(to_input(x), /*training=*/false);
  if (out.rank() != 2 || out.dim(0) != 1 || out.dim(1) != classes_) {
    throw std::logic_error("ModelClassifier: unexpected output shape " +
                           out.shape_string());
  }
  std::vector<double> z(classes_);
  for (std::size_t i = 0; i < classes_; ++i) z[i] = out[i];
  return z;
}

std::vector<double> ModelClassifier::grad_logit(const std::vector<double>& x,
                                                std::size_t k) {
  if (k >= classes_) throw std::invalid_argument("grad_logit: bad class");
  std::vector<double> weights(classes_, 0.0);
  weights[k] = 1.0;
  return grad_weighted(x, weights);
}

std::vector<double> ModelClassifier::grad_weighted(
    const std::vector<double>& x, const std::vector<double>& weights) {
  if (weights.size() != classes_) {
    throw std::invalid_argument("grad_weighted: weight count mismatch");
  }
  (void)model_->forward(to_input(x), /*training=*/false);
  Tensor seed({1, classes_});
  for (std::size_t k = 0; k < classes_; ++k) {
    seed.at2(0, k) = static_cast<float>(weights[k]);
  }
  // Parameter gradients accumulate as a side effect; training never
  // interleaves with attacks, and trainers zero grads each step anyway.
  const Tensor gin = model_->backward(seed);
  std::vector<double> g(dim_);
  for (std::size_t i = 0; i < dim_; ++i) g[i] = gin[i];
  return g;
}

}  // namespace gea::ml
