#include "ml/metrics.hpp"

#include <sstream>
#include <stdexcept>

namespace gea::ml {

double ConfusionMatrix::accuracy() const {
  const auto t = total();
  return t == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(t);
}

double ConfusionMatrix::fnr() const {
  const auto pos = fn + tp;
  return pos == 0 ? 0.0 : static_cast<double>(fn) / static_cast<double>(pos);
}

double ConfusionMatrix::fpr() const {
  const auto neg = fp + tn;
  return neg == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(neg);
}

double ConfusionMatrix::precision() const {
  const auto den = tp + fp;
  return den == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(den);
}

double ConfusionMatrix::recall() const {
  const auto den = tp + fn;
  return den == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(den);
}

double ConfusionMatrix::f1() const {
  const double p = precision(), r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream ss;
  ss << "TP=" << tp << " TN=" << tn << " FP=" << fp << " FN=" << fn;
  return ss.str();
}

ConfusionMatrix confusion(const std::vector<std::uint8_t>& predicted,
                          const std::vector<std::uint8_t>& actual) {
  if (predicted.size() != actual.size()) {
    throw std::invalid_argument("confusion: size mismatch");
  }
  ConfusionMatrix m;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const bool pred_mal = predicted[i] == 1;
    const bool is_mal = actual[i] == 1;
    if (pred_mal && is_mal) ++m.tp;
    else if (!pred_mal && !is_mal) ++m.tn;
    else if (pred_mal && !is_mal) ++m.fp;
    else ++m.fn;
  }
  return m;
}

std::size_t MultiConfusion::total() const {
  std::size_t n = 0;
  for (std::size_t c : counts) n += c;
  return n;
}

std::size_t MultiConfusion::row_sum(std::size_t actual) const {
  std::size_t n = 0;
  for (std::size_t p = 0; p < k; ++p) n += at(actual, p);
  return n;
}

std::size_t MultiConfusion::col_sum(std::size_t predicted) const {
  std::size_t n = 0;
  for (std::size_t a = 0; a < k; ++a) n += at(a, predicted);
  return n;
}

std::size_t MultiConfusion::diagonal() const {
  std::size_t n = 0;
  for (std::size_t c = 0; c < k; ++c) n += at(c, c);
  return n;
}

double MultiConfusion::accuracy() const {
  const auto t = total();
  return t == 0 ? 0.0
               : static_cast<double>(diagonal()) / static_cast<double>(t);
}

double MultiConfusion::precision(std::size_t cls) const {
  const auto den = col_sum(cls);
  return den == 0 ? 0.0
                  : static_cast<double>(at(cls, cls)) /
                        static_cast<double>(den);
}

double MultiConfusion::recall(std::size_t cls) const {
  const auto den = row_sum(cls);
  return den == 0 ? 0.0
                  : static_cast<double>(at(cls, cls)) /
                        static_cast<double>(den);
}

double MultiConfusion::f1(std::size_t cls) const {
  const double p = precision(cls), r = recall(cls);
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double MultiConfusion::macro_f1() const {
  if (k == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t c = 0; c < k; ++c) sum += f1(c);
  return sum / static_cast<double>(k);
}

ConfusionMatrix MultiConfusion::binary(std::size_t positive_class) const {
  ConfusionMatrix m;
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t p = 0; p < k; ++p) {
      const bool pred_pos = p == positive_class;
      const bool is_pos = a == positive_class;
      const std::size_t n = at(a, p);
      if (pred_pos && is_pos) m.tp += n;
      else if (!pred_pos && !is_pos) m.tn += n;
      else if (pred_pos && !is_pos) m.fp += n;
      else m.fn += n;
    }
  }
  return m;
}

std::string MultiConfusion::to_string() const {
  std::ostringstream ss;
  ss << "K=" << k;
  for (std::size_t a = 0; a < k; ++a) {
    ss << (a == 0 ? " [" : " | ");
    for (std::size_t p = 0; p < k; ++p) {
      if (p > 0) ss << ' ';
      ss << at(a, p);
    }
  }
  if (k > 0) ss << ']';
  return ss.str();
}

std::string MultiConfusion::to_string(const LabelSchema& schema) const {
  std::ostringstream ss;
  ss << "actual\\predicted";
  for (std::size_t p = 0; p < k; ++p) ss << ' ' << schema.name(p);
  for (std::size_t a = 0; a < k; ++a) {
    ss << '\n' << schema.name(a) << ':';
    for (std::size_t p = 0; p < k; ++p) ss << ' ' << at(a, p);
  }
  return ss.str();
}

MultiConfusion confusion_k(std::size_t num_classes,
                           const std::vector<std::uint8_t>& predicted,
                           const std::vector<std::uint8_t>& actual) {
  if (predicted.size() != actual.size()) {
    throw std::invalid_argument("confusion_k: size mismatch");
  }
  MultiConfusion m(num_classes);
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] >= num_classes || actual[i] >= num_classes) {
      throw std::invalid_argument("confusion_k: label outside schema at row " +
                                  std::to_string(i));
    }
    ++m.at(actual[i], predicted[i]);
  }
  return m;
}

}  // namespace gea::ml
