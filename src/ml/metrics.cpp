#include "ml/metrics.hpp"

#include <sstream>
#include <stdexcept>

namespace gea::ml {

double ConfusionMatrix::accuracy() const {
  const auto t = total();
  return t == 0 ? 0.0 : static_cast<double>(tp + tn) / static_cast<double>(t);
}

double ConfusionMatrix::fnr() const {
  const auto pos = fn + tp;
  return pos == 0 ? 0.0 : static_cast<double>(fn) / static_cast<double>(pos);
}

double ConfusionMatrix::fpr() const {
  const auto neg = fp + tn;
  return neg == 0 ? 0.0 : static_cast<double>(fp) / static_cast<double>(neg);
}

double ConfusionMatrix::precision() const {
  const auto den = tp + fp;
  return den == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(den);
}

double ConfusionMatrix::recall() const {
  const auto den = tp + fn;
  return den == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(den);
}

double ConfusionMatrix::f1() const {
  const double p = precision(), r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream ss;
  ss << "TP=" << tp << " TN=" << tn << " FP=" << fp << " FN=" << fn;
  return ss.str();
}

ConfusionMatrix confusion(const std::vector<std::uint8_t>& predicted,
                          const std::vector<std::uint8_t>& actual) {
  if (predicted.size() != actual.size()) {
    throw std::invalid_argument("confusion: size mismatch");
  }
  ConfusionMatrix m;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const bool pred_mal = predicted[i] == 1;
    const bool is_mal = actual[i] == 1;
    if (pred_mal && is_mal) ++m.tp;
    else if (!pred_mal && !is_mal) ++m.tn;
    else if (pred_mal && !is_mal) ++m.fp;
    else ++m.fn;
  }
  return m;
}

}  // namespace gea::ml
