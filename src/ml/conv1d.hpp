// 1D convolution over (N, C, L) batches with unit stride.
//
// Matches the paper's two padding modes: `kSame` (zero-pad so L_out == L_in,
// used by Conv 1 and Conv 3) and `kValid` (no padding, L_out = L_in - k + 1,
// used by Conv 2 and Conv 4).
//
// All math is lowered onto kernels::gemm via im2col (kernels/conv.hpp):
// forward, batched infer, and both backward GEMMs share one tiled,
// vectorized path whose per-element accumulation is k-ordered — so
// per-sample forward and batched infer stay bitwise identical by
// construction, and the whole layer is ULP-bounded against the preserved
// seed loops (kernels/reference.hpp).
#pragma once

#include "kernels/conv.hpp"
#include "ml/layer.hpp"

namespace gea::ml {

enum class Padding { kSame, kValid };

class Conv1D : public Layer {
 public:
  Conv1D(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel_size, Padding padding);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  /// Batched inference fast path: forward() without the input cache copy.
  /// Identical kernel path, so the logits are bitwise identical.
  Tensor infer(const Tensor& x) override;
  std::vector<Param> params() override;
  std::string describe() const override;
  void init(util::Rng& rng) override;
  LayerPtr clone() const override;

  std::size_t output_length(std::size_t input_length) const;

 private:
  kernels::Conv1DShape shape_for(const Tensor& x) const;

  std::size_t in_ch_;
  std::size_t out_ch_;
  std::size_t k_;
  Padding padding_;
  std::vector<float> w_;   // (out_ch, in_ch, k)
  std::vector<float> b_;   // (out_ch)
  std::vector<float> gw_;
  std::vector<float> gb_;
  Tensor last_input_;
};

}  // namespace gea::ml
