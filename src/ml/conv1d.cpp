#include "ml/conv1d.hpp"

#include <cmath>
#include <stdexcept>

namespace gea::ml {

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_size, Padding padding)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      k_(kernel_size),
      padding_(padding),
      w_(out_channels * in_channels * kernel_size, 0.0f),
      b_(out_channels, 0.0f),
      gw_(w_.size(), 0.0f),
      gb_(b_.size(), 0.0f) {
  if (kernel_size == 0 || kernel_size % 2 == 0) {
    throw std::invalid_argument("Conv1D: kernel size must be odd and nonzero");
  }
}

std::size_t Conv1D::output_length(std::size_t input_length) const {
  if (padding_ == Padding::kSame) return input_length;
  if (input_length < k_) {
    throw std::invalid_argument("Conv1D: input shorter than kernel");
  }
  return input_length - k_ + 1;
}

LayerPtr Conv1D::clone() const {
  auto c = std::make_unique<Conv1D>(in_ch_, out_ch_, k_, padding_);
  c->w_ = w_;
  c->b_ = b_;
  return c;
}

void Conv1D::init(util::Rng& rng) {
  const double fan_in = static_cast<double>(in_ch_ * k_);
  const double scale = std::sqrt(2.0 / fan_in);
  for (auto& w : w_) w = static_cast<float>(rng.normal(0.0, scale));
  for (auto& b : b_) b = 0.0f;
}

Tensor Conv1D::forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 3 || x.dim(1) != in_ch_) {
    throw std::invalid_argument("Conv1D::forward: expected (N, " +
                                std::to_string(in_ch_) + ", L), got " +
                                x.shape_string());
  }
  last_input_ = x;
  const std::size_t n = x.dim(0);
  const std::size_t l_in = x.dim(2);
  const std::size_t l_out = output_length(l_in);
  // Offset of input position relative to output position: for `same`,
  // position j reads x[j - k/2 .. j + k/2]; for `valid`, x[j .. j + k - 1].
  const std::ptrdiff_t base =
      padding_ == Padding::kSame ? -static_cast<std::ptrdiff_t>(k_ / 2) : 0;

  Tensor y({n, out_ch_, l_out});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      float* yrow = y.data() + (i * out_ch_ + oc) * l_out;
      for (std::size_t j = 0; j < l_out; ++j) yrow[j] = b_[oc];
      for (std::size_t ic = 0; ic < in_ch_; ++ic) {
        const float* xrow = x.data() + (i * in_ch_ + ic) * l_in;
        const float* wrow = w_.data() + (oc * in_ch_ + ic) * k_;
        for (std::size_t j = 0; j < l_out; ++j) {
          float acc = 0.0f;
          for (std::size_t t = 0; t < k_; ++t) {
            const std::ptrdiff_t src =
                static_cast<std::ptrdiff_t>(j) + base + static_cast<std::ptrdiff_t>(t);
            if (src >= 0 && src < static_cast<std::ptrdiff_t>(l_in)) {
              acc += wrow[t] * xrow[src];
            }
          }
          yrow[j] += acc;
        }
      }
    }
  }
  return y;
}

Tensor Conv1D::infer(const Tensor& x) {
  if (x.rank() != 3 || x.dim(1) != in_ch_) {
    throw std::invalid_argument("Conv1D::infer: expected (N, " +
                                std::to_string(in_ch_) + ", L), got " +
                                x.shape_string());
  }
  const std::size_t n = x.dim(0);
  const std::size_t l_in = x.dim(2);
  const std::size_t l_out = output_length(l_in);
  const std::ptrdiff_t base =
      padding_ == Padding::kSame ? -static_cast<std::ptrdiff_t>(k_ / 2) : 0;

  // Interior positions [lo, hi) have every kernel tap in bounds (all of
  // them for valid padding), so their loop carries no boundary check; the
  // per-tap accumulation order is exactly forward()'s, keeping the output
  // bitwise identical.
  std::size_t lo = 0;
  std::size_t hi = l_out;
  if (padding_ == Padding::kSame) {
    const std::size_t h = k_ / 2;
    lo = h < l_out ? h : l_out;
    hi = l_out >= h ? l_out - h : 0;
    if (hi < lo) hi = lo;
  }

  Tensor y({n, out_ch_, l_out});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      float* yrow = y.data() + (i * out_ch_ + oc) * l_out;
      for (std::size_t j = 0; j < l_out; ++j) yrow[j] = b_[oc];
      for (std::size_t ic = 0; ic < in_ch_; ++ic) {
        const float* xrow = x.data() + (i * in_ch_ + ic) * l_in;
        const float* wrow = w_.data() + (oc * in_ch_ + ic) * k_;
        auto edge = [&](std::size_t j0, std::size_t j1) {
          for (std::size_t j = j0; j < j1; ++j) {
            float acc = 0.0f;
            for (std::size_t t = 0; t < k_; ++t) {
              const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(j) + base +
                                         static_cast<std::ptrdiff_t>(t);
              if (src >= 0 && src < static_cast<std::ptrdiff_t>(l_in)) {
                acc += wrow[t] * xrow[src];
              }
            }
            yrow[j] += acc;
          }
        };
        edge(0, lo);
        if (k_ == 3) {
          // Fixed-tap body: each output position is an independent FP
          // chain with the exact op sequence of forward(), so the compiler
          // may vectorize across j without changing a single bit.
          const float w0 = wrow[0], w1 = wrow[1], w2 = wrow[2];
          for (std::size_t j = lo; j < hi; ++j) {
            const float* xj = xrow + static_cast<std::ptrdiff_t>(j) + base;
            float acc = 0.0f;
            acc += w0 * xj[0];
            acc += w1 * xj[1];
            acc += w2 * xj[2];
            yrow[j] += acc;
          }
        } else {
          for (std::size_t j = lo; j < hi; ++j) {
            const float* xj = xrow + static_cast<std::ptrdiff_t>(j) + base;
            float acc = 0.0f;
            for (std::size_t t = 0; t < k_; ++t) acc += wrow[t] * xj[t];
            yrow[j] += acc;
          }
        }
        edge(hi, l_out);
      }
    }
  }
  return y;
}

Tensor Conv1D::backward(const Tensor& grad_out) {
  const std::size_t n = last_input_.dim(0);
  const std::size_t l_in = last_input_.dim(2);
  const std::size_t l_out = output_length(l_in);
  if (grad_out.rank() != 3 || grad_out.dim(0) != n ||
      grad_out.dim(1) != out_ch_ || grad_out.dim(2) != l_out) {
    throw std::invalid_argument("Conv1D::backward: bad gradient shape " +
                                grad_out.shape_string());
  }
  const std::ptrdiff_t base =
      padding_ == Padding::kSame ? -static_cast<std::ptrdiff_t>(k_ / 2) : 0;

  Tensor grad_in({n, in_ch_, l_in});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const float* grow = grad_out.data() + (i * out_ch_ + oc) * l_out;
      for (std::size_t j = 0; j < l_out; ++j) gb_[oc] += grow[j];
      for (std::size_t ic = 0; ic < in_ch_; ++ic) {
        const float* xrow = last_input_.data() + (i * in_ch_ + ic) * l_in;
        float* gxrow = grad_in.data() + (i * in_ch_ + ic) * l_in;
        const float* wrow = w_.data() + (oc * in_ch_ + ic) * k_;
        float* gwrow = gw_.data() + (oc * in_ch_ + ic) * k_;
        for (std::size_t j = 0; j < l_out; ++j) {
          const float g = grow[j];
          if (g == 0.0f) continue;
          for (std::size_t t = 0; t < k_; ++t) {
            const std::ptrdiff_t src =
                static_cast<std::ptrdiff_t>(j) + base + static_cast<std::ptrdiff_t>(t);
            if (src >= 0 && src < static_cast<std::ptrdiff_t>(l_in)) {
              gwrow[t] += g * xrow[src];
              gxrow[src] += g * wrow[t];
            }
          }
        }
      }
    }
  }
  return grad_in;
}

std::vector<Param> Conv1D::params() {
  return {{&w_, &gw_, "conv1d.w"}, {&b_, &gb_, "conv1d.b"}};
}

std::string Conv1D::describe() const {
  return "Conv1D(" + std::to_string(in_ch_) + "->" + std::to_string(out_ch_) +
         ", k=" + std::to_string(k_) +
         (padding_ == Padding::kSame ? ", same)" : ", valid)");
}

}  // namespace gea::ml
