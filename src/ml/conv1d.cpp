#include "ml/conv1d.hpp"

#include <cmath>
#include <stdexcept>

#include "kernels/conv.hpp"

namespace gea::ml {

Conv1D::Conv1D(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_size, Padding padding)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      k_(kernel_size),
      padding_(padding),
      w_(out_channels * in_channels * kernel_size, 0.0f),
      b_(out_channels, 0.0f),
      gw_(w_.size(), 0.0f),
      gb_(b_.size(), 0.0f) {
  if (kernel_size == 0 || kernel_size % 2 == 0) {
    throw std::invalid_argument("Conv1D: kernel size must be odd and nonzero");
  }
}

std::size_t Conv1D::output_length(std::size_t input_length) const {
  if (padding_ == Padding::kSame) return input_length;
  if (input_length < k_) {
    throw std::invalid_argument("Conv1D: input shorter than kernel");
  }
  return input_length - k_ + 1;
}

LayerPtr Conv1D::clone() const {
  auto c = std::make_unique<Conv1D>(in_ch_, out_ch_, k_, padding_);
  c->w_ = w_;
  c->b_ = b_;
  return c;
}

void Conv1D::init(util::Rng& rng) {
  const double fan_in = static_cast<double>(in_ch_ * k_);
  const double scale = std::sqrt(2.0 / fan_in);
  for (auto& w : w_) w = static_cast<float>(rng.normal(0.0, scale));
  for (auto& b : b_) b = 0.0f;
}

kernels::Conv1DShape Conv1D::shape_for(const Tensor& x) const {
  kernels::Conv1DShape s;
  s.n = x.dim(0);
  s.in_ch = in_ch_;
  s.l_in = x.dim(2);
  s.out_ch = out_ch_;
  s.k = k_;
  s.same = padding_ == Padding::kSame;
  if (!s.same && s.l_in < k_) {
    throw std::invalid_argument("Conv1D: input shorter than kernel");
  }
  return s;
}

Tensor Conv1D::forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 3 || x.dim(1) != in_ch_) {
    throw std::invalid_argument("Conv1D::forward: expected (N, " +
                                std::to_string(in_ch_) + ", L), got " +
                                x.shape_string());
  }
  last_input_ = x;
  const auto s = shape_for(x);
  Tensor y({s.n, out_ch_, s.l_out()});
  kernels::conv1d_forward(s, x.data(), w_.data(), b_.data(), y.data());
  return y;
}

Tensor Conv1D::infer(const Tensor& x) {
  if (x.rank() != 3 || x.dim(1) != in_ch_) {
    throw std::invalid_argument("Conv1D::infer: expected (N, " +
                                std::to_string(in_ch_) + ", L), got " +
                                x.shape_string());
  }
  const auto s = shape_for(x);
  Tensor y({s.n, out_ch_, s.l_out()});
  kernels::conv1d_forward(s, x.data(), w_.data(), b_.data(), y.data());
  return y;
}

Tensor Conv1D::backward(const Tensor& grad_out) {
  const auto s = shape_for(last_input_);
  if (grad_out.rank() != 3 || grad_out.dim(0) != s.n ||
      grad_out.dim(1) != out_ch_ || grad_out.dim(2) != s.l_out()) {
    throw std::invalid_argument("Conv1D::backward: bad gradient shape " +
                                grad_out.shape_string());
  }
  Tensor grad_in({s.n, in_ch_, s.l_in});
  kernels::conv1d_backward(s, last_input_.data(), w_.data(), grad_out.data(),
                           grad_in.data(), gw_.data(), gb_.data());
  return grad_in;
}

std::vector<Param> Conv1D::params() {
  return {{&w_, &gw_, "conv1d.w"}, {&b_, &gb_, "conv1d.b"}};
}

std::string Conv1D::describe() const {
  return "Conv1D(" + std::to_string(in_ch_) + "->" + std::to_string(out_ch_) +
         ", k=" + std::to_string(k_) +
         (padding_ == Padding::kSame ? ", same)" : ", valid)");
}

}  // namespace gea::ml
