// Model zoo: the paper's CNN (Fig. 5) and a small MLP baseline used by the
// detector-capacity ablation.
#pragma once

#include "ml/model.hpp"

namespace gea::ml {

/// The exact Fig. 5 architecture for a 1x`input_dim` feature vector:
///   ConvB1: Conv1D(1->46, k=3, same) - ReLU - Conv1D(46->46, k=3, valid) -
///           ReLU - MaxPool(2) - Dropout(0.25)
///   ConvB2: Conv1D(46->92, k=3, same) - ReLU - Conv1D(92->92, k=3, valid) -
///           ReLU - MaxPool(2) - Dropout(0.25)
///   CB:     Flatten - Dense(512) - ReLU - Dropout(0.5) - Dense(num_classes)
/// The softmax lives in the loss / probability helpers, so `forward`
/// returns logits (what the attacks differentiate).
///
/// `dropout_rng` must outlive the model.
Model make_paper_cnn(std::size_t input_dim, std::size_t num_classes,
                     util::Rng& dropout_rng);

/// Baseline: Flatten - Dense(64) - ReLU - Dense(32) - ReLU - Dense(K).
Model make_mlp_baseline(std::size_t input_dim, std::size_t num_classes);

}  // namespace gea::ml
