// Model zoo: the paper's CNN (Fig. 5), a small MLP baseline used by the
// detector-capacity ablation, and the family-classification variants
// (flat schema-wide CNN, hierarchical detect-then-classify).
#pragma once

#include <memory>

#include "ml/label_schema.hpp"
#include "ml/model.hpp"

namespace gea::ml {

/// The exact Fig. 5 architecture for a 1x`input_dim` feature vector:
///   ConvB1: Conv1D(1->46, k=3, same) - ReLU - Conv1D(46->46, k=3, valid) -
///           ReLU - MaxPool(2) - Dropout(0.25)
///   ConvB2: Conv1D(46->92, k=3, same) - ReLU - Conv1D(92->92, k=3, valid) -
///           ReLU - MaxPool(2) - Dropout(0.25)
///   CB:     Flatten - Dense(512) - ReLU - Dropout(0.5) - Dense(num_classes)
/// The softmax lives in the loss / probability helpers, so `forward`
/// returns logits (what the attacks differentiate).
///
/// `dropout_rng` must outlive the model.
Model make_paper_cnn(std::size_t input_dim, std::size_t num_classes,
                     util::Rng& dropout_rng);

/// Baseline: Flatten - Dense(64) - ReLU - Dense(32) - ReLU - Dense(K).
Model make_mlp_baseline(std::size_t input_dim, std::size_t num_classes);

/// The paper CNN with its head width taken from the schema — the flat
/// family classifier (arXiv:1902.03955 style: same CFG features, K-way
/// softmax). With the binary schema this is exactly make_paper_cnn(…, 2).
Model make_family_cnn(std::size_t input_dim, const LabelSchema& schema,
                      util::Rng& dropout_rng);

/// Hierarchical detect-then-classify (arXiv:2005.07145 style): a binary
/// detector gates a (K-1)-way family classifier over the malicious
/// classes. Exposes the composition as one K-class DifferentiableClassifier
/// over the full schema:
///
///   p(benign)    = p_det(benign)
///   p(family_i)  = p_det(malicious) * p_fam(i)
///
/// logits() returns log-probabilities of that product (softmax of a
/// log-probability vector reproduces the probabilities, so predict() and
/// probabilities() need no special casing), and grad_logit() chains the
/// sub-model gradients, which keeps the targeted GEA attack differentiable
/// through the hierarchy.
class HierarchicalClassifier : public DifferentiableClassifier {
 public:
  /// `detector` must have 2 classes (binary schema order: 0 = benign);
  /// `family` must have schema.num_classes() - 1 classes indexed by
  /// schema.malicious_index(). Throws std::invalid_argument on mismatch.
  HierarchicalClassifier(std::unique_ptr<DifferentiableClassifier> detector,
                         std::unique_ptr<DifferentiableClassifier> family,
                         LabelSchema schema);

  std::size_t input_dim() const override;
  std::size_t num_classes() const override { return schema_.num_classes(); }
  std::vector<double> logits(const std::vector<double>& x) override;
  std::vector<double> grad_logit(const std::vector<double>& x,
                                 std::size_t k) override;
  std::unique_ptr<DifferentiableClassifier> clone() const override;

  const LabelSchema& schema() const { return schema_; }

 private:
  std::unique_ptr<DifferentiableClassifier> detector_;
  std::unique_ptr<DifferentiableClassifier> family_;
  LabelSchema schema_;
};

}  // namespace gea::ml
