#include "ml/dense.hpp"

#include <cmath>
#include <stdexcept>

namespace gea::ml {

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      w_(in_features * out_features, 0.0f),
      b_(out_features, 0.0f),
      gw_(w_.size(), 0.0f),
      gb_(b_.size(), 0.0f) {}

void Dense::init(util::Rng& rng) {
  // He initialization (ReLU follows every dense layer but the head; the
  // head's logits tolerate it fine).
  const double scale = std::sqrt(2.0 / static_cast<double>(in_));
  for (auto& w : w_) w = static_cast<float>(rng.normal(0.0, scale));
  for (auto& b : b_) b = 0.0f;
}

Tensor Dense::forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 2 || x.dim(1) != in_) {
    throw std::invalid_argument("Dense::forward: expected (N, " +
                                std::to_string(in_) + "), got " +
                                x.shape_string());
  }
  last_input_ = x;
  const std::size_t n = x.dim(0);
  Tensor y({n, out_});
  for (std::size_t i = 0; i < n; ++i) {
    const float* xi = x.data() + i * in_;
    float* yi = y.data() + i * out_;
    for (std::size_t o = 0; o < out_; ++o) {
      const float* wrow = w_.data() + o * in_;
      float acc = b_[o];
      for (std::size_t k = 0; k < in_; ++k) acc += wrow[k] * xi[k];
      yi[o] = acc;
    }
  }
  return y;
}

Tensor Dense::infer(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_) {
    throw std::invalid_argument("Dense::infer: expected (N, " +
                                std::to_string(in_) + "), got " +
                                x.shape_string());
  }
  const std::size_t n = x.dim(0);
  Tensor y({n, out_});
  if (n == 1) {
    const float* xi = x.data();
    float* yi = y.data();
    for (std::size_t o = 0; o < out_; ++o) {
      const float* wrow = w_.data() + o * in_;
      float acc = b_[o];
      for (std::size_t k = 0; k < in_; ++k) acc += wrow[k] * xi[k];
      yi[o] = acc;
    }
    return y;
  }
  // Batched: transpose the input so the batch index is contiguous, then
  // run every sample's accumulation chain in lockstep. Per (i, o) the FP
  // op sequence is identical to the row-major loop above (acc = b; then
  // += w_k * x_k in k order) — the chains are independent, so interleaving
  // them across i is bitwise-free and lets the compiler vectorize the
  // innermost loop over the batch.
  std::vector<float> xt(in_ * n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* xi = x.data() + i * in_;
    for (std::size_t k = 0; k < in_; ++k) xt[k * n + i] = xi[k];
  }
  std::vector<float> acc(n);
  for (std::size_t o = 0; o < out_; ++o) {
    const float* wrow = w_.data() + o * in_;
    const float bo = b_[o];
    for (std::size_t i = 0; i < n; ++i) acc[i] = bo;
    for (std::size_t k = 0; k < in_; ++k) {
      const float wk = wrow[k];
      const float* xk = xt.data() + k * n;
      for (std::size_t i = 0; i < n; ++i) acc[i] += wk * xk[i];
    }
    for (std::size_t i = 0; i < n; ++i) y.data()[i * out_ + o] = acc[i];
  }
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  if (grad_out.rank() != 2 || grad_out.dim(1) != out_ ||
      grad_out.dim(0) != last_input_.dim(0)) {
    throw std::invalid_argument("Dense::backward: bad gradient shape " +
                                grad_out.shape_string());
  }
  const std::size_t n = grad_out.dim(0);
  Tensor grad_in({n, in_});
  for (std::size_t i = 0; i < n; ++i) {
    const float* gi = grad_out.data() + i * out_;
    const float* xi = last_input_.data() + i * in_;
    float* gx = grad_in.data() + i * in_;
    for (std::size_t o = 0; o < out_; ++o) {
      const float g = gi[o];
      if (g == 0.0f) continue;
      gb_[o] += g;
      float* gwrow = gw_.data() + o * in_;
      const float* wrow = w_.data() + o * in_;
      for (std::size_t k = 0; k < in_; ++k) {
        gwrow[k] += g * xi[k];
        gx[k] += g * wrow[k];
      }
    }
  }
  return grad_in;
}

std::vector<Param> Dense::params() {
  return {{&w_, &gw_, "dense.w"}, {&b_, &gb_, "dense.b"}};
}

std::string Dense::describe() const {
  return "Dense(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

LayerPtr Dense::clone() const {
  auto c = std::make_unique<Dense>(in_, out_);
  c->w_ = w_;
  c->b_ = b_;
  return c;
}

}  // namespace gea::ml
