#include "ml/dense.hpp"

#include <cmath>
#include <stdexcept>

#include "kernels/conv.hpp"

namespace gea::ml {

Dense::Dense(std::size_t in_features, std::size_t out_features)
    : in_(in_features),
      out_(out_features),
      w_(in_features * out_features, 0.0f),
      b_(out_features, 0.0f),
      gw_(w_.size(), 0.0f),
      gb_(b_.size(), 0.0f) {}

void Dense::init(util::Rng& rng) {
  // He initialization (ReLU follows every dense layer but the head; the
  // head's logits tolerate it fine).
  const double scale = std::sqrt(2.0 / static_cast<double>(in_));
  for (auto& w : w_) w = static_cast<float>(rng.normal(0.0, scale));
  for (auto& b : b_) b = 0.0f;
}

Tensor Dense::forward(const Tensor& x, bool /*training*/) {
  if (x.rank() != 2 || x.dim(1) != in_) {
    throw std::invalid_argument("Dense::forward: expected (N, " +
                                std::to_string(in_) + "), got " +
                                x.shape_string());
  }
  last_input_ = x;
  const std::size_t n = x.dim(0);
  Tensor y({n, out_});
  kernels::dense_forward(n, in_, out_, x.data(), w_.data(), b_.data(),
                         y.data());
  return y;
}

Tensor Dense::infer(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_) {
    throw std::invalid_argument("Dense::infer: expected (N, " +
                                std::to_string(in_) + "), got " +
                                x.shape_string());
  }
  const std::size_t n = x.dim(0);
  Tensor y({n, out_});
  kernels::dense_forward(n, in_, out_, x.data(), w_.data(), b_.data(),
                         y.data());
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  if (grad_out.rank() != 2 || grad_out.dim(1) != out_ ||
      grad_out.dim(0) != last_input_.dim(0)) {
    throw std::invalid_argument("Dense::backward: bad gradient shape " +
                                grad_out.shape_string());
  }
  const std::size_t n = grad_out.dim(0);
  Tensor grad_in({n, in_});
  kernels::dense_backward(n, in_, out_, last_input_.data(), w_.data(),
                          grad_out.data(), grad_in.data(), gw_.data(),
                          gb_.data());
  return grad_in;
}

std::vector<Param> Dense::params() {
  return {{&w_, &gw_, "dense.w"}, {&b_, &gb_, "dense.b"}};
}

std::string Dense::describe() const {
  return "Dense(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

LayerPtr Dense::clone() const {
  auto c = std::make_unique<Dense>(in_, out_);
  c->w_ = w_;
  c->b_ = b_;
  return c;
}

}  // namespace gea::ml
