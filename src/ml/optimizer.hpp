// Gradient-descent optimizers over Model parameters.
#pragma once

#include <vector>

#include "ml/layer.hpp"

namespace gea::ml {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply one update step using the parameters' accumulated gradients.
  virtual void step(const std::vector<Param>& params) = 0;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0);
  void step(const std::vector<Param>& params) override;

 private:
  double lr_;
  double momentum_;
  std::vector<std::vector<float>> velocity_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void step(const std::vector<Param>& params) override;

 private:
  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace gea::ml
