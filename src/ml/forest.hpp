// Random forest on feature vectors — a non-differentiable detector.
//
// White-box gradient attacks need the CNN; a real deployment could field a
// tree ensemble instead. The forest exists to test the paper's central
// claim at its strongest: if CFG *features* are the weakness, then AEs and
// GEA splices must also beat a model family with no gradients to follow
// (see bench/ablation_forest).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.hpp"

namespace gea::ml {

struct ForestConfig {
  std::size_t num_trees = 50;
  std::size_t max_depth = 12;
  std::size_t min_samples_leaf = 2;
  /// Features considered per split; 0 = floor(sqrt(dim)).
  std::size_t features_per_split = 0;
  /// Bootstrap sample fraction per tree.
  double subsample = 1.0;
  std::uint64_t seed = 1234;
};

/// One CART tree (Gini impurity, axis-aligned thresholds), grown on
/// bootstrap data with feature subsampling — the standard Breiman recipe.
class DecisionTree {
 public:
  void fit(const std::vector<std::vector<double>>& rows,
           const std::vector<std::uint8_t>& labels,
           const std::vector<std::size_t>& sample_indices,
           const ForestConfig& cfg, util::Rng& rng);

  /// P(class 1) at the leaf reached by x.
  double prob1(const std::vector<double>& x) const;

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t depth() const;

 private:
  struct Node {
    // Internal: feature/threshold and child links; leaf: value in [0,1].
    std::int32_t feature = -1;        // -1 = leaf
    double threshold = 0.0;
    std::uint32_t left = 0;
    std::uint32_t right = 0;
    double value = 0.0;               // leaf: P(label==1)
  };

  std::uint32_t build(const std::vector<std::vector<double>>& rows,
                      const std::vector<std::uint8_t>& labels,
                      std::vector<std::size_t>& indices, std::size_t begin,
                      std::size_t end, std::size_t depth,
                      const ForestConfig& cfg, util::Rng& rng);

  std::vector<Node> nodes_;
};

class RandomForest {
 public:
  explicit RandomForest(ForestConfig cfg = {}) : cfg_(cfg) {}

  void fit(const std::vector<std::vector<double>>& rows,
           const std::vector<std::uint8_t>& labels);

  bool fitted() const { return !trees_.empty(); }
  /// Mean of the trees' leaf probabilities.
  double prob1(const std::vector<double>& x) const;
  std::uint8_t predict(const std::vector<double>& x) const;
  std::vector<std::uint8_t> predict_all(
      const std::vector<std::vector<double>>& rows) const;

  std::size_t num_trees() const { return trees_.size(); }

 private:
  ForestConfig cfg_;
  std::vector<DecisionTree> trees_;
};

}  // namespace gea::ml
