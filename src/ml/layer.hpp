// Layer abstraction.
//
// Layers are stateful: forward() caches whatever backward() needs, so a
// backward call must follow the forward call whose gradient it computes.
// backward() accumulates parameter gradients (callers zero them via
// Model::zero_grad) and returns the gradient with respect to the layer
// input — the chain every white-box attack rides to get input gradients.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/tensor.hpp"
#include "util/rng.hpp"

namespace gea::ml {

/// A learnable parameter: value and gradient, same length.
struct Param {
  std::vector<float>* value = nullptr;
  std::vector<float>* grad = nullptr;
  std::string name;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute the layer output. `training` toggles dropout et al.
  virtual Tensor forward(const Tensor& x, bool training) = 0;

  /// Propagate `grad_out` (dL/d output) to dL/d input, accumulating
  /// parameter gradients along the way.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Inference-only forward over a (possibly multi-sample) batch: skips
  /// every backward cache (input copies, ReLU masks, pool argmaxes) and may
  /// use tighter loops, but MUST produce bitwise-identical output to
  /// forward(x, false) — the serving layer batches requests through this
  /// path and the per-sample/batched equivalence is asserted in tests.
  /// backward() after infer() is undefined; call forward() when training.
  virtual Tensor infer(const Tensor& x) { return forward(x, /*training=*/false); }

  /// Learnable parameters (empty for stateless layers).
  virtual std::vector<Param> params() { return {}; }

  /// One-line description, e.g. "Conv1D(1->46, k=3, same)".
  virtual std::string describe() const = 0;

  /// Initialize weights (no-op for stateless layers).
  virtual void init(util::Rng&) {}

  /// Deep copy (weights included, forward/backward caches reset) for
  /// per-worker model replicas in the parallel layer. nullptr means the
  /// layer is not cloneable, which makes Model::clonable() false and sends
  /// parallel callers down their serial fallback.
  virtual std::unique_ptr<Layer> clone() const { return nullptr; }

  /// Rebind any internal Rng (dropout). Parallel training points each model
  /// replica at a chunk-specific Rng seeded by counter-split, so mask draws
  /// are deterministic per chunk instead of sequenced through a shared
  /// stream. No-op for layers without randomness.
  virtual void bind_rng(util::Rng* /*rng*/) {}
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace gea::ml
