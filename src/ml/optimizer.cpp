#include "ml/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace gea::ml {

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {}

void Sgd::step(const std::vector<Param>& params) {
  if (velocity_.empty()) {
    for (const auto& p : params) velocity_.emplace_back(p.value->size(), 0.0f);
  }
  if (velocity_.size() != params.size()) {
    throw std::logic_error("Sgd::step: parameter set changed");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& value = *params[i].value;
    const auto& grad = *params[i].grad;
    auto& vel = velocity_[i];
    for (std::size_t j = 0; j < value.size(); ++j) {
      vel[j] = static_cast<float>(momentum_ * vel[j] - lr_ * grad[j]);
      value[j] += vel[j];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::step(const std::vector<Param>& params) {
  if (m_.empty()) {
    for (const auto& p : params) {
      m_.emplace_back(p.value->size(), 0.0f);
      v_.emplace_back(p.value->size(), 0.0f);
    }
  }
  if (m_.size() != params.size()) {
    throw std::logic_error("Adam::step: parameter set changed");
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto& value = *params[i].value;
    const auto& grad = *params[i].grad;
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < value.size(); ++j) {
      const double g = grad[j];
      m[j] = static_cast<float>(beta1_ * m[j] + (1.0 - beta1_) * g);
      v[j] = static_cast<float>(beta2_ * v[j] + (1.0 - beta2_) * g * g);
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      value[j] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace gea::ml
