// Binary-classification metrics matching the paper's reporting
// (accuracy rate, false-negative rate, false-positive rate), with the
// paper's label convention: 1 = malicious (positive), 0 = benign.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gea::ml {

struct ConfusionMatrix {
  std::size_t tp = 0;  // malicious predicted malicious
  std::size_t tn = 0;  // benign predicted benign
  std::size_t fp = 0;  // benign predicted malicious
  std::size_t fn = 0;  // malicious predicted benign

  std::size_t total() const { return tp + tn + fp + fn; }
  double accuracy() const;
  /// FNR = FN / (FN + TP): malware that slipped through.
  double fnr() const;
  /// FPR = FP / (FP + TN): benign flagged as malware.
  double fpr() const;
  double precision() const;
  double recall() const;
  double f1() const;

  std::string to_string() const;
};

ConfusionMatrix confusion(const std::vector<std::uint8_t>& predicted,
                          const std::vector<std::uint8_t>& actual);

}  // namespace gea::ml
