// Classification metrics matching the paper's reporting.
//
// Two layers:
//  - ConfusionMatrix: the paper's binary metrics (accuracy rate,
//    false-negative rate, false-positive rate) with the paper's label
//    convention: 1 = malicious (positive), 0 = benign.
//  - MultiConfusion: the K×K generalization for family classification.
//    Per-class precision/recall/F1 and macro-F1 use the same double
//    divisions as the binary struct, so the K=2 view (via binary(), with
//    class 1 = positive) is bitwise-equal to ConfusionMatrix — the
//    K=2 compatibility shim the refactor's acceptance criteria pin.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/label_schema.hpp"

namespace gea::ml {

struct ConfusionMatrix {
  std::size_t tp = 0;  // malicious predicted malicious
  std::size_t tn = 0;  // benign predicted benign
  std::size_t fp = 0;  // benign predicted malicious
  std::size_t fn = 0;  // malicious predicted benign

  std::size_t total() const { return tp + tn + fp + fn; }
  double accuracy() const;
  /// FNR = FN / (FN + TP): malware that slipped through.
  double fnr() const;
  /// FPR = FP / (FP + TN): benign flagged as malware.
  double fpr() const;
  double precision() const;
  double recall() const;
  double f1() const;

  std::string to_string() const;
};

ConfusionMatrix confusion(const std::vector<std::uint8_t>& predicted,
                          const std::vector<std::uint8_t>& actual);

/// K×K confusion matrix. counts[actual * k + predicted]; rows are truth,
/// columns are predictions, so row sums are per-class support and column
/// sums are per-class prediction volume.
struct MultiConfusion {
  std::size_t k = 0;
  std::vector<std::size_t> counts;  // k*k, row-major [actual][predicted]

  explicit MultiConfusion(std::size_t num_classes = 0)
      : k(num_classes), counts(num_classes * num_classes, 0) {}

  std::size_t at(std::size_t actual, std::size_t predicted) const {
    return counts[actual * k + predicted];
  }
  std::size_t& at(std::size_t actual, std::size_t predicted) {
    return counts[actual * k + predicted];
  }

  std::size_t total() const;
  std::size_t row_sum(std::size_t actual) const;     // class support
  std::size_t col_sum(std::size_t predicted) const;  // prediction volume
  std::size_t diagonal() const;                      // correct predictions

  double accuracy() const;
  /// Precision/recall/F1 for one class (one-vs-rest), 0.0 on empty
  /// denominators — identical arithmetic to the binary struct.
  double precision(std::size_t cls) const;
  double recall(std::size_t cls) const;
  double f1(std::size_t cls) const;
  /// Unweighted mean of per-class F1 — the family-classification headline.
  double macro_f1() const;

  /// Collapse onto the paper's binary matrix treating `positive_class` as
  /// malicious and everything else as benign. For k=2 with
  /// positive_class=1 this reproduces ConfusionMatrix bitwise (the counts
  /// are the same integers, and each derived rate runs the same single
  /// double division).
  ConfusionMatrix binary(std::size_t positive_class = 1) const;

  std::string to_string() const;
  /// to_string with schema class names as row/column headers.
  std::string to_string(const LabelSchema& schema) const;
};

/// Tally a K×K matrix. Throws std::invalid_argument on size mismatch or a
/// label outside [0, k) — out-of-schema labels are a producer bug, never
/// silently folded into a class.
MultiConfusion confusion_k(std::size_t num_classes,
                           const std::vector<std::uint8_t>& predicted,
                           const std::vector<std::uint8_t>& actual);

}  // namespace gea::ml
