#include "ml/zoo.hpp"

#include <memory>

#include "ml/activations.hpp"
#include "ml/conv1d.hpp"
#include "ml/dense.hpp"
#include "ml/pooling.hpp"

namespace gea::ml {

Model make_paper_cnn(std::size_t input_dim, std::size_t num_classes,
                     util::Rng& dropout_rng) {
  // Flattened size after the two conv blocks for L=23:
  // 23 -(same)-> 23 -(valid)-> 21 -(pool2)-> 10 -(same)-> 10 -(valid)-> 8
  // -(pool2)-> 4; 92 channels * 4 = 368, matching the paper.
  const std::size_t l1 = input_dim;          // conv1 same
  const std::size_t l2 = l1 - 2;             // conv2 valid
  const std::size_t l3 = l2 / 2;             // pool
  const std::size_t l4 = l3;                 // conv3 same
  const std::size_t l5 = l4 - 2;             // conv4 valid
  const std::size_t l6 = l5 / 2;             // pool
  const std::size_t flat = 92 * l6;

  Model m;
  m.add(std::make_unique<Conv1D>(1, 46, 3, Padding::kSame))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Conv1D>(46, 46, 3, Padding::kValid))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool1D>(2))
      .add(std::make_unique<Dropout>(0.25, dropout_rng))
      .add(std::make_unique<Conv1D>(46, 92, 3, Padding::kSame))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Conv1D>(92, 92, 3, Padding::kValid))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool1D>(2))
      .add(std::make_unique<Dropout>(0.25, dropout_rng))
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>(flat, 512))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dropout>(0.5, dropout_rng))
      .add(std::make_unique<Dense>(512, num_classes));
  return m;
}

Model make_mlp_baseline(std::size_t input_dim, std::size_t num_classes) {
  Model m;
  m.add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>(input_dim, 64))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(64, 32))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(32, num_classes));
  return m;
}

}  // namespace gea::ml
