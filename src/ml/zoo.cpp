#include "ml/zoo.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "ml/activations.hpp"
#include "ml/conv1d.hpp"
#include "ml/dense.hpp"
#include "ml/pooling.hpp"

namespace gea::ml {

Model make_paper_cnn(std::size_t input_dim, std::size_t num_classes,
                     util::Rng& dropout_rng) {
  // Flattened size after the two conv blocks for L=23:
  // 23 -(same)-> 23 -(valid)-> 21 -(pool2)-> 10 -(same)-> 10 -(valid)-> 8
  // -(pool2)-> 4; 92 channels * 4 = 368, matching the paper.
  const std::size_t l1 = input_dim;          // conv1 same
  const std::size_t l2 = l1 - 2;             // conv2 valid
  const std::size_t l3 = l2 / 2;             // pool
  const std::size_t l4 = l3;                 // conv3 same
  const std::size_t l5 = l4 - 2;             // conv4 valid
  const std::size_t l6 = l5 / 2;             // pool
  const std::size_t flat = 92 * l6;

  Model m;
  m.add(std::make_unique<Conv1D>(1, 46, 3, Padding::kSame))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Conv1D>(46, 46, 3, Padding::kValid))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool1D>(2))
      .add(std::make_unique<Dropout>(0.25, dropout_rng))
      .add(std::make_unique<Conv1D>(46, 92, 3, Padding::kSame))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Conv1D>(92, 92, 3, Padding::kValid))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<MaxPool1D>(2))
      .add(std::make_unique<Dropout>(0.25, dropout_rng))
      .add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>(flat, 512))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dropout>(0.5, dropout_rng))
      .add(std::make_unique<Dense>(512, num_classes));
  return m;
}

Model make_mlp_baseline(std::size_t input_dim, std::size_t num_classes) {
  Model m;
  m.add(std::make_unique<Flatten>())
      .add(std::make_unique<Dense>(input_dim, 64))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(64, 32))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(32, num_classes));
  return m;
}

Model make_family_cnn(std::size_t input_dim, const LabelSchema& schema,
                      util::Rng& dropout_rng) {
  return make_paper_cnn(input_dim, schema.num_classes(), dropout_rng);
}

namespace {

/// d log softmax_c / dx = g_c - sum_j p_j g_j, where g_j are logit
/// gradients. One grad_logit + one grad_weighted call per invocation.
std::vector<double> log_prob_grad(DifferentiableClassifier& clf,
                                  const std::vector<double>& x,
                                  std::size_t c) {
  std::vector<double> grad = clf.grad_logit(x, c);
  const std::vector<double> probs = clf.probabilities(x);
  const std::vector<double> mix = clf.grad_weighted(x, probs);
  for (std::size_t i = 0; i < grad.size(); ++i) grad[i] -= mix[i];
  return grad;
}

}  // namespace

HierarchicalClassifier::HierarchicalClassifier(
    std::unique_ptr<DifferentiableClassifier> detector,
    std::unique_ptr<DifferentiableClassifier> family, LabelSchema schema)
    : detector_(std::move(detector)),
      family_(std::move(family)),
      schema_(std::move(schema)) {
  if (!detector_ || detector_->num_classes() != 2) {
    throw std::invalid_argument(
        "HierarchicalClassifier: detector must be binary");
  }
  if (!family_ || family_->num_classes() != schema_.num_classes() - 1) {
    throw std::invalid_argument(
        "HierarchicalClassifier: family head width must be K-1");
  }
  if (detector_->input_dim() != family_->input_dim()) {
    throw std::invalid_argument(
        "HierarchicalClassifier: stage input dims differ");
  }
}

std::size_t HierarchicalClassifier::input_dim() const {
  return detector_->input_dim();
}

std::vector<double> HierarchicalClassifier::logits(
    const std::vector<double>& x) {
  const std::vector<double> det = detector_->probabilities(x);
  const std::vector<double> fam = family_->probabilities(x);
  // Log of the product distribution; the floor keeps log() finite when a
  // stage saturates (softmax over doubles can underflow to exactly 0).
  constexpr double kFloor = 1e-300;
  std::vector<double> out(schema_.num_classes());
  for (std::size_t k = 0; k < out.size(); ++k) {
    const double p =
        schema_.is_benign(k) ? det[0] : det[1] * fam[schema_.malicious_index(k)];
    out[k] = std::log(std::max(p, kFloor));
  }
  return out;
}

std::vector<double> HierarchicalClassifier::grad_logit(
    const std::vector<double>& x, std::size_t k) {
  if (schema_.is_benign(k)) return log_prob_grad(*detector_, x, 0);
  // d log(det_1 * fam_i) = d log det_1 + d log fam_i.
  std::vector<double> grad = log_prob_grad(*detector_, x, 1);
  const std::vector<double> fam_grad =
      log_prob_grad(*family_, x, schema_.malicious_index(k));
  for (std::size_t i = 0; i < grad.size(); ++i) grad[i] += fam_grad[i];
  return grad;
}

std::unique_ptr<DifferentiableClassifier> HierarchicalClassifier::clone()
    const {
  auto det = detector_->clone();
  auto fam = family_->clone();
  if (!det || !fam) return nullptr;
  return std::unique_ptr<DifferentiableClassifier>(
      new HierarchicalClassifier(std::move(det), std::move(fam), schema_));
}

}  // namespace gea::ml
