// Max pooling over the length axis of (N, C, L) tensors.
#pragma once

#include "ml/layer.hpp"

namespace gea::ml {

/// MaxPool1D with equal window and stride (the paper uses 2/2). Trailing
/// positions that do not fill a full window are dropped (floor semantics).
class MaxPool1D : public Layer {
 public:
  explicit MaxPool1D(std::size_t window);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  /// Inference fast path: max without the argmax bookkeeping.
  Tensor infer(const Tensor& x) override;
  std::string describe() const override;
  LayerPtr clone() const override { return std::make_unique<MaxPool1D>(window_); }

 private:
  std::size_t window_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
  std::vector<std::size_t> in_shape_;
};

}  // namespace gea::ml
