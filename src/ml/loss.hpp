// Softmax and cross-entropy with logits.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/tensor.hpp"

namespace gea::ml {

/// Row-wise softmax of a (N, K) logits tensor (numerically stabilized).
Tensor softmax(const Tensor& logits);

/// Mean cross-entropy of (N, K) logits against integer labels.
double cross_entropy(const Tensor& logits, const std::vector<std::uint8_t>& labels);

/// Gradient of mean cross-entropy w.r.t. logits: (softmax - onehot) / N.
Tensor cross_entropy_grad(const Tensor& logits,
                          const std::vector<std::uint8_t>& labels);

/// argmax per row of a (N, K) tensor.
std::vector<std::uint8_t> argmax_rows(const Tensor& scores);

}  // namespace gea::ml
