#include "ml/activations.hpp"

#include <sstream>
#include <stdexcept>

namespace gea::ml {

Tensor ReLU::forward(const Tensor& x, bool /*training*/) {
  Tensor y = x;
  mask_.assign(x.size(), false);
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] > 0.0f) {
      mask_[i] = true;
    } else {
      y[i] = 0.0f;
    }
  }
  return y;
}

Tensor ReLU::infer(const Tensor& x) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] <= 0.0f) y[i] = 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (grad_out.size() != mask_.size()) {
    throw std::invalid_argument("ReLU::backward: gradient size mismatch");
  }
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    if (!mask_[i]) grad_in[i] = 0.0f;
  }
  return grad_in;
}

Dropout::Dropout(double p, util::Rng& rng) : p_(p), rng_(&rng) {
  if (p < 0.0 || p >= 1.0) throw std::invalid_argument("Dropout: p must be in [0,1)");
}

Tensor Dropout::forward(const Tensor& x, bool training) {
  last_training_ = training;
  if (!training || p_ == 0.0) return x;
  Tensor y = x;
  mask_.assign(x.size(), 0.0f);
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (!rng_->chance(p_)) mask_[i] = keep_scale;
    y[i] *= mask_[i];
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (!last_training_ || p_ == 0.0) return grad_out;
  if (grad_out.size() != mask_.size()) {
    throw std::invalid_argument("Dropout::backward: gradient size mismatch");
  }
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i) grad_in[i] *= mask_[i];
  return grad_in;
}

std::string Dropout::describe() const {
  std::ostringstream ss;
  ss << "Dropout(p=" << p_ << ")";
  return ss.str();
}

Tensor Flatten::forward(const Tensor& x, bool /*training*/) {
  if (x.rank() < 2) {
    throw std::invalid_argument("Flatten::forward: expected rank>=2, got " +
                                x.shape_string());
  }
  in_shape_ = x.shape();
  Tensor y = x;
  std::size_t rest = 1;
  for (std::size_t i = 1; i < in_shape_.size(); ++i) rest *= in_shape_[i];
  y.reshape({in_shape_[0], rest});
  return y;
}

Tensor Flatten::infer(const Tensor& x) {
  if (x.rank() < 2) {
    throw std::invalid_argument("Flatten::infer: expected rank>=2, got " +
                                x.shape_string());
  }
  Tensor y = x;
  std::size_t rest = 1;
  for (std::size_t i = 1; i < x.rank(); ++i) rest *= x.dim(i);
  y.reshape({x.dim(0), rest});
  return y;
}

Tensor Flatten::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  grad_in.reshape(in_shape_);
  return grad_in;
}

}  // namespace gea::ml
