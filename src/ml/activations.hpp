// Stateless / mask-based layers: ReLU, Dropout, Flatten.
#pragma once

#include "ml/layer.hpp"

namespace gea::ml {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  /// Inference fast path: clamp without building the backward mask.
  Tensor infer(const Tensor& x) override;
  std::string describe() const override { return "ReLU"; }
  LayerPtr clone() const override { return std::make_unique<ReLU>(); }

 private:
  std::vector<bool> mask_;  // true where input > 0
};

/// Inverted dropout: at train time zeroes activations with probability `p`
/// and scales survivors by 1/(1-p); identity at inference, so attacks (which
/// run inference-mode forwards) see the deterministic network.
class Dropout : public Layer {
 public:
  Dropout(double p, util::Rng& rng);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  /// Identity at inference (inverted dropout), so no work and no Rng draw.
  Tensor infer(const Tensor& x) override { return x; }
  std::string describe() const override;
  /// The clone shares this instance's Rng pointer; parallel callers rebind
  /// it per chunk via bind_rng before any training-mode forward.
  LayerPtr clone() const override { return std::make_unique<Dropout>(p_, *rng_); }
  void bind_rng(util::Rng* rng) override { rng_ = rng; }

 private:
  double p_;
  util::Rng* rng_;
  std::vector<float> mask_;  // multiplier applied elementwise at train time
  bool last_training_ = false;
};

/// (N, C, L) -> (N, C*L).
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  /// Reshape without remembering the input shape for backward.
  Tensor infer(const Tensor& x) override;
  std::string describe() const override { return "Flatten"; }
  LayerPtr clone() const override { return std::make_unique<Flatten>(); }

 private:
  std::vector<std::size_t> in_shape_;
};

}  // namespace gea::ml
