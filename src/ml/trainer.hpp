// Minibatch training loop.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ml/metrics.hpp"
#include "ml/model.hpp"
#include "ml/optimizer.hpp"
#include "util/rng.hpp"

namespace gea::ml {

/// A labeled dataset of flat feature vectors (rows of equal length).
struct LabeledData {
  std::vector<std::vector<double>> rows;
  std::vector<std::uint8_t> labels;

  std::size_t size() const { return rows.size(); }
  /// Pack rows [begin, end) into a (n, 1, D) tensor.
  Tensor batch_tensor(const std::vector<std::size_t>& indices,
                      std::size_t begin, std::size_t end) const;
};

struct TrainConfig {
  std::size_t epochs = 200;      // paper: 200 epochs
  std::size_t batch_size = 100;  // paper: batch size 100
  double learning_rate = 1e-3;
  std::uint64_t seed = 42;
  /// Stop once the epoch's mean training loss drops below this (0 = off).
  double early_stop_loss = 0.0;
  /// Invoked after each epoch with (epoch, mean training loss).
  std::function<void(std::size_t, double)> on_epoch;
  /// Gradient-computation threads. 1 (default) = the exact legacy
  /// whole-batch path. 0 (auto) or N > 1 = the chunked data-parallel path:
  /// each batch splits into a fixed number of chunks, one model replica per
  /// chunk, gradients merged in chunk order. The chunk structure depends
  /// only on the batch size, so chunked results are bitwise identical at
  /// any worker count — but not bitwise equal to the legacy path (different
  /// floating-point summation order and per-chunk dropout streams).
  /// Requires a clonable model; otherwise falls back to the legacy path.
  std::size_t threads = 1;
};

struct TrainStats {
  std::vector<double> epoch_losses;
  double final_loss = 0.0;
};

/// Train `model` in place with Adam + softmax cross-entropy.
TrainStats train(Model& model, const LabeledData& data, const TrainConfig& cfg);

/// Predicted labels for every row (inference mode, batched).
std::vector<std::uint8_t> predict_all(Model& model, const LabeledData& data,
                                      std::size_t batch_size = 256);

/// Convenience: train-set/test-set evaluation.
ConfusionMatrix evaluate(Model& model, const LabeledData& data);

}  // namespace gea::ml
