#include "ml/label_schema.hpp"

#include <algorithm>
#include <cctype>

namespace gea::ml {

using util::ErrorCode;
using util::Status;

namespace {

constexpr std::string_view kSchemaTag = "gea-schema-v1";

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  return std::all_of(name.begin(), name.end(), [](unsigned char c) {
    return c >= 0x20 && c != ',' && c != '|';
  });
}

}  // namespace

LabelSchema::LabelSchema() : names_{"benign", "malicious"}, benign_(0) {}

util::Result<LabelSchema> LabelSchema::make(std::vector<std::string> names,
                                            std::size_t benign_class) {
  if (names.size() < 2) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "label schema needs at least two classes, got " +
                             std::to_string(names.size()));
  }
  if (benign_class >= names.size()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "benign class " + std::to_string(benign_class) +
                             " out of range for " +
                             std::to_string(names.size()) + " classes");
  }
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (!valid_name(names[i])) {
      return Status::error(ErrorCode::kInvalidArgument,
                           "class " + std::to_string(i) +
                               " has an empty or undelimitable name");
    }
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      if (names[i] == names[j]) {
        return Status::error(ErrorCode::kInvalidArgument,
                             "duplicate class name '" + names[i] + "'");
      }
    }
  }
  return LabelSchema(std::move(names), benign_class);
}

bool LabelSchema::is_binary() const {
  return names_.size() == 2 && benign_ == 0 && names_[0] == "benign" &&
         names_[1] == "malicious";
}

std::optional<std::size_t> LabelSchema::class_from_name(
    std::string_view name) const {
  for (std::size_t k = 0; k < names_.size(); ++k) {
    if (names_[k] == name) return k;
  }
  return std::nullopt;
}

std::size_t LabelSchema::malicious_class(std::size_t i) const {
  // Skip the benign slot: with benign_=0 this is simply i+1.
  return i < benign_ ? i : i + 1;
}

std::size_t LabelSchema::malicious_index(std::size_t k) const {
  return k < benign_ ? k : k - 1;
}

std::string LabelSchema::serialize() const {
  std::string out(kSchemaTag);
  out += "|benign=" + std::to_string(benign_) + "|";
  for (std::size_t k = 0; k < names_.size(); ++k) {
    if (k > 0) out += ',';
    out += names_[k];
  }
  return out;
}

util::Result<LabelSchema> LabelSchema::deserialize(std::string_view text) {
  const auto bar1 = text.find('|');
  if (bar1 == std::string_view::npos || text.substr(0, bar1) != kSchemaTag) {
    return Status::error(ErrorCode::kParseError,
                         "label schema: missing '" + std::string(kSchemaTag) +
                             "' tag");
  }
  const auto bar2 = text.find('|', bar1 + 1);
  if (bar2 == std::string_view::npos) {
    return Status::error(ErrorCode::kParseError,
                         "label schema: missing class list");
  }
  const std::string_view benign_field = text.substr(bar1 + 1, bar2 - bar1 - 1);
  constexpr std::string_view kBenignKey = "benign=";
  if (benign_field.substr(0, kBenignKey.size()) != kBenignKey) {
    return Status::error(ErrorCode::kParseError,
                         "label schema: missing benign class");
  }
  const std::string_view digits = benign_field.substr(kBenignKey.size());
  if (digits.empty() ||
      !std::all_of(digits.begin(), digits.end(),
                   [](unsigned char c) { return std::isdigit(c) != 0; })) {
    return Status::error(ErrorCode::kParseError,
                         "label schema: malformed benign class '" +
                             std::string(digits) + "'");
  }
  std::size_t benign = 0;
  for (char c : digits) {
    benign = benign * 10 + static_cast<std::size_t>(c - '0');
    if (benign > 4096) {
      return Status::error(ErrorCode::kParseError,
                           "label schema: absurd benign class");
    }
  }

  std::vector<std::string> names;
  std::string_view rest = text.substr(bar2 + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    names.emplace_back(rest.substr(0, comma));
    if (comma == std::string_view::npos) break;
    rest = rest.substr(comma + 1);
  }
  auto made = make(std::move(names), benign);
  if (!made.is_ok()) {
    return Status(made.status()).with_context("LabelSchema::deserialize");
  }
  return made;
}

std::uint64_t LabelSchema::digest() const {
  // FNV-1a 64 over the canonical serialized form.
  const std::string text = serialize();
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace gea::ml
