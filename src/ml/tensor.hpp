// Dense float32 tensor with row-major layout.
//
// The networks here are small (a 23-long input through four tiny conv
// layers), so the tensor is a shape header over a flat vector — no views,
// no broadcasting, no BLAS. Layers index it directly.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace gea::ml {

class Tensor {
 public:
  Tensor() = default;
  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  static Tensor from_values(std::vector<std::size_t> shape,
                            std::vector<float> values);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const { return shape_.at(i); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& values() { return data_; }
  const std::vector<float>& values() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 2D indexing (rank must be 2).
  float& at2(std::size_t i, std::size_t j) {
    return data_[i * shape_[1] + j];
  }
  float at2(std::size_t i, std::size_t j) const {
    return data_[i * shape_[1] + j];
  }
  /// 3D indexing (rank must be 3).
  float& at3(std::size_t i, std::size_t j, std::size_t k) {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float at3(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  void fill(float v);
  void zero() { fill(0.0f); }

  /// Reshape in place; total size must be preserved.
  void reshape(std::vector<std::size_t> shape);

  /// Elementwise helpers used by optimizers and attacks.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float s);

  double l1_norm() const;
  double l2_norm() const;
  double linf_norm() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }
  std::string shape_string() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace gea::ml
