#include "defense/gea_augmentation.hpp"

#include <stdexcept>

#include "cfg/cfg.hpp"
#include "features/engine.hpp"

namespace gea::defense {

ml::LabeledData augment_with_gea(const dataset::Corpus& corpus,
                                 const std::vector<std::size_t>& train_indices,
                                 const features::FeatureScaler& scaler,
                                 const GeaAugmentConfig& cfg, util::Rng& rng) {
  ml::LabeledData data;
  std::vector<std::size_t> benign, malicious;
  for (std::size_t i : train_indices) {
    const auto& s = corpus.samples()[i];
    (s.label == dataset::kBenign ? benign : malicious).push_back(i);
    const auto scaled = scaler.transform(s.features);
    data.rows.emplace_back(scaled.begin(), scaled.end());
    data.labels.push_back(s.label);
  }
  if (benign.empty() || malicious.empty()) {
    throw std::invalid_argument("augment_with_gea: need both classes in train");
  }

  // One engine across the augmentation loop: every merged CFG reuses the
  // same traversal scratch.
  features::FeatureEngine engine;
  for (std::size_t k = 0; k < cfg.num_augmented; ++k) {
    const bool mal_source = k % 2 == 0;
    const auto& sources = mal_source ? malicious : benign;
    const auto& targets = mal_source ? benign : malicious;
    const auto& src = corpus.samples()[rng.choice(sources)];
    const auto& tgt = corpus.samples()[rng.choice(targets)];

    const auto merged = aug::embed_program(src.program, tgt.program, cfg.embed);
    const auto fv =
        engine.extract(cfg::extract_cfg(merged, {.main_only = true}).graph);
    const auto scaled = scaler.transform(fv);
    data.rows.emplace_back(scaled.begin(), scaled.end());
    data.labels.push_back(src.label);  // the graft does not change behaviour
  }
  return data;
}

}  // namespace gea::defense
