#include "defense/squeeze.hpp"

#include <cmath>
#include <stdexcept>

namespace gea::defense {

std::vector<double> squeeze(const std::vector<double>& x, std::size_t levels) {
  if (levels < 2) throw std::invalid_argument("squeeze: levels must be >= 2");
  const double steps = static_cast<double>(levels - 1);
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = std::round(x[i] * steps) / steps;
  }
  return out;
}

SqueezedClassifier::SqueezedClassifier(ml::DifferentiableClassifier& inner,
                                       std::size_t levels)
    : inner_(&inner), levels_(levels) {
  if (levels < 2) throw std::invalid_argument("SqueezedClassifier: levels");
}

std::vector<double> SqueezedClassifier::logits(const std::vector<double>& x) {
  return inner_->logits(squeeze(x, levels_));
}

std::vector<double> SqueezedClassifier::grad_logit(const std::vector<double>& x,
                                                   std::size_t k) {
  return inner_->grad_logit(squeeze(x, levels_), k);
}

std::vector<double> SqueezedClassifier::grad_weighted(
    const std::vector<double>& x, const std::vector<double>& weights) {
  return inner_->grad_weighted(squeeze(x, levels_), weights);
}

bool squeeze_detects_adversarial(ml::DifferentiableClassifier& clf,
                                 const std::vector<double>& x,
                                 std::size_t levels, double threshold) {
  const auto raw = clf.probabilities(x);
  const auto sq = clf.probabilities(squeeze(x, levels));
  std::size_t raw_pred = 0, sq_pred = 0;
  double delta = 0.0;
  for (std::size_t k = 0; k < raw.size(); ++k) {
    if (raw[k] > raw[raw_pred]) raw_pred = k;
    if (sq[k] > sq[sq_pred]) sq_pred = k;
    delta = std::max(delta, std::abs(raw[k] - sq[k]));
  }
  return raw_pred != sq_pred || delta > threshold;
}

}  // namespace gea::defense
