// Feature squeezing (Xu et al., NDSS 2018) adapted to CFG features:
// quantize the scaled feature vector to a small number of levels before
// classification, and flag inputs whose prediction disagrees between the
// squeezed and raw views as adversarial.
#pragma once

#include <memory>

#include "ml/model.hpp"

namespace gea::defense {

/// Quantize each coordinate of a [0,1] vector to `levels` evenly spaced
/// values (levels >= 2).
std::vector<double> squeeze(const std::vector<double>& x, std::size_t levels);

/// A classifier view that squeezes inputs before every query. Gradients are
/// taken at the squeezed point (straight-through), so white-box attacks
/// still "work" but optimize a staircase.
class SqueezedClassifier : public ml::DifferentiableClassifier {
 public:
  SqueezedClassifier(ml::DifferentiableClassifier& inner, std::size_t levels);

  std::size_t input_dim() const override { return inner_->input_dim(); }
  std::size_t num_classes() const override { return inner_->num_classes(); }
  std::vector<double> logits(const std::vector<double>& x) override;
  std::vector<double> grad_logit(const std::vector<double>& x,
                                 std::size_t k) override;
  std::vector<double> grad_weighted(
      const std::vector<double>& x,
      const std::vector<double>& weights) override;

 private:
  ml::DifferentiableClassifier* inner_;
  std::size_t levels_;
};

/// Detection rule: adversarial iff the raw and squeezed predictions differ,
/// or the max softmax probability moves by more than `threshold`.
bool squeeze_detects_adversarial(ml::DifferentiableClassifier& clf,
                                 const std::vector<double>& x,
                                 std::size_t levels = 8,
                                 double threshold = 0.5);

}  // namespace gea::defense
