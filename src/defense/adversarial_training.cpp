#include "defense/adversarial_training.hpp"

#include <numeric>
#include <stdexcept>

#include "ml/loss.hpp"
#include "ml/optimizer.hpp"

namespace gea::defense {

ml::TrainStats adversarial_train(ml::Model& model, const ml::LabeledData& data,
                                 const AdvTrainConfig& cfg) {
  if (data.rows.empty()) {
    throw std::invalid_argument("adversarial_train: empty dataset");
  }
  const std::size_t dim = data.rows.front().size();
  ml::ModelClassifier clf(model, dim, 2);
  attacks::Pgd pgd(cfg.pgd);

  util::Rng rng(cfg.seed);
  ml::Adam opt(cfg.base.learning_rate);
  ml::TrainStats stats;

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < cfg.base.epochs; ++epoch) {
    rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < order.size();
         begin += cfg.base.batch_size) {
      const std::size_t end =
          std::min(begin + cfg.base.batch_size, order.size());
      const std::size_t n = end - begin;

      // Assemble the (possibly adversarial) batch. Crafting runs the model
      // in inference mode and leaves stale layer caches / param grads; both
      // are reset by the training forward + zero_grad below.
      ml::Tensor x({n, 1, dim});
      std::vector<std::uint8_t> y(n);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t s = order[begin + i];
        y[i] = data.labels[s];
        std::vector<double> row = data.rows[s];
        if (rng.chance(cfg.adversarial_fraction)) {
          row = pgd.craft(clf, row, y[i] == 0 ? 1 : 0);
        }
        for (std::size_t j = 0; j < dim; ++j) {
          x[i * dim + j] = static_cast<float>(row[j]);
        }
      }

      model.zero_grad();
      const ml::Tensor logits = model.forward(x, /*training=*/true);
      loss_sum += ml::cross_entropy(logits, y);
      ++batches;
      model.backward(ml::cross_entropy_grad(logits, y));
      opt.step(model.params());
    }
    const double mean_loss = loss_sum / static_cast<double>(batches);
    stats.epoch_losses.push_back(mean_loss);
    if (cfg.base.on_epoch) cfg.base.on_epoch(epoch, mean_loss);
    if (cfg.base.early_stop_loss > 0.0 && mean_loss < cfg.base.early_stop_loss) {
      break;
    }
  }
  stats.final_loss =
      stats.epoch_losses.empty() ? 0.0 : stats.epoch_losses.back();
  return stats;
}

}  // namespace gea::defense
