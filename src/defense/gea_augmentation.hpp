// GEA-aware data augmentation: extend the training set with GEA-spliced
// samples carrying their *true* (source) label, so the detector learns that
// a malware CFG with a benign graft is still malware.
//
// This is the structural analogue of adversarial training, aimed at the
// attack the paper shows feature-space defenses cannot touch.
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/corpus.hpp"
#include "features/scaler.hpp"
#include "gea/embed.hpp"
#include "ml/trainer.hpp"
#include "util/rng.hpp"

namespace gea::defense {

struct GeaAugmentConfig {
  /// Number of augmented samples to add (split evenly across directions).
  std::size_t num_augmented = 500;
  aug::EmbedOptions embed{};
};

/// Build a LabeledData of scaled rows for `train_indices`, then append
/// `num_augmented` GEA splices of random train-set pairs (malicious source
/// + benign target and vice versa), labeled with the source class.
ml::LabeledData augment_with_gea(const dataset::Corpus& corpus,
                                 const std::vector<std::size_t>& train_indices,
                                 const features::FeatureScaler& scaler,
                                 const GeaAugmentConfig& cfg, util::Rng& rng);

}  // namespace gea::defense
