// Adversarial training (Madry-style): harden the detector by training on
// PGD adversarial examples crafted against the current model.
//
// The paper's conclusion calls for "more robust detection tools against
// adversarial learning"; this is the canonical baseline defense for the
// feature-space attacks, and the `ablation_defense` bench measures how far
// it gets (spoiler: it blunts the bounded gradient attacks but cannot
// answer GEA, whose perturbations are unbounded in feature space —
// supporting the paper's position that the features themselves are the
// weakness).
#pragma once

#include "attacks/pgd.hpp"
#include "ml/model.hpp"
#include "ml/trainer.hpp"

namespace gea::defense {

struct AdvTrainConfig {
  ml::TrainConfig base{};
  /// Probability that a training sample is replaced by its PGD adversarial
  /// counterpart (crafted against the evolving model).
  double adversarial_fraction = 0.5;
  attacks::PgdConfig pgd{.epsilon = 0.3,
                         .iterations = 7,
                         .step = -1.0,
                         .random_start = true,
                         .seed = 99};
  std::uint64_t seed = 4242;
};

/// Train `model` on a mixture of clean and per-epoch PGD-perturbed samples.
/// `model` must map (N,1,D) inputs to (N,K) logits; the classifier adapter
/// is built internally.
ml::TrainStats adversarial_train(ml::Model& model, const ml::LabeledData& data,
                                 const AdvTrainConfig& cfg);

}  // namespace gea::defense
