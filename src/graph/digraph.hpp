// Directed graph used to represent control-flow graphs.
//
// Nodes are dense integer ids [0, num_nodes). The graph is a simple directed
// graph: parallel edges are collapsed by `add_edge`, self-loops are allowed
// (a one-block infinite loop produces one). Both out- and in-adjacency are
// maintained so that centrality algorithms over the reverse graph need no
// copy.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace gea::graph {

using NodeId = std::uint32_t;

/// Mutable simple directed graph with O(1) node append and O(deg) edge insert.
class DiGraph {
 public:
  DiGraph() = default;
  /// Construct with `n` isolated nodes.
  explicit DiGraph(std::size_t n);

  /// Append one node; returns its id.
  NodeId add_node();
  /// Append one node carrying a display label (used in DOT export).
  NodeId add_node(std::string label);

  /// Insert edge u->v if absent. Returns true if the edge was new.
  /// Throws std::out_of_range for invalid endpoints.
  bool add_edge(NodeId u, NodeId v);

  std::size_t num_nodes() const { return out_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  bool has_edge(NodeId u, NodeId v) const;

  std::span<const NodeId> out_neighbors(NodeId u) const;
  std::span<const NodeId> in_neighbors(NodeId u) const;

  std::size_t out_degree(NodeId u) const { return out_.at(u).size(); }
  std::size_t in_degree(NodeId u) const { return in_.at(u).size(); }
  std::size_t degree(NodeId u) const { return out_degree(u) + in_degree(u); }

  const std::string& label(NodeId u) const { return labels_.at(u); }
  void set_label(NodeId u, std::string label) { labels_.at(u) = std::move(label); }

  /// Density for a simple directed graph: |E| / (|V| (|V|-1)).
  /// Zero for graphs with fewer than two nodes.
  double density() const;

  /// Disjoint union: appends `other`'s nodes (ids shifted by num_nodes())
  /// and edges into this graph. Returns the id offset applied to `other`.
  NodeId merge_disjoint(const DiGraph& other);

  /// Structural equality (same node count, same edge set, labels ignored).
  bool same_structure(const DiGraph& other) const;

  /// Internal-consistency check (out/in adjacency mirror each other, ids in
  /// range, no duplicate edges). Returns an error description, or nullopt.
  std::optional<std::string> validate() const;

 private:
  void check_node(NodeId u) const;

  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::vector<std::string> labels_;
  std::size_t num_edges_ = 0;
};

}  // namespace gea::graph
