// Path and connectivity algorithms over DiGraph (all edges unit weight —
// CFG edges carry no weights).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/digraph.hpp"

namespace gea::graph {

/// Sentinel distance for unreachable nodes.
inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

/// BFS distances from `source` following out-edges.
/// result[v] == kUnreachable if v cannot be reached.
std::vector<std::uint32_t> bfs_distances(const DiGraph& g, NodeId source);

/// BFS distances to `sink` following in-edges (i.e. distances in the
/// reverse graph). Used by closeness centrality.
std::vector<std::uint32_t> bfs_distances_reverse(const DiGraph& g, NodeId sink);

/// All finite directed shortest-path lengths d(u,v), u != v, as a flat list.
/// This is the "shortest path" feature population of Table II.
/// O(V * (V + E)); fine for CFG-sized graphs.
/// Delegates to the single-sweep core (graph/sweep.hpp).
std::vector<double> all_shortest_path_lengths(const DiGraph& g);

/// Average over all finite shortest paths; 0 if none exist.
double average_shortest_path_length(const DiGraph& g);

/// Weakly connected component id per node (edge direction ignored);
/// component ids are dense and assigned in discovery order.
std::vector<std::uint32_t> weakly_connected_components(const DiGraph& g);
std::size_t num_weakly_connected_components(const DiGraph& g);

/// Set of nodes reachable from `source` (including itself).
std::vector<bool> reachable_from(const DiGraph& g, NodeId source);

/// True if every node is reachable from `source` — the well-formedness
/// condition for a CFG rooted at its entry block.
bool all_reachable_from(const DiGraph& g, NodeId source);

/// Topological order if the graph is a DAG, empty vector otherwise.
std::vector<NodeId> topological_order(const DiGraph& g);

/// True if the graph contains a directed cycle.
bool has_cycle(const DiGraph& g);

}  // namespace gea::graph
