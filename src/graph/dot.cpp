#include "graph/dot.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gea::graph {

namespace {
std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\l"; break;  // left-justified line break
      default: out += c;
    }
  }
  return out;
}
}  // namespace

std::string to_dot(const DiGraph& g, const DotOptions& opts) {
  std::ostringstream out;
  out << "digraph " << opts.graph_name << " {\n";
  if (opts.rankdir_lr) out << "  rankdir=LR;\n";
  out << "  node [shape=box, fontname=\"monospace\"];\n";
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    out << "  n" << u;
    if (opts.use_labels && !g.label(static_cast<NodeId>(u)).empty()) {
      out << " [label=\"" << escape_label(g.label(static_cast<NodeId>(u)))
          << "\"]";
    }
    out << ";\n";
  }
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.out_neighbors(static_cast<NodeId>(u))) {
      out << "  n" << u << " -> n" << v << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

void write_dot(const DiGraph& g, const std::string& path,
               const DotOptions& opts) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("write_dot: cannot open " + path);
  f << to_dot(g, opts);
}

}  // namespace gea::graph
