// Graphviz DOT export, used to regenerate the Fig. 2/3/4 style CFG
// renderings from the paper.
#pragma once

#include <string>

#include "graph/digraph.hpp"

namespace gea::graph {

struct DotOptions {
  std::string graph_name = "cfg";
  /// Render basic-block labels inside record-shaped nodes.
  bool use_labels = true;
  /// Left-to-right instead of top-down layout.
  bool rankdir_lr = false;
};

/// Render the graph as a DOT document.
std::string to_dot(const DiGraph& g, const DotOptions& opts = {});

/// Write DOT to a file; throws std::runtime_error on I/O failure.
void write_dot(const DiGraph& g, const std::string& path,
               const DotOptions& opts = {});

}  // namespace gea::graph
