#include "graph/algorithms.hpp"

#include <deque>

#include "graph/sweep.hpp"

namespace gea::graph {

namespace {

template <typename NeighborFn>
std::vector<std::uint32_t> bfs_impl(std::size_t n, NodeId source,
                                    NeighborFn&& neighbors) {
  std::vector<std::uint32_t> dist(n, kUnreachable);
  std::deque<NodeId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<std::uint32_t> bfs_distances(const DiGraph& g, NodeId source) {
  return bfs_impl(g.num_nodes(), source,
                  [&](NodeId u) { return g.out_neighbors(u); });
}

std::vector<std::uint32_t> bfs_distances_reverse(const DiGraph& g, NodeId sink) {
  return bfs_impl(g.num_nodes(), sink,
                  [&](NodeId u) { return g.in_neighbors(u); });
}

std::vector<double> all_shortest_path_lengths(const DiGraph& g) {
  std::vector<double> lengths;
  SweepScratch scratch;
  single_sweep(g, scratch, {.path_lengths = &lengths});
  return lengths;
}

double average_shortest_path_length(const DiGraph& g) {
  // Delegates to the single-sweep core via all_shortest_path_lengths.
  const auto lengths = all_shortest_path_lengths(g);
  if (lengths.empty()) return 0.0;
  double s = 0.0;
  for (double d : lengths) s += d;
  return s / static_cast<double>(lengths.size());
}

std::vector<std::uint32_t> weakly_connected_components(const DiGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<std::uint32_t> comp(n, kUnreachable);
  std::uint32_t next = 0;
  std::deque<NodeId> queue;
  for (std::size_t s = 0; s < n; ++s) {
    if (comp[s] != kUnreachable) continue;
    comp[s] = next;
    queue.push_back(static_cast<NodeId>(s));
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      auto visit = [&](NodeId v) {
        if (comp[v] == kUnreachable) {
          comp[v] = next;
          queue.push_back(v);
        }
      };
      for (NodeId v : g.out_neighbors(u)) visit(v);
      for (NodeId v : g.in_neighbors(u)) visit(v);
    }
    ++next;
  }
  return comp;
}

std::size_t num_weakly_connected_components(const DiGraph& g) {
  const auto comp = weakly_connected_components(g);
  std::uint32_t mx = 0;
  for (auto c : comp) mx = std::max(mx, c + 1);
  return g.num_nodes() == 0 ? 0 : mx;
}

std::vector<bool> reachable_from(const DiGraph& g, NodeId source) {
  const auto dist = bfs_distances(g, source);
  std::vector<bool> r(dist.size());
  for (std::size_t i = 0; i < dist.size(); ++i) r[i] = dist[i] != kUnreachable;
  return r;
}

bool all_reachable_from(const DiGraph& g, NodeId source) {
  const auto r = reachable_from(g, source);
  for (bool b : r) {
    if (!b) return false;
  }
  return true;
}

std::vector<NodeId> topological_order(const DiGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<std::uint32_t> indeg(n);
  for (std::size_t u = 0; u < n; ++u) {
    indeg[u] = static_cast<std::uint32_t>(g.in_degree(static_cast<NodeId>(u)));
  }
  std::deque<NodeId> queue;
  for (std::size_t u = 0; u < n; ++u) {
    if (indeg[u] == 0) queue.push_back(static_cast<NodeId>(u));
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (NodeId v : g.out_neighbors(u)) {
      if (--indeg[v] == 0) queue.push_back(v);
    }
  }
  if (order.size() != n) return {};
  return order;
}

bool has_cycle(const DiGraph& g) {
  return g.num_nodes() != 0 && topological_order(g).empty();
}

}  // namespace gea::graph
