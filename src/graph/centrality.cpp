#include "graph/centrality.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <stack>

#include "graph/algorithms.hpp"

namespace gea::graph {

std::vector<double> degree_centrality(const DiGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<double> c(n, 0.0);
  if (n < 2) return c;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t u = 0; u < n; ++u) {
    c[u] = static_cast<double>(g.degree(static_cast<NodeId>(u))) / denom;
  }
  return c;
}

std::vector<double> closeness_centrality(const DiGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<double> c(n, 0.0);
  if (n < 2) return c;
  for (std::size_t v = 0; v < n; ++v) {
    const auto dist = bfs_distances_reverse(g, static_cast<NodeId>(v));
    double total = 0.0;
    std::size_t reached = 0;  // nodes that can reach v, excluding v itself
    for (std::size_t u = 0; u < n; ++u) {
      if (u == v || dist[u] == kUnreachable) continue;
      total += static_cast<double>(dist[u]);
      ++reached;
    }
    if (reached == 0 || total == 0.0) continue;
    const double r = static_cast<double>(reached);
    c[v] = (r / total) * (r / static_cast<double>(n - 1));
  }
  return c;
}

std::vector<double> betweenness_centrality(const DiGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<double> bc(n, 0.0);
  if (n < 3) return bc;

  // Brandes (2001), unweighted directed version.
  std::vector<std::int64_t> sigma(n);      // shortest-path counts
  std::vector<std::int64_t> dist(n);       // BFS distance, -1 = unvisited
  std::vector<double> delta(n);            // dependency accumulator
  std::vector<std::vector<NodeId>> pred(n);

  for (std::size_t s = 0; s < n; ++s) {
    std::fill(sigma.begin(), sigma.end(), 0);
    std::fill(dist.begin(), dist.end(), -1);
    std::fill(delta.begin(), delta.end(), 0.0);
    for (auto& p : pred) p.clear();

    std::stack<NodeId> order;
    std::deque<NodeId> queue;
    sigma[s] = 1;
    dist[s] = 0;
    queue.push_back(static_cast<NodeId>(s));
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      order.push(u);
      for (NodeId w : g.out_neighbors(u)) {
        if (dist[w] < 0) {
          dist[w] = dist[u] + 1;
          queue.push_back(w);
        }
        if (dist[w] == dist[u] + 1) {
          sigma[w] += sigma[u];
          pred[w].push_back(u);
        }
      }
    }
    while (!order.empty()) {
      const NodeId w = order.top();
      order.pop();
      for (NodeId u : pred[w]) {
        delta[u] += static_cast<double>(sigma[u]) /
                    static_cast<double>(sigma[w]) * (1.0 + delta[w]);
      }
      if (w != s) bc[w] += delta[w];
    }
  }

  const double norm = static_cast<double>(n - 1) * static_cast<double>(n - 2);
  for (auto& b : bc) b /= norm;
  return bc;
}

std::vector<double> betweenness_centrality_reference(const DiGraph& g) {
  // Independent re-derivation used only by tests: for every source s, count
  // shortest paths via forward DP, then for every target t distribute
  // pair-dependencies by walking the BFS DAG backwards explicitly.
  const std::size_t n = g.num_nodes();
  std::vector<double> bc(n, 0.0);
  if (n < 3) return bc;

  for (std::size_t s = 0; s < n; ++s) {
    const auto dist = bfs_distances(g, static_cast<NodeId>(s));
    // sigma[v]: number of shortest s->v paths.
    std::vector<double> sigma(n, 0.0);
    sigma[s] = 1.0;
    // process nodes in increasing distance
    std::vector<NodeId> by_dist;
    for (std::size_t v = 0; v < n; ++v) {
      if (dist[v] != kUnreachable) by_dist.push_back(static_cast<NodeId>(v));
    }
    std::sort(by_dist.begin(), by_dist.end(),
              [&](NodeId a, NodeId b) { return dist[a] < dist[b]; });
    for (NodeId u : by_dist) {
      for (NodeId w : g.out_neighbors(u)) {
        if (dist[w] != kUnreachable && dist[w] == dist[u] + 1) sigma[w] += sigma[u];
      }
    }
    // For each target t, count paths through v: sigma[v] * sigma_rev(v->t).
    for (std::size_t t = 0; t < n; ++t) {
      if (t == s || dist[t] == kUnreachable) continue;
      // sigma_to_t[v]: number of shortest v->t paths inside the s-BFS DAG.
      std::vector<double> sigma_to_t(n, 0.0);
      sigma_to_t[t] = 1.0;
      for (auto it = by_dist.rbegin(); it != by_dist.rend(); ++it) {
        const NodeId u = *it;
        if (dist[u] >= dist[t]) continue;
        for (NodeId w : g.out_neighbors(u)) {
          if (dist[w] != kUnreachable && dist[w] == dist[u] + 1 &&
              dist[w] <= dist[t]) {
            sigma_to_t[u] += sigma_to_t[w];
          }
        }
      }
      for (std::size_t v = 0; v < n; ++v) {
        if (v == s || v == t || dist[v] == kUnreachable) continue;
        bc[v] += sigma[v] * sigma_to_t[v] / sigma[t];
      }
    }
  }
  const double norm = static_cast<double>(n - 1) * static_cast<double>(n - 2);
  for (auto& b : bc) b /= norm;
  return bc;
}

}  // namespace gea::graph
