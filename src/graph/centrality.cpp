#include "graph/centrality.hpp"

#include <algorithm>
#include <cstdint>

#include "graph/algorithms.hpp"
#include "graph/sweep.hpp"

namespace gea::graph {

std::vector<double> degree_centrality(const DiGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<double> c(n, 0.0);
  if (n < 2) return c;
  const double denom = static_cast<double>(n - 1);
  for (std::size_t u = 0; u < n; ++u) {
    c[u] = static_cast<double>(g.degree(static_cast<NodeId>(u))) / denom;
  }
  return c;
}

std::vector<double> closeness_centrality(const DiGraph& g) {
  std::vector<double> c;
  SweepScratch scratch;
  single_sweep(g, scratch, {.closeness = &c});
  return c;
}

std::vector<double> betweenness_centrality(const DiGraph& g) {
  std::vector<double> bc;
  SweepScratch scratch;
  single_sweep(g, scratch, {.betweenness = &bc});
  return bc;
}

std::vector<double> betweenness_centrality_reference(const DiGraph& g) {
  // Independent re-derivation used only by tests: for every source s, count
  // shortest paths via forward DP, then for every target t distribute
  // pair-dependencies by walking the BFS DAG backwards explicitly.
  const std::size_t n = g.num_nodes();
  std::vector<double> bc(n, 0.0);
  if (n < 3) return bc;

  for (std::size_t s = 0; s < n; ++s) {
    const auto dist = bfs_distances(g, static_cast<NodeId>(s));
    // sigma[v]: number of shortest s->v paths.
    std::vector<double> sigma(n, 0.0);
    sigma[s] = 1.0;
    // process nodes in increasing distance
    std::vector<NodeId> by_dist;
    for (std::size_t v = 0; v < n; ++v) {
      if (dist[v] != kUnreachable) by_dist.push_back(static_cast<NodeId>(v));
    }
    std::sort(by_dist.begin(), by_dist.end(),
              [&](NodeId a, NodeId b) { return dist[a] < dist[b]; });
    for (NodeId u : by_dist) {
      for (NodeId w : g.out_neighbors(u)) {
        if (dist[w] != kUnreachable && dist[w] == dist[u] + 1) sigma[w] += sigma[u];
      }
    }
    // For each target t, count paths through v: sigma[v] * sigma_rev(v->t).
    for (std::size_t t = 0; t < n; ++t) {
      if (t == s || dist[t] == kUnreachable) continue;
      // sigma_to_t[v]: number of shortest v->t paths inside the s-BFS DAG.
      std::vector<double> sigma_to_t(n, 0.0);
      sigma_to_t[t] = 1.0;
      for (auto it = by_dist.rbegin(); it != by_dist.rend(); ++it) {
        const NodeId u = *it;
        if (dist[u] >= dist[t]) continue;
        for (NodeId w : g.out_neighbors(u)) {
          if (dist[w] != kUnreachable && dist[w] == dist[u] + 1 &&
              dist[w] <= dist[t]) {
            sigma_to_t[u] += sigma_to_t[w];
          }
        }
      }
      for (std::size_t v = 0; v < n; ++v) {
        if (v == s || v == t || dist[v] == kUnreachable) continue;
        bc[v] += sigma[v] * sigma_to_t[v] / sigma[t];
      }
    }
  }
  const double norm = static_cast<double>(n - 1) * static_cast<double>(n - 2);
  for (auto& b : bc) b /= norm;
  return bc;
}

}  // namespace gea::graph
