#include "graph/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/algorithms.hpp"

namespace gea::graph {

std::vector<double> eigenvector_centrality(const DiGraph& g,
                                           std::size_t max_iterations,
                                           double tolerance) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return {};
  std::vector<double> x(n, 1.0 / std::sqrt(static_cast<double>(n)));
  if (g.num_edges() == 0) return x;

  std::vector<double> next(n);
  for (std::size_t it = 0; it < max_iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t u = 0; u < n; ++u) {
      for (NodeId v : g.out_neighbors(static_cast<NodeId>(u))) {
        next[v] += x[u];
      }
    }
    double norm = 0.0;
    for (double v : next) norm += v * v;
    norm = std::sqrt(norm);
    if (norm < 1e-300) return std::vector<double>(n, 0.0);  // nilpotent (DAG)
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      next[i] /= norm;
      delta += std::abs(next[i] - x[i]);
    }
    x.swap(next);
    if (delta < tolerance) break;
  }
  return x;
}

std::vector<double> pagerank(const DiGraph& g, double damping,
                             std::size_t max_iterations, double tolerance) {
  const std::size_t n = g.num_nodes();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  for (std::size_t it = 0; it < max_iterations; ++it) {
    double dangling = 0.0;
    for (std::size_t u = 0; u < n; ++u) {
      if (g.out_degree(static_cast<NodeId>(u)) == 0) dangling += rank[u];
    }
    const double base =
        (1.0 - damping) / static_cast<double>(n) +
        damping * dangling / static_cast<double>(n);
    std::fill(next.begin(), next.end(), base);
    for (std::size_t u = 0; u < n; ++u) {
      const auto deg = g.out_degree(static_cast<NodeId>(u));
      if (deg == 0) continue;
      const double share = damping * rank[u] / static_cast<double>(deg);
      for (NodeId v : g.out_neighbors(static_cast<NodeId>(u))) {
        next[v] += share;
      }
    }
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) delta += std::abs(next[i] - rank[i]);
    rank.swap(next);
    if (delta < tolerance) break;
  }
  return rank;
}

std::vector<double> katz_centrality(const DiGraph& g, double alpha, double beta,
                                    std::size_t max_iterations,
                                    double tolerance) {
  const std::size_t n = g.num_nodes();
  std::vector<double> x(n, beta);
  std::vector<double> next(n);
  for (std::size_t it = 0; it < max_iterations; ++it) {
    std::fill(next.begin(), next.end(), beta);
    for (std::size_t u = 0; u < n; ++u) {
      for (NodeId v : g.out_neighbors(static_cast<NodeId>(u))) {
        next[v] += alpha * x[u];
      }
    }
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) delta += std::abs(next[i] - x[i]);
    x.swap(next);
    if (delta < tolerance) break;
  }
  return x;
}

std::vector<double> eccentricity(const DiGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<double> ecc(n, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    const auto dist = bfs_distances(g, static_cast<NodeId>(u));
    std::uint32_t mx = 0;
    for (std::uint32_t d : dist) {
      if (d != kUnreachable) mx = std::max(mx, d);
    }
    ecc[u] = static_cast<double>(mx);
  }
  return ecc;
}

double diameter(const DiGraph& g) {
  const auto ecc = eccentricity(g);
  double mx = 0.0;
  for (double e : ecc) mx = std::max(mx, e);
  return mx;
}

std::vector<double> clustering_coefficient(const DiGraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<double> cc(n, 0.0);
  for (std::size_t u = 0; u < n; ++u) {
    // Undirected neighbourhood of u (excluding u itself).
    std::unordered_set<NodeId> nbrs;
    for (NodeId v : g.out_neighbors(static_cast<NodeId>(u))) {
      if (v != u) nbrs.insert(v);
    }
    for (NodeId v : g.in_neighbors(static_cast<NodeId>(u))) {
      if (v != u) nbrs.insert(v);
    }
    const std::size_t k = nbrs.size();
    if (k < 2) continue;
    std::size_t links = 0;
    for (NodeId a : nbrs) {
      for (NodeId b : g.out_neighbors(a)) {
        if (b != a && nbrs.count(b)) ++links;
      }
    }
    cc[u] = static_cast<double>(links) /
            (static_cast<double>(k) * static_cast<double>(k - 1));
  }
  return cc;
}

std::vector<std::uint32_t> strongly_connected_components(const DiGraph& g) {
  const std::size_t n = g.num_nodes();
  constexpr std::uint32_t kUnset = 0xffffffffu;
  std::vector<std::uint32_t> comp(n, kUnset);
  std::vector<std::uint32_t> index(n, kUnset);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;
  std::uint32_t next_index = 0;
  std::uint32_t next_comp = 0;

  // Iterative Tarjan: frame = (node, next-neighbour cursor).
  struct Frame {
    NodeId node;
    std::size_t cursor;
  };
  std::vector<Frame> frames;

  for (std::size_t start = 0; start < n; ++start) {
    if (index[start] != kUnset) continue;
    frames.push_back({static_cast<NodeId>(start), 0});
    while (!frames.empty()) {
      Frame& f = frames.back();
      const NodeId u = f.node;
      if (f.cursor == 0) {
        index[u] = lowlink[u] = next_index++;
        stack.push_back(u);
        on_stack[u] = true;
      }
      const auto nbrs = g.out_neighbors(u);
      bool descended = false;
      while (f.cursor < nbrs.size()) {
        const NodeId v = nbrs[f.cursor++];
        if (index[v] == kUnset) {
          frames.push_back({v, 0});
          descended = true;
          break;
        }
        if (on_stack[v]) lowlink[u] = std::min(lowlink[u], index[v]);
      }
      if (descended) continue;
      // u finished.
      if (lowlink[u] == index[u]) {
        NodeId w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = next_comp;
        } while (w != u);
        ++next_comp;
      }
      frames.pop_back();
      if (!frames.empty()) {
        const NodeId parent = frames.back().node;
        lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
      }
    }
  }
  return comp;
}

std::size_t num_strongly_connected_components(const DiGraph& g) {
  const auto comp = strongly_connected_components(g);
  std::uint32_t mx = 0;
  for (auto c : comp) mx = std::max(mx, c + 1);
  return g.num_nodes() == 0 ? 0 : mx;
}

}  // namespace gea::graph
