// Random graph generators. Used by property tests (cross-checking graph
// algorithms on arbitrary digraphs) and by the pure graph-level GEA variant.
#pragma once

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace gea::graph {

/// Erdos-Renyi directed G(n, p); self-loops excluded.
DiGraph erdos_renyi(std::size_t n, double p, util::Rng& rng);

/// A random CFG-shaped graph: single entry (node 0), single exit (node n-1),
/// every node reachable from the entry and the exit reachable from every
/// node; out-degree <= 2 (fallthrough/branch), plus occasional back edges
/// (loops). Mimics the structural envelope of real control-flow graphs.
DiGraph random_cfg_shape(std::size_t n, double branch_prob, double loop_prob,
                         util::Rng& rng);

/// Directed path 0 -> 1 -> ... -> n-1 (straight-line code).
DiGraph path_graph(std::size_t n);

/// Directed cycle over n nodes.
DiGraph cycle_graph(std::size_t n);

/// Complete directed graph (every ordered pair, no self-loops).
DiGraph complete_digraph(std::size_t n);

}  // namespace gea::graph
