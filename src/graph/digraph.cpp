#include "graph/digraph.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace gea::graph {

DiGraph::DiGraph(std::size_t n)
    : out_(n), in_(n), labels_(n) {}

NodeId DiGraph::add_node() { return add_node(std::string{}); }

NodeId DiGraph::add_node(std::string label) {
  out_.emplace_back();
  in_.emplace_back();
  labels_.push_back(std::move(label));
  return static_cast<NodeId>(out_.size() - 1);
}

void DiGraph::check_node(NodeId u) const {
  if (u >= out_.size()) {
    throw std::out_of_range("DiGraph: node id " + std::to_string(u) +
                            " out of range (n=" + std::to_string(out_.size()) + ")");
  }
}

bool DiGraph::add_edge(NodeId u, NodeId v) {
  check_node(u);
  check_node(v);
  auto& adj = out_[u];
  if (std::find(adj.begin(), adj.end(), v) != adj.end()) return false;
  adj.push_back(v);
  in_[v].push_back(u);
  ++num_edges_;
  return true;
}

bool DiGraph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const auto& adj = out_[u];
  return std::find(adj.begin(), adj.end(), v) != adj.end();
}

std::span<const NodeId> DiGraph::out_neighbors(NodeId u) const {
  check_node(u);
  return out_[u];
}

std::span<const NodeId> DiGraph::in_neighbors(NodeId u) const {
  check_node(u);
  return in_[u];
}

double DiGraph::density() const {
  const auto n = static_cast<double>(num_nodes());
  if (n < 2.0) return 0.0;
  return static_cast<double>(num_edges_) / (n * (n - 1.0));
}

NodeId DiGraph::merge_disjoint(const DiGraph& other) {
  const auto offset = static_cast<NodeId>(num_nodes());
  for (std::size_t u = 0; u < other.num_nodes(); ++u) {
    add_node(other.labels_[u]);
  }
  for (std::size_t u = 0; u < other.num_nodes(); ++u) {
    for (NodeId v : other.out_[u]) {
      add_edge(offset + static_cast<NodeId>(u), offset + v);
    }
  }
  return offset;
}

bool DiGraph::same_structure(const DiGraph& other) const {
  if (num_nodes() != other.num_nodes() || num_edges() != other.num_edges()) {
    return false;
  }
  for (std::size_t u = 0; u < num_nodes(); ++u) {
    auto a = out_[u];
    auto b = other.out_[u];
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a != b) return false;
  }
  return true;
}

std::optional<std::string> DiGraph::validate() const {
  if (out_.size() != in_.size() || out_.size() != labels_.size()) {
    return "adjacency/label arrays disagree on node count";
  }
  std::size_t edge_count = 0;
  for (std::size_t u = 0; u < out_.size(); ++u) {
    std::unordered_set<NodeId> seen;
    for (NodeId v : out_[u]) {
      if (v >= out_.size()) return "out-edge target out of range";
      if (!seen.insert(v).second) return "duplicate out-edge";
      const auto& rin = in_[v];
      if (std::find(rin.begin(), rin.end(), static_cast<NodeId>(u)) == rin.end()) {
        return "out-edge missing mirror in-edge";
      }
      ++edge_count;
    }
  }
  if (edge_count != num_edges_) return "edge count mismatch";
  std::size_t in_count = 0;
  for (const auto& lst : in_) in_count += lst.size();
  if (in_count != num_edges_) return "in-adjacency edge count mismatch";
  return std::nullopt;
}

}  // namespace gea::graph
