// Node centrality measures for directed graphs. Definitions follow the
// conventions of NetworkX (which the paper's toolchain used), so that the
// 23-feature vector is comparable with the original study:
//
//  - degree_centrality(v)   = (in_deg(v) + out_deg(v)) / (n - 1)
//  - closeness_centrality   = Wasserman-Faust improved formula over
//                             *incoming* distances
//  - betweenness_centrality = Brandes' algorithm, normalized by
//                             (n-1)(n-2) for directed graphs
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace gea::graph {

/// Degree centrality per node. Returns all zeros for n < 2.
std::vector<double> degree_centrality(const DiGraph& g);

/// Closeness centrality per node using incoming shortest paths:
///   C(v) = ((r-1) / sum_{u in R} d(u,v)) * ((r-1) / (n-1))
/// where R is the set of nodes that can reach v and r = |R|.
/// Nodes nothing reaches get 0. O(V * (V + E)).
/// Delegates to the single-sweep core (graph/sweep.hpp).
std::vector<double> closeness_centrality(const DiGraph& g);

/// Betweenness centrality per node via Brandes' algorithm (unit weights,
/// directed, endpoints excluded), normalized by (n-1)(n-2). O(V*E).
/// Delegates to the single-sweep core (graph/sweep.hpp).
std::vector<double> betweenness_centrality(const DiGraph& g);

/// Reference O(V^3)-ish betweenness for cross-checking Brandes in tests:
/// enumerates all shortest paths by dynamic programming over BFS DAGs.
std::vector<double> betweenness_centrality_reference(const DiGraph& g);

}  // namespace gea::graph
