// Single-sweep traversal core for the Table-II feature path.
//
// The three all-sources quantities the 23-feature vector needs —
// betweenness centrality (Brandes), closeness centrality (incoming-distance
// sums), and the shortest-path-length population — all derive from the same
// per-source BFS. The seed implementation ran that BFS three times per
// graph (once inside Brandes, once reversed per closeness sink, once for
// the path population); `single_sweep` runs it once and feeds every
// requested sink from the shared distance array:
//
//  - betweenness: the Brandes dependency accumulation, verbatim;
//  - path lengths: d(s,t) emitted in (s, t) lexicographic order, exactly
//    the order the seed's all_shortest_path_lengths produced;
//  - closeness: sum/count of incoming distances per target. The seed ran a
//    reverse BFS per sink v and summed d(u,v) over u ascending; here each
//    forward pass from s contributes d(s,v) to every v, and s ascends, so
//    the floating-point accumulation order — and therefore the result —
//    is bit-for-bit the same.
//
// All working storage lives in a caller-owned SweepScratch, so repeated
// sweeps (corpus featurization, GEA sweeps, serving) perform no per-graph
// heap allocations once the buffers have grown to the largest graph seen.
//
// Determinism contract: for every sink, the output is bitwise identical to
// the seed-era multi-pass implementations (betweenness_centrality,
// closeness_centrality, all_shortest_path_lengths). The property suite in
// tests/feature_engine_test.cpp holds this against the retained reference
// path in features/reference.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace gea::graph {

/// Reusable working storage for single_sweep. Buffers only ever grow;
/// clearing keeps capacity, so steady-state sweeps allocate nothing.
struct SweepScratch {
  // Brandes bookkeeping (int64 sigma/dist match the seed implementation).
  // Predecessor sets are not stored: the dependency pass recovers them from
  // `dist` over in-edges, which is cheaper and provably order-neutral.
  std::vector<std::int64_t> sigma;  // shortest-path counts
  std::vector<std::int64_t> dist;   // BFS distance, -1 = unvisited
  std::vector<double> delta;        // dependency accumulator
  std::vector<NodeId> queue;  // BFS FIFO via head cursor
  std::vector<NodeId> order;  // Brandes LIFO via pop from the back
  // Closeness accumulators (incoming-distance sum / count per target).
  std::vector<double> close_total;
  std::vector<std::uint32_t> close_reached;

  /// Bytes currently reserved across all buffers (capacities). Stable
  /// across repeated sweeps of graphs no larger than the largest seen —
  /// the no-allocation invariant the engine tests assert.
  std::size_t footprint_bytes() const;
};

/// Output selection: any subset of the three sinks may be requested; null
/// sinks cost nothing beyond the shared BFS. Vectors are reset by the sweep
/// (sized to n / cleared), not appended to.
struct SweepSinks {
  std::vector<double>* betweenness = nullptr;   // per node; zeros for n < 3
  std::vector<double>* closeness = nullptr;     // per node; zeros for n < 2
  std::vector<double>* path_lengths = nullptr;  // per reachable ordered pair
  /// Count per distance value of the path_lengths population (sized to n;
  /// a BFS distance is at most n-1). Integer order statistics of the
  /// population read straight off this, letting the feature engine skip
  /// the selection sort over the O(V^2) population.
  std::vector<std::uint64_t>* path_length_hist = nullptr;
};

/// One all-sources BFS sweep feeding every requested sink. O(V*(V+E)) like
/// a single Brandes run; the two extra traversals of the seed path are gone.
void single_sweep(const DiGraph& g, SweepScratch& scratch,
                  const SweepSinks& sinks);

/// Order-sensitive 128-bit digest of the graph's adjacency content (node
/// count plus each node's out-list, labels ignored). Two graphs with equal
/// digests featurize identically — adjacency order included, which is what
/// the bitwise determinism contract keys on. Collisions across two
/// independently mixed 64-bit lanes are negligible at corpus scale.
struct GraphDigest {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bool operator==(const GraphDigest& o) const {
    return lo == o.lo && hi == o.hi;
  }
};

GraphDigest graph_digest(const DiGraph& g);

}  // namespace gea::graph
