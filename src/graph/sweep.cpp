#include "graph/sweep.hpp"

#include <algorithm>

namespace gea::graph {

std::size_t SweepScratch::footprint_bytes() const {
  return sigma.capacity() * sizeof(std::int64_t) +
         dist.capacity() * sizeof(std::int64_t) +
         delta.capacity() * sizeof(double) +
         queue.capacity() * sizeof(NodeId) +
         order.capacity() * sizeof(NodeId) +
         close_total.capacity() * sizeof(double) +
         close_reached.capacity() * sizeof(std::uint32_t);
}

void single_sweep(const DiGraph& g, SweepScratch& s, const SweepSinks& sinks) {
  const std::size_t n = g.num_nodes();
  const bool want_bc = sinks.betweenness != nullptr;
  const bool want_cc = sinks.closeness != nullptr;
  const bool want_sp = sinks.path_lengths != nullptr;
  const bool want_hist = sinks.path_length_hist != nullptr;

  if (want_bc) sinks.betweenness->assign(n, 0.0);
  if (want_cc) sinks.closeness->assign(n, 0.0);
  if (want_sp) sinks.path_lengths->clear();
  if (want_hist) sinks.path_length_hist->assign(n, 0);

  // Seed-path degenerate contract: betweenness is identically zero below
  // three nodes (no interior vertices), closeness below two.
  const bool brandes = want_bc && n >= 3;
  const bool closeness = want_cc && n >= 2;
  if (n == 0 || (!brandes && !closeness && !want_sp && !want_hist)) return;

  // Grow-only sizing, maintaining the cross-call invariant that every
  // element reads "untouched": dist == -1, sigma == 0, delta == 0. Each
  // source restores the invariant for exactly the nodes it visited (the
  // BFS queue), so per-source setup costs O(visited), not O(n) fills.
  if (s.dist.size() < n) s.dist.resize(n, -1);
  if (brandes) {
    if (s.sigma.size() < n) s.sigma.resize(n, 0);
    if (s.delta.size() < n) s.delta.resize(n, 0.0);
  }
  if (closeness) {
    s.close_total.assign(n, 0.0);
    s.close_reached.assign(n, 0);
  }
  s.queue.reserve(n);
  s.order.reserve(n);

  for (std::size_t src = 0; src < n; ++src) {
    s.queue.clear();
    s.order.clear();
    std::size_t head = 0;
    if (brandes) s.sigma[src] = 1;
    s.dist[src] = 0;
    s.queue.push_back(static_cast<NodeId>(src));
    while (head < s.queue.size()) {
      const NodeId u = s.queue[head++];
      if (brandes) s.order.push_back(u);
      for (NodeId w : g.out_neighbors(u)) {
        if (s.dist[w] < 0) {
          s.dist[w] = s.dist[u] + 1;
          s.queue.push_back(w);
        }
        if (brandes && s.dist[w] == s.dist[u] + 1) {
          s.sigma[w] += s.sigma[u];
        }
      }
    }

    // Forward distances feed the path population (seed emission order:
    // sources ascending, targets ascending within a source) and the
    // closeness accumulators (for target v, contributions arrive with s
    // ascending — the seed's reverse-BFS summation order).
    if (want_sp || want_hist || closeness) {
      for (std::size_t t = 0; t < n; ++t) {
        if (t == src || s.dist[t] < 0) continue;
        const double d = static_cast<double>(s.dist[t]);
        if (want_sp) sinks.path_lengths->push_back(d);
        if (want_hist) {
          ++(*sinks.path_length_hist)[static_cast<std::size_t>(s.dist[t])];
        }
        if (closeness) {
          s.close_total[t] += d;
          ++s.close_reached[t];
        }
      }
    }

    if (brandes) {
      // Predecessors of w are recovered from the distance array
      // (dist[u] + 1 == dist[w] over in-edges) instead of stored pred
      // lists. The set is exactly Brandes' P(w); within one w every
      // delta[u] is a distinct accumulator, so enumeration order cannot
      // change any floating-point sum — output stays bitwise identical
      // while the forward pass sheds its per-edge list appends.
      while (!s.order.empty()) {
        const NodeId w = s.order.back();
        s.order.pop_back();
        for (NodeId u : g.in_neighbors(w)) {
          if (s.dist[u] >= 0 && s.dist[u] + 1 == s.dist[w]) {
            s.delta[u] += static_cast<double>(s.sigma[u]) /
                          static_cast<double>(s.sigma[w]) * (1.0 + s.delta[w]);
          }
        }
        if (w != src) (*sinks.betweenness)[w] += s.delta[w];
      }
    }

    // Restore the untouched invariant for the nodes this source visited.
    for (NodeId v : s.queue) {
      s.dist[v] = -1;
      if (brandes) {
        s.sigma[v] = 0;
        s.delta[v] = 0.0;
      }
    }
  }

  if (brandes) {
    const double norm =
        static_cast<double>(n - 1) * static_cast<double>(n - 2);
    for (auto& b : *sinks.betweenness) b /= norm;
  }
  if (closeness) {
    for (std::size_t v = 0; v < n; ++v) {
      const std::uint32_t reached = s.close_reached[v];
      const double total = s.close_total[v];
      if (reached == 0 || total == 0.0) continue;
      const double r = static_cast<double>(reached);
      (*sinks.closeness)[v] =
          (r / total) * (r / static_cast<double>(n - 1));
    }
  }
}

namespace {

/// splitmix64 finalizer — the per-word mixer for both digest lanes.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

GraphDigest graph_digest(const DiGraph& g) {
  GraphDigest d;
  d.lo = 0x6a09e667f3bcc908ULL;  // distinct lane seeds
  d.hi = 0xbb67ae8584caa73bULL;
  auto feed = [&d](std::uint64_t x) {
    d.lo = mix64(d.lo ^ x);
    d.hi = mix64(d.hi + (x ^ 0xa5a5a5a5a5a5a5a5ULL));
  };
  const std::size_t n = g.num_nodes();
  feed(n);
  for (std::size_t u = 0; u < n; ++u) {
    const auto out = g.out_neighbors(static_cast<NodeId>(u));
    feed(out.size());
    for (NodeId v : out) feed(v);
  }
  return d;
}

}  // namespace gea::graph
