#include "graph/generators.hpp"

namespace gea::graph {

DiGraph erdos_renyi(std::size_t n, double p, util::Rng& rng) {
  DiGraph g(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u != v && rng.chance(p)) {
        g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
      }
    }
  }
  return g;
}

DiGraph random_cfg_shape(std::size_t n, double branch_prob, double loop_prob,
                         util::Rng& rng) {
  DiGraph g(n);
  if (n <= 1) return g;
  const auto exit = static_cast<NodeId>(n - 1);
  // Spanning structure: each node i>0 hangs off a random earlier node, so
  // everything is reachable from node 0.
  for (std::size_t v = 1; v < n; ++v) {
    const auto u = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(v) - 1));
    g.add_edge(u, static_cast<NodeId>(v));
  }
  // Conditional branches: forward edge to a random later node.
  for (std::size_t u = 0; u + 1 < n; ++u) {
    if (g.out_degree(static_cast<NodeId>(u)) < 2 && rng.chance(branch_prob)) {
      const auto v = static_cast<NodeId>(
          rng.uniform_int(static_cast<std::int64_t>(u) + 1,
                          static_cast<std::int64_t>(n) - 1));
      g.add_edge(static_cast<NodeId>(u), v);
    }
  }
  // Loops: back edge to a random earlier node.
  for (std::size_t u = 1; u + 1 < n; ++u) {
    if (g.out_degree(static_cast<NodeId>(u)) < 2 && rng.chance(loop_prob)) {
      const auto v = static_cast<NodeId>(rng.uniform_int(0, static_cast<std::int64_t>(u)));
      g.add_edge(static_cast<NodeId>(u), v);
    }
  }
  // Every node without a successor flows to the exit.
  for (std::size_t u = 0; u + 1 < n; ++u) {
    if (g.out_degree(static_cast<NodeId>(u)) == 0) {
      g.add_edge(static_cast<NodeId>(u), exit);
    }
  }
  return g;
}

DiGraph path_graph(std::size_t n) {
  DiGraph g(n);
  for (std::size_t u = 0; u + 1 < n; ++u) {
    g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(u + 1));
  }
  return g;
}

DiGraph cycle_graph(std::size_t n) {
  DiGraph g = path_graph(n);
  if (n >= 2) g.add_edge(static_cast<NodeId>(n - 1), 0);
  return g;
}

DiGraph complete_digraph(std::size_t n) {
  DiGraph g(n);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = 0; v < n; ++v) {
      if (u != v) g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    }
  }
  return g;
}

}  // namespace gea::graph
