// Spectral and higher-order node measures beyond the paper's Table II set.
//
// SII-B lists "closeness centrality, betweenness centrality, Eigenvector
// centrality, etc." as candidate features; the paper's detector uses only
// the first two plus degree. These extras power the extended-feature-set
// ablation: does a richer, harder-to-steer feature vector resist the
// attacks any better?
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace gea::graph {

/// Eigenvector centrality via power iteration on A^T (left eigenvector:
/// a node is central if central nodes point at it), L2-normalized.
/// Returns the uniform vector for edgeless graphs.
std::vector<double> eigenvector_centrality(const DiGraph& g,
                                           std::size_t max_iterations = 100,
                                           double tolerance = 1e-10);

/// PageRank with the standard damping model; L1-normalized. Dangling nodes
/// redistribute uniformly.
std::vector<double> pagerank(const DiGraph& g, double damping = 0.85,
                             std::size_t max_iterations = 100,
                             double tolerance = 1e-12);

/// Katz centrality: sum over walks weighted by alpha^length, plus beta.
/// alpha must be below the reciprocal spectral radius for convergence; the
/// default is conservative for CFG-sized graphs.
std::vector<double> katz_centrality(const DiGraph& g, double alpha = 0.05,
                                    double beta = 1.0,
                                    std::size_t max_iterations = 200,
                                    double tolerance = 1e-12);

/// Out-eccentricity per node: the longest shortest path leaving the node
/// (unreachable pairs ignored; isolated sources get 0).
std::vector<double> eccentricity(const DiGraph& g);

/// Diameter: max finite eccentricity (0 for edgeless graphs).
double diameter(const DiGraph& g);

/// Local clustering coefficient, directed variant: fraction of ordered
/// neighbour pairs (treating the neighbourhood as the union of in/out
/// neighbours) that are themselves connected by an edge.
std::vector<double> clustering_coefficient(const DiGraph& g);

/// Strongly connected components (Tarjan, iterative). Component ids are
/// dense, assigned in completion order.
std::vector<std::uint32_t> strongly_connected_components(const DiGraph& g);
std::size_t num_strongly_connected_components(const DiGraph& g);

}  // namespace gea::graph
