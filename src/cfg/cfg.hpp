// Control-flow graph extraction from mini-ISA programs.
//
// This plays the role Radare2 plays in the paper: instructions in, basic
// block digraph out. Leaders are identified per function (function entry,
// jump targets, fall-through successors of branches); calls do not split
// control flow (execution resumes after the call), matching intra-procedural
// CFG construction. Optionally, call edges can be added to connect the
// per-function components the way some binary-analysis tools do.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"
#include "isa/program.hpp"
#include "util/status.hpp"

namespace gea::cfg {

/// One basic block: a maximal straight-line instruction range.
struct BasicBlock {
  std::uint32_t begin = 0;  // first instruction index
  std::uint32_t end = 0;    // one past the last instruction
  std::uint32_t function = 0;  // index into program.functions()

  std::uint32_t size() const { return end - begin; }
};

struct CfgOptions {
  /// Extract only the entry function's CFG (the paper's convention: its
  /// Figs. 2-4 are all `sym.main` function graphs, and the node counts it
  /// reports are main-function sizes). Off = whole-program CFG with one
  /// component per function.
  bool main_only = false;
  /// Add an edge from the block containing each `call` to the callee's
  /// entry block (and from the callee's exit blocks back). Off by default:
  /// the paper's per-binary CFGs keep functions as separate components.
  /// Ignored when main_only is set.
  bool call_edges = false;
  /// Put disassembly text on node labels (for DOT rendering).
  bool label_blocks = true;
  /// Maximum instructions shown per label.
  std::size_t label_max_instructions = 6;
};

/// A CFG: one graph node per basic block, plus block metadata.
struct Cfg {
  graph::DiGraph graph;
  std::vector<BasicBlock> blocks;  // blocks[i] corresponds to graph node i
  graph::NodeId entry = 0;         // block containing instruction 0
  std::vector<graph::NodeId> exit_nodes;  // blocks ending in halt / main-ret

  std::size_t num_nodes() const { return graph.num_nodes(); }
  std::size_t num_edges() const { return graph.num_edges(); }

  /// Block containing instruction `pc`, if any.
  std::optional<graph::NodeId> block_of(std::uint32_t pc) const;
};

/// Extract the CFG of a validated program.
/// Throws std::invalid_argument if the program fails validation.
Cfg extract_cfg(const isa::Program& program, const CfgOptions& opts = {});

/// Invariant checker for an extracted (or spliced, or deserialized) CFG:
///   - at least one node, and exactly one block per graph node
///   - block ranges well-formed (begin < end)
///   - internally consistent graph (edge endpoints in bounds, out/in
///     adjacency mirrored) — catches dangling edges
///   - entry and every exit id in bounds
///   - at least one exit, each reachable from the entry
/// Used as a quarantine gate by the pipeline and as a pre/post-condition of
/// GEA splicing, so downstream feature extraction can assume a sane graph.
util::Status validate(const Cfg& cfg);

}  // namespace gea::cfg
