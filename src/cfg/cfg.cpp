#include "cfg/cfg.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace gea::cfg {

using isa::Instruction;
using isa::Opcode;

std::optional<graph::NodeId> Cfg::block_of(std::uint32_t pc) const {
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (pc >= blocks[i].begin && pc < blocks[i].end) {
      return static_cast<graph::NodeId>(i);
    }
  }
  return std::nullopt;
}

namespace {

std::string block_label(const isa::Program& p, const BasicBlock& b,
                        std::size_t max_instructions) {
  std::ostringstream ss;
  ss << "0x" << std::hex << b.begin << std::dec << ":\n";
  const std::uint32_t shown =
      std::min<std::uint32_t>(b.size(), static_cast<std::uint32_t>(max_instructions));
  for (std::uint32_t i = b.begin; i < b.begin + shown; ++i) {
    ss << isa::to_string(p.code()[i]) << '\n';
  }
  if (shown < b.size()) ss << "... (+" << (b.size() - shown) << ")\n";
  return ss.str();
}

}  // namespace

util::Status validate(const Cfg& cfg) {
  using util::ErrorCode;
  using util::Status;

  const std::size_t n = cfg.graph.num_nodes();
  if (n == 0) {
    return Status::error(ErrorCode::kCorruptData, "zero-node CFG");
  }
  if (cfg.blocks.size() != n) {
    return Status::error(ErrorCode::kCorruptData,
                         "block list does not match graph: " +
                             std::to_string(cfg.blocks.size()) + " blocks vs " +
                             std::to_string(n) + " nodes");
  }
  for (std::size_t i = 0; i < cfg.blocks.size(); ++i) {
    if (cfg.blocks[i].begin >= cfg.blocks[i].end) {
      return Status::error(ErrorCode::kCorruptData,
                           "empty or inverted block range at node " +
                               std::to_string(i));
    }
  }
  if (auto err = cfg.graph.validate()) {
    return Status::error(ErrorCode::kCorruptData,
                         "dangling edge or inconsistent adjacency: " + *err);
  }
  if (cfg.entry >= n) {
    return Status::error(ErrorCode::kCorruptData,
                         "dangling entry: node " + std::to_string(cfg.entry) +
                             " out of bounds (" + std::to_string(n) + " nodes)");
  }
  if (cfg.exit_nodes.empty()) {
    return Status::error(ErrorCode::kCorruptData, "CFG has no exit node");
  }
  const auto dist = graph::bfs_distances(cfg.graph, cfg.entry);
  for (graph::NodeId e : cfg.exit_nodes) {
    if (e >= n) {
      return Status::error(ErrorCode::kCorruptData,
                           "dangling exit: node " + std::to_string(e) +
                               " out of bounds (" + std::to_string(n) +
                               " nodes)");
    }
    if (dist[e] == graph::kUnreachable) {
      return Status::error(ErrorCode::kCorruptData,
                           "disconnected exit: node " + std::to_string(e) +
                               " unreachable from entry");
    }
  }
  return Status::ok();
}

Cfg extract_cfg(const isa::Program& program, const CfgOptions& opts) {
  if (auto err = program.validate()) {
    throw std::invalid_argument("extract_cfg: invalid program: " + *err);
  }

  const auto& code = program.code();
  const std::size_t n = code.size();

  // Pass 1: identify leaders per function.
  std::vector<bool> leader(n, false);
  for (const auto& f : program.functions()) {
    leader[f.begin] = true;
    for (std::uint32_t i = f.begin; i < f.end; ++i) {
      const Instruction& ins = code[i];
      if (isa::is_jump(ins.op)) {
        leader[ins.target] = true;
        if (i + 1 < f.end) leader[i + 1] = true;  // fall-through successor
      } else if (ins.op == Opcode::kRet || ins.op == Opcode::kHalt) {
        if (i + 1 < f.end) leader[i + 1] = true;
      }
    }
  }

  // Pass 2: materialize blocks (contiguous ranges between leaders, clipped
  // at function boundaries).
  Cfg cfg;
  std::map<std::uint32_t, graph::NodeId> block_at;  // begin pc -> node
  const std::size_t num_functions =
      opts.main_only ? 1 : program.functions().size();
  for (std::size_t fi = 0; fi < num_functions; ++fi) {
    const auto& f = program.functions()[fi];
    std::uint32_t start = f.begin;
    for (std::uint32_t i = f.begin + 1; i <= f.end; ++i) {
      if (i == f.end || leader[i]) {
        BasicBlock b{start, i, static_cast<std::uint32_t>(fi)};
        const auto node = cfg.graph.add_node(
            opts.label_blocks ? block_label(program, b, opts.label_max_instructions)
                              : std::string{});
        cfg.blocks.push_back(b);
        block_at[start] = node;
        start = i;
      }
    }
  }

  // Pass 3: edges.
  for (std::size_t bi = 0; bi < cfg.blocks.size(); ++bi) {
    const BasicBlock& b = cfg.blocks[bi];
    const auto node = static_cast<graph::NodeId>(bi);
    const Instruction& last = code[b.end - 1];
    const auto& f = program.functions()[b.function];

    auto link_to_pc = [&](std::uint32_t pc) {
      const auto it = block_at.find(pc);
      if (it == block_at.end()) {
        throw std::logic_error("extract_cfg: edge to non-leader pc");
      }
      cfg.graph.add_edge(node, it->second);
    };

    if (isa::is_jump(last.op)) {
      link_to_pc(last.target);
      if (isa::is_conditional(last.op) && b.end < f.end) link_to_pc(b.end);
    } else if (last.op == Opcode::kRet || last.op == Opcode::kHalt) {
      // no successors
    } else if (b.end < f.end) {
      link_to_pc(b.end);  // plain fall-through (includes blocks ending in call)
    }

    if (opts.call_edges && !opts.main_only) {
      for (std::uint32_t i = b.begin; i < b.end; ++i) {
        if (code[i].op == Opcode::kCall) link_to_pc(code[i].target);
      }
    }
  }

  // Entry and exits.
  cfg.entry = block_at.at(0);
  const auto& main_fn = program.functions().front();
  for (std::size_t bi = 0; bi < cfg.blocks.size(); ++bi) {
    const BasicBlock& b = cfg.blocks[bi];
    const Instruction& last = code[b.end - 1];
    const bool main_ret = last.op == Opcode::kRet && main_fn.contains(b.begin);
    if (last.op == Opcode::kHalt || main_ret) {
      cfg.exit_nodes.push_back(static_cast<graph::NodeId>(bi));
    }
  }
  return cfg;
}

}  // namespace gea::cfg
