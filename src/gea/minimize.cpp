#include "gea/minimize.hpp"

#include <algorithm>
#include <stdexcept>

#include "cfg/cfg.hpp"
#include "features/engine.hpp"

namespace gea::aug {

MinimizeResult find_minimal_target(const dataset::Corpus& corpus,
                                   std::size_t victim_index,
                                   ml::DifferentiableClassifier& clf,
                                   const features::FeatureScaler& scaler,
                                   const MinimizeOptions& opts) {
  if (victim_index >= corpus.size()) {
    throw std::invalid_argument("find_minimal_target: bad victim index");
  }
  const dataset::Sample& victim = corpus.samples()[victim_index];
  const std::uint8_t target_label =
      victim.label == dataset::kBenign ? dataset::kMalicious : dataset::kBenign;

  auto targets = corpus.indices_of(target_label);
  std::sort(targets.begin(), targets.end(), [&](std::size_t a, std::size_t b) {
    return corpus.samples()[a].num_nodes() < corpus.samples()[b].num_nodes();
  });

  MinimizeResult res;
  res.original_nodes = victim.num_nodes();
  // One engine for the whole candidate scan: each merged CFG featurizes
  // with scratch warmed by the previous candidate.
  features::FeatureEngine engine;
  for (std::size_t ti : targets) {
    if (opts.max_targets != 0 && res.targets_tried >= opts.max_targets) break;
    ++res.targets_tried;
    const auto& target = corpus.samples()[ti];
    const auto merged = embed_program(victim.program, target.program, opts.embed);
    const auto merged_cfg = cfg::extract_cfg(merged, {.main_only = true});
    const auto scaled = scaler.transform(engine.extract(merged_cfg.graph));
    if (clf.predict({scaled.begin(), scaled.end()}) != victim.label) {
      res.evaded = true;
      res.target_index = ti;
      res.target_nodes = target.num_nodes();
      res.merged_nodes = merged_cfg.num_nodes();
      res.size_overhead = static_cast<double>(merged.size()) /
                          static_cast<double>(victim.program.size());
      return res;
    }
  }
  return res;
}

}  // namespace gea::aug
