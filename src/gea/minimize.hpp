// GEA size minimization — the paper's SVI future work: "investigate more
// effective methods to minimize the size of the generated AEs, while
// preserving the main characteristics".
//
// Greedy policy: walk opposite-class targets in increasing CFG size and
// return the first whose splice flips the classifier. Size/MR is not
// strictly monotone (Tables VI-VII), so greedy-by-size is a heuristic — the
// result is the smallest *successful* target in the scan order, and the
// reported overhead is what a real attacker would pay in bytes.
#pragma once

#include <cstdint>
#include <optional>

#include "dataset/corpus.hpp"
#include "features/scaler.hpp"
#include "gea/embed.hpp"
#include "ml/model.hpp"

namespace gea::aug {

struct MinimizeResult {
  bool evaded = false;
  std::size_t target_index = 0;      // corpus index of the chosen target
  std::size_t target_nodes = 0;
  std::size_t targets_tried = 0;
  std::size_t original_nodes = 0;
  std::size_t merged_nodes = 0;
  /// merged/original instruction-count ratio (the size cost of evasion).
  double size_overhead = 0.0;
};

struct MinimizeOptions {
  EmbedOptions embed{};
  /// Cap on targets scanned (0 = all opposite-class samples).
  std::size_t max_targets = 0;
};

/// Find the smallest opposite-class target (by CFG node count) whose GEA
/// splice makes `victim` misclassified. `victim_index` is a corpus index.
MinimizeResult find_minimal_target(const dataset::Corpus& corpus,
                                   std::size_t victim_index,
                                   ml::DifferentiableClassifier& clf,
                                   const features::FeatureScaler& scaler,
                                   const MinimizeOptions& opts = {});

}  // namespace gea::aug
