// GEA evaluation harness producing the rows of Tables IV-VII.
//
// For a chosen target sample x_sel, every corpus sample of the *opposite*
// class is augmented (embed_program), re-disassembled, re-featurized,
// scaled, and classified; the row reports the misclassification rate, the
// crafting time per sample (splice + CFG extraction + feature extraction,
// matching what the paper times), and — beyond the paper — the fraction of
// augmented samples whose execution the interpreter proved equivalent to
// the original.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "dataset/corpus.hpp"
#include "features/engine.hpp"
#include "features/scaler.hpp"
#include "gea/embed.hpp"
#include "gea/selection.hpp"
#include "ml/label_schema.hpp"
#include "ml/metrics.hpp"
#include "ml/model.hpp"

namespace gea::aug {

struct GeaRow {
  std::string label;            // "Minimum" / "Median" / "Maximum" or node/edge id
  std::size_t target_nodes = 0;
  std::size_t target_edges = 0;
  std::size_t samples = 0;
  std::size_t misclassified = 0;
  double mr() const {
    return samples == 0
               ? 0.0
               : static_cast<double>(misclassified) / static_cast<double>(samples);
  }
  double craft_ms_per_sample = 0.0;
  /// Fraction of augmented programs proved functionally equivalent to the
  /// original (should be 1.0).
  double equivalence_rate = 0.0;
  /// Samples whose crafting failed (splice exception or non-finite crafted
  /// features); the sweep finishes on the rest. First few diagnostics kept.
  std::size_t quarantined = 0;
  std::vector<std::string> diagnostics;
};

/// Targeted family-evasion result (beyond the paper's binary tables): a
/// K×K source→predicted matrix over the schema's classes, where row r,
/// column c counts attacked samples of true class r that the K-class
/// classifier placed in class c after the graft.
struct FamilyEvasionReport {
  ml::MultiConfusion matrix;
  std::size_t samples = 0;
  /// Attacked samples landing exactly in the attack's target class.
  std::size_t targeted_hits = 0;
  /// Attacked samples landing anywhere away from their true class.
  std::size_t evaded = 0;
  std::size_t quarantined = 0;
  double craft_ms_per_sample = 0.0;
  std::vector<std::string> diagnostics;

  double targeted_rate() const {
    return samples == 0 ? 0.0
                        : static_cast<double>(targeted_hits) /
                              static_cast<double>(samples);
  }
  double evasion_rate() const {
    return samples == 0
               ? 0.0
               : static_cast<double>(evaded) / static_cast<double>(samples);
  }
};

struct GeaHarnessOptions {
  EmbedOptions embed{};
  /// Verify functional equivalence by execution on every N-th sample
  /// (1 = all, 0 = never). Interpretation is cheap but not free.
  std::size_t verify_every = 1;
  /// Only attack samples the detector currently classifies correctly.
  bool skip_already_misclassified = true;
  /// Cap on attacked samples (0 = all).
  std::size_t max_samples = 0;
  /// Strict: rethrow the first per-sample crafting failure instead of
  /// quarantining it (see ROBUSTNESS.md).
  bool strict = false;
  /// Cap on retained per-sample failure diagnostics.
  std::size_t max_diagnostics = 8;
  /// Worker threads for crafting (splice + CFG + featurization): 0 = auto
  /// (GEA_THREADS / hardware_concurrency, serial while fault injection is
  /// armed), 1 = serial. Classification and equivalence verification run
  /// serially at merge, so the row is bitwise identical at any count.
  std::size_t threads = 0;
};

class GeaHarness {
 public:
  /// `feature_cache_capacity` bounds the harness-lifetime feature cache
  /// (crafted-graph digest -> features). Size and density sweeps that
  /// revisit a graft target re-featurize the exact same combined graphs;
  /// those rows hit the cache and skip the traversal. 0 disables caching.
  GeaHarness(const dataset::Corpus& corpus, const features::FeatureScaler& scaler,
             ml::DifferentiableClassifier& clf,
             std::size_t feature_cache_capacity = 4096)
      : corpus_(&corpus),
        scaler_(&scaler),
        clf_(&clf),
        feature_cache_(feature_cache_capacity == 0
                           ? nullptr
                           : std::make_shared<features::FeatureCache>(
                                 feature_cache_capacity)) {}

  /// Attack every sample of `source_label` using target sample
  /// `target_index` (a corpus index of the opposite class).
  GeaRow attack_with_target(std::uint8_t source_label, std::size_t target_index,
                            const GeaHarnessOptions& opts = {}) const;

  /// Targeted family evasion: graft target sample `target_index` into
  /// every sample of every *other* class under `schema` (corpus labels must
  /// be schema classes — see dataset::relabel_corpus) and record where the
  /// K-class classifier lands each crafted sample. The attack's target
  /// class is the donor sample's own class; a crafted sample predicted as
  /// that class is a targeted hit, one predicted as anything other than its
  /// true class has evaded attribution. Same wave-loop / serial-merge
  /// discipline as attack_with_target, so the matrix is bitwise identical
  /// at any thread count. Throws std::invalid_argument on a bad target
  /// index or a classifier/schema head-width mismatch.
  FamilyEvasionReport family_attack(std::size_t target_index,
                                    const ml::LabelSchema& schema,
                                    const GeaHarnessOptions& opts = {}) const;

  /// Full source→target sweep: one family_attack per target class (donor =
  /// median-size sample the classifier rates most confidently as that
  /// class), reports summed. Classes with no corpus samples are skipped.
  FamilyEvasionReport family_evasion_matrix(
      const ml::LabelSchema& schema, const GeaHarnessOptions& opts = {}) const;

  /// Tables IV (source=malicious) / V (source=benign): the three
  /// min/median/max-size targets of the opposite class.
  std::vector<GeaRow> size_sweep(std::uint8_t source_label,
                                 const GeaHarnessOptions& opts = {}) const;

  /// Tables VI / VII: fixed-node-count targets with varying edge counts.
  std::vector<GeaRow> density_sweep(std::uint8_t source_label,
                                    std::size_t groups = 3,
                                    std::size_t variants = 3,
                                    const GeaHarnessOptions& opts = {}) const;

  /// The harness-lifetime crafted-feature cache (null when disabled).
  const std::shared_ptr<features::FeatureCache>& feature_cache() const {
    return feature_cache_;
  }

 private:
  const dataset::Corpus* corpus_;
  const features::FeatureScaler* scaler_;
  ml::DifferentiableClassifier* clf_;
  std::shared_ptr<features::FeatureCache> feature_cache_;
};

}  // namespace gea::aug
