// Graph Embedding and Augmentation (GEA) — the paper's core contribution
// (SIII-B), realized at the *program* level.
//
// Given an original sample x_org and a selected target sample x_sel, GEA
// builds a combined program whose CFG contains both samples' graphs behind
// a shared entry and a shared exit:
//
//     entry:  movi r15, 0        ; opaque guard (r15 is reserved)
//             cmpi r15, 0
//             jne  sel_entry     ; never taken
//             <x_org main, inlined; halt/ret -> jmp exit>
//             jmp  exit
//     sel_entry:
//             <x_sel main, inlined; halt/ret -> jmp exit>
//             jmp  exit
//     exit:   halt
//     <x_org helper functions, relocated>
//     <x_sel helper functions, relocated>
//
// The guard always falls through, so the combined binary executes exactly
// the original behaviour (the interpreter verifies this); yet every
// CFG-level feature — size, density, centralities, path lengths — absorbs
// the target sample's structure, which is what drags the classifier across
// the decision boundary.
#pragma once

#include "cfg/cfg.hpp"
#include "isa/interpreter.hpp"
#include "isa/program.hpp"

namespace gea::aug {

enum class GuardKind {
  /// Opaque always-false predicate at the shared entry (the paper's shape).
  kOpaquePredicate,
  /// Ablation: put the *target* body on the fall-through path and jump to
  /// the original via an always-true guard. Same merged topology, different
  /// placement; functionality is still the original's.
  kTargetFirst,
};

struct EmbedOptions {
  GuardKind guard = GuardKind::kOpaquePredicate;
};

/// Splice `selected` into `original`. Both programs must validate. The
/// result validates, and executes equivalently to `original`.
isa::Program embed_program(const isa::Program& original,
                           const isa::Program& selected,
                           const EmbedOptions& opts = {});

/// Splice result bundled with the merged program's main-function CFG, which
/// is guaranteed to pass cfg::validate() — the splice's post-condition, so
/// GEA can never hand feature extraction a malformed graph. Throws
/// std::invalid_argument on invalid inputs, std::logic_error if the splice
/// itself ever produced an invalid program or CFG.
struct EmbedResult {
  isa::Program program;
  cfg::Cfg cfg;
};
EmbedResult embed_with_cfg(const isa::Program& original,
                           const isa::Program& selected,
                           const EmbedOptions& opts = {});

/// Pure graph-level merge (used by tests and the graph-only sweeps):
/// disjoint union of the two graphs plus a fresh entry node with edges to
/// both entries and a fresh exit node fed by both exit sets.
graph::DiGraph embed_graph(const graph::DiGraph& original,
                           graph::NodeId orig_entry,
                           const std::vector<graph::NodeId>& orig_exits,
                           const graph::DiGraph& selected,
                           graph::NodeId sel_entry,
                           const std::vector<graph::NodeId>& sel_exits);

/// Execute both programs and check observable equivalence (same syscall
/// trace, result, and termination class). Used to *prove* the
/// functionality-preservation claim rather than assert it.
bool functionally_equivalent(const isa::Program& original,
                             const isa::Program& augmented,
                             const isa::ExecOptions& opts = {});

}  // namespace gea::aug
