#include "gea/selection.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace gea::aug {

const char* size_rank_name(SizeRank r) {
  switch (r) {
    case SizeRank::kMinimum: return "Minimum";
    case SizeRank::kMedian: return "Median";
    case SizeRank::kMaximum: return "Maximum";
  }
  return "?";
}

std::size_t select_by_size(const dataset::Corpus& corpus, std::uint8_t label,
                           SizeRank rank) {
  auto idx = corpus.indices_of(label);
  if (idx.empty()) {
    throw std::invalid_argument("select_by_size: no samples with label");
  }
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return corpus.samples()[a].num_nodes() < corpus.samples()[b].num_nodes();
  });
  switch (rank) {
    case SizeRank::kMinimum: return idx.front();
    case SizeRank::kMedian: return idx[idx.size() / 2];
    case SizeRank::kMaximum: return idx.back();
  }
  throw std::logic_error("select_by_size: bad rank");
}

std::size_t select_by_size_confident(
    const dataset::Corpus& corpus, std::uint8_t label, SizeRank rank,
    const std::function<double(const dataset::Sample&)>& score,
    std::size_t window) {
  auto idx = corpus.indices_of(label);
  if (idx.empty()) {
    throw std::invalid_argument("select_by_size_confident: no samples");
  }
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return corpus.samples()[a].num_nodes() < corpus.samples()[b].num_nodes();
  });
  std::size_t anchor;
  switch (rank) {
    case SizeRank::kMinimum: anchor = 0; break;
    case SizeRank::kMedian: anchor = idx.size() / 2; break;
    case SizeRank::kMaximum: anchor = idx.size() - 1; break;
    default: throw std::logic_error("select_by_size_confident: bad rank");
  }
  const std::size_t lo = anchor >= window / 2 ? anchor - window / 2 : 0;
  const std::size_t hi = std::min(idx.size(), lo + window);
  std::size_t best = idx[anchor];
  double best_score = score(corpus.samples()[best]);
  for (std::size_t k = lo; k < hi; ++k) {
    const double s = score(corpus.samples()[idx[k]]);
    if (s > best_score) {
      best_score = s;
      best = idx[k];
    }
  }
  return best;
}

std::vector<DensityGroup> density_groups(const dataset::Corpus& corpus,
                                         std::uint8_t label,
                                         std::size_t min_variants) {
  std::map<std::size_t, std::vector<std::size_t>> by_nodes;
  for (std::size_t i : corpus.indices_of(label)) {
    by_nodes[corpus.samples()[i].num_nodes()].push_back(i);
  }
  std::vector<DensityGroup> groups;
  for (auto& [nodes, indices] : by_nodes) {
    std::set<std::size_t> edge_counts;
    for (std::size_t i : indices) {
      edge_counts.insert(corpus.samples()[i].num_edges());
    }
    if (edge_counts.size() < min_variants) continue;
    std::sort(indices.begin(), indices.end(), [&](std::size_t a, std::size_t b) {
      return corpus.samples()[a].num_edges() < corpus.samples()[b].num_edges();
    });
    // Keep one representative per distinct edge count.
    DensityGroup g;
    g.num_nodes = nodes;
    std::size_t last_edges = static_cast<std::size_t>(-1);
    for (std::size_t i : indices) {
      const std::size_t e = corpus.samples()[i].num_edges();
      if (e != last_edges) {
        g.sample_indices.push_back(i);
        last_edges = e;
      }
    }
    groups.push_back(std::move(g));
  }
  return groups;  // std::map iteration => sorted by node count
}

std::vector<DensityGroup> pick_density_targets(const dataset::Corpus& corpus,
                                               std::uint8_t label,
                                               std::size_t count,
                                               std::size_t variants) {
  auto groups = density_groups(corpus, label, variants);
  if (groups.empty()) return {};

  // Spread across the node-count range: take evenly spaced picks.
  std::vector<DensityGroup> picked;
  const std::size_t n = groups.size();
  const std::size_t take = std::min(count, n);
  for (std::size_t k = 0; k < take; ++k) {
    const std::size_t gi = take == 1 ? 0 : k * (n - 1) / (take - 1);
    DensityGroup g = groups[gi];
    // Reduce to `variants` representatives spread across the edge range.
    if (g.sample_indices.size() > variants) {
      std::vector<std::size_t> reduced;
      const std::size_t m = g.sample_indices.size();
      for (std::size_t v = 0; v < variants; ++v) {
        const std::size_t si = variants == 1 ? 0 : v * (m - 1) / (variants - 1);
        reduced.push_back(g.sample_indices[si]);
      }
      g.sample_indices = std::move(reduced);
    }
    picked.push_back(std::move(g));
  }
  return picked;
}

}  // namespace gea::aug
