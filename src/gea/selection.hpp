// Target-sample selection policies for GEA (SIV-B.3).
//
// The paper selects, from each class, three targets by graph size
// (minimum / median / maximum node count) for Tables IV-V, and — for the
// density study of Tables VI-VII — triples of targets sharing a node count
// but differing in edge count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dataset/corpus.hpp"

namespace gea::aug {

enum class SizeRank { kMinimum, kMedian, kMaximum };
const char* size_rank_name(SizeRank r);

/// Index (into `corpus.samples()`) of the sample with the given label whose
/// CFG node count is the minimum / median / maximum within that label.
/// Throws std::invalid_argument if the label has no samples.
std::size_t select_by_size(const dataset::Corpus& corpus, std::uint8_t label,
                           SizeRank rank);

/// Confidence-aware variant: among the `window` samples nearest the size
/// rank, return the one `score` rates highest (e.g. the classifier's
/// probability of the target's own class). Models the attacker's natural
/// move — of the similarly-sized candidates, graft the one the detector is
/// most convinced by. The paper notes MR "is highly dependent on the
/// confidence of the classifier in classifying the selected sample"; this
/// makes the size sweeps measure the size effect rather than one sample's
/// idiosyncrasy.
std::size_t select_by_size_confident(
    const dataset::Corpus& corpus, std::uint8_t label, SizeRank rank,
    const std::function<double(const dataset::Sample&)>& score,
    std::size_t window = 9);

/// A node-count group usable for the density sweep: >= `min_variants`
/// samples of `label` share `num_nodes` with at least two distinct edge
/// counts.
struct DensityGroup {
  std::size_t num_nodes = 0;
  /// Sample indices sorted by edge count (ascending).
  std::vector<std::size_t> sample_indices;
};

/// All node-count groups of `label` with at least `min_variants` distinct
/// edge counts, sorted by node count.
std::vector<DensityGroup> density_groups(const dataset::Corpus& corpus,
                                         std::uint8_t label,
                                         std::size_t min_variants = 3);

/// Pick `count` groups spread across the node-count range (small / mid /
/// large), each reduced to `variants` samples spread across its edge-count
/// range — the shape of Tables VI-VII (3 groups x 3 edge counts).
std::vector<DensityGroup> pick_density_targets(const dataset::Corpus& corpus,
                                               std::uint8_t label,
                                               std::size_t count = 3,
                                               std::size_t variants = 3);

}  // namespace gea::aug
