#include "gea/harness.hpp"

#include <stdexcept>

#include "util/log.hpp"
#include "util/timer.hpp"

namespace gea::aug {

GeaRow GeaHarness::attack_with_target(std::uint8_t source_label,
                                      std::size_t target_index,
                                      const GeaHarnessOptions& opts) const {
  const auto& samples = corpus_->samples();
  if (target_index >= samples.size()) {
    throw std::invalid_argument("attack_with_target: bad target index");
  }
  const dataset::Sample& target = samples[target_index];
  if (target.label == source_label) {
    throw std::invalid_argument(
        "attack_with_target: target must be from the opposite class");
  }

  GeaRow row;
  row.target_nodes = target.num_nodes();
  row.target_edges = target.num_edges();

  double total_ms = 0.0;
  std::size_t verified = 0, equivalent = 0;

  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (opts.max_samples != 0 && row.samples >= opts.max_samples) break;
    const dataset::Sample& s = samples[i];
    if (s.label != source_label || i == target_index) continue;

    std::vector<double> scaled_orig(features::kNumFeatures);
    {
      const auto t = scaler_->transform(s.features);
      scaled_orig.assign(t.begin(), t.end());
    }
    if (opts.skip_already_misclassified &&
        clf_->predict(scaled_orig) != s.label) {
      continue;
    }

    // Craft: splice, re-disassemble, re-featurize (the timed pipeline).
    // Per-sample failures (embed exception, invalid merged CFG, non-finite
    // crafted features) are quarantined so one degenerate binary cannot
    // abort a whole sweep.
    util::Stopwatch sw;
    isa::Program augmented;
    features::FeatureVector fv{};
    try {
      EmbedResult crafted =
          embed_with_cfg(s.program, target.program, opts.embed);
      fv = features::extract_features(crafted.cfg.graph);
      if (!features::all_finite(fv)) {
        throw std::runtime_error(
            "non-finite feature " +
            features::feature_name(features::first_non_finite(fv)));
      }
      augmented = std::move(crafted.program);
    } catch (const std::exception& e) {
      if (opts.strict) throw;
      const std::string diag =
          "sample " + std::to_string(s.id) + ": " + e.what();
      ++row.quarantined;
      if (row.diagnostics.size() < opts.max_diagnostics) {
        row.diagnostics.push_back(diag);
      }
      util::log_warn("gea harness: quarantined ", diag);
      continue;
    }
    total_ms += sw.elapsed_ms();

    const auto scaled = scaler_->transform(fv);
    const std::vector<double> x(scaled.begin(), scaled.end());
    ++row.samples;
    if (clf_->predict(x) != s.label) ++row.misclassified;

    if (opts.verify_every != 0 && (row.samples - 1) % opts.verify_every == 0) {
      ++verified;
      if (functionally_equivalent(s.program, augmented)) ++equivalent;
    }
  }

  if (row.samples > 0) {
    row.craft_ms_per_sample = total_ms / static_cast<double>(row.samples);
  }
  row.equivalence_rate =
      verified == 0 ? 0.0
                    : static_cast<double>(equivalent) / static_cast<double>(verified);
  return row;
}

std::vector<GeaRow> GeaHarness::size_sweep(std::uint8_t source_label,
                                           const GeaHarnessOptions& opts) const {
  const std::uint8_t target_label =
      source_label == dataset::kBenign ? dataset::kMalicious : dataset::kBenign;
  // Among similarly-sized candidates, graft the one the detector classifies
  // most confidently as the target class (see select_by_size_confident).
  auto confidence = [&](const dataset::Sample& s) {
    const auto scaled = scaler_->transform(s.features);
    return clf_->probabilities({scaled.begin(), scaled.end()})[target_label];
  };
  std::vector<GeaRow> rows;
  for (SizeRank rank :
       {SizeRank::kMinimum, SizeRank::kMedian, SizeRank::kMaximum}) {
    const std::size_t t =
        select_by_size_confident(*corpus_, target_label, rank, confidence);
    GeaRow row = attack_with_target(source_label, t, opts);
    row.label = size_rank_name(rank);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<GeaRow> GeaHarness::density_sweep(std::uint8_t source_label,
                                              std::size_t groups,
                                              std::size_t variants,
                                              const GeaHarnessOptions& opts) const {
  const std::uint8_t target_label =
      source_label == dataset::kBenign ? dataset::kMalicious : dataset::kBenign;
  std::vector<GeaRow> rows;
  for (const auto& g :
       pick_density_targets(*corpus_, target_label, groups, variants)) {
    for (std::size_t t : g.sample_indices) {
      GeaRow row = attack_with_target(source_label, t, opts);
      row.label = std::to_string(g.num_nodes) + " nodes";
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

}  // namespace gea::aug
