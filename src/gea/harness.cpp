#include "gea/harness.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace gea::aug {

GeaRow GeaHarness::attack_with_target(std::uint8_t source_label,
                                      std::size_t target_index,
                                      const GeaHarnessOptions& opts) const {
  const auto& samples = corpus_->samples();
  if (target_index >= samples.size()) {
    throw std::invalid_argument("attack_with_target: bad target index");
  }
  const dataset::Sample& target = samples[target_index];
  if (target.label == source_label) {
    throw std::invalid_argument(
        "attack_with_target: target must be from the opposite class");
  }

  GeaRow row;
  row.target_nodes = target.num_nodes();
  row.target_edges = target.num_edges();

  // One span per target sweep; per-sample splice+featurize times land in
  // "gea.craft_ms" (the Tables IV-VII CT column as a distribution).
  obs::TraceSpan run_span("gea.attack_with_target");
  auto& registry = obs::MetricsRegistry::global();
  obs::Histogram& craft_ms_hist = registry.histogram("gea.craft_ms");
  obs::Counter& crafted_total = registry.counter("gea.crafted_total");
  obs::Counter& misclassified_total =
      registry.counter("gea.misclassified_total");
  obs::Counter& quarantined_total = registry.counter("gea.quarantined_total");
  obs::Counter& verified_total = registry.counter("gea.verified_total");
  obs::Counter& equivalent_total = registry.counter("gea.equivalent_total");

  double total_ms = 0.0;
  std::size_t verified = 0, equivalent = 0;

  struct Slot {
    isa::Program augmented;
    features::FeatureVector fv{};
    double ms = 0.0;
    std::exception_ptr error;
  };

  // Wave loop (see run_attack): under a sample cap, quarantined crafts do
  // not count toward the cap, so candidates are collected in waves of
  // `cap - samples` until the cap is met — visiting exactly the samples the
  // serial loop would.
  std::size_t pos = 0;
  while (pos < samples.size() &&
         (opts.max_samples == 0 || row.samples < opts.max_samples)) {
    const std::size_t need =
        opts.max_samples == 0 ? samples.size() : opts.max_samples - row.samples;

    // Serial scan in corpus order: class filter plus the correctly-
    // classified eligibility check (the classifier is not thread-safe and
    // stays on this thread throughout).
    std::vector<std::size_t> wave;
    while (pos < samples.size() && wave.size() < need) {
      const std::size_t i = pos++;
      const dataset::Sample& s = samples[i];
      if (s.label != source_label || i == target_index) continue;
      if (opts.skip_already_misclassified) {
        const auto t = scaler_->transform(s.features);
        const std::vector<double> scaled_orig(t.begin(), t.end());
        if (clf_->predict(scaled_orig) != s.label) continue;
      }
      wave.push_back(i);
    }
    if (wave.empty()) break;

    // Parallel craft: splice, re-disassemble, re-featurize (the timed
    // pipeline). Embedding is a pure function of (source, target, options),
    // so thread count cannot change the crafted programs. Per-sample
    // failures (embed exception, invalid merged CFG, non-finite crafted
    // features) are captured in the slot so one degenerate binary cannot
    // abort a whole sweep.
    std::vector<Slot> slots(wave.size());
    const auto status = util::parallel_for(
        wave.size(),
        [&](std::size_t w) {
          const dataset::Sample& s = samples[wave[w]];
          util::Stopwatch sw;
          try {
            EmbedResult crafted =
                embed_with_cfg(s.program, target.program, opts.embed);
            // Per-worker engine, harness-wide cache: a combined graph seen
            // in an earlier row (same source spliced with the same graft)
            // skips the traversal entirely.
            slots[w].fv = features::FeatureEngine::local().extract(
                crafted.cfg.graph, feature_cache_.get());
            if (!features::all_finite(slots[w].fv)) {
              throw std::runtime_error(
                  "non-finite feature " +
                  features::feature_name(
                      features::first_non_finite(slots[w].fv)));
            }
            slots[w].augmented = std::move(crafted.program);
          } catch (...) {
            slots[w].error = std::current_exception();
          }
          slots[w].ms = sw.elapsed_ms();
          return util::Status::ok();
        },
        {.threads = opts.threads, .label = "gea harness"});
    if (!status.is_ok()) {
      throw std::runtime_error(status.to_string());
    }

    // Merge in corpus order: quarantine accounting, classification, and
    // stride-based equivalence verification are serial, so the row (which
    // samples verified included) is bitwise identical at any thread count.
    for (std::size_t w = 0; w < wave.size(); ++w) {
      const dataset::Sample& s = samples[wave[w]];
      Slot& slot = slots[w];
      if (slot.error) {
        if (opts.strict) std::rethrow_exception(slot.error);
        std::string diag = "sample " + std::to_string(s.id) + ": ";
        try {
          std::rethrow_exception(slot.error);
        } catch (const std::exception& e) {
          diag += e.what();
        } catch (...) {
          diag += "non-standard exception";
        }
        ++row.quarantined;
        quarantined_total.inc();
        if (row.diagnostics.size() < opts.max_diagnostics) {
          row.diagnostics.push_back(diag);
        }
        util::log_warn("gea harness: quarantined ", diag);
        continue;
      }
      total_ms += slot.ms;
      craft_ms_hist.observe(slot.ms);
      crafted_total.inc();

      const auto scaled = scaler_->transform(slot.fv);
      const std::vector<double> x(scaled.begin(), scaled.end());
      ++row.samples;
      if (clf_->predict(x) != s.label) {
        ++row.misclassified;
        misclassified_total.inc();
      }

      if (opts.verify_every != 0 &&
          (row.samples - 1) % opts.verify_every == 0) {
        ++verified;
        verified_total.inc();
        if (functionally_equivalent(s.program, slot.augmented)) {
          ++equivalent;
          equivalent_total.inc();
        }
      }
    }
  }

  if (row.samples > 0) {
    row.craft_ms_per_sample = total_ms / static_cast<double>(row.samples);
  }
  row.equivalence_rate =
      verified == 0 ? 0.0
                    : static_cast<double>(equivalent) / static_cast<double>(verified);
  return row;
}

FamilyEvasionReport GeaHarness::family_attack(
    std::size_t target_index, const ml::LabelSchema& schema,
    const GeaHarnessOptions& opts) const {
  const auto& samples = corpus_->samples();
  if (target_index >= samples.size()) {
    throw std::invalid_argument("family_attack: bad target index");
  }
  if (clf_->num_classes() != schema.num_classes()) {
    throw std::invalid_argument(
        "family_attack: classifier head width " +
        std::to_string(clf_->num_classes()) + " != schema classes " +
        std::to_string(schema.num_classes()));
  }
  const dataset::Sample& target = samples[target_index];
  if (!schema.valid_label(target.label)) {
    throw std::invalid_argument("family_attack: target label outside schema");
  }
  const std::uint8_t target_class = target.label;

  FamilyEvasionReport rep;
  rep.matrix = ml::MultiConfusion(schema.num_classes());

  obs::TraceSpan run_span("gea.family_attack");
  auto& registry = obs::MetricsRegistry::global();
  obs::Histogram& craft_ms_hist = registry.histogram("gea.craft_ms");
  obs::Counter& crafted_total = registry.counter("gea.crafted_total");
  obs::Counter& targeted_total = registry.counter("gea.family_targeted_total");
  obs::Counter& evaded_total = registry.counter("gea.family_evaded_total");
  obs::Counter& quarantined_total = registry.counter("gea.quarantined_total");

  double total_ms = 0.0;

  struct Slot {
    features::FeatureVector fv{};
    double ms = 0.0;
    std::exception_ptr error;
  };

  // Same wave discipline as attack_with_target: serial scan for eligible
  // sources, parallel craft, serial merge — bitwise identical at any
  // thread count.
  std::size_t pos = 0;
  while (pos < samples.size() &&
         (opts.max_samples == 0 || rep.samples < opts.max_samples)) {
    const std::size_t need =
        opts.max_samples == 0 ? samples.size() : opts.max_samples - rep.samples;

    std::vector<std::size_t> wave;
    while (pos < samples.size() && wave.size() < need) {
      const std::size_t i = pos++;
      const dataset::Sample& s = samples[i];
      if (s.label == target_class || i == target_index) continue;
      if (!schema.valid_label(s.label)) {
        throw std::invalid_argument(
            "family_attack: sample " + std::to_string(s.id) +
            " label outside schema (relabel the corpus first)");
      }
      if (opts.skip_already_misclassified) {
        const auto t = scaler_->transform(s.features);
        const std::vector<double> scaled_orig(t.begin(), t.end());
        if (clf_->predict(scaled_orig) != s.label) continue;
      }
      wave.push_back(i);
    }
    if (wave.empty()) break;

    std::vector<Slot> slots(wave.size());
    const auto status = util::parallel_for(
        wave.size(),
        [&](std::size_t w) {
          const dataset::Sample& s = samples[wave[w]];
          util::Stopwatch sw;
          try {
            EmbedResult crafted =
                embed_with_cfg(s.program, target.program, opts.embed);
            slots[w].fv = features::FeatureEngine::local().extract(
                crafted.cfg.graph, feature_cache_.get());
            if (!features::all_finite(slots[w].fv)) {
              throw std::runtime_error(
                  "non-finite feature " +
                  features::feature_name(
                      features::first_non_finite(slots[w].fv)));
            }
          } catch (...) {
            slots[w].error = std::current_exception();
          }
          slots[w].ms = sw.elapsed_ms();
          return util::Status::ok();
        },
        {.threads = opts.threads, .label = "gea family"});
    if (!status.is_ok()) {
      throw std::runtime_error(status.to_string());
    }

    for (std::size_t w = 0; w < wave.size(); ++w) {
      const dataset::Sample& s = samples[wave[w]];
      Slot& slot = slots[w];
      if (slot.error) {
        if (opts.strict) std::rethrow_exception(slot.error);
        std::string diag = "sample " + std::to_string(s.id) + ": ";
        try {
          std::rethrow_exception(slot.error);
        } catch (const std::exception& e) {
          diag += e.what();
        } catch (...) {
          diag += "non-standard exception";
        }
        ++rep.quarantined;
        quarantined_total.inc();
        if (rep.diagnostics.size() < opts.max_diagnostics) {
          rep.diagnostics.push_back(diag);
        }
        util::log_warn("gea family: quarantined ", diag);
        continue;
      }
      total_ms += slot.ms;
      craft_ms_hist.observe(slot.ms);
      crafted_total.inc();

      const auto scaled = scaler_->transform(slot.fv);
      const std::vector<double> x(scaled.begin(), scaled.end());
      const std::uint8_t pred = clf_->predict(x);
      ++rep.samples;
      rep.matrix.at(s.label, pred) += 1;
      if (pred == target_class) {
        ++rep.targeted_hits;
        targeted_total.inc();
      }
      if (pred != s.label) {
        ++rep.evaded;
        evaded_total.inc();
      }
    }
  }

  if (rep.samples > 0) {
    rep.craft_ms_per_sample = total_ms / static_cast<double>(rep.samples);
  }
  return rep;
}

FamilyEvasionReport GeaHarness::family_evasion_matrix(
    const ml::LabelSchema& schema, const GeaHarnessOptions& opts) const {
  FamilyEvasionReport out;
  out.matrix = ml::MultiConfusion(schema.num_classes());
  double weighted_ms = 0.0;
  auto confidence_for = [&](std::uint8_t cls) {
    return [this, cls](const dataset::Sample& s) {
      const auto scaled = scaler_->transform(s.features);
      return clf_->probabilities({scaled.begin(), scaled.end()})[cls];
    };
  };
  for (std::size_t c = 0; c < schema.num_classes(); ++c) {
    const auto cls = static_cast<std::uint8_t>(c);
    if (corpus_->count_label(cls) == 0) continue;
    const std::size_t donor = select_by_size_confident(
        *corpus_, cls, SizeRank::kMedian, confidence_for(cls));
    FamilyEvasionReport rep = family_attack(donor, schema, opts);
    out.samples += rep.samples;
    out.targeted_hits += rep.targeted_hits;
    out.evaded += rep.evaded;
    out.quarantined += rep.quarantined;
    weighted_ms += rep.craft_ms_per_sample * static_cast<double>(rep.samples);
    for (std::size_t i = 0; i < rep.matrix.counts.size(); ++i) {
      out.matrix.counts[i] += rep.matrix.counts[i];
    }
    for (auto& d : rep.diagnostics) {
      if (out.diagnostics.size() < opts.max_diagnostics) {
        out.diagnostics.push_back(std::move(d));
      }
    }
  }
  if (out.samples > 0) {
    out.craft_ms_per_sample = weighted_ms / static_cast<double>(out.samples);
  }
  return out;
}

std::vector<GeaRow> GeaHarness::size_sweep(std::uint8_t source_label,
                                           const GeaHarnessOptions& opts) const {
  const std::uint8_t target_label =
      source_label == dataset::kBenign ? dataset::kMalicious : dataset::kBenign;
  // Among similarly-sized candidates, graft the one the detector classifies
  // most confidently as the target class (see select_by_size_confident).
  auto confidence = [&](const dataset::Sample& s) {
    const auto scaled = scaler_->transform(s.features);
    return clf_->probabilities({scaled.begin(), scaled.end()})[target_label];
  };
  std::vector<GeaRow> rows;
  for (SizeRank rank :
       {SizeRank::kMinimum, SizeRank::kMedian, SizeRank::kMaximum}) {
    const std::size_t t =
        select_by_size_confident(*corpus_, target_label, rank, confidence);
    GeaRow row = attack_with_target(source_label, t, opts);
    row.label = size_rank_name(rank);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<GeaRow> GeaHarness::density_sweep(std::uint8_t source_label,
                                              std::size_t groups,
                                              std::size_t variants,
                                              const GeaHarnessOptions& opts) const {
  const std::uint8_t target_label =
      source_label == dataset::kBenign ? dataset::kMalicious : dataset::kBenign;
  std::vector<GeaRow> rows;
  for (const auto& g :
       pick_density_targets(*corpus_, target_label, groups, variants)) {
    for (std::size_t t : g.sample_indices) {
      GeaRow row = attack_with_target(source_label, t, opts);
      row.label = std::to_string(g.num_nodes) + " nodes";
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

}  // namespace gea::aug
