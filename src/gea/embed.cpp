#include "gea/embed.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace gea::aug {

using isa::Instruction;
using isa::Opcode;
using isa::Program;

namespace {

/// Index remapping for one source program spliced into the merged image:
/// main instructions move to `main_base`, helper instructions (everything
/// past the main function) move to `helper_base`.
struct Relocation {
  std::uint32_t main_end;     // end of main in the source program
  std::uint32_t main_base;    // where source main starts in the merged image
  std::uint32_t helper_base;  // where source helpers start in the merged image

  std::uint32_t map(std::uint32_t old_index) const {
    return old_index < main_end ? main_base + old_index
                                : helper_base + (old_index - main_end);
  }
};

/// Copy a program's main-function body into `out`, remapping jump/call
/// targets and rewriting terminators (halt, main-level ret) into jumps to
/// the shared exit. One-for-one instruction replacement keeps all indices
/// stable, so the relocation stays a pure offset.
void splice_main(const Program& src, const Relocation& rel,
                 std::uint32_t exit_index, std::vector<Instruction>& out) {
  const auto& main_fn = src.functions().front();
  for (std::uint32_t i = main_fn.begin; i < main_fn.end; ++i) {
    Instruction ins = src.code()[i];
    if (ins.op == Opcode::kHalt || ins.op == Opcode::kRet) {
      ins = Instruction{Opcode::kJmp, 0, 0, 0, exit_index};
    } else if (isa::has_target(ins.op)) {
      ins.target = rel.map(ins.target);
    }
    out.push_back(ins);
  }
}

/// Copy a program's helper functions, remapping targets. Helpers keep their
/// own terminators (a helper's `halt` halts both the original and the
/// augmented run at the same trace point, so equivalence is preserved).
void splice_helpers(const Program& src, const Relocation& rel,
                    const std::string& prefix,
                    std::vector<Instruction>& out,
                    std::vector<isa::Function>& functions) {
  const auto& main_fn = src.functions().front();
  for (std::size_t f = 1; f < src.functions().size(); ++f) {
    const auto& fn = src.functions()[f];
    functions.push_back({prefix + fn.name, rel.map(fn.begin), rel.map(fn.end - 1) + 1});
  }
  for (std::uint32_t i = main_fn.end; i < src.code().size(); ++i) {
    Instruction ins = src.code()[i];
    if (isa::has_target(ins.op)) ins.target = rel.map(ins.target);
    out.push_back(ins);
  }
}

}  // namespace

isa::Program embed_program(const Program& original, const Program& selected,
                           const EmbedOptions& opts) {
  if (auto err = original.validate()) {
    throw std::invalid_argument("embed_program: invalid original: " + *err);
  }
  if (auto err = selected.validate()) {
    throw std::invalid_argument("embed_program: invalid selected: " + *err);
  }

  // Fall-through chunk runs; jump-target chunk never does. The opaque
  // guard (always-false jne) puts the original on the fall-through path;
  // the kTargetFirst ablation uses an always-true je to reach the original
  // behind the jump, leaving the selected body dead on the fall-through.
  const bool original_first = opts.guard == GuardKind::kOpaquePredicate;
  const Program& first = original_first ? original : selected;
  const Program& second = original_first ? selected : original;

  const std::uint32_t m_first = first.functions().front().end;
  const std::uint32_t m_second = second.functions().front().end;

  // Layout:
  //  [0..2]   guard: movi r15,0 ; cmpi r15,0 ; j{ne,e} <second_base>
  //  [3]      flag normalizer for the first chunk (cmpi r15,-1)
  //  [4..]    first main chunk
  //  [..]     flag normalizer for the second chunk
  //  [..]     second main chunk
  //  [exit]   halt (the shared exit node)
  //  [..]     first program's helpers, then second's
  const std::uint32_t first_base = 4;
  const std::uint32_t second_norm = first_base + m_first;
  const std::uint32_t second_base = second_norm + 1;
  const std::uint32_t exit_index = second_base + m_second;
  const std::uint32_t helpers_first = exit_index + 1;
  const std::uint32_t helpers_second =
      helpers_first +
      (static_cast<std::uint32_t>(first.size()) - m_first);

  const Relocation rel_first{m_first, first_base, helpers_first};
  const Relocation rel_second{m_second, second_base, helpers_second};

  std::vector<Instruction> code;
  code.reserve(first.size() + second.size() + 6);

  // Guard block. r15 is reserved for instrumentation, so setting it cannot
  // disturb either embedded program; the trailing cmpi r15,-1 restores the
  // flags to their program-start state (zero=0, sign=0) on both paths.
  const int guard = isa::kGuardRegister;
  code.push_back({Opcode::kMovImm, static_cast<std::uint8_t>(guard), 0, 0, 0});
  code.push_back({Opcode::kCmpImm, static_cast<std::uint8_t>(guard), 0, 0, 0});
  code.push_back({original_first ? Opcode::kJne : Opcode::kJe, 0, 0, 0,
                  second_norm});
  code.push_back({Opcode::kCmpImm, static_cast<std::uint8_t>(guard), 0, -1, 0});

  splice_main(first, rel_first, exit_index, code);
  code.push_back({Opcode::kCmpImm, static_cast<std::uint8_t>(guard), 0, -1, 0});
  splice_main(second, rel_second, exit_index, code);
  code.push_back({Opcode::kHalt, 0, 0, 0, 0});  // shared exit

  std::vector<isa::Function> functions;
  functions.push_back({"main", 0, exit_index + 1});
  splice_helpers(first, rel_first, original_first ? "o_" : "t_", code, functions);
  splice_helpers(second, rel_second, original_first ? "t_" : "o_", code, functions);

  Program merged;
  merged.code() = std::move(code);
  merged.functions() = std::move(functions);
  if (auto err = merged.validate()) {
    throw std::logic_error("embed_program: produced invalid program: " + *err);
  }
  return merged;
}

EmbedResult embed_with_cfg(const Program& original, const Program& selected,
                           const EmbedOptions& opts) {
  EmbedResult result;
  result.program = embed_program(original, selected, opts);
  result.cfg = cfg::extract_cfg(result.program, {.main_only = true});
  // Post-condition: splicing must never emit a malformed graph. A failure
  // here is a bug in the embedder, not bad input — escalate loudly.
  if (auto st = cfg::validate(result.cfg); !st.is_ok()) {
    throw std::logic_error("embed_with_cfg: post-condition failed: " +
                           st.to_string());
  }
  return result;
}

graph::DiGraph embed_graph(const graph::DiGraph& original,
                           graph::NodeId orig_entry,
                           const std::vector<graph::NodeId>& orig_exits,
                           const graph::DiGraph& selected,
                           graph::NodeId sel_entry,
                           const std::vector<graph::NodeId>& sel_exits) {
  // Pre-conditions: every referenced node must exist in its source graph,
  // or the merged graph would be built around dangling ids.
  auto check_refs = [](const graph::DiGraph& g, graph::NodeId entry,
                       const std::vector<graph::NodeId>& exits,
                       const char* which) {
    if (entry >= g.num_nodes()) {
      throw std::invalid_argument(std::string("embed_graph: ") + which +
                                  " entry out of bounds");
    }
    for (auto e : exits) {
      if (e >= g.num_nodes()) {
        throw std::invalid_argument(std::string("embed_graph: ") + which +
                                    " exit out of bounds");
      }
    }
  };
  check_refs(original, orig_entry, orig_exits, "original");
  check_refs(selected, sel_entry, sel_exits, "selected");

  graph::DiGraph merged;
  const auto entry = merged.add_node("entry (guard)");
  const auto off_orig = merged.merge_disjoint(original);
  const auto off_sel = merged.merge_disjoint(selected);
  const auto exit = merged.add_node("exit");

  merged.add_edge(entry, off_orig + orig_entry);
  merged.add_edge(entry, off_sel + sel_entry);
  for (auto e : orig_exits) merged.add_edge(off_orig + e, exit);
  for (auto e : sel_exits) merged.add_edge(off_sel + e, exit);
  // Post-condition: the union must still be internally consistent.
  if (auto err = merged.validate()) {
    throw std::logic_error("embed_graph: produced inconsistent graph: " + *err);
  }
  return merged;
}

bool functionally_equivalent(const Program& original, const Program& augmented,
                             const isa::ExecOptions& opts) {
  const auto a = isa::execute(original, opts);
  const auto b = isa::execute(augmented, opts);
  return a.equivalent(b);
}

}  // namespace gea::aug
