// Feature-matrix persistence (CSV with a header row), so experiments can be
// rerun without regenerating the corpus.
//
// Reading is hardened against hostile or damaged files: the checked API
// validates the header, column counts, numeric cells, label values, and
// feature finiteness per row. Lenient mode quarantines bad rows into a
// report and returns the survivors; strict mode fails fast with a Status
// naming the first offending row. See ROBUSTNESS.md.
#pragma once

#include <string>

#include "dataset/corpus.hpp"
#include "ml/label_schema.hpp"
#include "util/status.hpp"

namespace gea::dataset {

/// Write id, family, label and the 23 features per sample. The label
/// column is the sample's class under `schema`: the binary default writes
/// the paper's 0/1 labels (byte-identical to the pre-schema writer), a
/// family schema writes family classes via class_for_family().
void write_features_csv(const Corpus& corpus, const std::string& path,
                        const ml::LabelSchema& schema = {});

struct CsvReadOptions {
  /// Strict: first malformed row aborts the read with an error Status.
  /// Lenient (default): malformed rows are skipped and reported.
  bool strict = false;
  /// Cap on retained per-row diagnostics (counts are always exact).
  std::size_t max_diagnostics = 8;
  /// Schema the label column is validated against: a label must be a bare
  /// decimal integer in [0, schema.num_classes()). Defaults to binary.
  ml::LabelSchema schema;
};

/// Quarantine accounting for one read.
struct CsvReadReport {
  std::size_t rows_total = 0;        // data rows in the file
  std::size_t rows_loaded = 0;
  std::size_t rows_quarantined = 0;
  std::vector<std::string> diagnostics;  // first max_diagnostics failures
};

/// Feature rows + labels loaded back from a CSV produced by
/// write_features_csv. (Programs/CFGs are not persisted.)
struct LoadedFeatures {
  std::vector<features::FeatureVector> rows;
  std::vector<std::uint8_t> labels;
  std::vector<std::string> families;
  CsvReadReport report;
};

/// Hardened reader. File-level problems (missing file, empty file, wrong
/// header schema, refused oversized allocation) are errors in both modes;
/// row-level problems quarantine or error according to `opts.strict`.
util::Result<LoadedFeatures> read_features_csv_checked(
    const std::string& path, const CsvReadOptions& opts = {});

/// Back-compat strict wrapper: throws std::runtime_error on any problem.
LoadedFeatures read_features_csv(const std::string& path);

}  // namespace gea::dataset
