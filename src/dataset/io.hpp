// Feature-matrix persistence (CSV with a header row), so experiments can be
// rerun without regenerating the corpus.
#pragma once

#include <string>

#include "dataset/corpus.hpp"

namespace gea::dataset {

/// Write id, family, label and the 23 features per sample.
void write_features_csv(const Corpus& corpus, const std::string& path);

/// Feature rows + labels loaded back from a CSV produced by
/// write_features_csv. (Programs/CFGs are not persisted.)
struct LoadedFeatures {
  std::vector<features::FeatureVector> rows;
  std::vector<std::uint8_t> labels;
  std::vector<std::string> families;
};

LoadedFeatures read_features_csv(const std::string& path);

}  // namespace gea::dataset
