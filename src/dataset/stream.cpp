#include "dataset/stream.hpp"

#include <filesystem>
#include <utility>

#include "dataset/labels.hpp"
#include "features/disk_cache.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace gea::dataset {

namespace fs = std::filesystem;
using util::ErrorCode;
using util::Status;

namespace {

// Same per-sample ceiling as Corpus::generate_checked, so a record that
// would be quarantined in-memory is quarantined identically when streamed.
constexpr std::size_t kMaxProgramLen = 4'000'000;

/// "shard-00000.gsd" -> "shard-00000" (segment files drop the extension).
std::string shard_stem(const std::string& file) {
  const std::size_t dot = file.rfind('.');
  return dot == std::string::npos ? file : file.substr(0, dot);
}

void add_diag(StreamReport& rep, std::size_t cap, std::string msg) {
  if (rep.diagnostics.size() < cap) rep.diagnostics.push_back(std::move(msg));
}

}  // namespace

util::Result<ShardedCorpus> ShardedCorpus::open(std::string dir) {
  auto m = read_manifest(dir);
  if (!m.is_ok()) {
    return Status(m.status()).with_context("ShardedCorpus::open " + dir);
  }
  return ShardedCorpus(std::move(dir), std::move(m).value());
}

util::Status ShardedCorpus::featurize(
    const std::function<void(const StreamRecord&)>& visit, StreamReport* report,
    const StreamOptions& opts) const {
  StreamReport local;
  StreamReport& rep = report != nullptr ? *report : local;
  rep.shards_total = manifest_.shards.size();

  const std::size_t threads = util::resolve_threads(
      {.threads = opts.threads, .label = "corpus streaming"});
  rep.threads_used = threads;

  // One in-memory cache for the whole pass; the persistent tier beneath it
  // is swapped per shard. Capacity 0 with no cache_dir means "no caching".
  std::shared_ptr<features::FeatureCache> cache;
  if (opts.mem_cache_capacity > 0 || !opts.cache_dir.empty()) {
    cache = std::make_shared<features::FeatureCache>(
        opts.mem_cache_capacity > 0 ? opts.mem_cache_capacity : 1);
  }
  if (!opts.cache_dir.empty()) {
    std::error_code ec;
    fs::create_directories(opts.cache_dir, ec);
    if (ec) {
      return Status::error(ErrorCode::kUnavailable,
                           "cannot create " + opts.cache_dir + ": " +
                               ec.message())
          .with_context("ShardedCorpus::featurize");
    }
  }

  util::Stopwatch wall;
  for (std::size_t si = 0; si < manifest_.shards.size(); ++si) {
    const ShardInfo& info = manifest_.shards[si];
    const std::string path = (fs::path(dir_) / info.file).string();

    // Decode one shard. File-level damage quarantines the whole shard in
    // lenient mode (every record the manifest claims is counted lost).
    std::vector<ShardRecord> records;
    ShardReadReport srep;
    srep.max_diagnostics = opts.max_diagnostics;
    if (auto st = read_shard(path, &info, records, srep, opts.strict,
                             manifest_.schema);
        !st.is_ok()) {
      if (opts.strict) return st.with_context("ShardedCorpus::featurize");
      ++rep.shards_quarantined;
      rep.records_quarantined += static_cast<std::size_t>(info.records);
      add_diag(rep, opts.max_diagnostics, st.to_string());
      util::log_warn("sharded corpus: quarantined shard ", st.to_string());
      continue;
    }
    rep.records_quarantined += srep.records_quarantined;
    for (auto& d : srep.diagnostics) {
      add_diag(rep, opts.max_diagnostics, std::move(d));
    }

    // Per-shard persistent tier. A segment that fails to load is rebuilt
    // from scratch (its entries recompute) rather than trusted or fatal —
    // except under strict, where damage is the caller's business.
    std::shared_ptr<features::DiskFeatureCache> tier;
    if (cache != nullptr && !opts.cache_dir.empty()) {
      const std::string seg =
          (fs::path(opts.cache_dir) / (shard_stem(info.file) + ".gfc"))
              .string();
      features::DiskCacheLoadReport crep;
      crep.max_diagnostics = opts.max_diagnostics;
      auto seg_cache = features::DiskFeatureCache::open(seg, &crep, opts.strict);
      if (seg_cache.is_ok()) {
        tier = std::make_shared<features::DiskFeatureCache>(
            std::move(seg_cache).value());
      } else {
        if (opts.strict) {
          return Status(seg_cache.status())
              .with_context("ShardedCorpus::featurize");
        }
        add_diag(rep, opts.max_diagnostics, seg_cache.status().to_string());
        util::log_warn("sharded corpus: rebuilding cache segment ",
                       seg_cache.status().to_string());
        // Quarantine the damaged file aside and rebuild in place, so the
        // next warm run reads the fresh segment, not the corpse.
        std::error_code ec;
        fs::rename(seg, seg + ".quarantined", ec);  // best-effort
        auto fresh = features::DiskFeatureCache::open(seg, nullptr, false);
        if (fresh.is_ok()) {
          tier = std::make_shared<features::DiskFeatureCache>(
              std::move(fresh).value());
        }
      }
      for (auto& d : crep.diagnostics) {
        add_diag(rep, opts.max_diagnostics, std::move(d));
      }
      cache->set_persistent_tier(tier);
    }

    // Featurize this shard under the standard serial-merge discipline:
    // parallel workers fill pre-sized slots, the visitor runs serially in
    // record order below. Per-worker engines share `cache`, so a warm tier
    // answers every repeat digest without a traversal.
    std::vector<Sample> samples(records.size());
    std::vector<Status> verdicts(records.size());
    std::vector<double> chunk_ms(threads, 0.0);
    const Status pst = util::parallel_for_ranges(
        records.size(), threads,
        [&](std::size_t begin, std::size_t end, std::size_t chunk) {
          util::Stopwatch sw;
          features::FeatureEngine engine(cache);
          for (std::size_t i = begin; i < end; ++i) {
            Sample& s = samples[i];
            s.id = records[i].id;
            s.family = records[i].family;
            s.label = records[i].label;
            s.program = std::move(records[i].program);
            try {
              featurize_sample(s, engine);
              Status v = util::check_allocation(s.program.size(),
                                                kMaxProgramLen,
                                                "sample program");
              if (v.is_ok()) v = validate_sample(s);
              verdicts[i] = std::move(v);
            } catch (const std::exception& e) {
              verdicts[i] = Status::error(ErrorCode::kInternal, e.what());
            }
          }
          chunk_ms[chunk] += sw.elapsed_ms();
          return Status::ok();
        },
        {.threads = opts.threads, .label = "corpus streaming"});
    if (!pst.is_ok()) {
      return Status(pst).with_context("ShardedCorpus::featurize");
    }
    for (double ms : chunk_ms) rep.worker_ms += ms;

    // Serial in-order merge through the visitor.
    for (std::size_t i = 0; i < samples.size(); ++i) {
      Sample& s = samples[i];
      if (verdicts[i].is_ok()) {
        StreamRecord out;
        out.id = s.id;
        out.family = s.family;
        out.label = s.label;
        out.features = s.features;
        out.shard = si;
        visit(out);
        ++rep.records_streamed;
        continue;
      }
      Status verdict = std::move(verdicts[i]);
      verdict.with_context(std::string("record ") + std::to_string(s.id) +
                           " (" + bingen::family_name(s.family) + ")");
      if (opts.strict) {
        return verdict.with_context("ShardedCorpus::featurize");
      }
      ++rep.records_quarantined;
      add_diag(rep, opts.max_diagnostics, verdict.to_string());
      util::log_warn("sharded corpus: quarantined ", verdict.to_string());
    }

    // Seal this shard's cache segment before moving on: tier traffic is
    // accounted, dirty entries flush atomically, and a flush failure (e.g.
    // the simulated mid-write crash) degrades to "segment stays cold" in
    // lenient mode — the old file on disk is still intact.
    if (tier != nullptr) {
      rep.disk_cache_hits += tier->hits();
      rep.disk_cache_misses += tier->misses();
      const std::uint64_t pending = tier->dirty() ? tier->size() : 0;
      if (auto st = tier->flush(); !st.is_ok()) {
        if (opts.strict) {
          return st.with_context("ShardedCorpus::featurize");
        }
        add_diag(rep, opts.max_diagnostics, st.to_string());
        util::log_warn("sharded corpus: cache flush failed ", st.to_string());
      } else {
        rep.disk_cache_entries_written += pending;
      }
      cache->set_persistent_tier(nullptr);
    }
    ++rep.shards_streamed;
  }
  rep.wall_ms = wall.elapsed_ms();
  return Status::ok();
}

util::Status write_synthetic_corpus(const std::string& dir,
                                    const CorpusConfig& cfg,
                                    const ShardWriterOptions& shard_opts,
                                    SyntheticWriteReport* report) {
  SyntheticWriteReport local;
  SyntheticWriteReport& rep = report != nullptr ? *report : local;

  auto wres = ShardedCorpusWriter::open(dir, shard_opts);
  if (!wres.is_ok()) {
    return Status(wres.status()).with_context("write_synthetic_corpus");
  }
  ShardedCorpusWriter writer = std::move(wres).value();

  util::Stopwatch wall;
  SampleStream stream(cfg);
  rep.requested = stream.total();
  ShardRecord rec;
  while (!stream.done()) {
    Sample s;
    if (Status st = stream.next(s); !st.is_ok()) {
      // Generation failures are quarantined at the source — the reader
      // never sees them — with the same accounting the in-memory path
      // applies at its merge.
      ++rep.quarantined;
      if (rep.diagnostics.size() < rep.max_diagnostics) {
        rep.diagnostics.push_back(st.to_string());
      }
      continue;
    }
    rec.id = s.id;
    rec.family = s.family;
    // Relabel through the writer's schema: identical to s.label for the
    // binary default, the family class otherwise.
    auto cls = class_for_family(shard_opts.schema, s.family);
    if (!cls.is_ok()) {
      return Status(cls.status()).with_context("write_synthetic_corpus");
    }
    rec.label = cls.value();
    rec.program = std::move(s.program);
    if (Status st = writer.append(rec); !st.is_ok()) {
      return st.with_context("write_synthetic_corpus");
    }
  }
  if (Status st = writer.finish(); !st.is_ok()) {
    return st.with_context("write_synthetic_corpus");
  }
  rep.written = static_cast<std::size_t>(writer.records_written());
  rep.bytes_written = writer.bytes_written();
  rep.wall_ms = wall.elapsed_ms();
  return Status::ok();
}

}  // namespace gea::dataset
