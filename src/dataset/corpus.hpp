// Corpus synthesis matching Table I: 2,281 malicious + 276 benign samples.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dataset/sample.hpp"

namespace gea::dataset {

struct CorpusConfig {
  std::size_t num_malicious = 2281;  // Table I
  std::size_t num_benign = 276;      // Table I
  std::uint64_t seed = 2019;         // ICDCS'19
  bingen::GenOptions gen{};
};

class Corpus {
 public:
  /// Generate a full corpus. Family mix within each class is drawn to
  /// roughly match the IoT landscape the source dataset covers
  /// (Gafgyt-heavy, then Mirai, then Tsunami).
  static Corpus generate(const CorpusConfig& cfg = {});

  const std::vector<Sample>& samples() const { return samples_; }
  std::vector<Sample>& samples() { return samples_; }
  std::size_t size() const { return samples_.size(); }

  std::size_t count_label(std::uint8_t label) const;
  std::map<bingen::Family, std::size_t> family_histogram() const;

  /// Indices of all samples with the given label.
  std::vector<std::size_t> indices_of(std::uint8_t label) const;

  /// Feature matrix / label vector views (copies).
  std::vector<features::FeatureVector> feature_rows() const;
  std::vector<std::uint8_t> labels() const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace gea::dataset
