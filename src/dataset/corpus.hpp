// Corpus synthesis matching Table I: 2,281 malicious + 276 benign samples.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dataset/sample.hpp"
#include "util/status.hpp"

namespace gea::dataset {

struct CorpusConfig {
  std::size_t num_malicious = 2281;  // Table I
  std::size_t num_benign = 276;      // Table I
  std::uint64_t seed = 2019;         // ICDCS'19
  bingen::GenOptions gen{};
  /// Worker threads for the featurization phase (CFG extraction + feature
  /// computation): 0 = auto (GEA_THREADS / hardware_concurrency, serial
  /// while fault injection is armed), 1 = serial. Program generation stays
  /// serial either way — it is the only Rng consumer — so the corpus is
  /// bitwise identical at any thread count.
  std::size_t threads = 0;
};

/// Quarantine accounting for one synthesis run: how many samples were
/// requested, how many survived validate_sample(), and what was dropped
/// (counts per family plus the first few diagnostics).
struct SynthesisReport {
  std::size_t requested = 0;
  std::size_t generated = 0;
  std::size_t quarantined = 0;
  std::map<std::string, std::size_t> quarantined_by_family;
  std::vector<std::string> diagnostics;  // capped at max_diagnostics
  std::size_t max_diagnostics = 8;
  /// Featurization-phase timing: elapsed wall clock, and per-worker busy
  /// time accumulated per chunk and merged at the join (so the total is
  /// exact under concurrency; worker_ms / wall_ms approximates speedup).
  double featurize_wall_ms = 0.0;
  double featurize_worker_ms = 0.0;
  std::size_t threads_used = 1;
};

/// Serial generator of the deterministic corpus sample stream: family draws
/// plus program synthesis, in the exact order Corpus::generate uses (the
/// benign block first, then malicious). This is the only Rng consumer in
/// corpus construction, so every consumer — the in-memory Corpus, the
/// sharded on-disk writer (dataset/stream.hpp) — sees bitwise-identical
/// samples for a given config, which is what the streamed-vs-in-memory
/// cross-check in bench/corpus_bench keys on.
class SampleStream {
 public:
  explicit SampleStream(const CorpusConfig& cfg);

  std::size_t total() const { return total_; }
  std::size_t produced() const { return produced_; }
  bool done() const { return produced_ >= total_; }

  /// Generate the next sample into `out` (program only, not featurized).
  /// A generation failure returns that slot's error; the Rng is consumed
  /// identically either way, so sample k's failure never perturbs k+1..n.
  util::Status next(Sample& out);

 private:
  CorpusConfig cfg_;
  util::Rng rng_;
  std::size_t total_;
  std::size_t produced_ = 0;
  std::uint32_t next_id_ = 0;
};

class Corpus {
 public:
  /// Generate a full corpus. Family mix within each class is drawn to
  /// roughly match the IoT landscape the source dataset covers
  /// (Gafgyt-heavy, then Mirai, then Tsunami).
  /// Throws std::runtime_error if synthesis fails outright (never happens
  /// without armed fault points; kept for back-compat).
  static Corpus generate(const CorpusConfig& cfg = {});

  /// Hardened synthesis: every sample passes through validate_sample().
  /// Lenient (strict=false): invalid samples are quarantined into `report`
  /// and the corpus holds the survivors. Strict: the first invalid sample
  /// aborts with a Status naming it. The Rng sequence is identical in both
  /// modes and identical to generate(), so surviving samples match
  /// bit-for-bit whether or not anything was quarantined.
  static util::Result<Corpus> generate_checked(const CorpusConfig& cfg,
                                               SynthesisReport* report = nullptr,
                                               bool strict = false);

  const std::vector<Sample>& samples() const { return samples_; }
  std::vector<Sample>& samples() { return samples_; }
  std::size_t size() const { return samples_.size(); }

  std::size_t count_label(std::uint8_t label) const;
  std::map<bingen::Family, std::size_t> family_histogram() const;

  /// Indices of all samples with the given label.
  std::vector<std::size_t> indices_of(std::uint8_t label) const;

  /// Feature matrix / label vector views (copies).
  std::vector<features::FeatureVector> feature_rows() const;
  std::vector<std::uint8_t> labels() const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace gea::dataset
