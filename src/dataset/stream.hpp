// Streaming featurization over a sharded on-disk corpus.
//
// The in-memory dataset::Corpus materializes every sample behind one CSV —
// fine at the paper's 2,962 CFGs, hopeless at the million-sample scale the
// ROADMAP targets. ShardedCorpus instead streams a corpus directory
// (dataset/shard.hpp) shard by shard: one decoded chunk is the largest
// thing resident at once, each chunk featurizes through per-worker
// FeatureEngines under the deterministic parallel_for merge discipline, and
// results are delivered to a visitor in record order — bitwise identical to
// the in-memory path at any thread count.
//
// Persistent feature tier: with StreamOptions::cache_dir set, every shard
// gets a digest-keyed DiskFeatureCache segment (cache_dir/<shard>.gfc)
// attached beneath a small in-memory FeatureCache. A cold run computes and
// writes through; a warm run answers ~every record from disk and skips the
// traversal entirely. The 128-bit adjacency digest content-addresses each
// graph, so cache invalidation is free — a regenerated shard simply stops
// hitting — and corrupt or truncated segments quarantine and recompute,
// never poison results (see ROBUSTNESS.md, dataset.* fault points).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dataset/corpus.hpp"
#include "dataset/shard.hpp"
#include "util/status.hpp"

namespace gea::dataset {

/// One featurized record as delivered to the visitor, in record order.
struct StreamRecord {
  std::uint32_t id = 0;
  bingen::Family family{};
  std::uint8_t label = 0;
  features::FeatureVector features{};
  std::size_t shard = 0;  // index into manifest().shards
};

struct StreamOptions {
  /// Worker threads for per-shard featurization: 0 = auto (GEA_THREADS /
  /// hardware_concurrency; serial while fault injection is armed).
  std::size_t threads = 0;
  /// Strict: the first damaged shard, record, or cache segment aborts the
  /// stream with a Status. Lenient (default): damage quarantines into the
  /// report and the stream continues.
  bool strict = false;
  /// Directory for the persistent feature tier ("" = no tier). Created on
  /// demand; holds one .gfc segment per shard.
  std::string cache_dir;
  /// Capacity of the per-run in-memory FeatureCache above the persistent
  /// tier (0 disables both caches when cache_dir is also empty). Repeated
  /// graphs inside a shard — packed stubs all collapse to the same 1-node
  /// CFG — hit here without touching the tier.
  std::size_t mem_cache_capacity = 4096;
  /// Cap on retained diagnostics (counts are always exact).
  std::size_t max_diagnostics = 8;
};

/// Quarantine + cache accounting for one streaming pass.
struct StreamReport {
  std::size_t shards_total = 0;
  std::size_t shards_streamed = 0;
  std::size_t shards_quarantined = 0;  // unreadable wholesale
  std::size_t records_streamed = 0;
  std::size_t records_quarantined = 0;
  /// Persistent-tier traffic (0/0 without a cache_dir). A warm re-run has
  /// disk_cache_hits == records_streamed (bar fresh duplicates).
  std::uint64_t disk_cache_hits = 0;
  std::uint64_t disk_cache_misses = 0;
  std::uint64_t disk_cache_entries_written = 0;
  std::vector<std::string> diagnostics;
  /// Featurization timing, mirroring SynthesisReport's convention.
  double wall_ms = 0.0;
  double worker_ms = 0.0;
  std::size_t threads_used = 1;
};

/// Reader over a sharded corpus directory. open() trusts nothing: the
/// manifest is checksummed, and every shard re-verifies its own header,
/// per-record CRCs, and the manifest's record count as it streams.
class ShardedCorpus {
 public:
  static util::Result<ShardedCorpus> open(std::string dir);

  const std::string& dir() const { return dir_; }
  const Manifest& manifest() const { return manifest_; }
  std::uint64_t total_records() const { return manifest_.total_records; }

  /// Stream the whole corpus through featurization, shard by shard. The
  /// visitor runs on the calling thread in record order. Lenient mode
  /// returns OK with quarantine accounting in `report`; strict mode
  /// returns the first failure.
  util::Status featurize(const std::function<void(const StreamRecord&)>& visit,
                         StreamReport* report = nullptr,
                         const StreamOptions& opts = {}) const;

 private:
  ShardedCorpus(std::string dir, Manifest manifest)
      : dir_(std::move(dir)), manifest_(std::move(manifest)) {}

  std::string dir_;
  Manifest manifest_;
};

/// Accounting for one synthetic corpus write.
struct SyntheticWriteReport {
  std::size_t requested = 0;
  std::size_t written = 0;
  std::size_t quarantined = 0;  // generation failures, skipped at the source
  std::vector<std::string> diagnostics;
  std::size_t max_diagnostics = 8;
  double wall_ms = 0.0;
  std::uint64_t bytes_written = 0;
};

/// Synthesize a corpus straight to shards: the SampleStream generator feeds
/// the ShardedCorpusWriter one sample at a time, so a million-sample corpus
/// is written in bounded memory (one open chunk), and the record stream is
/// bitwise identical to Corpus::generate_checked's sample stream for the
/// same config.
util::Status write_synthetic_corpus(const std::string& dir,
                                    const CorpusConfig& cfg,
                                    const ShardWriterOptions& shard_opts = {},
                                    SyntheticWriteReport* report = nullptr);

}  // namespace gea::dataset
