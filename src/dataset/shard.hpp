// Sharded on-disk corpus format: self-describing chunk files + a manifest.
//
// A sharded corpus is a directory:
//
//   manifest.gsm     — shard table: file names, record counts, checksums
//   shard-00000.gsd  — chunk files, each a fixed header + framed records
//   shard-00001.gsd
//   ...
//   cache/           — optional persistent feature tier, one segment per
//                      shard (see features/disk_cache.hpp)
//
// Shard file layout (all little-endian, written with net/wire primitives):
//
//   offset  size  field
//        0     4  magic               0x53414547 ("GEAS", LE)
//        4     2  version             kShardFormatVersion (2; 1 accepted)
//        6     2  reserved            0
//        8     8  record count
//   then, per record:
//        0     4  payload length
//        4     4  payload checksum    FNV-1a 32 (net::checksum32)
//        8   len  payload             record codec below
//
// Record payload: u32 id | u8 family | u8 label | program (u32 code count,
// instructions as u8 op, u8 rd, u8 rs, u64 imm bits, u32 target; u32
// function count, functions as string name, u32 begin, u32 end). Features
// are deliberately NOT persisted — they are recomputed by the streaming
// reader or answered by the digest-keyed persistent cache, so a shard never
// goes stale against a featurization change.
//
// Manifest layout: magic 0x4d414547 ("GEAM") | u16 version | u16 reserved
// | u64 total records | u32 shard count | per shard (string file name, u64
// records, u64 bytes, u32 file checksum) | [v2+: string label schema,
// ml::LabelSchema::serialize() form] | u32 manifest checksum (FNV-1a over
// every preceding byte). v1 manifests carry no schema and imply the
// paper's binary convention; readers accept both, writers emit v2 — the
// same newest-writer/both-reader discipline as the serve frame codecs.
//
// The reader follows the net/wire bounds-checked Reader discipline and the
// repository-wide lenient/strict quarantine taxonomy (ROBUSTNESS.md):
// damage whose extent is known (a record failing its CRC, a payload that
// does not decode) quarantines just that record and the stream resyncs at
// the next frame; damage that destroys framing (bad magic, absurd length,
// a truncated tail) quarantines the rest of the shard; a manifest/header
// record-count mismatch is reported as a Status. Nothing crashes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bingen/families.hpp"
#include "isa/program.hpp"
#include "ml/label_schema.hpp"
#include "util/status.hpp"

namespace gea::dataset {

inline constexpr std::uint32_t kShardMagic = 0x53414547u;     // "GEAS" LE
inline constexpr std::uint32_t kManifestMagic = 0x4d414547u;  // "GEAM" LE
inline constexpr std::uint16_t kShardFormatVersion = 2;
/// Oldest version readers still accept (v1: no schema, binary labels).
inline constexpr std::uint16_t kShardFormatVersionMin = 1;
inline constexpr std::size_t kShardHeaderBytes = 16;
/// Ceiling on one record's declared payload length: a corrupt or hostile
/// length field must not trigger an absurd allocation (same rule as
/// net::kMaxPayloadBytes, sized for million-instruction programs).
inline constexpr std::size_t kMaxRecordBytes = 64u << 20;
inline constexpr const char* kManifestFileName = "manifest.gsm";

/// One sample as stored in a shard: identity plus the program source.
struct ShardRecord {
  std::uint32_t id = 0;
  bingen::Family family{};
  std::uint8_t label = 0;
  isa::Program program;
};

/// Append the record payload (no framing) to `out`.
void encode_record(const ShardRecord& rec, std::vector<std::uint8_t>& out);

/// Decode one record payload. Rejects truncated input, a family outside
/// bingen::family_count(), a label outside `schema` (the manifest's schema
/// — v1 corpora imply the binary default), and programs failing
/// Program::validate() — a record that passes its CRC can still be hostile.
util::Status decode_record(std::span<const std::uint8_t> payload,
                           ShardRecord& out,
                           const ml::LabelSchema& schema = {});

/// Manifest entry for one chunk file.
struct ShardInfo {
  std::string file;            // name relative to the corpus directory
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;     // whole-file size
  std::uint32_t checksum = 0;  // FNV-1a 32 over the whole file
};

struct Manifest {
  std::uint64_t total_records = 0;
  std::vector<ShardInfo> shards;
  /// Label schema every record in the corpus was validated against.
  /// Defaults to the paper's binary convention, which is also what a v1
  /// manifest (predating the field) deserializes to.
  ml::LabelSchema schema;
};

/// Atomically (temp + rename) write `dir`/manifest.gsm.
util::Status write_manifest(const std::string& dir, const Manifest& m);

/// Read and validate `dir`/manifest.gsm (magic, version, trailing
/// checksum, per-entry bounds). Any damage is an error — the manifest is
/// the root of trust and has no record-level recovery.
util::Result<Manifest> read_manifest(const std::string& dir);

/// Quarantine accounting for one shard read.
struct ShardReadReport {
  std::size_t records_loaded = 0;
  std::size_t records_quarantined = 0;  // CRC/decode failures + lost tail
  std::vector<std::string> diagnostics;
  std::size_t max_diagnostics = 8;
};

/// Read one chunk file. File-level damage (missing file, bad magic or
/// version, oversized length field) fails with a Status in both modes —
/// the caller quarantines the whole shard. Record-level damage quarantines
/// into `report` (lenient) or fails on first occurrence (strict). When
/// `expect` is non-null the file's size, checksum, and record count are
/// verified against the manifest entry; a mismatch is strict-fatal and a
/// lenient diagnostic.
util::Status read_shard(const std::string& path, const ShardInfo* expect,
                        std::vector<ShardRecord>& out, ShardReadReport& report,
                        bool strict = false,
                        const ml::LabelSchema& schema = {});

struct ShardWriterOptions {
  /// Records per chunk file. Bounds the streaming reader's resident set:
  /// one decoded shard is the largest thing featurize() holds at once.
  std::size_t records_per_shard = 4096;
  /// Chunk file name prefix ("shard" -> shard-00000.gsd).
  std::string prefix = "shard";
  /// Schema recorded in the manifest; append() validates every record's
  /// label against it, so writer and reader can never disagree on what a
  /// label means.
  ml::LabelSchema schema;
};

/// Streaming shard writer: records are buffered into the current chunk and
/// spilled every records_per_shard appends, so writing a million-sample
/// corpus holds one chunk in memory, never the corpus. finish() seals the
/// tail chunk and writes the manifest; a writer abandoned before finish()
/// leaves no manifest, which open() treats as "no corpus here" — the
/// all-or-nothing discipline model/scaler checkpoints already follow.
class ShardedCorpusWriter {
 public:
  /// `dir` is created if absent.
  static util::Result<ShardedCorpusWriter> open(std::string dir,
                                                ShardWriterOptions opts = {});

  util::Status append(const ShardRecord& rec);
  /// Seal the tail chunk and write the manifest. Idempotent.
  util::Status finish();

  const Manifest& manifest() const { return manifest_; }
  std::uint64_t records_written() const { return manifest_.total_records; }
  std::uint64_t bytes_written() const { return bytes_; }

 private:
  ShardedCorpusWriter(std::string dir, ShardWriterOptions opts)
      : dir_(std::move(dir)), opts_(std::move(opts)) {}

  util::Status seal_chunk();

  std::string dir_;
  ShardWriterOptions opts_;
  std::vector<std::uint8_t> chunk_;  // framed records of the open chunk
  std::uint64_t chunk_records_ = 0;
  std::vector<std::uint8_t> payload_;  // per-append scratch
  Manifest manifest_;
  std::uint64_t bytes_ = 0;
  bool finished_ = false;
};

}  // namespace gea::dataset
