// Label-schema factories for the synthetic corpus.
//
// ml::LabelSchema is the layer-neutral authority on class counts and names;
// this header binds it to the bingen family taxonomy. Two schemas matter:
//
//   binary_label_schema()  — the paper's benign/malicious convention
//                            (identical to a default-constructed schema);
//   family_label_schema()  — detect-then-classify target: one benign class
//                            plus one class per malicious family
//                            {benign, mirai-like, gafgyt-like, tsunami-like}.
//
// class_for_family() maps a bingen family onto a schema class so corpus
// relabeling can never desync from the taxonomy: names are matched, not
// positions, and every malicious family must resolve (adding a family to
// bingen without extending the schema is a loud error, not a silent 2).
#pragma once

#include <cstdint>

#include "bingen/families.hpp"
#include "dataset/corpus.hpp"
#include "ml/label_schema.hpp"
#include "util/status.hpp"

namespace gea::dataset {

/// The paper's binary schema: {"benign", "malicious"}, benign = 0.
ml::LabelSchema binary_label_schema();

/// One benign class + one class per bingen malicious family, in
/// malicious_families() order: {benign, mirai-like, gafgyt-like,
/// tsunami-like}. K = 4 today; grows automatically with the taxonomy.
ml::LabelSchema family_label_schema();

/// Schema class for a family. Benign families collapse onto the schema's
/// benign class; malicious families match by family_name(). Errors if the
/// schema has no class for a malicious family (taxonomy/schema desync).
util::Result<std::uint8_t> class_for_family(const ml::LabelSchema& schema,
                                            bingen::Family family);

/// Rewrite every sample's label to its class under `schema` (via
/// class_for_family). All-or-nothing: on error the corpus is untouched.
/// Relabeling to the binary schema reproduces the original 0/1 labels.
util::Status relabel_corpus(Corpus& corpus, const ml::LabelSchema& schema);

}  // namespace gea::dataset
