#include "dataset/io.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "dataset/labels.hpp"
#include "util/csv.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"

namespace gea::dataset {

using util::ErrorCode;
using util::Status;

void write_features_csv(const Corpus& corpus, const std::string& path,
                        const ml::LabelSchema& schema) {
  util::CsvWriter w(path);
  std::vector<std::string> header = {"id", "family", "label"};
  for (std::size_t i = 0; i < features::kNumFeatures; ++i) {
    header.push_back(features::feature_name(i));
  }
  w.write_row(header);
  for (const auto& s : corpus.samples()) {
    auto cls = class_for_family(schema, s.family);
    if (!cls.is_ok()) {
      throw std::runtime_error("write_features_csv: " +
                               cls.status().to_string());
    }
    std::vector<std::string> row = {std::to_string(s.id),
                                    bingen::family_name(s.family),
                                    std::to_string(static_cast<int>(cls.value()))};
    for (double f : s.features) row.push_back(std::to_string(f));
    w.write_row(row);
  }
}

namespace {

/// Full-string double parse; rejects empty cells, trailing junk, hex floats
/// left over from corruption, and out-of-range magnitudes.
bool parse_double(const std::string& cell, double& out) {
  if (cell.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size() || errno == ERANGE) return false;
  out = v;
  return true;
}

/// Strict integer label parse: bare decimal digits only. The old path went
/// through parse_double, which silently coerced "1.0", "0e0", "+1", and
/// " 1" — all of those now quarantine with a diagnostic naming the rule.
bool parse_label(const std::string& cell, std::uint64_t& out) {
  if (cell.empty() || cell.size() > 3) return false;
  std::uint64_t v = 0;
  for (char c : cell) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

/// Per-row parse; returns a diagnostic on failure.
std::optional<std::string> parse_row(const std::vector<std::string>& row,
                                     std::size_t expected_cols,
                                     const ml::LabelSchema& schema,
                                     features::FeatureVector& fv,
                                     std::uint8_t& label) {
  if (row.size() != expected_cols) {
    return "wrong column count (" + std::to_string(row.size()) + " vs " +
           std::to_string(expected_cols) + ")";
  }
  std::uint64_t raw_label = 0;
  if (!parse_label(row[2], raw_label) || !schema.valid_label(raw_label)) {
    return "bad label '" + row[2] + "' (want a bare integer class in [0, " +
           std::to_string(schema.num_classes()) + "))";
  }
  label = static_cast<std::uint8_t>(raw_label);
  for (std::size_t i = 0; i < features::kNumFeatures; ++i) {
    double v = 0.0;
    if (!parse_double(row[3 + i], v)) {
      return "non-numeric cell '" + row[3 + i] + "' in column " +
             features::feature_name(i);
    }
    if (!std::isfinite(v)) {
      return "non-finite value in column " + features::feature_name(i);
    }
    fv[i] = v;
  }
  return std::nullopt;
}

/// Inject read-time corruption on a copy of the row (fault points model a
/// torn write / bit rot between producer and consumer).
void maybe_corrupt(std::vector<std::string>& row) {
  if (util::fault(util::faults::kCsvCorruptRow) && row.size() > 3) {
    row[3] = "!fault:csv.corrupt_row!";
  }
  if (util::fault(util::faults::kCsvTruncateRow) && !row.empty()) {
    row.pop_back();
  }
}

}  // namespace

util::Result<LoadedFeatures> read_features_csv_checked(
    const std::string& path, const CsvReadOptions& opts) {
  std::vector<std::vector<std::string>> rows;
  try {
    rows = util::CsvReader::read_file(path);
  } catch (const std::exception& e) {
    return Status::error(ErrorCode::kNotFound, e.what())
        .with_context("read_features_csv");
  }
  if (rows.empty()) {
    return Status::error(ErrorCode::kParseError, "empty file " + path)
        .with_context("read_features_csv");
  }

  // Header must match the writer's schema exactly: a wrong header means the
  // whole file is from a different producer, not a damaged row.
  const std::size_t expected_cols = 3 + features::kNumFeatures;
  {
    const auto& header = rows.front();
    std::vector<std::string> want = {"id", "family", "label"};
    for (std::size_t i = 0; i < features::kNumFeatures; ++i) {
      want.push_back(features::feature_name(i));
    }
    if (header != want) {
      return Status::error(ErrorCode::kParseError,
                           "missing or mismatched header in " + path)
          .with_context("read_features_csv");
    }
  }

  // Refuse absurdly sized inputs outright (and let the alloc.oversize fault
  // point drive this path): a hostile file must not OOM the process.
  constexpr std::size_t kMaxRows = 50'000'000;
  if (auto st = util::check_allocation(rows.size() - 1, kMaxRows, "csv rows");
      !st.is_ok()) {
    return st.with_context("read_features_csv");
  }

  LoadedFeatures out;
  out.rows.reserve(rows.size() - 1);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    ++out.report.rows_total;
    std::vector<std::string> row = rows[r];
    maybe_corrupt(row);

    features::FeatureVector fv{};
    std::uint8_t label = 0;
    if (auto problem = parse_row(row, expected_cols, opts.schema, fv, label)) {
      const std::string diag = "row " + std::to_string(r) + ": " + *problem;
      if (opts.strict) {
        return Status::error(ErrorCode::kCorruptData, diag)
            .with_context("read_features_csv");
      }
      ++out.report.rows_quarantined;
      if (out.report.diagnostics.size() < opts.max_diagnostics) {
        out.report.diagnostics.push_back(diag);
      }
      util::log_warn("read_features_csv: quarantined ", diag);
      continue;
    }
    out.families.push_back(row[1]);
    out.labels.push_back(label);
    out.rows.push_back(fv);
    ++out.report.rows_loaded;
  }
  return out;
}

LoadedFeatures read_features_csv(const std::string& path) {
  CsvReadOptions opts;
  opts.strict = true;
  auto res = read_features_csv_checked(path, opts);
  if (!res.is_ok()) throw std::runtime_error(res.status().to_string());
  return std::move(res).value();
}

}  // namespace gea::dataset
