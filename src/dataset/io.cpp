#include "dataset/io.hpp"

#include <stdexcept>

#include "util/csv.hpp"

namespace gea::dataset {

void write_features_csv(const Corpus& corpus, const std::string& path) {
  util::CsvWriter w(path);
  std::vector<std::string> header = {"id", "family", "label"};
  for (std::size_t i = 0; i < features::kNumFeatures; ++i) {
    header.push_back(features::feature_name(i));
  }
  w.write_row(header);
  for (const auto& s : corpus.samples()) {
    std::vector<std::string> row = {std::to_string(s.id),
                                    bingen::family_name(s.family),
                                    std::to_string(static_cast<int>(s.label))};
    for (double f : s.features) row.push_back(std::to_string(f));
    w.write_row(row);
  }
}

LoadedFeatures read_features_csv(const std::string& path) {
  const auto rows = util::CsvReader::read_file(path);
  if (rows.empty()) throw std::runtime_error("read_features_csv: empty file");
  const std::size_t expected = 3 + features::kNumFeatures;
  LoadedFeatures out;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    if (row.size() != expected) {
      throw std::runtime_error("read_features_csv: bad column count at row " +
                               std::to_string(r));
    }
    out.families.push_back(row[1]);
    out.labels.push_back(static_cast<std::uint8_t>(std::stoi(row[2])));
    features::FeatureVector fv{};
    for (std::size_t i = 0; i < features::kNumFeatures; ++i) {
      fv[i] = std::stod(row[3 + i]);
    }
    out.rows.push_back(fv);
  }
  return out;
}

}  // namespace gea::dataset
