// A corpus sample: program, its CFG, its features, and labels.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bingen/families.hpp"
#include "cfg/cfg.hpp"
#include "features/engine.hpp"
#include "features/features.hpp"
#include "isa/program.hpp"
#include "util/status.hpp"

namespace gea::dataset {

/// Binary task labels used throughout (paper convention).
inline constexpr std::uint8_t kBenign = 0;
inline constexpr std::uint8_t kMalicious = 1;

struct Sample {
  std::uint32_t id = 0;
  bingen::Family family{};
  std::uint8_t label = kBenign;  // kBenign / kMalicious
  isa::Program program;
  cfg::Cfg cfg;
  features::FeatureVector features{};

  std::size_t num_nodes() const { return cfg.num_nodes(); }
  std::size_t num_edges() const { return cfg.num_edges(); }
};

/// Generate one fully-populated sample (program -> CFG -> features).
/// Equivalent to generate_sample() followed by featurize_sample().
Sample make_sample(std::uint32_t id, bingen::Family family, util::Rng& rng,
                   const bingen::GenOptions& opts = {});

/// Program-only half of make_sample: id, family, label, and the synthesized
/// program. This is the only Rng consumer in sample construction, which is
/// what lets corpus synthesis generate serially (identical sample stream)
/// and featurize in parallel.
Sample generate_sample(std::uint32_t id, bingen::Family family, util::Rng& rng,
                       const bingen::GenOptions& opts = {});

/// Featurization half: disassemble the program into its CFG and extract
/// features (plus any armed fault-point corruption). A pure function of
/// s.program — safe to run concurrently across distinct samples. Uses the
/// calling thread's FeatureEngine.
void featurize_sample(Sample& s);

/// Same, through a caller-owned engine — parallel corpus synthesis holds
/// one engine per worker so traversal scratch is reused across a whole
/// chunk of samples. Results are identical to the thread-local overload.
void featurize_sample(Sample& s, features::FeatureEngine& engine);

/// Quarantine gate over a populated sample: the CFG must satisfy
/// cfg::validate() (non-empty, no dangling edges, reachable exit) and every
/// feature must be finite. Real corpora contain unparsable and degenerate
/// binaries; this is where they are caught instead of crashing training.
util::Status validate_sample(const Sample& s);

}  // namespace gea::dataset
