#include "dataset/shard.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

#include "net/frame.hpp"  // checksum32
#include "net/wire.hpp"
#include "util/faultinject.hpp"

namespace gea::dataset {

namespace fs = std::filesystem;
using util::ErrorCode;
using util::Status;

namespace {

// The last Opcode enumerator; anything above is a corrupt record.
constexpr std::uint8_t kMaxOpcode = static_cast<std::uint8_t>(isa::Opcode::kHalt);

util::Result<std::vector<std::uint8_t>> read_file_bytes(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::error(ErrorCode::kNotFound, "cannot open " + path);
  }
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()),
               static_cast<std::streamsize>(size))) {
    return Status::error(ErrorCode::kParseError, "short read on " + path);
  }
  return bytes;
}

/// Write via a sibling temp file + rename, so a crash mid-write leaves
/// either the old file or nothing — never a torn final file.
Status write_file_atomic(const std::string& path,
                         std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::error(ErrorCode::kUnavailable, "cannot open " + tmp);
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) {
      return Status::error(ErrorCode::kUnavailable, "write failed on " + tmp);
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::error(ErrorCode::kUnavailable,
                         "rename " + tmp + " -> " + path + ": " + ec.message());
  }
  return Status::ok();
}

void put_header(net::wire::Writer& w, std::uint32_t magic,
                std::uint64_t count) {
  w.put_u32(magic);
  w.put_u16(kShardFormatVersion);
  w.put_u16(0);  // reserved
  w.put_u64(count);
}

/// Shared magic/version check for shard and manifest headers. Accepts any
/// version in [kShardFormatVersionMin, kShardFormatVersion] and reports
/// which one the file carries (v1 files imply the binary label schema).
Status check_header(net::wire::Reader& r, std::uint32_t magic,
                    const char* what, std::uint64_t& count,
                    std::uint16_t* version_out = nullptr) {
  const std::uint32_t got_magic = r.get_u32();
  const std::uint16_t version = r.get_u16();
  r.get_u16();  // reserved
  count = r.get_u64();
  if (!r.ok()) {
    return Status::error(ErrorCode::kParseError,
                         std::string("truncated ") + what + " header");
  }
  if (got_magic != magic) {
    return Status::error(ErrorCode::kParseError,
                         std::string("bad ") + what + " magic");
  }
  if (version < kShardFormatVersionMin || version > kShardFormatVersion) {
    return Status::error(ErrorCode::kParseError,
                         std::string(what) + " version " +
                             std::to_string(version) + " unsupported");
  }
  if (version_out != nullptr) *version_out = version;
  return Status::ok();
}

}  // namespace

void encode_record(const ShardRecord& rec, std::vector<std::uint8_t>& out) {
  net::wire::Writer w(out);
  w.put_u32(rec.id);
  w.put_u8(static_cast<std::uint8_t>(rec.family));
  w.put_u8(rec.label);
  const auto& code = rec.program.code();
  w.put_u32(static_cast<std::uint32_t>(code.size()));
  for (const auto& ins : code) {
    w.put_u8(static_cast<std::uint8_t>(ins.op));
    w.put_u8(ins.rd);
    w.put_u8(ins.rs);
    w.put_u64(static_cast<std::uint64_t>(ins.imm));
    w.put_u32(ins.target);
  }
  const auto& funcs = rec.program.functions();
  w.put_u32(static_cast<std::uint32_t>(funcs.size()));
  for (const auto& f : funcs) {
    w.put_string(f.name);
    w.put_u32(f.begin);
    w.put_u32(f.end);
  }
}

util::Status decode_record(std::span<const std::uint8_t> payload,
                           ShardRecord& out, const ml::LabelSchema& schema) {
  net::wire::Reader r(payload);
  out.id = r.get_u32();
  const std::uint8_t family = r.get_u8();
  out.label = r.get_u8();
  if (!r.ok()) return r.parse_error("record header");
  // Both bounds come from their single authorities — the bingen taxonomy
  // and the manifest's label schema — never a local constant that could
  // drift when a family is added.
  if (family >= bingen::family_count()) {
    return Status::error(ErrorCode::kCorruptData,
                         "record family " + std::to_string(family) +
                             " out of range");
  }
  out.family = static_cast<bingen::Family>(family);
  if (!schema.valid_label(out.label)) {
    return Status::error(ErrorCode::kCorruptData,
                         "record label " + std::to_string(out.label) +
                             " outside schema (" +
                             std::to_string(schema.num_classes()) +
                             " classes)");
  }

  constexpr std::size_t kInstructionBytes = 15;  // op+rd+rs+imm+target
  const std::uint32_t code_count = r.get_u32();
  if (!r.ok() || code_count > r.remaining() / kInstructionBytes) {
    return r.parse_error("record code");
  }
  out.program = isa::Program{};
  auto& code = out.program.code();
  code.resize(code_count);
  for (auto& ins : code) {
    const std::uint8_t op = r.get_u8();
    if (op > kMaxOpcode) {
      return Status::error(ErrorCode::kCorruptData,
                           "record opcode " + std::to_string(op) +
                               " out of range");
    }
    ins.op = static_cast<isa::Opcode>(op);
    ins.rd = r.get_u8();
    ins.rs = r.get_u8();
    ins.imm = static_cast<std::int64_t>(r.get_u64());
    ins.target = r.get_u32();
  }

  constexpr std::size_t kMinFunctionBytes = 12;  // empty name + begin + end
  const std::uint32_t func_count = r.get_u32();
  if (!r.ok() || func_count > r.remaining() / kMinFunctionBytes) {
    return r.parse_error("record functions");
  }
  auto& funcs = out.program.functions();
  funcs.resize(func_count);
  for (auto& f : funcs) {
    f.name = r.get_string();
    f.begin = r.get_u32();
    f.end = r.get_u32();
  }
  if (!r.ok()) return r.parse_error("record");
  if (r.remaining() != 0) {
    return Status::error(ErrorCode::kParseError,
                         "record has trailing garbage");
  }
  if (auto err = out.program.validate()) {
    return Status::error(ErrorCode::kCorruptData, "record program: " + *err);
  }
  return Status::ok();
}

util::Status write_manifest(const std::string& dir, const Manifest& m) {
  std::vector<std::uint8_t> bytes;
  net::wire::Writer w(bytes);
  put_header(w, kManifestMagic, m.total_records);
  w.put_u32(static_cast<std::uint32_t>(m.shards.size()));
  for (const auto& s : m.shards) {
    w.put_string(s.file);
    w.put_u64(s.records);
    w.put_u64(s.bytes);
    w.put_u32(s.checksum);
  }
  w.put_string(m.schema.serialize());  // v2 field
  w.put_u32(net::checksum32(bytes));
  return write_file_atomic((fs::path(dir) / kManifestFileName).string(), bytes)
      .with_context("write_manifest");
}

util::Result<Manifest> read_manifest(const std::string& dir) {
  const std::string path = (fs::path(dir) / kManifestFileName).string();
  auto bytes = read_file_bytes(path);
  if (!bytes.is_ok()) {
    return Status(bytes.status()).with_context("read_manifest");
  }
  const auto& data = bytes.value();
  if (data.size() < 4) {
    return Status::error(ErrorCode::kParseError, "manifest truncated")
        .with_context("read_manifest " + path);
  }
  // Trailing checksum covers every byte before it; a stale or bit-rotted
  // manifest fails here before any entry is trusted.
  const std::span<const std::uint8_t> body(data.data(), data.size() - 4);
  net::wire::Reader tail(
      std::span<const std::uint8_t>(data.data() + body.size(), 4));
  if (tail.get_u32() != net::checksum32(body)) {
    return Status::error(ErrorCode::kCorruptData, "manifest checksum mismatch")
        .with_context("read_manifest " + path);
  }

  net::wire::Reader r(body);
  Manifest m;
  std::uint64_t count = 0;
  std::uint16_t version = kShardFormatVersion;
  if (auto st = check_header(r, kManifestMagic, "manifest", m.total_records,
                             &version);
      !st.is_ok()) {
    return st.with_context("read_manifest " + path);
  }
  count = r.get_u32();
  for (std::uint64_t i = 0; i < count; ++i) {
    ShardInfo info;
    info.file = r.get_string();
    info.records = r.get_u64();
    info.bytes = r.get_u64();
    info.checksum = r.get_u32();
    if (!r.ok() || info.file.empty() ||
        info.file.find('/') != std::string::npos) {
      return Status::error(ErrorCode::kParseError,
                           "manifest entry " + std::to_string(i) + " malformed")
          .with_context("read_manifest " + path);
    }
    m.shards.push_back(std::move(info));
  }
  if (version >= 2) {
    const std::string schema_text = r.get_string();
    if (!r.ok()) {
      return Status::error(ErrorCode::kParseError, "manifest schema truncated")
          .with_context("read_manifest " + path);
    }
    auto schema = ml::LabelSchema::deserialize(schema_text);
    if (!schema.is_ok()) {
      return Status(schema.status()).with_context("read_manifest " + path);
    }
    m.schema = std::move(schema).value();
  }  // v1: m.schema keeps its binary default
  if (!r.ok() || r.remaining() != 0) {
    return Status::error(ErrorCode::kParseError, "manifest truncated")
        .with_context("read_manifest " + path);
  }
  return m;
}

util::Status read_shard(const std::string& path, const ShardInfo* expect,
                        std::vector<ShardRecord>& out, ShardReadReport& report,
                        bool strict, const ml::LabelSchema& schema) {
  auto bytes = read_file_bytes(path);
  if (!bytes.is_ok()) return Status(bytes.status()).with_context("read_shard");
  const auto& data = bytes.value();

  auto diag = [&](const std::string& msg) {
    if (report.diagnostics.size() < report.max_diagnostics) {
      report.diagnostics.push_back(path + ": " + msg);
    }
  };

  if (expect != nullptr) {
    // Manifest cross-checks. A failed whole-file checksum is not yet fatal
    // in lenient mode: the per-record CRCs localize the damage below.
    if (expect->bytes != data.size()) {
      const std::string msg = "size " + std::to_string(data.size()) +
                              " != manifest " + std::to_string(expect->bytes);
      if (strict) {
        return Status::error(ErrorCode::kCorruptData, msg)
            .with_context("read_shard " + path);
      }
      diag(msg);
    }
    if (net::checksum32(data) != expect->checksum) {
      const std::string msg = "file checksum mismatch vs manifest";
      if (strict) {
        return Status::error(ErrorCode::kCorruptData, msg)
            .with_context("read_shard " + path);
      }
      diag(msg);
    }
  }

  net::wire::Reader header(
      std::span<const std::uint8_t>(data.data(),
                                    std::min(data.size(), kShardHeaderBytes)));
  std::uint64_t declared = 0;
  if (auto st = check_header(header, kShardMagic, "shard", declared);
      !st.is_ok()) {
    return st.with_context("read_shard " + path);
  }

  // Record loop: framing (length + CRC) is only trusted after it is
  // checked, so a bit flip inside one payload quarantines that record and
  // the stream resyncs at the next frame; anything that destroys framing
  // quarantines the rest of the file.
  std::size_t pos = kShardHeaderBytes;
  std::uint64_t seen = 0;
  Status first_record_error;
  while (pos < data.size()) {
    if (data.size() - pos < 8) {
      diag("truncated record header at offset " + std::to_string(pos));
      break;
    }
    net::wire::Reader fr(std::span<const std::uint8_t>(data.data() + pos, 8));
    const std::uint32_t len = fr.get_u32();
    const std::uint32_t crc = fr.get_u32();
    if (len > kMaxRecordBytes) {
      diag("absurd record length " + std::to_string(len) + " at offset " +
           std::to_string(pos));
      break;  // framing cannot be trusted past this point
    }
    if (data.size() - pos - 8 < len) {
      diag("truncated record payload at offset " + std::to_string(pos));
      break;
    }
    const std::span<const std::uint8_t> payload(data.data() + pos + 8, len);
    pos += 8 + len;
    ++seen;

    ShardRecord rec;
    Status st;
    if (net::checksum32(payload) != crc) {
      st = Status::error(ErrorCode::kCorruptData,
                         "record " + std::to_string(seen - 1) +
                             " checksum mismatch");
    } else {
      st = decode_record(payload, rec, schema)
               .with_context("record " + std::to_string(seen - 1));
    }
    if (st.is_ok()) {
      out.push_back(std::move(rec));
      ++report.records_loaded;
    } else {
      ++report.records_quarantined;
      diag(st.to_string());
      if (first_record_error.is_ok()) first_record_error = std::move(st);
    }
  }

  // Records the framing lost (truncated tail) are quarantined by count.
  if (seen < declared) {
    report.records_quarantined += static_cast<std::size_t>(declared - seen);
    diag("header declares " + std::to_string(declared) + " records, found " +
         std::to_string(seen));
    if (first_record_error.is_ok()) {
      first_record_error = Status::error(
          ErrorCode::kCorruptData, "shard truncated: " + std::to_string(seen) +
                                       "/" + std::to_string(declared) +
                                       " records present");
    }
  } else if (seen > declared) {
    const std::string msg = "header declares " + std::to_string(declared) +
                            " records, found " + std::to_string(seen);
    diag(msg);
    if (first_record_error.is_ok()) {
      first_record_error = Status::error(ErrorCode::kCorruptData, msg);
    }
  }
  if (expect != nullptr && expect->records != seen) {
    const std::string msg = "manifest declares " +
                            std::to_string(expect->records) +
                            " records, shard frames " + std::to_string(seen);
    diag(msg);
    if (first_record_error.is_ok()) {
      first_record_error = Status::error(ErrorCode::kCorruptData, msg);
    }
  }

  if (strict && !first_record_error.is_ok()) {
    return first_record_error.with_context("read_shard " + path);
  }
  return Status::ok();
}

util::Result<ShardedCorpusWriter> ShardedCorpusWriter::open(
    std::string dir, ShardWriterOptions opts) {
  if (opts.records_per_shard == 0) opts.records_per_shard = 1;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::error(ErrorCode::kUnavailable,
                         "cannot create " + dir + ": " + ec.message())
        .with_context("ShardedCorpusWriter::open");
  }
  return ShardedCorpusWriter(std::move(dir), std::move(opts));
}

util::Status ShardedCorpusWriter::append(const ShardRecord& rec) {
  if (finished_) {
    return Status::error(ErrorCode::kFailedPrecondition,
                         "append after finish")
        .with_context("ShardedCorpusWriter::append");
  }
  // Producer-side validation mirrors decode_record's, against the same
  // authorities, so a bad label can never reach disk under a manifest that
  // disowns it.
  if (static_cast<std::size_t>(rec.family) >= bingen::family_count()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "record family " +
                             std::to_string(static_cast<int>(rec.family)) +
                             " out of range")
        .with_context("ShardedCorpusWriter::append");
  }
  if (!opts_.schema.valid_label(rec.label)) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "record label " + std::to_string(rec.label) +
                             " outside schema (" +
                             std::to_string(opts_.schema.num_classes()) +
                             " classes)")
        .with_context("ShardedCorpusWriter::append");
  }
  payload_.clear();
  encode_record(rec, payload_);
  const std::uint32_t crc = net::checksum32(payload_);
  if (util::fault(util::faults::kShardCorruptRecord) && !payload_.empty()) {
    // Bit rot after checksumming: the reader's per-record CRC must catch it.
    payload_[payload_.size() / 2] ^= 0x20;
  }
  net::wire::Writer w(chunk_);
  w.put_u32(static_cast<std::uint32_t>(payload_.size()));
  w.put_u32(crc);
  chunk_.insert(chunk_.end(), payload_.begin(), payload_.end());
  ++chunk_records_;
  if (chunk_records_ >= opts_.records_per_shard) return seal_chunk();
  return Status::ok();
}

util::Status ShardedCorpusWriter::seal_chunk() {
  if (chunk_records_ == 0) return Status::ok();
  char name[64];
  std::snprintf(name, sizeof(name), "%s-%05zu.gsd", opts_.prefix.c_str(),
                manifest_.shards.size());

  std::vector<std::uint8_t> file;
  file.reserve(kShardHeaderBytes + chunk_.size());
  net::wire::Writer w(file);
  put_header(w, kShardMagic, chunk_records_);
  file.insert(file.end(), chunk_.begin(), chunk_.end());

  ShardInfo info;
  info.file = name;
  info.records = chunk_records_;
  info.bytes = file.size();
  info.checksum = net::checksum32(file);
  if (util::fault(util::faults::kManifestStaleCount)) {
    // Manifest drifts from its shard: claims one record too many.
    info.records += 1;
  }
  if (util::fault(util::faults::kShardTruncate) && file.size() > 8) {
    // Torn write: the tail never reached disk. The manifest still records
    // the intended size/checksum, so both cross-checks must fire.
    file.resize(file.size() - 8);
  }

  if (auto st = write_file_atomic((fs::path(dir_) / name).string(), file);
      !st.is_ok()) {
    return st.with_context("seal shard " + std::string(name));
  }
  manifest_.total_records += chunk_records_;
  manifest_.shards.push_back(std::move(info));
  bytes_ += file.size();
  chunk_.clear();
  chunk_records_ = 0;
  return Status::ok();
}

util::Status ShardedCorpusWriter::finish() {
  if (finished_) return Status::ok();
  if (auto st = seal_chunk(); !st.is_ok()) return st;
  manifest_.schema = opts_.schema;
  if (auto st = write_manifest(dir_, manifest_); !st.is_ok()) return st;
  finished_ = true;
  return Status::ok();
}

}  // namespace gea::dataset
