#include "dataset/labels.hpp"

#include <stdexcept>

namespace gea::dataset {

using util::ErrorCode;
using util::Status;

ml::LabelSchema binary_label_schema() { return ml::LabelSchema::binary(); }

ml::LabelSchema family_label_schema() {
  std::vector<std::string> names;
  names.emplace_back("benign");
  for (bingen::Family f : bingen::malicious_families()) {
    names.emplace_back(bingen::family_name(f));
  }
  auto schema = ml::LabelSchema::make(std::move(names), /*benign_class=*/0);
  // The taxonomy's names are compile-time constants that satisfy the
  // schema's naming rules; failure here is a programming error.
  if (!schema.is_ok()) {
    throw std::logic_error("family_label_schema: " +
                           schema.status().to_string());
  }
  return schema.value();
}

util::Result<std::uint8_t> class_for_family(const ml::LabelSchema& schema,
                                            bingen::Family family) {
  if (!bingen::is_malicious(family)) {
    return static_cast<std::uint8_t>(schema.benign_class());
  }
  // Binary schemas collapse all malicious families onto one class.
  if (schema.is_binary()) return std::uint8_t{1};
  const auto k = schema.class_from_name(bingen::family_name(family));
  if (!k.has_value()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         std::string("label schema has no class for family '") +
                             bingen::family_name(family) + "'");
  }
  return static_cast<std::uint8_t>(*k);
}

util::Status relabel_corpus(Corpus& corpus, const ml::LabelSchema& schema) {
  std::vector<std::uint8_t> labels;
  labels.reserve(corpus.size());
  for (const auto& s : corpus.samples()) {
    auto cls = class_for_family(schema, s.family);
    if (!cls.is_ok()) {
      util::Status st = cls.status();
      return st.with_context("relabel_corpus");
    }
    labels.push_back(cls.value());
  }
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    corpus.samples()[i].label = labels[i];
  }
  return Status::ok();
}

}  // namespace gea::dataset
