// Stratified train/test splitting.
#pragma once

#include <cstdint>
#include <vector>

#include "dataset/corpus.hpp"
#include "util/rng.hpp"

namespace gea::dataset {

struct Split {
  std::vector<std::size_t> train;  // indices into the corpus
  std::vector<std::size_t> test;
};

/// Split sample indices with per-label stratification so both splits keep
/// the corpus's class imbalance. `test_fraction` in (0,1).
Split stratified_split(const Corpus& corpus, double test_fraction,
                       util::Rng& rng);

/// Materialize feature rows / labels for a set of indices.
std::vector<std::vector<double>> rows_for(
    const std::vector<features::FeatureVector>& all_rows,
    const std::vector<std::size_t>& indices);
std::vector<std::uint8_t> labels_for(const std::vector<std::uint8_t>& all,
                                     const std::vector<std::size_t>& indices);

}  // namespace gea::dataset
