#include "dataset/corpus.hpp"

#include <stdexcept>

#include "util/faultinject.hpp"
#include "util/log.hpp"

namespace gea::dataset {

Corpus Corpus::generate(const CorpusConfig& cfg) {
  auto res = generate_checked(cfg);
  if (!res.is_ok()) throw std::runtime_error(res.status().to_string());
  return std::move(res).value();
}

util::Result<Corpus> Corpus::generate_checked(const CorpusConfig& cfg,
                                              SynthesisReport* report,
                                              bool strict) {
  using util::ErrorCode;
  using util::Status;

  util::Rng rng(cfg.seed);
  Corpus c;
  c.samples_.reserve(cfg.num_benign + cfg.num_malicious);
  std::uint32_t next_id = 0;

  // Benign mix: utilities dominate OpenWRT userland, then network tools,
  // then daemons.
  const std::vector<std::pair<bingen::Family, double>> benign_mix = {
      {bingen::Family::kBenignUtility, 0.50},
      {bingen::Family::kBenignNetTool, 0.30},
      {bingen::Family::kBenignDaemon, 0.20},
  };
  // Malicious mix mirroring the CSoNet'18 IoT dataset's family skew.
  const std::vector<std::pair<bingen::Family, double>> mal_mix = {
      {bingen::Family::kGafgytLike, 0.55},
      {bingen::Family::kMiraiLike, 0.35},
      {bingen::Family::kTsunamiLike, 0.10},
  };

  auto draw_family =
      [&](const std::vector<std::pair<bingen::Family, double>>& mix) {
        double u = rng.uniform();
        for (const auto& [family, p] : mix) {
          if (u < p) return family;
          u -= p;
        }
        return mix.back().first;
      };

  SynthesisReport local;
  SynthesisReport& rep = report != nullptr ? *report : local;
  rep.requested = cfg.num_benign + cfg.num_malicious;

  // Upper bound on one synthetic program's instruction count; a generator
  // gone haywire (or the alloc.oversize fault) must not OOM the corpus.
  constexpr std::size_t kMaxProgramLen = 4'000'000;

  // One sample: generate, guard, validate, then either keep or quarantine.
  // The Rng is consumed identically either way, so quarantining sample k
  // never perturbs samples k+1..n.
  auto add_sample = [&](bingen::Family family) -> Status {
    Status verdict;
    Sample s;
    try {
      s = make_sample(next_id++, family, rng, cfg.gen);
      verdict = util::check_allocation(s.program.size(), kMaxProgramLen,
                                       "sample program");
      if (verdict.is_ok()) verdict = validate_sample(s);
    } catch (const std::exception& e) {
      verdict = Status::error(ErrorCode::kInternal, e.what());
    }
    if (verdict.is_ok()) {
      c.samples_.push_back(std::move(s));
      ++rep.generated;
      return Status::ok();
    }
    verdict.with_context(std::string("sample ") + std::to_string(next_id - 1) +
                         " (" + bingen::family_name(family) + ")");
    ++rep.quarantined;
    ++rep.quarantined_by_family[bingen::family_name(family)];
    if (rep.diagnostics.size() < rep.max_diagnostics) {
      rep.diagnostics.push_back(verdict.to_string());
    }
    if (strict) return verdict;
    util::log_warn("corpus synthesis: quarantined ", verdict.to_string());
    return Status::ok();
  };

  for (std::size_t i = 0; i < cfg.num_benign; ++i) {
    if (auto st = add_sample(draw_family(benign_mix)); !st.is_ok()) {
      return st.with_context("Corpus::generate");
    }
  }
  for (std::size_t i = 0; i < cfg.num_malicious; ++i) {
    if (auto st = add_sample(draw_family(mal_mix)); !st.is_ok()) {
      return st.with_context("Corpus::generate");
    }
  }
  return c;
}

std::size_t Corpus::count_label(std::uint8_t label) const {
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.label == label) ++n;
  }
  return n;
}

std::map<bingen::Family, std::size_t> Corpus::family_histogram() const {
  std::map<bingen::Family, std::size_t> h;
  for (const auto& s : samples_) ++h[s.family];
  return h;
}

std::vector<std::size_t> Corpus::indices_of(std::uint8_t label) const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (samples_[i].label == label) idx.push_back(i);
  }
  return idx;
}

std::vector<features::FeatureVector> Corpus::feature_rows() const {
  std::vector<features::FeatureVector> rows;
  rows.reserve(samples_.size());
  for (const auto& s : samples_) rows.push_back(s.features);
  return rows;
}

std::vector<std::uint8_t> Corpus::labels() const {
  std::vector<std::uint8_t> l;
  l.reserve(samples_.size());
  for (const auto& s : samples_) l.push_back(s.label);
  return l;
}

}  // namespace gea::dataset
