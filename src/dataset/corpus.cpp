#include "dataset/corpus.hpp"

namespace gea::dataset {

Corpus Corpus::generate(const CorpusConfig& cfg) {
  util::Rng rng(cfg.seed);
  Corpus c;
  c.samples_.reserve(cfg.num_benign + cfg.num_malicious);
  std::uint32_t next_id = 0;

  // Benign mix: utilities dominate OpenWRT userland, then network tools,
  // then daemons.
  const std::vector<std::pair<bingen::Family, double>> benign_mix = {
      {bingen::Family::kBenignUtility, 0.50},
      {bingen::Family::kBenignNetTool, 0.30},
      {bingen::Family::kBenignDaemon, 0.20},
  };
  // Malicious mix mirroring the CSoNet'18 IoT dataset's family skew.
  const std::vector<std::pair<bingen::Family, double>> mal_mix = {
      {bingen::Family::kGafgytLike, 0.55},
      {bingen::Family::kMiraiLike, 0.35},
      {bingen::Family::kTsunamiLike, 0.10},
  };

  auto draw_family =
      [&](const std::vector<std::pair<bingen::Family, double>>& mix) {
        double u = rng.uniform();
        for (const auto& [family, p] : mix) {
          if (u < p) return family;
          u -= p;
        }
        return mix.back().first;
      };

  for (std::size_t i = 0; i < cfg.num_benign; ++i) {
    c.samples_.push_back(make_sample(next_id++, draw_family(benign_mix), rng, cfg.gen));
  }
  for (std::size_t i = 0; i < cfg.num_malicious; ++i) {
    c.samples_.push_back(make_sample(next_id++, draw_family(mal_mix), rng, cfg.gen));
  }
  return c;
}

std::size_t Corpus::count_label(std::uint8_t label) const {
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.label == label) ++n;
  }
  return n;
}

std::map<bingen::Family, std::size_t> Corpus::family_histogram() const {
  std::map<bingen::Family, std::size_t> h;
  for (const auto& s : samples_) ++h[s.family];
  return h;
}

std::vector<std::size_t> Corpus::indices_of(std::uint8_t label) const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (samples_[i].label == label) idx.push_back(i);
  }
  return idx;
}

std::vector<features::FeatureVector> Corpus::feature_rows() const {
  std::vector<features::FeatureVector> rows;
  rows.reserve(samples_.size());
  for (const auto& s : samples_) rows.push_back(s.features);
  return rows;
}

std::vector<std::uint8_t> Corpus::labels() const {
  std::vector<std::uint8_t> l;
  l.reserve(samples_.size());
  for (const auto& s : samples_) l.push_back(s.label);
  return l;
}

}  // namespace gea::dataset
