#include "dataset/corpus.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace gea::dataset {

namespace {

using FamilyMix = std::vector<std::pair<bingen::Family, double>>;

// Benign mix: utilities dominate OpenWRT userland, then network tools,
// then daemons.
const FamilyMix& benign_mix() {
  static const FamilyMix mix = {
      {bingen::Family::kBenignUtility, 0.50},
      {bingen::Family::kBenignNetTool, 0.30},
      {bingen::Family::kBenignDaemon, 0.20},
  };
  return mix;
}

// Malicious mix mirroring the CSoNet'18 IoT dataset's family skew.
const FamilyMix& mal_mix() {
  static const FamilyMix mix = {
      {bingen::Family::kGafgytLike, 0.55},
      {bingen::Family::kMiraiLike, 0.35},
      {bingen::Family::kTsunamiLike, 0.10},
  };
  return mix;
}

bingen::Family draw_family(util::Rng& rng, const FamilyMix& mix) {
  double u = rng.uniform();
  for (const auto& [family, p] : mix) {
    if (u < p) return family;
    u -= p;
  }
  return mix.back().first;
}

}  // namespace

SampleStream::SampleStream(const CorpusConfig& cfg)
    : cfg_(cfg),
      rng_(cfg.seed),
      total_(cfg.num_benign + cfg.num_malicious) {}

util::Status SampleStream::next(Sample& out) {
  using util::ErrorCode;
  using util::Status;
  const bingen::Family family = draw_family(
      rng_, produced_ < cfg_.num_benign ? benign_mix() : mal_mix());
  ++produced_;
  Status st;
  try {
    out = generate_sample(next_id_++, family, rng_, cfg_.gen);
  } catch (const std::exception& e) {
    st = Status::error(ErrorCode::kInternal, e.what());
    out = Sample{};
    out.id = next_id_ - 1;
    out.family = family;
  }
  return st;
}

Corpus Corpus::generate(const CorpusConfig& cfg) {
  auto res = generate_checked(cfg);
  if (!res.is_ok()) throw std::runtime_error(res.status().to_string());
  return std::move(res).value();
}

util::Result<Corpus> Corpus::generate_checked(const CorpusConfig& cfg,
                                              SynthesisReport* report,
                                              bool strict) {
  using util::ErrorCode;
  using util::Status;

  Corpus c;
  c.samples_.reserve(cfg.num_benign + cfg.num_malicious);

  SynthesisReport local;
  SynthesisReport& rep = report != nullptr ? *report : local;
  rep.requested = cfg.num_benign + cfg.num_malicious;

  const std::size_t threads = util::resolve_threads(
      {.threads = cfg.threads, .label = "corpus synthesis"});
  rep.threads_used = threads;

  // Upper bound on one synthetic program's instruction count; a generator
  // gone haywire (or the alloc.oversize fault) must not OOM the corpus.
  constexpr std::size_t kMaxProgramLen = 4'000'000;

  // Phase 1 (serial): draw families and generate programs via the shared
  // SampleStream — the only Rng consumer, so the sample stream (and
  // therefore every surviving sample) is bitwise identical to a fully
  // serial run and to the sharded on-disk writer. A generation exception
  // fails only its own slot; the Rng is consumed identically either way,
  // so quarantining sample k never perturbs samples k+1..n.
  SampleStream stream(cfg);
  std::vector<Sample> pending;
  pending.reserve(rep.requested);
  std::vector<Status> verdicts(rep.requested);
  while (!stream.done()) {
    Sample s;
    Status st = stream.next(s);
    verdicts[pending.size()] = std::move(st);
    pending.push_back(std::move(s));
  }

  // Phase 2 (parallel): featurize, guard, validate into per-slot verdicts.
  // One chunk per worker; per-chunk busy time is accumulated locally and
  // merged after the join so the report's totals are exact. Registry handles
  // are resolved once out here; per-sample observes inside the workers are
  // wait-free stripe writes (the per-sample stopwatch is skipped entirely
  // when metrics are off, so the hot path pays one relaxed load).
  auto& registry = obs::MetricsRegistry::global();
  obs::Histogram& featurize_ms_hist = registry.histogram("corpus.featurize_ms");
  obs::Counter& featurized_total = registry.counter("corpus.featurized_total");
  util::Stopwatch wall;
  std::vector<double> chunk_ms(threads, 0.0);
  const Status pst = util::parallel_for_ranges(
      pending.size(), threads,
      [&](std::size_t begin, std::size_t end, std::size_t chunk) {
        util::Stopwatch sw;
        const bool observe = obs::metrics_enabled();
        // One engine per worker chunk: traversal scratch grows to the
        // chunk's largest CFG once, then every further sample featurizes
        // allocation-free. Features are bitwise identical either way.
        features::FeatureEngine engine;
        for (std::size_t i = begin; i < end; ++i) {
          if (!verdicts[i].is_ok()) continue;  // generation already failed
          Sample& s = pending[i];
          try {
            if (observe) {
              util::Stopwatch per_sample;
              featurize_sample(s, engine);
              featurize_ms_hist.observe(per_sample.elapsed_ms());
              featurized_total.inc();
            } else {
              featurize_sample(s, engine);
            }
            Status v = util::check_allocation(s.program.size(), kMaxProgramLen,
                                              "sample program");
            if (v.is_ok()) v = validate_sample(s);
            verdicts[i] = std::move(v);
          } catch (const std::exception& e) {
            verdicts[i] = Status::error(ErrorCode::kInternal, e.what());
          }
        }
        chunk_ms[chunk] += sw.elapsed_ms();
        return Status::ok();
      },
      {.threads = cfg.threads, .label = "corpus synthesis"});
  if (!pst.is_ok()) return Status(pst).with_context("Corpus::generate");
  rep.featurize_wall_ms = wall.elapsed_ms();
  for (double ms : chunk_ms) rep.featurize_worker_ms += ms;

  // Phase 3 (serial merge in sample order): keep survivors, quarantine the
  // rest. Accounting, diagnostics, and logging match the serial loop
  // record-for-record.
  for (std::size_t i = 0; i < pending.size(); ++i) {
    Sample& s = pending[i];
    if (verdicts[i].is_ok()) {
      c.samples_.push_back(std::move(s));
      ++rep.generated;
      continue;
    }
    Status verdict = std::move(verdicts[i]);
    verdict.with_context(std::string("sample ") + std::to_string(s.id) + " (" +
                         bingen::family_name(s.family) + ")");
    ++rep.quarantined;
    ++rep.quarantined_by_family[bingen::family_name(s.family)];
    if (rep.diagnostics.size() < rep.max_diagnostics) {
      rep.diagnostics.push_back(verdict.to_string());
    }
    if (strict) return verdict.with_context("Corpus::generate");
    util::log_warn("corpus synthesis: quarantined ", verdict.to_string());
  }
  return c;
}

std::size_t Corpus::count_label(std::uint8_t label) const {
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.label == label) ++n;
  }
  return n;
}

std::map<bingen::Family, std::size_t> Corpus::family_histogram() const {
  std::map<bingen::Family, std::size_t> h;
  for (const auto& s : samples_) ++h[s.family];
  return h;
}

std::vector<std::size_t> Corpus::indices_of(std::uint8_t label) const {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (samples_[i].label == label) idx.push_back(i);
  }
  return idx;
}

std::vector<features::FeatureVector> Corpus::feature_rows() const {
  std::vector<features::FeatureVector> rows;
  rows.reserve(samples_.size());
  for (const auto& s : samples_) rows.push_back(s.features);
  return rows;
}

std::vector<std::uint8_t> Corpus::labels() const {
  std::vector<std::uint8_t> l;
  l.reserve(samples_.size());
  for (const auto& s : samples_) l.push_back(s.label);
  return l;
}

}  // namespace gea::dataset
