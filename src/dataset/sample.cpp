#include "dataset/sample.hpp"

#include "util/faultinject.hpp"

namespace gea::dataset {

namespace {

/// Fault-point corruption: degrade a freshly built sample the way a broken
/// disassembler or a crafted binary would, so the quarantine layer has
/// something real to catch. Only runs when a test armed the matching point.
void maybe_corrupt(Sample& s) {
  namespace f = util::faults;
  if (util::fault(f::kCfgZeroNode)) {
    // An unparsable binary: no blocks, no graph, all-zero features.
    s.cfg = cfg::Cfg{};
    s.features = features::FeatureVector{};
  }
  if (util::fault(f::kCfgDanglingEdge)) {
    s.cfg.exit_nodes.push_back(
        static_cast<graph::NodeId>(s.cfg.graph.num_nodes() + 7));
  }
  if (util::fault(f::kCfgDisconnectedExit)) {
    // Replace the exits with an isolated node nothing flows into.
    const auto orphan = s.cfg.graph.add_node("orphan exit");
    s.cfg.blocks.push_back({0, 1, 0});
    s.cfg.exit_nodes.assign(1, orphan);
  }
}

}  // namespace

Sample generate_sample(std::uint32_t id, bingen::Family family, util::Rng& rng,
                       const bingen::GenOptions& opts) {
  Sample s;
  s.id = id;
  s.family = family;
  s.label = bingen::is_malicious(family) ? kMalicious : kBenign;
  s.program = bingen::generate_program(family, rng, opts);
  return s;
}

void featurize_sample(Sample& s) {
  featurize_sample(s, features::FeatureEngine::local());
}

void featurize_sample(Sample& s, features::FeatureEngine& engine) {
  // Feature extraction follows the paper's convention: the CFG is the
  // entry function's graph (Figs. 2-4 are all `sym.main` graphs).
  s.cfg = cfg::extract_cfg(s.program, {.main_only = true});
  s.features = engine.extract(s.cfg.graph);
  maybe_corrupt(s);
}

Sample make_sample(std::uint32_t id, bingen::Family family, util::Rng& rng,
                   const bingen::GenOptions& opts) {
  Sample s = generate_sample(id, family, rng, opts);
  featurize_sample(s);
  return s;
}

util::Status validate_sample(const Sample& s) {
  if (auto st = cfg::validate(s.cfg); !st.is_ok()) {
    return st.with_context("cfg");
  }
  if (std::size_t i = features::first_non_finite(s.features);
      i != features::kNumFeatures) {
    return util::Status::error(
        util::ErrorCode::kCorruptData,
        "non-finite feature " + features::feature_name(i));
  }
  return util::Status::ok();
}

}  // namespace gea::dataset
