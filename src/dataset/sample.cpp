#include "dataset/sample.hpp"

namespace gea::dataset {

Sample make_sample(std::uint32_t id, bingen::Family family, util::Rng& rng,
                   const bingen::GenOptions& opts) {
  Sample s;
  s.id = id;
  s.family = family;
  s.label = bingen::is_malicious(family) ? kMalicious : kBenign;
  s.program = bingen::generate_program(family, rng, opts);
  // Feature extraction follows the paper's convention: the CFG is the
  // entry function's graph (Figs. 2-4 are all `sym.main` graphs).
  s.cfg = cfg::extract_cfg(s.program, {.main_only = true});
  s.features = features::extract_features(s.cfg.graph);
  return s;
}

}  // namespace gea::dataset
