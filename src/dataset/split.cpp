#include "dataset/split.hpp"

#include <stdexcept>

namespace gea::dataset {

Split stratified_split(const Corpus& corpus, double test_fraction,
                       util::Rng& rng) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("stratified_split: fraction out of (0,1)");
  }
  Split split;
  for (std::uint8_t label : {kBenign, kMalicious}) {
    auto idx = corpus.indices_of(label);
    rng.shuffle(idx);
    const auto n_test = static_cast<std::size_t>(
        test_fraction * static_cast<double>(idx.size()) + 0.5);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      (i < n_test ? split.test : split.train).push_back(idx[i]);
    }
  }
  rng.shuffle(split.train);
  rng.shuffle(split.test);
  return split;
}

std::vector<std::vector<double>> rows_for(
    const std::vector<features::FeatureVector>& all_rows,
    const std::vector<std::size_t>& indices) {
  std::vector<std::vector<double>> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) {
    const auto& fv = all_rows.at(i);
    out.emplace_back(fv.begin(), fv.end());
  }
  return out;
}

std::vector<std::uint8_t> labels_for(const std::vector<std::uint8_t>& all,
                                     const std::vector<std::size_t>& indices) {
  std::vector<std::uint8_t> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(all.at(i));
  return out;
}

}  // namespace gea::dataset
