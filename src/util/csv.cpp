#include "util/csv.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace gea::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& values, int precision) {
  std::ostringstream ss;
  ss << std::setprecision(precision) << std::fixed;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) ss << ',';
    ss << values[i];
  }
  out_ << ss.str() << '\n';
}

std::vector<std::vector<std::string>> CsvReader::parse(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        row_has_content = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_has_content || !field.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
          row_has_content = false;
        }
        break;
      default:
        field += c;
    }
  }
  if (row_has_content || !field.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<std::vector<std::string>> CsvReader::read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("CsvReader: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

}  // namespace gea::util
