// Descriptive statistics over small vectors of doubles.
//
// The paper summarizes per-node / per-pair graph quantities with
// {min, max, median, mean, stddev}; `summary5()` computes exactly that
// 5-tuple and is the workhorse of feature extraction (Table II).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace gea::util {

/// min, max, median, mean, population standard deviation — in this order,
/// matching the feature layout used throughout the library.
struct Summary5 {
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double mean = 0.0;
  double stddev = 0.0;

  std::array<double, 5> as_array() const { return {min, max, median, mean, stddev}; }
};

double mean(std::span<const double> xs);
/// Population standard deviation (divides by N, not N-1).
double stddev(std::span<const double> xs);
/// Median with the usual midpoint rule for even sizes. Copies its input.
double median(std::span<const double> xs);
/// Median into a caller-owned scratch copy: identical result, but the copy
/// reuses `scratch`'s capacity so hot paths (the feature engine) allocate
/// nothing once warmed up.
double median(std::span<const double> xs, std::vector<double>& scratch);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// All five summary statistics in one pass (plus one sort for the median).
/// An empty input yields all zeros, mirroring how degenerate CFGs (single
/// block, no edges) are featurized.
Summary5 summary5(std::span<const double> xs);

/// summary5 with the median's working copy placed in caller-owned scratch
/// (see median above). Bitwise-identical to the allocating overload.
Summary5 summary5(std::span<const double> xs, std::vector<double>& scratch);

/// Linear-interpolated p-th percentile, p in [0,100]. Copies its input.
double percentile(std::span<const double> xs, double p);

/// Percentile summary of a latency population, in the units the samples
/// were recorded in. Empty populations summarize to all zeros.
struct LatencySummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  std::string to_string() const;  // "n=... mean=... p50=... p95=... p99=... max=..."
};

/// Accumulates individual latency observations and summarizes them with the
/// shared percentile math above. Used by serve::ServerStats and the bench
/// load generators so no bench re-implements percentile interpolation.
/// Not thread-safe; synchronize externally (ServerStats does).
class LatencyRecorder {
 public:
  void record(double value) { samples_.push_back(value); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  void clear() { samples_.clear(); }

  /// p in [0,100], via util::percentile.
  double at_percentile(double p) const;
  LatencySummary summarize() const;

 private:
  std::vector<double> samples_;
};

/// Peak resident set size of this process in bytes (getrusage ru_maxrss),
/// 0 where unavailable. Monotonic over the process lifetime — the
/// bounded-memory gates in bench/corpus_bench read it *before* running any
/// deliberately-unbounded baseline phase.
std::size_t peak_rss_bytes();

}  // namespace gea::util
