#include "util/log.hpp"

#include <chrono>
#include <cstdio>

namespace gea::util {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto since_midnight = now.time_since_epoch() % hours(24);
  const auto h = duration_cast<hours>(since_midnight).count();
  const auto m = duration_cast<minutes>(since_midnight % hours(1)).count();
  const auto s = duration_cast<seconds>(since_midnight % minutes(1)).count();
  const auto ms = duration_cast<milliseconds>(since_midnight % seconds(1)).count();
  std::fprintf(stderr, "[%02lld:%02lld:%02lld.%03lld] %s %s\n",
               static_cast<long long>(h), static_cast<long long>(m),
               static_cast<long long>(s), static_cast<long long>(ms),
               level_name(level), msg.c_str());
}

}  // namespace gea::util
