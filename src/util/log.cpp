#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>

namespace gea::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

// Opt-in JSON-lines sink (see set_log_json). The mutex guards the stream
// object and serializes appends; it is only touched when a sink is open or
// being (un)installed, so plain stderr logging never contends on it.
std::mutex g_json_mu;
std::ofstream g_json_sink;

std::atomic<std::uint64_t> g_count_debug{0};
std::atomic<std::uint64_t> g_count_info{0};
std::atomic<std::uint64_t> g_count_warn{0};
std::atomic<std::uint64_t> g_count_error{0};

// Innermost active capture. Install/uninstall is single-threaded (test
// scope), but parallel pipeline stages emit warnings from pool workers, so
// record appends are serialized.
LogCapture* g_capture = nullptr;
std::mutex g_capture_mu;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

const char* level_json_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::atomic<std::uint64_t>& counter(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return g_count_debug;
    case LogLevel::kInfo: return g_count_info;
    case LogLevel::kWarn: return g_count_warn;
    case LogLevel::kError: return g_count_error;
  }
  return g_count_error;
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}
LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_json(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_json_mu);
  if (g_json_sink.is_open()) g_json_sink.close();
  if (!path.empty()) g_json_sink.open(path, std::ios::app);
}

std::uint64_t LogCounts::at(LogLevel level) const {
  switch (level) {
    case LogLevel::kDebug: return debug;
    case LogLevel::kInfo: return info;
    case LogLevel::kWarn: return warn;
    case LogLevel::kError: return error;
  }
  return 0;
}

LogCounts log_counts() {
  return LogCounts{g_count_debug.load(), g_count_info.load(),
                   g_count_warn.load(), g_count_error.load()};
}

void reset_log_counts() {
  g_count_debug = 0;
  g_count_info = 0;
  g_count_warn = 0;
  g_count_error = 0;
}

LogCapture::LogCapture() {
  std::lock_guard<std::mutex> lock(g_capture_mu);
  previous_ = g_capture;
  g_capture = this;
}

LogCapture::~LogCapture() {
  std::lock_guard<std::mutex> lock(g_capture_mu);
  g_capture = previous_;
}

std::size_t LogCapture::count(LogLevel level) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.level == level) ++n;
  }
  return n;
}

std::size_t LogCapture::count_containing(std::string_view substr) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.message.find(substr) != std::string::npos) ++n;
  }
  return n;
}

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  counter(level).fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(g_capture_mu);
    if (g_capture != nullptr) {
      g_capture->records_.push_back({level, msg});
      return;
    }
  }
  using namespace std::chrono;
  const auto now = system_clock::now();
  {
    std::lock_guard<std::mutex> lock(g_json_mu);
    if (g_json_sink.is_open()) {
      const auto epoch_ms =
          duration_cast<milliseconds>(now.time_since_epoch()).count();
      g_json_sink << "{\"ts_ms\":" << epoch_ms << ",\"level\":\""
                  << level_json_name(level) << "\",\"msg\":\""
                  << json_escape(msg) << "\"}\n";
      g_json_sink.flush();
    }
  }
  const auto since_midnight = now.time_since_epoch() % hours(24);
  const auto h = duration_cast<hours>(since_midnight).count();
  const auto m = duration_cast<minutes>(since_midnight % hours(1)).count();
  const auto s = duration_cast<seconds>(since_midnight % minutes(1)).count();
  const auto ms = duration_cast<milliseconds>(since_midnight % seconds(1)).count();
  std::fprintf(stderr, "[%02lld:%02lld:%02lld.%03lld] %s %s\n",
               static_cast<long long>(h), static_cast<long long>(m),
               static_cast<long long>(s), static_cast<long long>(ms),
               level_name(level), msg.c_str());
}

}  // namespace gea::util
