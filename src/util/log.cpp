#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace gea::util {

namespace {
LogLevel g_level = LogLevel::kInfo;

std::atomic<std::uint64_t> g_count_debug{0};
std::atomic<std::uint64_t> g_count_info{0};
std::atomic<std::uint64_t> g_count_warn{0};
std::atomic<std::uint64_t> g_count_error{0};

// Innermost active capture. Install/uninstall is single-threaded (test
// scope), but parallel pipeline stages emit warnings from pool workers, so
// record appends are serialized.
LogCapture* g_capture = nullptr;
std::mutex g_capture_mu;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::atomic<std::uint64_t>& counter(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return g_count_debug;
    case LogLevel::kInfo: return g_count_info;
    case LogLevel::kWarn: return g_count_warn;
    case LogLevel::kError: return g_count_error;
  }
  return g_count_error;
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

std::uint64_t LogCounts::at(LogLevel level) const {
  switch (level) {
    case LogLevel::kDebug: return debug;
    case LogLevel::kInfo: return info;
    case LogLevel::kWarn: return warn;
    case LogLevel::kError: return error;
  }
  return 0;
}

LogCounts log_counts() {
  return LogCounts{g_count_debug.load(), g_count_info.load(),
                   g_count_warn.load(), g_count_error.load()};
}

void reset_log_counts() {
  g_count_debug = 0;
  g_count_info = 0;
  g_count_warn = 0;
  g_count_error = 0;
}

LogCapture::LogCapture() {
  std::lock_guard<std::mutex> lock(g_capture_mu);
  previous_ = g_capture;
  g_capture = this;
}

LogCapture::~LogCapture() {
  std::lock_guard<std::mutex> lock(g_capture_mu);
  g_capture = previous_;
}

std::size_t LogCapture::count(LogLevel level) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.level == level) ++n;
  }
  return n;
}

std::size_t LogCapture::count_containing(std::string_view substr) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (r.message.find(substr) != std::string::npos) ++n;
  }
  return n;
}

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  counter(level).fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(g_capture_mu);
    if (g_capture != nullptr) {
      g_capture->records_.push_back({level, msg});
      return;
    }
  }
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto since_midnight = now.time_since_epoch() % hours(24);
  const auto h = duration_cast<hours>(since_midnight).count();
  const auto m = duration_cast<minutes>(since_midnight % hours(1)).count();
  const auto s = duration_cast<seconds>(since_midnight % minutes(1)).count();
  const auto ms = duration_cast<milliseconds>(since_midnight % seconds(1)).count();
  std::fprintf(stderr, "[%02lld:%02lld:%02lld.%03lld] %s %s\n",
               static_cast<long long>(h), static_cast<long long>(m),
               static_cast<long long>(s), static_cast<long long>(ms),
               level_name(level), msg.c_str());
}

}  // namespace gea::util
