#include "util/threadpool.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"

namespace gea::util {

namespace {

thread_local bool t_on_pool_worker = false;

std::size_t read_env_thread_count() {
  const char* env = std::getenv("GEA_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) {
      return v > 256 ? 256 : static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace

std::size_t default_thread_count() {
  static const std::size_t n = read_env_thread_count();
  return n;
}

std::size_t threads_from_cli(int argc, char** argv, std::size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) != "--threads") continue;
    char* end = nullptr;
    const long v = std::strtol(argv[i + 1], &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) {
      return v > 256 ? 256 : static_cast<std::size_t>(v);
    }
    log_warn("ignoring malformed --threads value '", argv[i + 1], "'");
    return fallback;
  }
  return fallback;
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  // SplitMix64 finalizer over the (seed, stream) pair; the golden-ratio
  // multiplier decorrelates consecutive stream indices.
  std::uint64_t z = seed ^ (stream * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  // Resolve registry handles before spawning workers: constructing the
  // registry first also sequences its destruction after this pool's, so
  // draining workers can still bump counters during static teardown.
  auto& registry = obs::MetricsRegistry::global();
  tasks_executed_ = &registry.counter("threadpool.tasks_executed_total");
  queue_depth_ = &registry.gauge("threadpool.queue_depth");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) throw std::logic_error("ThreadPool::submit after shutdown");
    queue_.push_back(std::move(task));
    queue_depth_->set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_main() {
  t_on_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-on-shutdown: keep executing queued tasks after stopping_ is
      // set; exit only once the queue is empty.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->set(static_cast<double>(queue_.size()));
      ++active_;
    }
    task();  // pool tasks never throw (parallel_for wraps bodies)
    tasks_executed_->inc();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

bool ThreadPool::on_worker_thread() { return t_on_pool_worker; }

std::size_t resolve_threads(const ParallelOptions& opts) {
  if (opts.threads != 0) return opts.threads;
  // Counted fault plans are defined by hit order; only the serial path makes
  // that order reproducible, so auto degrades while anything is armed.
  if (FaultInjector::any_armed()) return 1;
  return default_thread_count();
}

util::Status parallel_for_ranges(
    std::size_t n, std::size_t num_chunks,
    const std::function<util::Status(std::size_t, std::size_t, std::size_t)>&
        body,
    const ParallelOptions& opts) {
  if (n == 0) return Status::ok();
  const std::size_t threads = resolve_threads(opts);
  if (num_chunks == 0) num_chunks = threads;
  if (num_chunks > n) num_chunks = n;
  const std::size_t chunk_size = (n + num_chunks - 1) / num_chunks;

  auto run_chunk = [&](std::size_t c) -> Status {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = begin + chunk_size < n ? begin + chunk_size : n;
    try {
      return body(begin, end, c);
    } catch (const std::exception& e) {
      return Status::error(ErrorCode::kInternal,
                           std::string("uncaught worker exception: ") + e.what());
    } catch (...) {
      return Status::error(ErrorCode::kInternal, "uncaught worker exception");
    }
  };

  auto finish = [&](std::vector<Status>& statuses) -> Status {
    for (std::size_t c = 0; c < statuses.size(); ++c) {
      if (!statuses[c].is_ok()) {
        return statuses[c].with_context(std::string(opts.label) + " chunk " +
                                        std::to_string(c));
      }
    }
    return Status::ok();
  };

  // Serial path: one thread requested, a single chunk, or we are already on
  // a pool worker (a nested dispatch waiting on the same pool could
  // deadlock). Early-exits on the first failure like a plain loop would.
  if (threads <= 1 || num_chunks <= 1 || ThreadPool::on_worker_thread()) {
    std::vector<Status> statuses(1);
    for (std::size_t c = 0; c * chunk_size < n; ++c) {
      statuses[0] = run_chunk(c);
      if (!statuses[0].is_ok()) {
        return statuses[0].with_context(std::string(opts.label) + " chunk " +
                                        std::to_string(c));
      }
    }
    return Status::ok();
  }

  // Parallel path: `threads` loops (helpers on the shared pool plus the
  // calling thread) pull chunk indices from an atomic counter. Which loop
  // runs which chunk is scheduling-dependent; the results are not, because
  // chunk boundaries are fixed above and every outcome lands in its own
  // slot. The loop state lives on the heap (shared_ptr) because a straggler
  // helper can still poll the counter after the caller has been released.
  struct LoopState {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t total = 0;
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Status> statuses;
  };
  auto state = std::make_shared<LoopState>();
  state->total = (n + chunk_size - 1) / chunk_size;
  state->statuses.resize(state->total);

  auto chunk_loop = [state, &run_chunk] {
    for (;;) {
      const std::size_t c = state->next.fetch_add(1, std::memory_order_relaxed);
      if (c >= state->total) break;
      // run_chunk (and everything it references) is guaranteed alive here:
      // the caller cannot return before this chunk's completion is counted.
      state->statuses[c] = run_chunk(c);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->total) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  const std::size_t helpers =
      (threads < state->total ? threads : state->total) - 1;
  for (std::size_t i = 0; i < helpers; ++i) {
    ThreadPool::shared().submit(chunk_loop);
  }
  chunk_loop();  // the caller works too; progress never depends on the pool

  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == state->total;
    });
  }
  return finish(state->statuses);
}

util::Status parallel_for(std::size_t n,
                          const std::function<util::Status(std::size_t)>& body,
                          const ParallelOptions& opts) {
  return parallel_for_ranges(
      n, /*num_chunks=*/0,
      [&body](std::size_t begin, std::size_t end, std::size_t) -> Status {
        for (std::size_t i = begin; i < end; ++i) {
          if (auto st = body(i); !st.is_ok()) return st;
        }
        return Status::ok();
      },
      opts);
}

}  // namespace gea::util
