#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace gea::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit && limit != 0);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::chance(double p) { return uniform() < p; }

int Rng::positive_geometric(double mean) {
  if (mean <= 1.0) return 1;
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  const double x = -std::log(u) * (mean - 1.0);
  return 1 + static_cast<int>(x);
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace gea::util
