// Leveled stderr logging. Kept deliberately small: the library is a
// research artifact, not a service, so structured sinks are unnecessary —
// but benches and examples want progress lines with timestamps, and the
// robustness suite wants to *assert* on emissions (per-level counters plus
// an RAII capture sink) instead of scraping stderr.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace gea::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level (default Info). Backed by an atomic: safe to flip
/// from any thread at any time; concurrent log_line calls observe either
/// the old or the new level, never a torn value.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Opt-in JSON-lines sink: every line that passes the level filter (and is
/// not intercepted by a LogCapture) is appended to `path` as
/// {"ts_ms":<epoch ms>,"level":"warn","msg":"..."} in addition to the
/// stderr line. Pass an empty path to close the sink. Thread-safe; the
/// file is opened in append mode so runs accumulate.
void set_log_json(const std::string& path);

/// Emit one line to stderr as "[HH:MM:SS.mmm] LEVEL msg" if level passes.
void log_line(LogLevel level, const std::string& msg);

/// Per-level counts of lines that passed the level filter since process
/// start (or the last reset). Lines swallowed by the filter do not count.
struct LogCounts {
  std::uint64_t debug = 0;
  std::uint64_t info = 0;
  std::uint64_t warn = 0;
  std::uint64_t error = 0;

  std::uint64_t at(LogLevel level) const;
  std::uint64_t total() const { return debug + info + warn + error; }
};

LogCounts log_counts();
void reset_log_counts();

/// Test-scoped sink: while alive, every emitted line is recorded here
/// (level + message, no timestamp) instead of going to stderr, so tests can
/// assert "the pipeline warned N times about quarantined samples" without
/// scraping process output. Captures nest; the innermost one records.
class LogCapture {
 public:
  struct Record {
    LogLevel level;
    std::string message;
  };

  LogCapture();
  ~LogCapture();
  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  const std::vector<Record>& records() const { return records_; }
  std::size_t count(LogLevel level) const;
  /// Records (any level) whose message contains `substr`.
  std::size_t count_containing(std::string_view substr) const;

 private:
  friend void log_line(LogLevel, const std::string&);
  std::vector<Record> records_;
  LogCapture* previous_ = nullptr;
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream ss;
  (ss << ... << std::forward<Args>(args));
  return ss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace gea::util
