// Leveled stderr logging. Kept deliberately small: the library is a
// research artifact, not a service, so structured sinks are unnecessary —
// but benches and examples want progress lines with timestamps.
#pragma once

#include <sstream>
#include <string>

namespace gea::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level (default Info). Not thread-safe to mutate while
/// logging from other threads; set it once at startup.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr as "[HH:MM:SS.mmm] LEVEL msg" if level passes.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream ss;
  (ss << ... << std::forward<Args>(args));
  return ss.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace gea::util
