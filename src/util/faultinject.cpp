#include "util/faultinject.hpp"

#include <atomic>
#include <map>
#include <mutex>

#include "util/rng.hpp"

namespace gea::util {

namespace {
// Number of currently-armed points; the hot path only reads this.
std::atomic<int> g_armed_points{0};
}  // namespace

struct FaultInjector::Impl {
  struct Point {
    bool armed = false;
    // Counted plan.
    std::size_t skip = 0;
    std::size_t count = 0;
    // Probabilistic plan (active when probability > 0).
    double probability = 0.0;
    Rng rng{0};
    // Lifetime counters (survive disarm, cleared by reset()).
    std::size_t hits = 0;
    std::size_t fires = 0;
  };

  mutable std::mutex mu;
  std::map<std::string, Point> points;
};

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::Impl& FaultInjector::impl() {
  static Impl impl;
  return impl;
}

bool FaultInjector::any_armed() {
  return g_armed_points.load(std::memory_order_relaxed) > 0;
}

void FaultInjector::arm(const std::string& point, std::size_t skip,
                        std::size_t count) {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  Impl::Point& p = im.points[point];
  if (!p.armed) g_armed_points.fetch_add(1, std::memory_order_relaxed);
  p.armed = true;
  p.skip = skip;
  p.count = count;
  p.probability = 0.0;
}

void FaultInjector::arm_random(const std::string& point, double probability,
                               std::uint64_t seed) {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  Impl::Point& p = im.points[point];
  if (!p.armed) g_armed_points.fetch_add(1, std::memory_order_relaxed);
  p.armed = true;
  p.skip = 0;
  p.count = 0;
  p.probability = probability;
  p.rng = Rng(seed);
}

void FaultInjector::disarm(const std::string& point) {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  auto it = im.points.find(point);
  if (it != im.points.end() && it->second.armed) {
    it->second.armed = false;
    g_armed_points.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::reset() {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  for (auto& [name, p] : im.points) {
    if (p.armed) g_armed_points.fetch_sub(1, std::memory_order_relaxed);
  }
  im.points.clear();
}

bool FaultInjector::should_fire(const char* point) {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  auto it = im.points.find(point);
  if (it == im.points.end() || !it->second.armed) return false;
  Impl::Point& p = it->second;
  ++p.hits;
  bool fire = false;
  if (p.probability > 0.0) {
    fire = p.rng.uniform() < p.probability;
  } else if (p.skip > 0) {
    --p.skip;
  } else if (p.count > 0) {
    if (p.count != kUnbounded) --p.count;
    fire = true;
  }
  if (fire) ++p.fires;
  return fire;
}

std::size_t FaultInjector::hit_count(const std::string& point) const {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  auto it = im.points.find(point);
  return it == im.points.end() ? 0 : it->second.hits;
}

std::size_t FaultInjector::fire_count(const std::string& point) const {
  Impl& im = impl();
  std::lock_guard lock(im.mu);
  auto it = im.points.find(point);
  return it == im.points.end() ? 0 : it->second.fires;
}

bool fault(const char* point) {
  if (!FaultInjector::any_armed()) return false;
  return FaultInjector::instance().should_fire(point);
}

Status check_allocation(std::size_t n, std::size_t limit, const char* what) {
  if (fault(faults::kAllocOversize)) {
    n = static_cast<std::size_t>(-1) / 2;  // simulate an absurd request
  }
  if (n > limit) {
    return Status::error(
        ErrorCode::kResourceExhausted,
        std::string(what) + ": refused allocation of " + std::to_string(n) +
            " elements (limit " + std::to_string(limit) + ")");
  }
  return Status::ok();
}

}  // namespace gea::util
