// Fixed-width ASCII table rendering. The benchmark binaries use this to
// print rows in the same layout as the paper's Tables I-VII so that
// paper-vs-measured comparison is a visual diff.
#pragma once

#include <string>
#include <vector>

namespace gea::util {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Render with column separators and a header rule.
  std::string to_string() const;

  /// Format helpers.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_int(long long v);
  static std::string fmt_pct(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gea::util
