// Minimal CSV reading/writing for persisting feature matrices and
// experiment outputs. Handles quoting of fields containing commas, quotes
// or newlines; does not attempt full RFC 4180 edge cases beyond that.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace gea::util {

/// Streams rows to a CSV file. Throws std::runtime_error if the file cannot
/// be opened. Flushes on destruction.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& fields);
  /// Convenience: numeric row with fixed precision.
  void write_row(const std::vector<double>& values, int precision = 6);

  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
};

/// Loads a whole CSV file into memory. Supports quoted fields (including
/// embedded commas/newlines/escaped quotes).
class CsvReader {
 public:
  static std::vector<std::vector<std::string>> read_file(const std::string& path);
  /// Parse one CSV document from a string.
  static std::vector<std::vector<std::string>> parse(const std::string& text);
};

}  // namespace gea::util
