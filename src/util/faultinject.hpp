// Deterministic fault injection for robustness testing.
//
// Production code marks *fault points* — places where a real corpus or a
// real deployment could hand the pipeline garbage (torn CSV rows, NaN
// features, degenerate CFGs, truncated weight files, absurd allocation
// requests) — with a call to `fault(point)`. Tests arm points on the global
// injector; the instrumented site then *synthesizes* the corresponding
// corruption, and the robustness layer under test must detect and
// quarantine it. No #ifdefs: the instrumentation is always compiled in, and
// the hot path is a single relaxed atomic load that is false in any process
// that never arms a fault.
//
// Determinism: counted arming (skip N hits, then fire M times) is exact;
// probabilistic arming draws from a dedicated seeded Rng, so a given
// (seed, hit sequence) always fires identically. The injector is
// process-global and mutex-protected; tests reset() it between cases.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.hpp"

namespace gea::util {

/// Catalog of registered fault points. Call sites and tests share these
/// constants; arming an unlisted name is allowed (the registry is open) but
/// everything the test-suite drives end-to-end is listed here.
namespace faults {
inline constexpr const char* kCsvCorruptRow = "csv.corrupt_row";
inline constexpr const char* kCsvTruncateRow = "csv.truncate_row";
inline constexpr const char* kFeatureNaN = "features.nan";
inline constexpr const char* kFeatureInf = "features.inf";
inline constexpr const char* kCfgZeroNode = "cfg.zero_node";
inline constexpr const char* kCfgDanglingEdge = "cfg.dangling_edge";
inline constexpr const char* kCfgDisconnectedExit = "cfg.disconnected_exit";
inline constexpr const char* kModelTruncate = "model.truncate";
inline constexpr const char* kScalerTruncate = "scaler.truncate";
inline constexpr const char* kAllocOversize = "alloc.oversize";

// Wire-path fault points (src/net + src/serve/transport). Each synthesizes
// a hostile transport condition at the instrumented syscall or codec
// boundary; the transport layer must degrade (quarantine, shed, retry,
// close one connection) without crashing or corrupting other connections.
// They fire only on sockets that opted in via Socket::set_fault_injection
// (the server side), so a client sharing the process stays clean and tests
// are deterministic.
/// accept() synthesizes a transient failure; the pending connection stays
/// in the backlog and is retried on the next poll round.
inline constexpr const char* kNetAcceptFail = "net.accept.fail";
/// recv() delivers only a truncated prefix of what arrived (the tail is
/// dropped), desynchronizing the frame stream mid-message.
inline constexpr const char* kNetReadShort = "net.read.short";
/// A frame's payload byte flips between checksumming and validation; the
/// strict frame validator must quarantine it as a checksum mismatch.
inline constexpr const char* kNetFrameCorrupt = "net.frame.corrupt";
/// send() accepts zero bytes (peer stopped draining); the bounded write
/// buffer must absorb or shed, never grow without limit.
inline constexpr const char* kNetWriteStall = "net.write.stall";
/// The connection is torn down mid-request as if the peer reset it.
inline constexpr const char* kNetConnDrop = "net.conn.drop";

// Admin-plane fault points (src/serve/admin). The introspection endpoints
// must degrade exactly like the data plane: counted, contained, never
// fatal, and never able to stall the serving path they observe.
/// The admin listener's accept() synthesizes a transient failure; the
/// pending scrape is retried on the next poll round.
inline constexpr const char* kAdminAcceptFail = "admin.accept.fail";
/// An admin client stops draining its response (slow scraper); the
/// bounded write path must time the connection out, not buffer forever.
inline constexpr const char* kAdminSlowClient = "admin.slow_client";

// Sharded-corpus fault points (src/dataset/shard+stream, src/features/
// disk_cache). Each synthesizes the on-disk damage a real million-sample
// corpus accumulates — torn writes, bit rot, manifests that drifted from
// their shards — at the instrumented write site; the streaming reader and
// the persistent cache must quarantine with a Status, never crash, and a
// damaged cache entry must be recomputed, never served.
/// Sealing a shard drops its final bytes (torn write / truncated copy).
inline constexpr const char* kShardTruncate = "dataset.shard.truncate";
/// A record's payload byte flips after its checksum was computed (bit rot
/// the per-record CRC must catch, quarantining only that record).
inline constexpr const char* kShardCorruptRecord = "dataset.shard.corrupt_record";
/// The manifest records one more record than the shard actually holds
/// (stale manifest next to a rewritten shard).
inline constexpr const char* kManifestStaleCount = "dataset.manifest.stale_count";
/// A persistent-cache entry's payload byte flips after checksumming; the
/// next load must quarantine the entry and recompute, never serve it.
inline constexpr const char* kCacheCorruptEntry = "dataset.cache.corrupt_entry";
/// flush() dies mid-write: a truncated temp file is left behind and the
/// rename never happens. The previous segment must stay intact.
inline constexpr const char* kCachePartialWrite = "dataset.cache.partial_write";
}  // namespace faults

class FaultInjector {
 public:
  static constexpr std::size_t kUnbounded = static_cast<std::size_t>(-1);

  static FaultInjector& instance();

  /// Counted arming: the point ignores its first `skip` hits, then fires on
  /// the next `count` hits, then goes quiet again.
  void arm(const std::string& point, std::size_t skip = 0,
           std::size_t count = kUnbounded);

  /// Probabilistic arming: each hit fires independently with `probability`,
  /// drawn from a stream seeded with `seed` (deterministic across runs).
  void arm_random(const std::string& point, double probability,
                  std::uint64_t seed);

  void disarm(const std::string& point);

  /// Disarm everything and zero all hit/fire counters.
  void reset();

  /// Record a hit at `point`; true if the armed plan says to fire.
  /// Only called via the free function `fault()` below.
  bool should_fire(const char* point);

  /// Observability for tests: how often a point was reached / fired.
  std::size_t hit_count(const std::string& point) const;
  std::size_t fire_count(const std::string& point) const;

  /// True iff at least one point is currently armed (relaxed read; this is
  /// the whole cost of a fault point in an un-instrumented process).
  static bool any_armed();

 private:
  FaultInjector() = default;
  struct Impl;
  static Impl& impl();
};

/// Hot-path check used by instrumented call sites.
bool fault(const char* point);

/// Simulated-OOM guard: refuse a reservation of `n` elements above `limit`
/// with RESOURCE_EXHAUSTED. The `alloc.oversize` fault point inflates `n`
/// past any sane limit so tests can drive the refusal path.
Status check_allocation(std::size_t n, std::size_t limit, const char* what);

/// RAII arming for tests: arms a point on construction, disarms it on
/// destruction. Counted form only (the common case in the suite).
class ScopedFault {
 public:
  explicit ScopedFault(std::string point, std::size_t skip = 0,
                       std::size_t count = FaultInjector::kUnbounded)
      : point_(std::move(point)) {
    FaultInjector::instance().arm(point_, skip, count);
  }
  ~ScopedFault() { FaultInjector::instance().disarm(point_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  std::size_t fired() const {
    return FaultInjector::instance().fire_count(point_);
  }

 private:
  std::string point_;
};

}  // namespace gea::util
