#include "util/status.hpp"

namespace gea::util {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kParseError: return "PARSE_ERROR";
    case ErrorCode::kCorruptData: return "CORRUPT_DATA";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "?";
}

Status Status::error(ErrorCode code, std::string message) {
  Status st;
  st.code_ = code == ErrorCode::kOk ? ErrorCode::kInternal : code;
  st.message_ = std::move(message);
  return st;
}

Status& Status::with_context(std::string frame) {
  if (!is_ok()) context_.push_back(std::move(frame));
  return *this;
}

std::string Status::to_string() const {
  if (is_ok()) return "[OK]";
  std::string out = "[";
  out += error_code_name(code_);
  out += "] ";
  for (auto it = context_.rbegin(); it != context_.rend(); ++it) {
    out += *it;
    out += ": ";
  }
  out += message_;
  return out;
}

}  // namespace gea::util
