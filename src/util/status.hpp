// Structured error propagation for the robustness layer.
//
// Fallible operations that used to crash-or-garbage (CSV ingestion, corpus
// synthesis, model/scaler deserialization, pipeline assembly) return a
// `Status` or a `Result<T>` instead. A Status carries an error code, a
// human-readable message, and a context chain that callers extend as the
// error bubbles up, so a failure deep in a per-sample stage still names the
// stage, the sample, and the root cause. Conventions are documented in
// ROBUSTNESS.md.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace gea::util {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,     // caller passed something unusable
  kNotFound,            // missing file / missing entity
  kParseError,          // syntactically malformed input
  kCorruptData,         // well-formed but semantically impossible input
  kFailedPrecondition,  // object state does not permit the operation
  kResourceExhausted,   // refused an absurd allocation / over-budget request
  kInternal,            // invariant violation inside the library
  kUnavailable,         // transient refusal: queue full, no active model
  kDeadlineExceeded,    // request expired before it could be served
};

const char* error_code_name(ErrorCode code);

/// Value-semantic error descriptor. Default-constructed Status is OK.
class [[nodiscard]] Status {
 public:
  Status() = default;

  static Status ok() { return Status(); }
  static Status error(ErrorCode code, std::string message);

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return is_ok(); }

  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }
  const std::vector<std::string>& context() const { return context_; }

  /// Prepend a context frame (outermost frame first in to_string()).
  /// No-op on an OK status. Returns *this for chaining at return sites:
  ///   return st.with_context("read_features_csv");
  Status& with_context(std::string frame);

  /// "[CORRUPT_DATA] pipeline: synthesis: zero-node CFG" — code, then the
  /// context chain outermost-first, then the root message.
  std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
  std::vector<std::string> context_;  // innermost-first internally
};

/// Either a value or an error Status. Minimal expected<T, Status>:
/// value access on an error (or status access on a value) is a programming
/// bug and throws std::logic_error rather than returning garbage.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.is_ok()) {
      status_ = Status::error(ErrorCode::kInternal,
                              "Result constructed from an OK status");
    }
  }

  bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  const Status& status() const { return status_; }

  T& value() & { return require(); }
  const T& value() const& { return const_cast<Result*>(this)->require(); }
  T&& value() && { return std::move(require()); }

  T value_or(T fallback) && {
    return is_ok() ? std::move(*value_) : std::move(fallback);
  }

  /// Extend the error's context chain (no-op when holding a value).
  Result& with_context(std::string frame) {
    if (!is_ok()) status_.with_context(std::move(frame));
    return *this;
  }

 private:
  T& require() {
    if (!is_ok()) {
      throw std::logic_error("Result::value() on error: " + status_.to_string());
    }
    return *value_;
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace gea::util
