// Wall-clock stopwatch used to report crafting time (CT) columns.
#pragma once

#include <chrono>

namespace gea::util {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(clock::now() - start_).count();
  }

  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace gea::util
