// Deterministic random number generation.
//
// Every stochastic component in the library (program generation, weight
// initialization, dropout, train/test splitting, attack restarts) draws from
// an explicitly seeded Rng so that experiments are reproducible end to end.
// The engine is xoshiro256**, seeded via SplitMix64 so that small seed
// integers still produce well-mixed state.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace gea::util {

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Not thread-safe; give each thread (or each pipeline stage) its own
/// instance, typically via `split()`.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  // UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller.
  double normal();
  /// Normal with given mean and stddev.
  double normal(double mean, double stddev);
  /// Bernoulli trial.
  bool chance(double p);
  /// Geometric-ish positive count: 1 + floor(Exp(rate)). Always >= 1.
  int positive_geometric(double mean);

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& choice(const std::vector<T>& v) {
    if (v.empty()) throw std::invalid_argument("Rng::choice on empty vector");
    return v[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

  /// Fisher-Yates in-place shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for parallel or per-sample use).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace gea::util
