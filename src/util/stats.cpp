#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace gea::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

namespace {

/// Shared kernel for both median overloads: selects in place on `v`.
double median_of(std::vector<double>& v) {
  const std::size_t n = v.size();
  const std::size_t mid = n / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double hi = v[mid];
  if (n % 2 == 1) return hi;
  double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lo + hi) / 2.0;
}

}  // namespace

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  return median_of(v);
}

double median(std::span<const double> xs, std::vector<double>& scratch) {
  if (xs.empty()) return 0.0;
  scratch.assign(xs.begin(), xs.end());
  return median_of(scratch);
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

Summary5 summary5(std::span<const double> xs) {
  Summary5 s;
  if (xs.empty()) return s;
  s.min = min_of(xs);
  s.max = max_of(xs);
  s.median = median(xs);
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  return s;
}

Summary5 summary5(std::span<const double> xs, std::vector<double>& scratch) {
  Summary5 s;
  if (xs.empty()) return s;
  s.min = min_of(xs);
  s.max = max_of(xs);
  s.median = median(xs, scratch);
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  return s;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

std::string LatencySummary::to_string() const {
  std::ostringstream ss;
  ss << "n=" << count << " mean=" << mean << " p50=" << p50 << " p95=" << p95
     << " p99=" << p99 << " max=" << max;
  return ss.str();
}

double LatencyRecorder::at_percentile(double p) const {
  return percentile(samples_, p);
}

LatencySummary LatencyRecorder::summarize() const {
  LatencySummary s;
  s.count = samples_.size();
  if (samples_.empty()) return s;
  s.mean = mean(samples_);
  s.p50 = at_percentile(50.0);
  s.p95 = at_percentile(95.0);
  s.p99 = at_percentile(99.0);
  s.max = max_of(samples_);
  return s;
}

std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(ru.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace gea::util
