#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace gea::util {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream ss;
    ss << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      ss << ' ' << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    ss << '\n';
    return ss.str();
  };
  std::ostringstream out;
  out << render_row(header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) out << render_row(row);
  return out.str();
}

std::string AsciiTable::fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string AsciiTable::fmt_int(long long v) { return std::to_string(v); }

std::string AsciiTable::fmt_pct(double v, int precision) {
  return fmt(v * 100.0, precision) + "%";
}

}  // namespace gea::util
