// Parallel execution layer: a fixed-size thread pool plus a deterministic
// chunked parallel_for.
//
// Two hard guarantees, relied on by every caller (corpus featurization,
// attack/GEA harnesses, the parallel trainer):
//
//  1. **Determinism.** parallel_for assigns work by *index*, never by
//     arrival order. Callers write results into pre-sized output slots and
//     derive any per-item randomness from `mix_seed(master, index)` —
//     a counter-based split of the master seed, never a shared Rng — so
//     results are bitwise identical to the serial path regardless of thread
//     count or scheduling.
//
//  2. **Error propagation.** A worker's Status failure or uncaught
//     exception is captured per chunk and surfaced as the return value;
//     when several chunks fail, the lowest-numbered chunk wins, so the
//     reported error is also deterministic. Nothing is lost and nothing
//     deadlocks: the calling thread participates in the chunk loop, so
//     parallel_for finishes even when every pool worker is busy.
//
// Thread-count resolution (ParallelOptions::threads == 0, the default):
// the GEA_THREADS environment variable if set, else hardware_concurrency.
// `GEA_THREADS=1` (or threads = 1) restores the serial path everywhere.
// While any fault-injection point is armed, auto mode also degrades to
// serial: counted fault plans (skip N, fire M) are defined in terms of hit
// order, which only the serial path pins down. Explicitly requesting
// threads > 1 overrides this (used to test in-worker fault quarantine).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.hpp"

namespace gea::obs {
class Counter;
class Gauge;
}  // namespace gea::obs

namespace gea::util {

/// Resolved "auto" thread count: GEA_THREADS if set to a positive integer
/// (clamped to [1, 256]), else std::thread::hardware_concurrency, never 0.
/// Read once per process (first call wins).
std::size_t default_thread_count();

/// Shared `--threads N` CLI parsing for examples, benches, and the serve
/// knobs (previously duplicated per binary). Scans argv for "--threads N"
/// and returns N; with no flag present returns `fallback` (0 = "auto",
/// which downstream resolve_threads/default_thread_count turn into
/// GEA_THREADS or hardware concurrency). Returns fallback and logs a
/// warning on a malformed value.
std::size_t threads_from_cli(int argc, char** argv, std::size_t fallback = 0);

/// Counter-based seed split (SplitMix64 over seed XOR a stream constant):
/// statistically independent streams for (master seed, index) pairs without
/// any shared-Rng sequencing. The building block of the determinism
/// contract — one Rng per index, pre-seeded, never handed across items.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream);

/// Fixed-size FIFO thread pool. Destruction drains the queue: tasks already
/// submitted still run, then workers join — shutdown with pending tasks
/// completes instead of hanging or leaking work.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task. Throws std::logic_error once shutdown has begun.
  void submit(std::function<void()> task);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  /// Process-wide pool, sized by default_thread_count(), created on first
  /// use. parallel_for dispatches here so hot loops never pay thread
  /// creation per call.
  static ThreadPool& shared();

  /// True when the calling thread is a pool worker (any pool). Nested
  /// parallel_for calls detect this and run inline instead of deadlocking
  /// on their own pool.
  static bool on_worker_thread();

 private:
  void worker_main();

  // Registry handles (obs::MetricsRegistry::global()), resolved once in the
  // constructor: "threadpool.tasks_executed_total" and
  // "threadpool.queue_depth". Shared across pools by design — the gauge
  // tracks the most recent submit/dequeue on any pool, the counter sums.
  obs::Counter* tasks_executed_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;        // wakes workers
  std::condition_variable idle_cv_;   // wakes wait_idle
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

struct ParallelOptions {
  /// 0 = auto (GEA_THREADS / hardware_concurrency; serial while faults are
  /// armed). 1 = serial on the calling thread. N = at most N concurrent
  /// chunks.
  std::size_t threads = 0;
  /// Context frame for propagated errors ("featurize", "attack harness"...).
  const char* label = "parallel_for";
};

/// Resolve ParallelOptions::threads per the policy above.
std::size_t resolve_threads(const ParallelOptions& opts);

/// Run body(begin, end, chunk) over [0, n) split into `num_chunks`
/// contiguous ranges (num_chunks == 0 chooses the resolved thread count).
/// Chunk boundaries depend only on (n, num_chunks) — pass an explicit
/// num_chunks when the *reduction structure* must be thread-count
/// invariant (see ml::train). At most `threads` chunks run concurrently;
/// the calling thread participates. Returns the first (lowest-chunk)
/// failure, with uncaught exceptions converted to INTERNAL Statuses.
util::Status parallel_for_ranges(
    std::size_t n, std::size_t num_chunks,
    const std::function<util::Status(std::size_t begin, std::size_t end,
                                     std::size_t chunk)>& body,
    const ParallelOptions& opts = {});

/// Per-index convenience: body(i) for every i in [0, n), chunked statically
/// over the resolved thread count.
util::Status parallel_for(std::size_t n,
                          const std::function<util::Status(std::size_t)>& body,
                          const ParallelOptions& opts = {});

}  // namespace gea::util
