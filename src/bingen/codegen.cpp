#include "bingen/codegen.hpp"

namespace gea::bingen {

using isa::Opcode;
using isa::Syscall;

int CodeGen::fresh_reg() {
  const int r = next_reg_;
  next_reg_ = next_reg_ == 7 ? 1 : next_reg_ + 1;
  return r;
}

int CodeGen::counter_reg() const { return 8 + loop_depth_ % 5; }

void CodeGen::straight_run(int len) {
  for (int i = 0; i < len; ++i) {
    const int rd = fresh_reg();
    switch (rng_.uniform_int(0, 7)) {
      case 0: b_.movi(rd, rng_.uniform_int(0, 255)); break;
      case 1: b_.mov(rd, fresh_reg()); break;
      case 2: b_.alu(Opcode::kAdd, rd, fresh_reg()); break;
      case 3: b_.alu(Opcode::kXor, rd, fresh_reg()); break;
      case 4: b_.alui(Opcode::kAddImm, rd, rng_.uniform_int(1, 64)); break;
      case 5: b_.alu(Opcode::kAnd, rd, fresh_reg()); break;
      case 6: b_.load(rd, fresh_reg(), rng_.uniform_int(0, 63)); break;
      case 7: b_.store(rd, rng_.uniform_int(0, 63), fresh_reg()); break;
    }
  }
}

void CodeGen::syscall_batch(std::initializer_list<Syscall> calls) {
  for (Syscall s : calls) {
    const int arg = fresh_reg();
    b_.movi(arg, rng_.uniform_int(0, 1023));
    b_.syscall(s, arg);
  }
}

void CodeGen::syscall_batch_random(int count) {
  static constexpr Syscall kPool[] = {
      Syscall::kOpen, Syscall::kRead,  Syscall::kWrite, Syscall::kSocket,
      Syscall::kSend, Syscall::kSleep, Syscall::kTime,
  };
  for (int i = 0; i < count; ++i) {
    const int arg = fresh_reg();
    b_.movi(arg, rng_.uniform_int(0, 1023));
    b_.syscall(kPool[rng_.uniform_int(0, 6)], arg);
  }
}

}  // namespace gea::bingen
