// Synthetic IoT software families.
//
// The paper's corpus is 2,281 real IoT malware samples (CSoNet'18 dataset;
// predominantly Mirai/Gafgyt/Tsunami lineages) and 276 benign binaries from
// OpenWRT firmware. We cannot redistribute malware, so each family here is
// a *program template* whose structural envelope mimics its namesake:
//
//  benign:
//   - Utility   — OpenWRT-style CLI tools: argument checks, a read loop,
//                 small dispatch, mostly shallow and linear. Small CFGs.
//   - Daemon    — long-running status daemons: one input-driven main loop
//                 with a modest dispatch and a few helpers.
//   - NetTool   — network clients: connect/send/recv sequences with
//                 moderate branching.
//  malicious:
//   - MiraiLike — scanner + dictionary attack + C&C dispatch over many
//                 attack helper functions. Large, many-component CFGs.
//   - GafgytLike— flooder set behind a simple command switch.
//   - TsunamiLike— IRC-bot style: one deep command-parse loop.
//
// Additionally, any malicious sample may be emitted as a *packed stub*
// (UPX-style): a single straight-line block that unpacks-then-jumps, which
// collapses the CFG to one node — the paper's Table V minimum-size target
// (1 node) is exactly such a sample.
//
// Calibration targets (paper, §IV): benign CFG sizes spanning 2..455 nodes
// with median ≈24; malicious sizes spanning 1..367 with median ≈64.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "isa/program.hpp"
#include "util/rng.hpp"

namespace gea::bingen {

enum class Family {
  kBenignUtility,
  kBenignDaemon,
  kBenignNetTool,
  kMiraiLike,
  kGafgytLike,
  kTsunamiLike,
};

bool is_malicious(Family f);
const char* family_name(Family f);
/// Inverse of family_name; nullopt for unknown names (hostile CSV input).
std::optional<Family> family_from_name(std::string_view name);
std::vector<Family> benign_families();
std::vector<Family> malicious_families();
/// Every family, in enum order. The authoritative count for validation
/// (shard records, label schemas) is all_families().size() == family_count().
std::vector<Family> all_families();
std::size_t family_count();

struct GenOptions {
  /// Multiplies the family's target CFG size (1.0 = calibrated default).
  double size_scale = 1.0;
  /// Probability that a malicious sample is emitted as a packed stub.
  double packed_prob = 0.02;
};

/// Generate one program of the given family. Deterministic given the Rng
/// state. The result always passes Program::validate() and terminates under
/// the default interpreter options.
isa::Program generate_program(Family f, util::Rng& rng,
                              const GenOptions& opts = {});

/// The target number of CFG nodes drawn for a sample of `f` (exposed for
/// tests and calibration tooling).
int draw_target_nodes(Family f, util::Rng& rng, const GenOptions& opts = {});

}  // namespace gea::bingen
