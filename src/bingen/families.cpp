#include "bingen/families.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "bingen/codegen.hpp"

namespace gea::bingen {

using isa::Opcode;
using isa::ProgramBuilder;
using isa::Syscall;

bool is_malicious(Family f) {
  switch (f) {
    case Family::kBenignUtility:
    case Family::kBenignDaemon:
    case Family::kBenignNetTool:
      return false;
    case Family::kMiraiLike:
    case Family::kGafgytLike:
    case Family::kTsunamiLike:
      return true;
  }
  return false;
}

const char* family_name(Family f) {
  switch (f) {
    case Family::kBenignUtility: return "benign-utility";
    case Family::kBenignDaemon: return "benign-daemon";
    case Family::kBenignNetTool: return "benign-nettool";
    case Family::kMiraiLike: return "mirai-like";
    case Family::kGafgytLike: return "gafgyt-like";
    case Family::kTsunamiLike: return "tsunami-like";
  }
  return "?";
}

std::optional<Family> family_from_name(std::string_view name) {
  for (Family f : {Family::kBenignUtility, Family::kBenignDaemon,
                   Family::kBenignNetTool, Family::kMiraiLike,
                   Family::kGafgytLike, Family::kTsunamiLike}) {
    if (name == family_name(f)) return f;
  }
  return std::nullopt;
}

std::vector<Family> benign_families() {
  return {Family::kBenignUtility, Family::kBenignDaemon, Family::kBenignNetTool};
}

std::vector<Family> malicious_families() {
  return {Family::kMiraiLike, Family::kGafgytLike, Family::kTsunamiLike};
}

std::vector<Family> all_families() {
  return {Family::kBenignUtility, Family::kBenignDaemon,
          Family::kBenignNetTool, Family::kMiraiLike,
          Family::kGafgytLike,    Family::kTsunamiLike};
}

std::size_t family_count() { return all_families().size(); }

namespace {

/// Size envelope per family: lognormal around `median` clamped to
/// [min, max]. Calibrated so the corpus reproduces the node-count anchors
/// the paper reports (benign 2/24/455; malicious 1/64/367).
struct SizeEnvelope {
  double median;
  double sigma;
  int min_nodes;
  int max_nodes;
  double tail_prob;  // chance of a uniform draw from the upper size range
};

SizeEnvelope size_envelope(Family f) {
  switch (f) {
    case Family::kBenignUtility: return {16.0, 0.75, 2, 160, 0.03};
    case Family::kBenignDaemon: return {40.0, 0.85, 6, 455, 0.16};
    case Family::kBenignNetTool: return {28.0, 0.80, 4, 300, 0.04};
    case Family::kMiraiLike: return {96.0, 0.55, 24, 367, 0.03};
    case Family::kGafgytLike: return {48.0, 0.50, 16, 260, 0.02};
    case Family::kTsunamiLike: return {64.0, 0.55, 18, 320, 0.02};
  }
  return {24.0, 0.8, 2, 400, 0.02};
}

/// Structural style knobs distinguishing classes beyond raw size.
struct ShapeProfile {
  double p_if;
  double p_loop;
  double p_input_loop;
  double p_switch;
  int max_depth;
  int min_cases, max_cases;
  int straight_lo, straight_hi;
  int loop_iters_lo, loop_iters_hi;
};

ShapeProfile benign_profile() {
  // Shallow, sequence-heavy code: utilities do a thing and exit.
  return {.p_if = 0.34, .p_loop = 0.09, .p_input_loop = 0.03, .p_switch = 0.08,
          .max_depth = 3, .min_cases = 2, .max_cases = 4,
          .straight_lo = 3, .straight_hi = 10,
          .loop_iters_lo = 2, .loop_iters_hi = 6};
}

/// Gafgyt-lineage bots are structurally plain — a couple of flood loops
/// behind a small dispatch, little nesting. They dominate real IoT corpora
/// and sit close to the benign boundary, which is precisely why the
/// paper's GEA flips most malware with a modest benign graft.
ShapeProfile gafgyt_profile() {
  return {.p_if = 0.28, .p_loop = 0.22, .p_input_loop = 0.07, .p_switch = 0.10,
          .max_depth = 3, .min_cases = 2, .max_cases = 5,
          .straight_lo = 3, .straight_hi = 9,
          .loop_iters_lo = 2, .loop_iters_hi = 5};
}

ShapeProfile malware_profile() {
  // Dispatch- and loop-heavy code: command switches, flood loops, scans.
  return {.p_if = 0.18, .p_loop = 0.36, .p_input_loop = 0.12, .p_switch = 0.16,
          .max_depth = 4, .min_cases = 4, .max_cases = 10,
          .straight_lo = 2, .straight_hi = 6,
          .loop_iters_lo = 2, .loop_iters_hi = 5};
}

/// Recursively emit a structured body consuming ~`budget` basic blocks.
void emit_body(CodeGen& cg, const ShapeProfile& prof, int budget, int depth) {
  auto& rng = cg.rng();
  while (budget > 0) {
    const double r = rng.uniform();
    if (depth < prof.max_depth && budget >= 5 && r < prof.p_if) {
      budget -= 4;
      const int sub = std::min(budget, budget / 2 + 1);
      budget -= sub;
      cg.if_else(sub, [&](int arm_budget) {
        cg.straight_run(static_cast<int>(rng.uniform_int(1, 3)));
        emit_body(cg, prof, arm_budget, depth + 1);
      });
    } else if (depth < prof.max_depth && budget >= 4 &&
               r < prof.p_if + prof.p_loop) {
      budget -= 3;
      const int sub = std::min(budget, budget / 2);
      budget -= sub;
      cg.counted_loop(
          static_cast<int>(rng.uniform_int(prof.loop_iters_lo, prof.loop_iters_hi)),
          sub, [&](int body_budget) {
            cg.straight_run(static_cast<int>(rng.uniform_int(1, 4)));
            emit_body(cg, prof, body_budget, depth + 1);
          });
    } else if (depth < prof.max_depth && budget >= 5 &&
               r < prof.p_if + prof.p_loop + prof.p_input_loop) {
      budget -= 4;
      const int sub = std::min(budget, budget / 2);
      budget -= sub;
      cg.input_loop(rng.chance(0.5) ? Syscall::kRecv : Syscall::kRead, sub,
                    [&](int body_budget) {
                      cg.syscall_batch_random(1);
                      emit_body(cg, prof, body_budget, depth + 1);
                    });
    } else if (depth < prof.max_depth && budget >= 8 &&
               r < prof.p_if + prof.p_loop + prof.p_input_loop + prof.p_switch) {
      const int hi_cases =
          std::min(prof.max_cases, std::max(2, budget / 3));
      const int lo_cases = std::min(prof.min_cases, hi_cases);
      const int cases = static_cast<int>(rng.uniform_int(lo_cases, hi_cases));
      budget -= 2 + 2 * cases;
      const int sub = std::max(0, std::min(budget, budget / 2));
      budget -= sub;
      cg.dispatch_switch(Syscall::kRecv, cases, sub, [&](int, int case_budget) {
        cg.straight_run(static_cast<int>(rng.uniform_int(1, 3)));
        emit_body(cg, prof, case_budget, depth + 1);
      });
    } else {
      // Straight-line filler: costs one block's worth of work, and
      // occasionally a syscall batch.
      cg.straight_run(static_cast<int>(
          rng.uniform_int(prof.straight_lo, prof.straight_hi)));
      if (rng.chance(0.3)) cg.syscall_batch_random(1);
      budget -= 1;
    }
  }
}

/// A packed (UPX-style) stub: one straight-line block that "unpacks" and
/// exits — the whole CFG collapses to a single node.
isa::Program packed_stub(util::Rng& rng) {
  ProgramBuilder b;
  b.begin_function("main");
  const int len = static_cast<int>(rng.uniform_int(6, 24));
  for (int i = 0; i < len; ++i) {
    const int r = 1 + static_cast<int>(rng.uniform_int(0, 11));
    switch (rng.uniform_int(0, 2)) {
      case 0: b.movi(r, rng.uniform_int(0, 0xffff)); break;
      case 1: b.alui(Opcode::kAddImm, r, rng.uniform_int(1, 255)); break;
      case 2: b.alu(Opcode::kXor, r, 1 + static_cast<int>(rng.uniform_int(0, 11))); break;
    }
  }
  b.syscall(Syscall::kExec, 1);  // tail-jump into the unpacked image
  b.halt();
  b.end_function();
  return b.build();
}

struct HelperSpec {
  std::string name;
  int budget;
};

/// Emit `main` calling a set of helpers, then the helpers themselves.
/// `emit_main_body` receives the CodeGen and the helper names.
template <typename MainFn, typename HelperFn>
isa::Program emit_program(util::Rng& rng, const std::vector<HelperSpec>& helpers,
                          MainFn&& emit_main_body, HelperFn&& emit_helper_body) {
  ProgramBuilder b;
  CodeGen cg(b, rng);
  b.begin_function("main");
  emit_main_body(cg);
  b.halt();
  b.end_function();
  for (const auto& h : helpers) {
    b.begin_function(h.name);
    emit_helper_body(cg, h);
    b.ret();
    b.end_function();
  }
  return b.build();
}

/// The smallest real benign binaries (init stubs) are a single counted loop
/// and an exit: exactly two basic blocks, the paper's benign minimum.
isa::Program tiny_benign_stub(util::Rng& rng) {
  ProgramBuilder b;
  b.begin_function("main");
  const int top = b.new_label();
  b.bind(top);  // the loop starts at instruction 0: exactly two blocks
  b.syscall(rng.chance(0.5) ? Syscall::kRead : Syscall::kRecv, 0);
  b.cmpi(0, 0);
  b.jump(Opcode::kJne, top);
  b.halt();
  b.end_function();
  return b.build();
}

/// Busybox-style multi-applet binary: the entry block dispatches (on argv,
/// modelled as one input read) to one of several independent applet bodies,
/// all of which converge on a shared exit. This is the dominant shape of
/// real embedded benign userland — one binary, many tools — and it matters
/// for GEA: a spliced CFG (entry guard fanning into two independent
/// subgraphs joining at one exit) is *structurally a multi-applet binary*,
/// which is why grafting benign code reads as benign to a CFG classifier.
isa::Program multiapplet_benign(util::Rng& rng, int target_nodes) {
  ProgramBuilder b;
  CodeGen cg(b, rng);
  const ShapeProfile prof = benign_profile();
  // Applet count varies widely in real firmware: a few giant tools or many
  // tiny ones. Low counts matter for GEA realism — a spliced binary looks
  // like a 2-applet build with one large applet per side.
  const int applets = static_cast<int>(
      rng.uniform_int(2, std::clamp(target_nodes / 8, 2, 14)));
  const int per_applet = std::max(2, (target_nodes - 2 * applets) / applets);

  b.begin_function("main");
  b.syscall(Syscall::kRead, 0);  // applet selector (argv[0] in real busybox)
  const int l_exit = b.new_label();
  for (int a = 0; a < applets; ++a) {
    const int l_next = b.new_label();
    b.cmpi(0, a + 1);
    b.jump(Opcode::kJne, l_next);
    emit_body(cg, prof, per_applet, 1);
    cg.syscall_batch({Syscall::kWrite});
    b.jump(Opcode::kJmp, l_exit);
    b.bind(l_next);
  }
  b.nop();  // unknown applet: fall through to usage/exit
  b.bind(l_exit);
  b.halt();
  b.end_function();
  return b.build();
}

isa::Program generate_benign(Family f, util::Rng& rng, int target_nodes) {
  if (target_nodes <= 2) return tiny_benign_stub(rng);
  // Multi-applet binaries dominate embedded benign userland.
  const double multiapplet_prob = f == Family::kBenignUtility ? 0.75
                                  : f == Family::kBenignDaemon ? 0.35
                                                               : 0.45;
  if (target_nodes >= 8 && rng.chance(multiapplet_prob)) {
    return multiapplet_benign(rng, target_nodes);
  }
  // A few percent of real "benign" router binaries are structurally
  // malware-like (busy daemons with big command dispatchers); this overlap
  // is what keeps the detector's accuracy at the paper's ~97% rather than
  // 100%, and keeps decision margins realistic for the GEA sweeps.
  const ShapeProfile prof = benign_profile();
  // Benign userland decomposes into many small library helpers — large
  // benign binaries are multi-component CFG forests. (Malware concentrates
  // its code in a handful of attack primitives instead; the contrast is a
  // class signature that survives graph merging, which is what lets a big
  // benign graft drag a spliced sample across the boundary.)
  // The size envelope targets the *main-function* CFG (the paper measures
  // function graphs), so the whole budget goes to main; helpers are small
  // library routines on top.
  const int n_helpers =
      target_nodes < 12
          ? 0
          : static_cast<int>(rng.uniform_int(
                std::min(2, target_nodes / 12),
                std::clamp(target_nodes / 10, 2, 20)));
  std::vector<HelperSpec> helpers;
  for (int i = 0; i < n_helpers; ++i) {
    helpers.push_back({"helper_" + std::to_string(i),
                       static_cast<int>(rng.uniform_int(2, 7))});
  }
  const int main_budget = std::max(1, target_nodes);

  return emit_program(
      rng, helpers,
      [&](CodeGen& cg) {
        auto& b = cg.builder();
        switch (f) {
          case Family::kBenignUtility: {
            // argc-style check, then body, then write-and-exit.
            const int r = cg.fresh_reg();
            b.movi(r, static_cast<std::int64_t>(rng.uniform_int(0, 3)));
            b.cmpi(r, 1);
            const int l_ok = b.new_label();
            b.jump(Opcode::kJge, l_ok);
            cg.syscall_batch({Syscall::kWrite});
            b.halt();  // usage error path
            b.bind(l_ok);
            emit_body(cg, prof, std::max(1, main_budget - 4), 0);
            cg.syscall_batch({Syscall::kWrite});
            break;
          }
          case Family::kBenignDaemon: {
            cg.syscall_batch({Syscall::kOpen, Syscall::kTime});
            cg.input_loop(Syscall::kRead, std::max(1, main_budget - 5),
                          [&](int body_budget) {
                            emit_body(cg, prof, body_budget, 1);
                            cg.syscall_batch({Syscall::kWrite, Syscall::kSleep});
                          });
            break;
          }
          case Family::kBenignNetTool: {
            cg.syscall_batch({Syscall::kSocket, Syscall::kConnect});
            emit_body(cg, prof, std::max(1, main_budget - 4), 0);
            cg.syscall_batch({Syscall::kSend, Syscall::kRecv, Syscall::kWrite});
            break;
          }
          default:
            throw std::logic_error("generate_benign: not a benign family");
        }
        for (const auto& h : helpers) b.call(h.name);
      },
      [&](CodeGen& cg, const HelperSpec& h) {
        emit_body(cg, prof, h.budget, 1);
      });
}

/// `masquerade` marks a benign-origin sample emitted in a malicious shape
/// (see generate_program); those keep the generic malware profile so that
/// wiring the dedicated Gafgyt shape below never perturbs the benign
/// families' bitstreams.
isa::Program generate_malicious(Family f, util::Rng& rng, int target_nodes,
                                bool masquerade = false) {
  const ShapeProfile prof = (f == Family::kGafgytLike && !masquerade)
                                ? gafgyt_profile()
                                : malware_profile();
  // Botnet code is function-rich: one helper per attack primitive.
  static const char* kAttackNames[] = {
      "attack_udp_flood", "attack_tcp_syn", "attack_tcp_ack", "attack_http",
      "attack_gre",       "attack_dns",     "attack_vse",     "attack_stomp",
      "scanner_loop",     "killer_loop",    "rand_ip",        "checksum",
      "dict_next",        "report_cnc",     "hide_process",   "watchdog",
  };
  int max_helpers;
  switch (f) {
    case Family::kMiraiLike: max_helpers = 16; break;
    case Family::kTsunamiLike: max_helpers = 10; break;
    default: max_helpers = 7; break;
  }
  // Main carries the drawn size (the paper's node counts are main-function
  // graphs); attack-primitive helpers are compact flood loops.
  const int n_helpers = std::clamp(
      target_nodes / (f == Family::kGafgytLike ? 22 : 14), 2, max_helpers);
  std::vector<HelperSpec> helpers;
  const int main_share = std::max(2, target_nodes - 6);
  for (int i = 0; i < n_helpers; ++i) {
    helpers.push_back({kAttackNames[i % 16],
                       static_cast<int>(rng.uniform_int(3, 9))});
  }

  return emit_program(
      rng, helpers,
      [&](CodeGen& cg) {
        auto& b = cg.builder();
        // Common bot prologue: hide, then connect to C&C. Gafgyt-style
        // code skips the daemonization dance.
        if (f == Family::kGafgytLike) {
          cg.syscall_batch({Syscall::kSocket});
        } else {
          cg.syscall_batch({Syscall::kFork, Syscall::kSocket, Syscall::kConnect});
        }
        switch (f) {
          case Family::kMiraiLike: {
            // killer + scanner upfront, then C&C command dispatch.
            if (n_helpers > 9) b.call(helpers[9].name);  // killer_loop
            if (n_helpers > 8) b.call(helpers[8].name);  // scanner_loop
            cg.input_loop(Syscall::kRecv, 2, [&](int) {
              cg.dispatch_switch(Syscall::kRecv,
                                 std::min<int>(n_helpers, 8), 0,
                                 [&](int c, int) {
                                   b.call(helpers[static_cast<std::size_t>(c) %
                                                  helpers.size()].name);
                                 });
            });
            emit_body(cg, prof, std::max(1, main_share - 10), 0);
            break;
          }
          case Family::kGafgytLike: {
            cg.dispatch_switch(Syscall::kRecv, std::min<int>(n_helpers, 6), 0,
                               [&](int c, int) {
                                 b.call(helpers[static_cast<std::size_t>(c) %
                                                helpers.size()].name);
                               });
            emit_body(cg, prof, std::max(1, main_share - 6), 0);
            break;
          }
          case Family::kTsunamiLike: {
            // IRC-style parse loop: nested dispatch inside the recv loop.
            cg.input_loop(Syscall::kRecv, std::max(1, main_share - 4),
                          [&](int body_budget) {
                            cg.dispatch_switch(
                                Syscall::kRecv, std::min<int>(n_helpers, 5),
                                body_budget, [&](int c, int case_budget) {
                                  emit_body(cg, prof, case_budget, 2);
                                  b.call(helpers[static_cast<std::size_t>(c) %
                                                 helpers.size()].name);
                                });
                          });
            break;
          }
          default:
            throw std::logic_error("generate_malicious: not a malicious family");
        }
        cg.syscall_batch({Syscall::kSend});
      },
      [&](CodeGen& cg, const HelperSpec& h) {
        auto& b = cg.builder();
        // Attack primitives are flood loops: counted loop of send batches.
        cg.counted_loop(static_cast<int>(rng.uniform_int(2, 5)),
                        std::max(1, h.budget - 3), [&](int body_budget) {
                          cg.syscall_batch({Syscall::kSend});
                          emit_body(cg, prof, body_budget, 1);
                        });
        b.syscall(Syscall::kSend, 0);
      });
}

}  // namespace

namespace {

/// Basic-block count of a program (same leader rule as cfg::extract_cfg,
/// re-derived locally to keep bingen below cfg in the layering). Used by
/// the closed-loop size calibration.
int count_basic_blocks(const isa::Program& p) {
  const auto& code = p.code();
  std::vector<bool> leader(code.size(), false);
  for (const auto& f : p.functions()) {
    leader[f.begin] = true;
    for (std::uint32_t i = f.begin; i < f.end; ++i) {
      const auto op = code[i].op;
      if (isa::is_jump(op)) {
        leader[code[i].target] = true;
        if (i + 1 < f.end) leader[i + 1] = true;
      } else if (op == Opcode::kRet || op == Opcode::kHalt) {
        if (i + 1 < f.end) leader[i + 1] = true;
      }
    }
  }
  int n = 0;
  for (bool b : leader) n += b ? 1 : 0;
  return n;
}

}  // namespace

int draw_target_nodes(Family f, util::Rng& rng, const GenOptions& opts) {
  const SizeEnvelope env = size_envelope(f);
  // Heavy tail: real corpora (OpenWRT images, Mirai builds) contain a few
  // very large binaries; a pure lognormal around the median almost never
  // reaches the observed maxima (455 benign / 367 malicious nodes), so a
  // small fraction of draws is taken uniformly from the upper range.
  if (rng.chance(env.tail_prob)) {
    return static_cast<int>(rng.uniform_int(env.max_nodes / 2, env.max_nodes));
  }
  const double x = std::exp(rng.normal(std::log(env.median * opts.size_scale),
                                       env.sigma));
  return std::clamp(static_cast<int>(std::lround(x)), env.min_nodes,
                    env.max_nodes);
}

isa::Program generate_program(Family f, util::Rng& rng, const GenOptions& opts) {
  if (is_malicious(f) && rng.chance(opts.packed_prob)) {
    return packed_stub(rng);
  }
  const int target = draw_target_nodes(f, rng, opts);
  // Structural masquerading — the irreducible error a CFG-only detector
  // faces. A slice of small malware is built exactly like a benign tool
  // (downloaders, droppers: the behaviour is the only tell, and CFG
  // features cannot see it), and a slice of small benign software is built
  // like a bot (P2P clients, monitoring agents). This is what pins the
  // detector near the paper's 97% rather than 100%, and what gives
  // malware samples the realistic decision margins the GEA sweeps probe.
  // Large binaries never masquerade: a firmware image is unmistakable.
  bool emit_malicious_shape = is_malicious(f);
  if (is_malicious(f) && target < 110 && rng.chance(0.03)) {
    emit_malicious_shape = false;
  } else if (!is_malicious(f) && target < 90 && rng.chance(0.02)) {
    emit_malicious_shape = true;
  }
  // The structured emitter's block-budget accounting is approximate (deep
  // nesting burns budget without emitting blocks), so generation is closed
  // loop: regenerate with a corrected budget until the block count lands
  // within a tolerance band around the drawn target.
  int budget = target;
  isa::Program best;
  int best_err = -1;
  for (int attempt = 0; attempt < 4; ++attempt) {
    isa::Program p =
        emit_malicious_shape
            ? generate_malicious(is_malicious(f) ? f : Family::kGafgytLike, rng,
                                 budget, /*masquerade=*/!is_malicious(f))
            : generate_benign(
                  is_malicious(f) ? Family::kBenignUtility : f, rng, budget);
    const int actual = count_basic_blocks(p);
    const int err = std::abs(actual - target);
    if (best_err < 0 || err < best_err) {
      best_err = err;
      best = std::move(p);
    }
    if (actual >= static_cast<int>(0.75 * target) &&
        actual <= static_cast<int>(1.35 * target) + 1) {
      break;
    }
    const double ratio =
        actual > 0 ? static_cast<double>(target) / actual : 2.0;
    budget = std::clamp(static_cast<int>(std::lround(budget * ratio)), 1,
                        8 * std::max(1, target));
  }
  // Single-node binaries exist only on the malicious side (packed stubs);
  // the paper's smallest benign CFG has two nodes.
  if (!is_malicious(f) && count_basic_blocks(best) < 2) {
    return tiny_benign_stub(rng);
  }
  return best;
}

}  // namespace gea::bingen
