// Structured-code emission helpers.
//
// These compose mini-ISA control-flow idioms (straight-line runs, if/else,
// counted loops, input-driven loops, dispatch switches, syscall batches)
// into terminating programs. Generators consume a *block budget*: each
// construct spends roughly the number of basic blocks it will contribute to
// the CFG, which lets family templates target a CFG size distribution.
//
// Register discipline: r0 is the syscall-return / result register;
// r1-r7 are scratch, allocated round-robin; r8-r12 are loop counters,
// assigned by nesting depth so an inner construct can never clobber an
// enclosing loop's counter (which would produce non-terminating programs);
// r13-r15 are never touched (r15 is reserved for the GEA guard).
#pragma once

#include <cstdint>

#include "isa/program.hpp"
#include "util/rng.hpp"

namespace gea::bingen {

/// Emission context threading the builder, randomness and register cursor.
class CodeGen {
 public:
  CodeGen(isa::ProgramBuilder& builder, util::Rng& rng)
      : b_(builder), rng_(rng) {}

  isa::ProgramBuilder& builder() { return b_; }
  util::Rng& rng() { return rng_; }

  /// Next scratch register (r1..r7, round-robin).
  int fresh_reg();

  /// `len` random ALU / mov / load / store instructions; no control flow.
  void straight_run(int len);

  /// cmpi + je/jne diamond. Spends ~4 blocks plus the bodies'.
  /// `budget` is split between the two arms; bodies recurse via body_fn.
  template <typename BodyFn>
  void if_else(int budget, BodyFn&& body_fn);

  /// Counted loop with `iters` iterations (kept small so the interpreter
  /// terminates quickly). Spends ~3 blocks plus the body's.
  template <typename BodyFn>
  void counted_loop(int iters, int budget, BodyFn&& body_fn);

  /// Loop driven by an input syscall: `while (recv() != 0) body;`
  /// Terminates because the interpreter's input stream contains a zero.
  template <typename BodyFn>
  void input_loop(isa::Syscall source, int budget, BodyFn&& body_fn);

  /// Dispatch switch over `cases` compare-and-jump cases on an input value.
  template <typename CaseFn>
  void dispatch_switch(isa::Syscall source, int cases, int budget,
                       CaseFn&& case_fn);

  /// A batch of `count` syscalls with small argument setup.
  void syscall_batch(std::initializer_list<isa::Syscall> calls);
  void syscall_batch_random(int count);

 private:
  /// Loop-counter register for the current nesting level (r8..r12).
  int counter_reg() const;

  isa::ProgramBuilder& b_;
  util::Rng& rng_;
  int next_reg_ = 1;
  int loop_depth_ = 0;
};

// ---------------------------------------------------------------------------
// Template implementations.

template <typename BodyFn>
void CodeGen::if_else(int budget, BodyFn&& body_fn) {
  const int r = fresh_reg();
  b_.cmpi(r, rng_.uniform_int(0, 8));
  const int l_else = b_.new_label();
  const int l_end = b_.new_label();
  b_.jump(rng_.chance(0.5) ? isa::Opcode::kJe : isa::Opcode::kJle, l_else);
  body_fn(budget / 2);
  b_.jump(isa::Opcode::kJmp, l_end);
  b_.bind(l_else);
  body_fn(budget - budget / 2);
  b_.bind(l_end);
  b_.nop();
}

template <typename BodyFn>
void CodeGen::counted_loop(int iters, int budget, BodyFn&& body_fn) {
  const int counter = counter_reg();
  ++loop_depth_;
  b_.movi(counter, 0);
  const int l_top = b_.new_label();
  b_.bind(l_top);
  body_fn(budget);
  b_.alui(isa::Opcode::kAddImm, counter, 1);
  b_.cmpi(counter, iters);
  b_.jump(isa::Opcode::kJl, l_top);
  --loop_depth_;
}

template <typename BodyFn>
void CodeGen::input_loop(isa::Syscall source, int budget, BodyFn&& body_fn) {
  const int l_top = b_.new_label();
  const int l_end = b_.new_label();
  b_.bind(l_top);
  b_.syscall(source, 0);  // r0 <- next input
  b_.cmpi(0, 0);
  b_.jump(isa::Opcode::kJe, l_end);
  body_fn(budget);
  b_.jump(isa::Opcode::kJmp, l_top);
  b_.bind(l_end);
  b_.nop();
}

template <typename CaseFn>
void CodeGen::dispatch_switch(isa::Syscall source, int cases, int budget,
                              CaseFn&& case_fn) {
  b_.syscall(source, 0);  // r0 <- selector
  const int l_end = b_.new_label();
  const int per_case = cases > 0 ? budget / cases : budget;
  for (int c = 0; c < cases; ++c) {
    const int l_next = b_.new_label();
    b_.cmpi(0, c + 1);
    b_.jump(isa::Opcode::kJne, l_next);
    case_fn(c, per_case);
    b_.jump(isa::Opcode::kJmp, l_end);
    b_.bind(l_next);
  }
  b_.nop();  // default case
  b_.bind(l_end);
  b_.nop();
}

}  // namespace gea::bingen
