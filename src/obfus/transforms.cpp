#include "obfus/transforms.hpp"

#include <algorithm>

#include "obfus/rewriter.hpp"

namespace gea::obfus {

using isa::Instruction;
using isa::Opcode;
using isa::Program;

namespace {

constexpr std::uint8_t kObfusReg = 14;  // reserved for obfuscation

/// Positions where inserting flag-clobbering code is safe: not at a
/// conditional branch (it may read flags set by the instruction before it)
/// and not right after a compare.
std::vector<std::uint32_t> flag_safe_positions(const Program& p) {
  std::vector<std::uint32_t> positions;
  for (const auto& f : p.functions()) {
    for (std::uint32_t i = f.begin; i < f.end; ++i) {
      if (isa::is_conditional(p.code()[i].op)) continue;
      if (i > f.begin) {
        const Opcode prev = p.code()[i - 1].op;
        if (prev == Opcode::kCmp || prev == Opcode::kCmpImm) continue;
      }
      positions.push_back(i);
    }
  }
  return positions;
}

/// Positions safe for flag-neutral insertions (anywhere in a function).
std::vector<std::uint32_t> all_positions(const Program& p) {
  std::vector<std::uint32_t> positions;
  for (const auto& f : p.functions()) {
    for (std::uint32_t i = f.begin; i < f.end; ++i) positions.push_back(i);
  }
  return positions;
}

std::vector<std::uint32_t> pick_positions(std::vector<std::uint32_t> candidates,
                                          util::Rng& rng, int count) {
  rng.shuffle(candidates);
  if (static_cast<int>(candidates.size()) > count) {
    candidates.resize(static_cast<std::size_t>(count));
  }
  return candidates;
}

}  // namespace

isa::Program add_opaque_predicates(const Program& program, util::Rng& rng,
                                   int count) {
  std::vector<Insertion> insertions;
  for (std::uint32_t pos : pick_positions(flag_safe_positions(program), rng, count)) {
    const auto c = rng.uniform_int(0, 1000);
    Insertion ins;
    ins.position = pos;
    // 0: movi r14, c
    // 1: cmpi r14, c+1        (never equal)
    // 2: je  +4               (never taken -> dead block)
    // 3: jmp +6               (skip the dead block)
    // 4:   addi r14, 1        (dead)
    // 5:   jmp +6             (dead block rejoins)
    // +6 == first instruction after the insertion (the original one).
    ins.instructions = {
        {Opcode::kMovImm, kObfusReg, 0, c, 0},
        {Opcode::kCmpImm, kObfusReg, 0, c + 1, 0},
        {Opcode::kJe, 0, 0, 0, 4},
        {Opcode::kJmp, 0, 0, 0, 6},
        {Opcode::kAddImm, kObfusReg, 0, 1, 0},
        {Opcode::kJmp, 0, 0, 0, 6},
    };
    ins.relative_targets = {2, 3, 5};
    insertions.push_back(std::move(ins));
  }
  if (insertions.empty()) return program;
  return insert_instructions(program, std::move(insertions));
}

isa::Program split_blocks(const Program& program, util::Rng& rng, int count) {
  std::vector<Insertion> insertions;
  for (std::uint32_t pos : pick_positions(all_positions(program), rng, count)) {
    Insertion ins;
    ins.position = pos;
    ins.instructions = {{Opcode::kJmp, 0, 0, 0, 1}};  // jump over nothing
    ins.relative_targets = {0};
    insertions.push_back(std::move(ins));
  }
  if (insertions.empty()) return program;
  return insert_instructions(program, std::move(insertions));
}

isa::Program pack_static_view(const Program& program, util::Rng& rng) {
  // Stub length loosely tracks payload size, as real packers' loaders do.
  const int len = 6 + static_cast<int>(
                          std::min<std::size_t>(program.size() / 16, 24));
  isa::ProgramBuilder b;
  b.begin_function("main");
  for (int i = 0; i < len; ++i) {
    const int r = 1 + static_cast<int>(rng.uniform_int(0, 11));
    switch (rng.uniform_int(0, 2)) {
      case 0: b.movi(r, rng.uniform_int(0, 0xffff)); break;
      case 1: b.alui(Opcode::kAddImm, r, rng.uniform_int(1, 255)); break;
      default: b.alu(Opcode::kXor, r, 1 + static_cast<int>(rng.uniform_int(0, 11)));
    }
  }
  b.syscall(isa::Syscall::kExec, 1);  // tail-jump into the unpacked image
  b.halt();
  b.end_function();
  return b.build();
}

}  // namespace gea::obfus
