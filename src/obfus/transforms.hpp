// CFG obfuscation transforms (paper SVI: "malware authors often use
// different packing techniques ... to obfuscate different parts of the
// malware code base").
//
// Two behaviour-preserving transforms (verified by execution in the test
// suite) and the static view of packing:
//
//  - add_opaque_predicates: insert never-taken branches guarding junk
//    blocks. Adds nodes and edges without changing behaviour — the
//    "manual" counterpart of what GEA does wholesale, and the building
//    block a JSMA-guided graph editor would use.
//  - split_blocks: insert jumps to the next instruction, cutting basic
//    blocks in two. Adds nodes/edges, preserves behaviour.
//  - pack_static_view: what a UPX-style packer leaves for the static
//    analyst — a single unpack-stub block. NOT behaviour-preserving in
//    this simulator (the stub stands in for the on-disk image only).
//
// Register discipline: transforms scribble only on r14 (reserved for
// obfuscation; r15 belongs to GEA), and never insert between a compare and
// its dependent branch, so the flags an original branch reads are intact.
#pragma once

#include "isa/program.hpp"
#include "util/rng.hpp"

namespace gea::obfus {

/// Insert up to `count` opaque predicates at random flag-safe positions
/// (fewer if the program is too small to host them). Each adds 6
/// instructions: guard (movi/cmpi/je), skip jump, and a 2-instruction dead
/// block — i.e. +2 CFG nodes and +3 edges per predicate.
isa::Program add_opaque_predicates(const isa::Program& program, util::Rng& rng,
                                   int count);

/// Insert up to `count` block splits (a jump to the following instruction)
/// at random positions: +1 node, +1 edge each.
isa::Program split_blocks(const isa::Program& program, util::Rng& rng,
                          int count);

/// The packed (on-disk) view of a program: a single straight-line unpack
/// stub. Behaviour is NOT preserved — this models what static analysis
/// sees, which is the point of packing.
isa::Program pack_static_view(const isa::Program& program, util::Rng& rng);

}  // namespace gea::obfus
