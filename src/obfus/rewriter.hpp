// Program rewriting primitive: insert instruction sequences at arbitrary
// positions while keeping every jump, branch and call target correct.
//
// All obfuscation transforms (and anything else that edits programs in
// place) are built on this, so target remapping is implemented — and
// tested — exactly once.
#pragma once

#include <cstdint>
#include <vector>

#include "isa/program.hpp"

namespace gea::obfus {

/// One insertion: the new instructions go in *before* the instruction
/// currently at `position` (so they execute whenever control would reach
/// it). Inserted jump targets must be expressed in *new-image* coordinates
/// relative to the insertion start via `target_offset_from_self`:
/// the rewriter resolves instruction i's target as
/// (position of inserted instruction) + target.
struct Insertion {
  std::uint32_t position = 0;
  std::vector<isa::Instruction> instructions;
  /// Indices (into `instructions`) whose `target` field is relative to the
  /// first inserted instruction and must be shifted to absolute form.
  std::vector<std::size_t> relative_targets;
};

/// Apply all insertions at once. Existing control-flow targets are
/// remapped so the original behaviour is preserved whenever the inserted
/// code is itself behaviour-neutral. Insertions must target distinct
/// positions within the code (position == program size is allowed only if
/// nothing follows to re-target). Throws std::invalid_argument on invalid
/// positions and std::logic_error if the result fails validation.
isa::Program insert_instructions(const isa::Program& program,
                                 std::vector<Insertion> insertions);

}  // namespace gea::obfus
