#include "obfus/rewriter.hpp"

#include <algorithm>
#include <stdexcept>

namespace gea::obfus {

using isa::Instruction;
using isa::Program;

isa::Program insert_instructions(const Program& program,
                                 std::vector<Insertion> insertions) {
  if (auto err = program.validate()) {
    throw std::invalid_argument("insert_instructions: invalid input: " + *err);
  }
  const std::size_t old_size = program.size();
  for (const auto& ins : insertions) {
    if (ins.position >= old_size) {
      throw std::invalid_argument("insert_instructions: position out of range");
    }
    for (std::size_t rel : ins.relative_targets) {
      if (rel >= ins.instructions.size()) {
        throw std::invalid_argument("insert_instructions: bad relative index");
      }
    }
  }
  std::sort(insertions.begin(), insertions.end(),
            [](const Insertion& a, const Insertion& b) {
              return a.position < b.position;
            });
  for (std::size_t i = 1; i < insertions.size(); ++i) {
    if (insertions[i].position == insertions[i - 1].position) {
      throw std::invalid_argument("insert_instructions: duplicate position");
    }
  }

  // shift_before(x): total inserted instructions at positions < x.
  // Remapping rules (all derived from "inserted code runs whenever control
  // reaches the instruction it precedes"):
  //  - existing instruction i lands at i + shift_at_or_before(i)
  //  - a control-flow target t lands at the *start* of code inserted at t
  //    (t + shift_before(t)), so inserted blocks stay on every path into t
  //  - a function boundary b maps like a target (inserted-at-b code belongs
  //    to the function starting at b)
  auto shift_before = [&](std::uint32_t x) {
    std::uint32_t s = 0;
    for (const auto& ins : insertions) {
      if (ins.position < x) s += static_cast<std::uint32_t>(ins.instructions.size());
    }
    return s;
  };
  auto map_target = [&](std::uint32_t t) { return t + shift_before(t); };

  Program out;
  out.code().reserve(old_size + 16);
  std::size_t next_insertion = 0;
  for (std::uint32_t i = 0; i < old_size; ++i) {
    if (next_insertion < insertions.size() &&
        insertions[next_insertion].position == i) {
      const auto& ins = insertions[next_insertion];
      const auto base = static_cast<std::uint32_t>(out.code().size());
      for (std::size_t k = 0; k < ins.instructions.size(); ++k) {
        Instruction instr = ins.instructions[k];
        if (std::find(ins.relative_targets.begin(), ins.relative_targets.end(),
                      k) != ins.relative_targets.end()) {
          instr.target += base;
        }
        out.code().push_back(instr);
      }
      ++next_insertion;
    }
    Instruction instr = program.code()[i];
    if (isa::has_target(instr.op)) instr.target = map_target(instr.target);
    out.code().push_back(instr);
  }

  for (const auto& f : program.functions()) {
    out.functions().push_back({f.name, map_target(f.begin),
                               f.end + shift_before(f.end)});
  }
  if (auto err = out.validate()) {
    throw std::logic_error("insert_instructions: produced invalid program: " +
                           *err);
  }
  return out;
}

}  // namespace gea::obfus
