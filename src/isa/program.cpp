#include "isa/program.hpp"

#include <sstream>
#include <stdexcept>

namespace gea::isa {

const Function* Program::function_at(std::uint32_t pc) const {
  for (const auto& f : functions_) {
    if (f.contains(pc)) return &f;
  }
  return nullptr;
}

const Function* Program::function_named(const std::string& name) const {
  for (const auto& f : functions_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

std::optional<std::string> Program::validate() const {
  if (code_.empty()) return "empty program";
  if (functions_.empty()) return "no functions";
  // Functions must tile [0, size) in order without overlap.
  std::uint32_t expected = 0;
  for (const auto& f : functions_) {
    if (f.begin != expected) return "function '" + f.name + "' does not start where the previous ended";
    if (f.end <= f.begin) return "function '" + f.name + "' is empty";
    expected = f.end;
  }
  if (expected != code_.size()) return "functions do not cover the whole program";

  for (std::size_t i = 0; i < code_.size(); ++i) {
    const auto& ins = code_[i];
    if (has_target(ins.op)) {
      if (ins.target >= code_.size()) {
        return "instruction " + std::to_string(i) + " target out of range";
      }
      if (ins.op == Opcode::kCall) {
        bool ok = false;
        for (const auto& f : functions_) ok = ok || f.begin == ins.target;
        if (!ok) return "call at " + std::to_string(i) + " does not target a function start";
      } else {
        // Jumps must stay within their own function.
        const Function* f = function_at(static_cast<std::uint32_t>(i));
        if (f == nullptr) return "instruction outside any function";
        if (!f->contains(ins.target)) {
          return "jump at " + std::to_string(i) + " leaves function '" + f->name + "'";
        }
      }
    }
    if (ins.rd >= kNumRegisters || ins.rs >= kNumRegisters) {
      return "instruction " + std::to_string(i) + " uses invalid register";
    }
  }
  // Each function's last instruction must not fall through off its end.
  for (const auto& f : functions_) {
    const Opcode last = code_[f.end - 1].op;
    if (!is_terminator(last)) {
      return "function '" + f.name + "' can fall through its end";
    }
  }
  return std::nullopt;
}

std::string Program::disassemble() const {
  std::ostringstream out;
  for (const auto& f : functions_) {
    out << f.name << ":\n";
    for (std::uint32_t i = f.begin; i < f.end; ++i) {
      out << "  " << i << ": " << to_string(code_[i]) << '\n';
    }
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// ProgramBuilder

void ProgramBuilder::begin_function(const std::string& name) {
  if (in_function_) throw std::logic_error("begin_function inside a function");
  in_function_ = true;
  function_start_ = static_cast<std::uint32_t>(program_.code().size());
  function_name_ = name;
}

void ProgramBuilder::end_function() {
  if (!in_function_) throw std::logic_error("end_function outside a function");
  const auto end = static_cast<std::uint32_t>(program_.code().size());
  if (end == function_start_) throw std::logic_error("empty function " + function_name_);
  program_.functions().push_back({function_name_, function_start_, end});
  in_function_ = false;
}

void ProgramBuilder::emit(Instruction ins) {
  if (!in_function_) throw std::logic_error("emit outside a function");
  program_.code().push_back(ins);
}

void ProgramBuilder::movi(int rd, std::int64_t imm) {
  emit({Opcode::kMovImm, static_cast<std::uint8_t>(rd), 0, imm, 0});
}
void ProgramBuilder::mov(int rd, int rs) {
  emit({Opcode::kMovReg, static_cast<std::uint8_t>(rd),
        static_cast<std::uint8_t>(rs), 0, 0});
}
void ProgramBuilder::load(int rd, int rs, std::int64_t offset) {
  emit({Opcode::kLoad, static_cast<std::uint8_t>(rd),
        static_cast<std::uint8_t>(rs), offset, 0});
}
void ProgramBuilder::store(int rd, std::int64_t offset, int rs) {
  emit({Opcode::kStore, static_cast<std::uint8_t>(rd),
        static_cast<std::uint8_t>(rs), offset, 0});
}
void ProgramBuilder::push(int rs) {
  emit({Opcode::kPush, 0, static_cast<std::uint8_t>(rs), 0, 0});
}
void ProgramBuilder::pop(int rd) {
  emit({Opcode::kPop, static_cast<std::uint8_t>(rd), 0, 0, 0});
}
void ProgramBuilder::alu(Opcode op, int rd, int rs) {
  emit({op, static_cast<std::uint8_t>(rd), static_cast<std::uint8_t>(rs), 0, 0});
}
void ProgramBuilder::alui(Opcode op, int rd, std::int64_t imm) {
  emit({op, static_cast<std::uint8_t>(rd), 0, imm, 0});
}
void ProgramBuilder::cmp(int ra, int rb) {
  emit({Opcode::kCmp, static_cast<std::uint8_t>(ra),
        static_cast<std::uint8_t>(rb), 0, 0});
}
void ProgramBuilder::cmpi(int ra, std::int64_t imm) {
  emit({Opcode::kCmpImm, static_cast<std::uint8_t>(ra), 0, imm, 0});
}
void ProgramBuilder::syscall(Syscall n, int rs) {
  emit({Opcode::kSyscall, 0, static_cast<std::uint8_t>(rs),
        static_cast<std::int64_t>(n), 0});
}
void ProgramBuilder::nop() { emit({Opcode::kNop, 0, 0, 0, 0}); }
void ProgramBuilder::halt() { emit({Opcode::kHalt, 0, 0, 0, 0}); }
void ProgramBuilder::ret() { emit({Opcode::kRet, 0, 0, 0, 0}); }

int ProgramBuilder::new_label() {
  label_pos_.push_back(-1);
  return static_cast<int>(label_pos_.size()) - 1;
}

void ProgramBuilder::bind(int label) {
  if (label < 0 || label >= static_cast<int>(label_pos_.size())) {
    throw std::logic_error("bind: unknown label");
  }
  if (label_pos_[static_cast<std::size_t>(label)] >= 0) {
    throw std::logic_error("bind: label bound twice");
  }
  label_pos_[static_cast<std::size_t>(label)] =
      static_cast<std::int64_t>(program_.code().size());
}

void ProgramBuilder::jump(Opcode op, int label) {
  if (!is_jump(op)) throw std::logic_error("jump: not a jump opcode");
  fixups_.emplace_back(static_cast<std::uint32_t>(program_.code().size()), label);
  emit({op, 0, 0, 0, 0});
}

void ProgramBuilder::call(const std::string& function_name) {
  call_fixups_.emplace_back(static_cast<std::uint32_t>(program_.code().size()),
                            function_name);
  emit({Opcode::kCall, 0, 0, 0, 0});
}

Program ProgramBuilder::build() {
  if (in_function_) throw std::logic_error("build: unterminated function");
  for (const auto& [idx, label] : fixups_) {
    const std::int64_t pos = label_pos_.at(static_cast<std::size_t>(label));
    if (pos < 0) throw std::logic_error("build: unbound label");
    program_.code()[idx].target = static_cast<std::uint32_t>(pos);
  }
  for (const auto& [idx, name] : call_fixups_) {
    const Function* f = program_.function_named(name);
    if (f == nullptr) throw std::logic_error("build: call to unknown function " + name);
    program_.code()[idx].target = f->begin;
  }
  if (auto err = program_.validate()) {
    throw std::logic_error("build: invalid program: " + *err);
  }
  return std::move(program_);
}

}  // namespace gea::isa
