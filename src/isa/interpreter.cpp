#include "isa/interpreter.hpp"

#include <array>
#include <stdexcept>

namespace gea::isa {

namespace {

struct Flags {
  bool zero = false;
  bool sign = false;

  void set_from(std::int64_t value) {
    zero = value == 0;
    sign = value < 0;
  }
};

bool branch_taken(Opcode op, const Flags& f) {
  switch (op) {
    case Opcode::kJe: return f.zero;
    case Opcode::kJne: return !f.zero;
    case Opcode::kJl: return f.sign;
    case Opcode::kJle: return f.sign || f.zero;
    case Opcode::kJg: return !f.sign && !f.zero;
    case Opcode::kJge: return !f.sign;
    default: return false;
  }
}

bool is_input_syscall(std::int64_t no) {
  switch (static_cast<Syscall>(no)) {
    case Syscall::kRead:
    case Syscall::kRecv:
    case Syscall::kRandom:
    case Syscall::kTime:
      return true;
    default:
      return false;
  }
}

}  // namespace

ExecResult execute(const Program& program, const ExecOptions& opts) {
  if (auto err = program.validate()) {
    throw std::invalid_argument("execute: invalid program: " + *err);
  }

  ExecResult res;
  std::array<std::int64_t, kNumRegisters> reg{};
  Flags flags;
  std::vector<std::int64_t> stack;
  std::vector<std::uint32_t> call_stack;
  std::unordered_map<std::int64_t, std::int64_t> memory;
  std::size_t input_cursor = 0;

  auto trap = [&](const std::string& msg) {
    res.reason = ExitReason::kTrap;
    res.trap_message = msg;
    res.result = reg[0];
  };

  std::uint32_t pc = 0;
  while (true) {
    if (res.steps >= opts.step_budget) {
      res.reason = ExitReason::kStepBudget;
      res.result = reg[0];
      return res;
    }
    ++res.steps;
    const Instruction& ins = program.code()[pc];
    std::uint32_t next = pc + 1;
    switch (ins.op) {
      case Opcode::kMovImm: reg[ins.rd] = ins.imm; break;
      case Opcode::kMovReg: reg[ins.rd] = reg[ins.rs]; break;
      case Opcode::kLoad: {
        const auto it = memory.find(reg[ins.rs] + ins.imm);
        reg[ins.rd] = it == memory.end() ? 0 : it->second;
        break;
      }
      case Opcode::kStore:
        memory[reg[ins.rd] + ins.imm] = reg[ins.rs];
        break;
      case Opcode::kPush:
        if (stack.size() > 1 << 20) { trap("stack overflow"); return res; }
        stack.push_back(reg[ins.rs]);
        break;
      case Opcode::kPop:
        if (stack.empty()) { trap("stack underflow"); return res; }
        reg[ins.rd] = stack.back();
        stack.pop_back();
        break;
      case Opcode::kAdd: reg[ins.rd] += reg[ins.rs]; break;
      case Opcode::kAddImm: reg[ins.rd] += ins.imm; break;
      case Opcode::kSub: reg[ins.rd] -= reg[ins.rs]; break;
      case Opcode::kSubImm: reg[ins.rd] -= ins.imm; break;
      case Opcode::kMul: reg[ins.rd] *= reg[ins.rs]; break;
      case Opcode::kDiv:
        if (reg[ins.rs] == 0) { trap("divide by zero"); return res; }
        reg[ins.rd] /= reg[ins.rs];
        break;
      case Opcode::kAnd: reg[ins.rd] &= reg[ins.rs]; break;
      case Opcode::kOr: reg[ins.rd] |= reg[ins.rs]; break;
      case Opcode::kXor: reg[ins.rd] ^= reg[ins.rs]; break;
      case Opcode::kShl:
        reg[ins.rd] = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(reg[ins.rd])
            << (static_cast<std::uint64_t>(reg[ins.rs]) & 63));
        break;
      case Opcode::kShr:
        reg[ins.rd] = static_cast<std::int64_t>(
            static_cast<std::uint64_t>(reg[ins.rd]) >>
            (static_cast<std::uint64_t>(reg[ins.rs]) & 63));
        break;
      case Opcode::kCmp: flags.set_from(reg[ins.rd] - reg[ins.rs]); break;
      case Opcode::kCmpImm: flags.set_from(reg[ins.rd] - ins.imm); break;
      case Opcode::kJmp: next = ins.target; break;
      case Opcode::kJe:
      case Opcode::kJne:
      case Opcode::kJl:
      case Opcode::kJle:
      case Opcode::kJg:
      case Opcode::kJge:
        if (branch_taken(ins.op, flags)) next = ins.target;
        break;
      case Opcode::kCall:
        if (call_stack.size() > 4096) { trap("call stack overflow"); return res; }
        call_stack.push_back(pc + 1);
        next = ins.target;
        break;
      case Opcode::kRet:
        if (call_stack.empty()) {
          res.reason = ExitReason::kReturnedFromMain;
          res.result = reg[0];
          return res;
        }
        next = call_stack.back();
        call_stack.pop_back();
        break;
      case Opcode::kSyscall: {
        res.trace.push_back({ins.imm, reg[ins.rs]});
        if (is_input_syscall(ins.imm)) {
          // One-shot stream with EOF-as-zero: termination guarantee for
          // input-driven loops.
          reg[0] = input_cursor < opts.input_stream.size()
                       ? opts.input_stream[input_cursor]
                       : 0;
          ++input_cursor;
        }
        if (static_cast<Syscall>(ins.imm) == Syscall::kExit) {
          res.reason = ExitReason::kHalted;
          res.result = reg[ins.rs];
          return res;
        }
        break;
      }
      case Opcode::kNop: break;
      case Opcode::kHalt:
        res.reason = ExitReason::kHalted;
        res.result = reg[0];
        return res;
    }
    pc = next;
  }
}

}  // namespace gea::isa
