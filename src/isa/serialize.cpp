#include "isa/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace gea::isa {

namespace {

constexpr char kMagic[4] = {'G', 'E', 'A', 'P'};
// Guards against allocating absurd buffers from corrupt headers.
constexpr std::uint64_t kMaxCount = 1u << 24;

template <typename T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("load_program: truncated input");
  return v;
}

}  // namespace

void save_program(const Program& program, std::ostream& out) {
  if (auto err = program.validate()) {
    throw std::runtime_error("save_program: invalid program: " + *err);
  }
  out.write(kMagic, 4);
  write_pod(out, kProgramFormatVersion);
  write_pod(out, static_cast<std::uint64_t>(program.size()));
  for (const auto& ins : program.code()) {
    write_pod(out, static_cast<std::uint8_t>(ins.op));
    write_pod(out, ins.rd);
    write_pod(out, ins.rs);
    write_pod(out, ins.imm);
    write_pod(out, ins.target);
  }
  write_pod(out, static_cast<std::uint64_t>(program.functions().size()));
  for (const auto& f : program.functions()) {
    write_pod(out, static_cast<std::uint64_t>(f.name.size()));
    out.write(f.name.data(), static_cast<std::streamsize>(f.name.size()));
    write_pod(out, f.begin);
    write_pod(out, f.end);
  }
  if (!out) throw std::runtime_error("save_program: write failed");
}

void save_program(const Program& program, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_program: cannot open " + path);
  save_program(program, out);
}

Program load_program(std::istream& in) {
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("load_program: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kProgramFormatVersion) {
    throw std::runtime_error("load_program: unsupported version " +
                             std::to_string(version));
  }
  Program p;
  const auto code_count = read_pod<std::uint64_t>(in);
  if (code_count > kMaxCount) throw std::runtime_error("load_program: oversized code");
  p.code().reserve(code_count);
  for (std::uint64_t i = 0; i < code_count; ++i) {
    Instruction ins;
    ins.op = static_cast<Opcode>(read_pod<std::uint8_t>(in));
    ins.rd = read_pod<std::uint8_t>(in);
    ins.rs = read_pod<std::uint8_t>(in);
    ins.imm = read_pod<std::int64_t>(in);
    ins.target = read_pod<std::uint32_t>(in);
    p.code().push_back(ins);
  }
  const auto fn_count = read_pod<std::uint64_t>(in);
  if (fn_count > kMaxCount) throw std::runtime_error("load_program: oversized functions");
  for (std::uint64_t i = 0; i < fn_count; ++i) {
    Function f;
    const auto name_len = read_pod<std::uint64_t>(in);
    if (name_len > kMaxCount) throw std::runtime_error("load_program: oversized name");
    f.name.resize(name_len);
    in.read(f.name.data(), static_cast<std::streamsize>(name_len));
    if (!in) throw std::runtime_error("load_program: truncated name");
    f.begin = read_pod<std::uint32_t>(in);
    f.end = read_pod<std::uint32_t>(in);
    p.functions().push_back(std::move(f));
  }
  if (auto err = p.validate()) {
    throw std::runtime_error("load_program: invalid program: " + *err);
  }
  return p;
}

Program load_program(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_program: cannot open " + path);
  return load_program(in);
}

}  // namespace gea::isa
