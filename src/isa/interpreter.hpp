// Reference interpreter for the mini ISA.
//
// Its purpose in the reproduction is evidentiary: the paper *claims* GEA
// preserves the functionality of the original sample; we *check* it by
// executing original and augmented programs and comparing their observable
// traces (syscalls issued, in order, with arguments) and results.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/program.hpp"

namespace gea::isa {

/// One observable event: a syscall and the argument register's value.
struct TraceEvent {
  std::int64_t syscall_no = 0;
  std::int64_t arg = 0;

  bool operator==(const TraceEvent&) const = default;
};

enum class ExitReason {
  kHalted,          // executed kHalt
  kReturnedFromMain,
  kStepBudget,      // ran out of fuel (e.g. infinite loop)
  kTrap,            // divide by zero, stack underflow, bad memory...
};

struct ExecResult {
  ExitReason reason = ExitReason::kHalted;
  std::uint64_t steps = 0;
  std::int64_t result = 0;  // r0 at exit
  std::vector<TraceEvent> trace;
  std::string trap_message;

  static bool is_normal(ExitReason r) {
    return r == ExitReason::kHalted || r == ExitReason::kReturnedFromMain;
  }

  /// Functional equivalence: same observable trace and result, and the same
  /// termination class. kHalted and kReturnedFromMain are both "normal" —
  /// GEA rewrites a main-function `ret` into a jump to the shared exit
  /// block's `halt`, which is behaviourally identical.
  bool equivalent(const ExecResult& other) const {
    const bool same_class = (is_normal(reason) && is_normal(other.reason)) ||
                            reason == other.reason;
    return same_class && result == other.result && trace == other.trace;
  }
};

struct ExecOptions {
  std::uint64_t step_budget = 1'000'000;
  /// Values returned by input-like syscalls (recv/read/random/time), in
  /// order. Once exhausted, every further input syscall returns 0 (EOF),
  /// which guarantees that input-driven loops terminate. Defaults to a
  /// fixed stream so runs are deterministic.
  std::vector<std::int64_t> input_stream = {7, 3, 11, 1, 2, 5};
};

/// Execute `program` from instruction 0. Never throws on program
/// misbehaviour (reports kTrap instead); throws std::invalid_argument only
/// if the program fails static validation.
ExecResult execute(const Program& program, const ExecOptions& opts = {});

}  // namespace gea::isa
