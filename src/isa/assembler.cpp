#include "isa/assembler.hpp"

#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace gea::isa {

namespace {

struct Token {
  std::string text;
};

std::string strip(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(strip(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  cur = strip(cur);
  if (!cur.empty()) out.push_back(cur);
  return out;
}

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("assemble: line " + std::to_string(line) + ": " + msg);
}

int parse_reg(const std::string& s, int line) {
  if (s.size() < 2 || (s[0] != 'r' && s[0] != 'R')) fail(line, "expected register, got '" + s + "'");
  int v = 0;
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) fail(line, "bad register '" + s + "'");
    v = v * 10 + (s[i] - '0');
  }
  if (v >= kNumRegisters) fail(line, "register out of range '" + s + "'");
  return v;
}

std::int64_t parse_imm(const std::string& s, int line) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(s, &pos, 0);
    if (pos != s.size()) fail(line, "bad immediate '" + s + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail(line, "bad immediate '" + s + "'");
  } catch (const std::out_of_range&) {
    fail(line, "immediate out of range '" + s + "'");
  }
}

// Parse "[rX+imm]" or "[rX-imm]" or "[rX]".
std::pair<int, std::int64_t> parse_mem(const std::string& s, int line) {
  if (s.size() < 3 || s.front() != '[' || s.back() != ']') {
    fail(line, "expected memory operand, got '" + s + "'");
  }
  const std::string inner = s.substr(1, s.size() - 2);
  std::size_t sep = inner.find_first_of("+-");
  if (sep == std::string::npos) return {parse_reg(strip(inner), line), 0};
  const int r = parse_reg(strip(inner.substr(0, sep)), line);
  std::int64_t off = parse_imm(strip(inner.substr(sep + 1)), line);
  if (inner[sep] == '-') off = -off;
  return {r, off};
}

const std::map<std::string, Opcode>& mnemonic_table() {
  static const std::map<std::string, Opcode> table = {
      {"movi", Opcode::kMovImm}, {"mov", Opcode::kMovReg},
      {"load", Opcode::kLoad},   {"store", Opcode::kStore},
      {"push", Opcode::kPush},   {"pop", Opcode::kPop},
      {"add", Opcode::kAdd},     {"addi", Opcode::kAddImm},
      {"sub", Opcode::kSub},     {"subi", Opcode::kSubImm},
      {"mul", Opcode::kMul},     {"div", Opcode::kDiv},
      {"and", Opcode::kAnd},     {"or", Opcode::kOr},
      {"xor", Opcode::kXor},     {"shl", Opcode::kShl},
      {"shr", Opcode::kShr},     {"cmp", Opcode::kCmp},
      {"cmpi", Opcode::kCmpImm}, {"jmp", Opcode::kJmp},
      {"je", Opcode::kJe},       {"jne", Opcode::kJne},
      {"jl", Opcode::kJl},       {"jle", Opcode::kJle},
      {"jg", Opcode::kJg},       {"jge", Opcode::kJge},
      {"call", Opcode::kCall},   {"ret", Opcode::kRet},
      {"syscall", Opcode::kSyscall}, {"nop", Opcode::kNop},
      {"halt", Opcode::kHalt},
  };
  return table;
}

}  // namespace

Program assemble(const std::string& source) {
  ProgramBuilder b;
  std::map<std::string, int> labels;  // per-function label name -> builder id
  auto label_id = [&](const std::string& name) {
    auto it = labels.find(name);
    if (it != labels.end()) return it->second;
    const int id = b.new_label();
    labels.emplace(name, id);
    return id;
  };

  std::istringstream in(source);
  std::string raw;
  int line_no = 0;
  bool in_func = false;
  while (std::getline(in, raw)) {
    ++line_no;
    // Strip comments and whitespace.
    if (const auto sc = raw.find(';'); sc != std::string::npos) raw = raw.substr(0, sc);
    std::string line = strip(raw);
    if (line.empty()) continue;

    if (line.rfind("func ", 0) == 0) {
      if (in_func) fail(line_no, "nested func");
      b.begin_function(strip(line.substr(5)));
      in_func = true;
      labels.clear();
      continue;
    }
    if (line == "endfunc") {
      if (!in_func) fail(line_no, "endfunc outside function");
      b.end_function();
      in_func = false;
      labels.clear();
      continue;
    }
    if (line.back() == ':') {
      if (!in_func) fail(line_no, "label outside function");
      const std::string name = strip(line.substr(0, line.size() - 1));
      if (name.empty()) fail(line_no, "empty label");
      try {
        b.bind(label_id(name));
      } catch (const std::logic_error& e) {
        fail(line_no, e.what());
      }
      continue;
    }

    if (!in_func) fail(line_no, "instruction outside function");
    // Split mnemonic and operand list.
    std::size_t sp = line.find_first_of(" \t");
    const std::string mnem = sp == std::string::npos ? line : line.substr(0, sp);
    const std::string rest = sp == std::string::npos ? "" : strip(line.substr(sp));
    const auto it = mnemonic_table().find(mnem);
    if (it == mnemonic_table().end()) fail(line_no, "unknown mnemonic '" + mnem + "'");
    const Opcode op = it->second;
    const auto ops = split_operands(rest);
    auto need = [&](std::size_t n) {
      if (ops.size() != n) fail(line_no, "expected " + std::to_string(n) + " operands");
    };

    switch (op) {
      case Opcode::kMovImm:
        need(2);
        b.movi(parse_reg(ops[0], line_no), parse_imm(ops[1], line_no));
        break;
      case Opcode::kMovReg:
        need(2);
        b.mov(parse_reg(ops[0], line_no), parse_reg(ops[1], line_no));
        break;
      case Opcode::kLoad: {
        need(2);
        const auto [r, off] = parse_mem(ops[1], line_no);
        b.load(parse_reg(ops[0], line_no), r, off);
        break;
      }
      case Opcode::kStore: {
        need(2);
        const auto [r, off] = parse_mem(ops[0], line_no);
        b.store(r, off, parse_reg(ops[1], line_no));
        break;
      }
      case Opcode::kPush:
        need(1);
        b.push(parse_reg(ops[0], line_no));
        break;
      case Opcode::kPop:
        need(1);
        b.pop(parse_reg(ops[0], line_no));
        break;
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
        need(2);
        b.alu(op, parse_reg(ops[0], line_no), parse_reg(ops[1], line_no));
        break;
      case Opcode::kAddImm:
      case Opcode::kSubImm:
        need(2);
        b.alui(op, parse_reg(ops[0], line_no), parse_imm(ops[1], line_no));
        break;
      case Opcode::kCmp:
        need(2);
        b.cmp(parse_reg(ops[0], line_no), parse_reg(ops[1], line_no));
        break;
      case Opcode::kCmpImm:
        need(2);
        b.cmpi(parse_reg(ops[0], line_no), parse_imm(ops[1], line_no));
        break;
      case Opcode::kJmp:
      case Opcode::kJe:
      case Opcode::kJne:
      case Opcode::kJl:
      case Opcode::kJle:
      case Opcode::kJg:
      case Opcode::kJge:
        need(1);
        b.jump(op, label_id(ops[0]));
        break;
      case Opcode::kCall:
        need(1);
        b.call(ops[0]);
        break;
      case Opcode::kSyscall:
        need(2);
        b.syscall(static_cast<Syscall>(parse_imm(ops[0], line_no)),
                  parse_reg(ops[1], line_no));
        break;
      case Opcode::kRet:
        need(0);
        b.ret();
        break;
      case Opcode::kNop:
        need(0);
        b.nop();
        break;
      case Opcode::kHalt:
        need(0);
        b.halt();
        break;
    }
  }
  if (in_func) fail(line_no, "missing endfunc");
  try {
    return b.build();
  } catch (const std::logic_error& e) {
    throw std::runtime_error(std::string("assemble: ") + e.what());
  }
}

}  // namespace gea::isa
