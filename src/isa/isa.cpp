#include "isa/isa.hpp"

#include <sstream>

namespace gea::isa {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kMovImm: return "movi";
    case Opcode::kMovReg: return "mov";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kPush: return "push";
    case Opcode::kPop: return "pop";
    case Opcode::kAdd: return "add";
    case Opcode::kAddImm: return "addi";
    case Opcode::kSub: return "sub";
    case Opcode::kSubImm: return "subi";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kCmp: return "cmp";
    case Opcode::kCmpImm: return "cmpi";
    case Opcode::kJmp: return "jmp";
    case Opcode::kJe: return "je";
    case Opcode::kJne: return "jne";
    case Opcode::kJl: return "jl";
    case Opcode::kJle: return "jle";
    case Opcode::kJg: return "jg";
    case Opcode::kJge: return "jge";
    case Opcode::kCall: return "call";
    case Opcode::kRet: return "ret";
    case Opcode::kSyscall: return "syscall";
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
  }
  return "?";
}

bool is_jump(Opcode op) {
  switch (op) {
    case Opcode::kJmp:
    case Opcode::kJe:
    case Opcode::kJne:
    case Opcode::kJl:
    case Opcode::kJle:
    case Opcode::kJg:
    case Opcode::kJge:
      return true;
    default:
      return false;
  }
}

bool is_conditional(Opcode op) { return is_jump(op) && op != Opcode::kJmp; }

bool is_terminator(Opcode op) {
  return op == Opcode::kJmp || op == Opcode::kRet || op == Opcode::kHalt;
}

bool has_target(Opcode op) { return is_jump(op) || op == Opcode::kCall; }

std::string to_string(const Instruction& ins) {
  std::ostringstream ss;
  ss << opcode_name(ins.op);
  // Append onto a named string (not operator+ on temporaries): GCC 12 has
  // a -Wrestrict false positive at -O3 (PR105329) that breaks -Werror.
  auto reg = [](int r) {
    std::string s(1, 'r');
    s.append(std::to_string(r));
    return s;
  };
  switch (ins.op) {
    case Opcode::kMovImm:
      ss << ' ' << reg(ins.rd) << ", " << ins.imm;
      break;
    case Opcode::kMovReg:
      ss << ' ' << reg(ins.rd) << ", " << reg(ins.rs);
      break;
    case Opcode::kLoad:
      ss << ' ' << reg(ins.rd) << ", [" << reg(ins.rs) << '+' << ins.imm << ']';
      break;
    case Opcode::kStore:
      ss << " [" << reg(ins.rd) << '+' << ins.imm << "], " << reg(ins.rs);
      break;
    case Opcode::kPush:
      ss << ' ' << reg(ins.rs);
      break;
    case Opcode::kPop:
      ss << ' ' << reg(ins.rd);
      break;
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kShl:
    case Opcode::kShr:
    case Opcode::kCmp:
      ss << ' ' << reg(ins.rd) << ", " << reg(ins.rs);
      break;
    case Opcode::kAddImm:
    case Opcode::kSubImm:
    case Opcode::kCmpImm:
      ss << ' ' << reg(ins.rd) << ", " << ins.imm;
      break;
    case Opcode::kJmp:
    case Opcode::kJe:
    case Opcode::kJne:
    case Opcode::kJl:
    case Opcode::kJle:
    case Opcode::kJg:
    case Opcode::kJge:
    case Opcode::kCall:
      ss << ' ' << ins.target;
      break;
    case Opcode::kSyscall:
      ss << ' ' << ins.imm << ", " << reg(ins.rs);
      break;
    case Opcode::kRet:
    case Opcode::kNop:
    case Opcode::kHalt:
      break;
  }
  return ss.str();
}

}  // namespace gea::isa
