// Two-pass textual assembler for the mini ISA.
//
// Grammar (one item per line, ';' starts a comment):
//   func NAME          — open function
//   endfunc            — close function
//   LABEL:             — bind a local label
//   OPCODE operands    — instruction; jumps take label names, call takes a
//                        function name
//
// Example (the Fig. 2 counting loop):
//   func main
//     movi r1, 0
//   loop:
//     addi r1, 1
//     cmpi r1, 9
//     jle loop
//     nop
//     halt
//   endfunc
#pragma once

#include <string>

#include "isa/program.hpp"

namespace gea::isa {

/// Assemble source text into a validated Program.
/// Throws std::runtime_error with a line-numbered message on any error.
Program assemble(const std::string& source);

}  // namespace gea::isa
