// Binary (de)serialization of programs — the repository's "ELF": corpora
// can be generated once, saved, and reloaded by later analysis runs
// without regenerating, and individual samples (e.g. a GEA-spliced
// evasive binary) can be shipped between tools.
//
// Format (little-endian, versioned):
//   magic "GEAP" | u32 version | u64 code count | instructions
//   | u64 function count | functions (u64 name length, name bytes,
//     u32 begin, u32 end)
// Each instruction: u8 op, u8 rd, u8 rs, i64 imm, u32 target.
#pragma once

#include <iosfwd>
#include <string>

#include "isa/program.hpp"

namespace gea::isa {

inline constexpr std::uint32_t kProgramFormatVersion = 1;

/// Serialize to a stream / file. Throws std::runtime_error on I/O failure.
void save_program(const Program& program, std::ostream& out);
void save_program(const Program& program, const std::string& path);

/// Deserialize; validates the result. Throws std::runtime_error on
/// malformed input (bad magic, truncation, failed validation).
Program load_program(std::istream& in);
Program load_program(const std::string& path);

}  // namespace gea::isa
