// A program is a flat instruction array plus function metadata.
//
// Execution starts at instruction 0 (the entry of `main`, which is always
// the first function). `call` pushes a return address and jumps to a
// function's first instruction; every function is a contiguous instruction
// range.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace gea::isa {

/// Contiguous instruction range [begin, end) implementing one function.
struct Function {
  std::string name;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;  // one past the last instruction

  bool contains(std::uint32_t pc) const { return pc >= begin && pc < end; }

  bool operator==(const Function&) const = default;
};

class Program {
 public:
  std::vector<Instruction>& code() { return code_; }
  const std::vector<Instruction>& code() const { return code_; }
  std::vector<Function>& functions() { return functions_; }
  const std::vector<Function>& functions() const { return functions_; }

  std::size_t size() const { return code_.size(); }
  bool empty() const { return code_.empty(); }

  /// Function containing `pc`, if any.
  const Function* function_at(std::uint32_t pc) const;
  /// Function by name, if any.
  const Function* function_named(const std::string& name) const;

  /// Static well-formedness: non-empty, jump/call targets in range, calls
  /// land on function starts, functions tile the code without overlap, and
  /// jumps stay within their function. Returns error text or nullopt.
  std::optional<std::string> validate() const;

  /// Full disassembly listing with function headers and line numbers.
  std::string disassemble() const;

  bool operator==(const Program&) const = default;

 private:
  std::vector<Instruction> code_;
  std::vector<Function> functions_;
};

/// Incremental program builder with label-based control flow, so callers
/// never compute absolute instruction indices by hand.
class ProgramBuilder {
 public:
  /// Open a new function; subsequent emits land in it. Functions must not
  /// be nested; the first opened function is the entry (`main`).
  void begin_function(const std::string& name);
  void end_function();

  /// Emit a non-control-flow instruction.
  void emit(Instruction ins);
  // Convenience emitters.
  void movi(int rd, std::int64_t imm);
  void mov(int rd, int rs);
  void load(int rd, int rs, std::int64_t offset);
  void store(int rd, std::int64_t offset, int rs);
  void push(int rs);
  void pop(int rd);
  void alu(Opcode op, int rd, int rs);
  void alui(Opcode op, int rd, std::int64_t imm);
  void cmp(int ra, int rb);
  void cmpi(int ra, std::int64_t imm);
  void syscall(Syscall n, int rs);
  void nop();
  void halt();
  void ret();

  /// Create a fresh label id (not yet placed).
  int new_label();
  /// Place a label at the current position.
  void bind(int label);
  /// Emit a jump/branch to a label (may be bound later).
  void jump(Opcode op, int label);
  /// Emit a call to a function by name (function may be defined later).
  void call(const std::string& function_name);

  std::size_t current_index() const { return program_.code().size(); }

  /// Resolve all labels and calls; throws std::logic_error on unbound
  /// labels, unknown call targets, or an unterminated final instruction.
  Program build();

 private:
  Program program_;
  std::vector<std::int64_t> label_pos_;                 // -1 = unbound
  std::vector<std::pair<std::uint32_t, int>> fixups_;   // (instr idx, label)
  std::vector<std::pair<std::uint32_t, std::string>> call_fixups_;
  bool in_function_ = false;
  std::uint32_t function_start_ = 0;
  std::string function_name_;
};

}  // namespace gea::isa
