// A miniature load/store instruction set standing in for the ARM/MIPS
// binaries of real IoT firmware.
//
// The paper disassembles IoT ELF binaries with Radare2 and works on the
// resulting control-flow graphs; we cannot ship a malware corpus, so the
// `bingen` module *generates programs in this ISA* and `cfg` extracts CFGs
// from the instruction stream the same way a disassembler would. The ISA is
// deliberately simple but expressive enough for structured control flow
// (branches, loops, calls) and observable behaviour (syscalls), which lets
// the interpreter *prove* that GEA-augmented samples behave identically to
// their originals.
#pragma once

#include <cstdint>
#include <string>

namespace gea::isa {

/// Register file size. Registers r13-r15 are reserved by convention for
/// instrumentation (the GEA guard uses r15); generated programs use r0-r12.
inline constexpr int kNumRegisters = 16;
inline constexpr int kGuardRegister = 15;

enum class Opcode : std::uint8_t {
  // Data movement.
  kMovImm,   // rD <- imm
  kMovReg,   // rD <- rS
  kLoad,     // rD <- mem[rS + imm]
  kStore,    // mem[rD + imm] <- rS
  kPush,     // stack push rS
  kPop,      // rD <- stack pop
  // Arithmetic / logic (rD <- rD op rS, or rD <- rD op imm for *Imm).
  kAdd, kAddImm,
  kSub, kSubImm,
  kMul,
  kDiv,      // signed; divide-by-zero traps
  kAnd, kOr, kXor,
  kShl, kShr,
  // Comparison: sets zero/sign flags from (rA - rB) or (rA - imm).
  kCmp, kCmpImm,
  // Control flow. `target` is an absolute instruction index.
  kJmp,
  kJe, kJne, kJl, kJle, kJg, kJge,
  kCall,     // push return address, jump to target
  kRet,      // pop return address
  // Environment.
  kSyscall,  // abstract I/O: imm selects the syscall, rS carries the argument
  kNop,
  kHalt,     // end of program
};

/// Abstract syscall numbers the generator emits; the interpreter records
/// them in the observable trace.
enum class Syscall : std::int64_t {
  kExit = 0,
  kOpen = 1,
  kRead = 2,
  kWrite = 3,
  kSocket = 4,
  kConnect = 5,
  kSend = 6,
  kRecv = 7,
  kExec = 8,
  kSleep = 9,
  kFork = 10,
  kKill = 11,
  kRandom = 12,
  kTime = 13,
};

/// One decoded instruction. Fields not used by an opcode are zero.
struct Instruction {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;       // destination register
  std::uint8_t rs = 0;       // source register
  std::int64_t imm = 0;      // immediate
  std::uint32_t target = 0;  // absolute instruction index for jumps/calls

  bool operator==(const Instruction&) const = default;
};

/// Mnemonic for an opcode ("mov", "jne", ...).
const char* opcode_name(Opcode op);

/// True for kJmp and all conditional branches (not calls).
bool is_jump(Opcode op);
/// True for conditional branches only.
bool is_conditional(Opcode op);
/// True if the instruction never falls through (jmp, ret, halt).
bool is_terminator(Opcode op);
/// True if the opcode uses the `target` field (jumps, branches, call).
bool has_target(Opcode op);

/// Render one instruction as assembly text, e.g. "add r1, r2" or "jne 17".
std::string to_string(const Instruction& ins);

}  // namespace gea::isa
