// Remote serving transport: the wire path in front of DetectionServer.
//
// TransportServer binds a loopback/IPv4 TCP listener and runs one
// poll()-multiplexed accept/read/write loop (hosted on its own
// util::ThreadPool) speaking the length-prefixed frame protocol from
// net/frame.hpp. Decoded detect requests are bridged into an existing
// DetectionServer, so the queue's admission control, micro-batching, and
// kDeadlineExceeded semantics compose end-to-end: the wire layer adds its
// own failure domain (malformed frames, slow-loris peers, connection
// storms, mid-request disconnects) and its own containment:
//
//  - strict frame validation: malformed/oversized/checksum-failed frames
//    are quarantined — counted, answered with an error frame when the
//    stream is still synchronized (lenient mode), never fatal to the
//    process. `strict` mode closes the offending connection instead,
//    mirroring the pipeline's lenient/strict discipline.
//  - bounded per-connection buffers with backpressure: a connection over
//    its in-flight or write-buffer budget has new requests shed as
//    kUnavailable error frames; a peer that stops reading entirely trips a
//    hard cap and is closed. Nothing buffers without bound.
//  - idle and read timeouts: a silent connection, or one dribbling a
//    partial frame (slow loris), is closed and counted.
//  - graceful drain on stop(): the listener closes first, in-flight
//    requests finish and flush, then connections close — no response is
//    dropped or double-delivered.
//
// RemoteClient is the matching synchronous client: framed request, blocking
// wait for the correlated response, and transparent retry with exponential
// backoff + deterministic jitter. A retry loop never outlives the caller's
// deadline: the remaining budget shrinks across attempts, rides the wire in
// the frame header, and bounds the server-side deadline too.
//
// Every degradation mode is deterministically testable through the five
// net.* fault points (util/faultinject.hpp) and observable through the
// net.* counters mirrored into obs::MetricsRegistry::global().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace gea::serve {

class SloMonitor;

struct TransportConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is readable via port() after start().
  std::uint16_t port = 0;
  /// Lenient (false): a recoverable malformed frame is quarantined and
  /// answered with an error frame; the connection lives on. Strict (true):
  /// any malformed frame closes the connection. Unrecoverable damage (bad
  /// magic, oversized length) always closes — resync is impossible.
  bool strict = false;
  /// Connections beyond this are accepted and immediately closed (counted
  /// as shed) so the backlog cannot grow unboundedly.
  std::size_t max_connections = 256;
  /// Per-frame payload ceiling forwarded to the decoder.
  std::size_t max_payload_bytes = net::kMaxPayloadBytes;
  /// Soft cap on a connection's pending output; requests arriving while
  /// over it are shed as kUnavailable. At 2x the cap the connection is
  /// closed outright (the peer is not draining responses).
  std::size_t write_buffer_limit = 256 * 1024;
  /// Max requests a single connection may have in flight; beyond this new
  /// requests are shed as kUnavailable (per-connection admission control,
  /// layered in front of the queue's global admission control).
  std::size_t max_inflight_per_conn = 64;
  /// A connection with no traffic for this long is closed.
  double idle_timeout_ms = 30'000.0;
  /// A connection holding an incomplete frame for this long (slow loris)
  /// is closed.
  double read_timeout_ms = 5'000.0;
  /// stop() waits at most this long for in-flight requests to finish and
  /// responses to flush before force-closing.
  double drain_timeout_ms = 2'000.0;
  /// Route this server's sockets/codecs through the net.* fault points
  /// (clients in the same process stay clean either way).
  bool fault_injection = true;
  /// Optional SLO monitor fed one sample per response written (latency +
  /// ok/error); transport-level sheds and quarantines count as errors.
  /// Must outlive the server. nullptr = no SLO tracking.
  SloMonitor* slo = nullptr;
};

/// Point-in-time copy of the transport counters (all monotonic except
/// active_connections).
struct TransportSnapshot {
  std::uint64_t accepted = 0;          // connections admitted
  std::uint64_t closed = 0;            // connections torn down (any reason)
  std::uint64_t accept_failures = 0;   // transient accept() failures
  std::uint64_t frames_read = 0;       // valid frames surfaced by the decoder
  std::uint64_t frames_written = 0;    // response frames encoded for write
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t quarantined = 0;       // malformed/oversized/checksum frames
  std::uint64_t shed = 0;              // requests refused by backpressure
  std::uint64_t idle_timeouts = 0;     // connections closed for silence
  std::uint64_t read_timeouts = 0;     // slow-loris kills
  std::uint64_t requests = 0;          // detect requests bridged to the queue
  std::uint64_t responses_ok = 0;      // verdict responses written
  std::uint64_t responses_error = 0;   // error responses written
  std::size_t active_connections = 0;
};

/// Poll-multiplexed frame server in front of a DetectionServer. start()
/// spawns the event loop; stop() (and the destructor) drains gracefully.
/// The DetectionServer must outlive the transport.
class TransportServer {
 public:
  explicit TransportServer(DetectionServer& server,
                           const TransportConfig& config = {});
  ~TransportServer();

  TransportServer(const TransportServer&) = delete;
  TransportServer& operator=(const TransportServer&) = delete;

  /// Bind + listen + launch the event loop. Fails (without crashing) when
  /// the address is unusable; safe to call once.
  util::Status start();

  /// Graceful drain: stop accepting, let in-flight requests complete and
  /// their responses flush (up to drain_timeout_ms), then close. Idempotent.
  void stop();

  bool running() const;
  /// True while stop() has been requested and the event loop is flushing
  /// in-flight responses. The admin plane reports this as "draining" on
  /// /readyz (not ready, but deliberately so).
  bool draining() const;
  /// The bound port (valid after a successful start()).
  std::uint16_t port() const;
  const TransportConfig& config() const;
  TransportSnapshot stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// --- Payload codecs (public so tests and alternative clients can speak the
// protocol without a RemoteClient) -----------------------------------------
//
// Two payload versions, following the frame header's v1/v2 discipline
// (encoders write the newest version, decoders accept both):
//
//   request  v1: f64_vector features
//   request  v2: u32 sentinel | u32 version | u64 schema_digest |
//                f64_vector features
//   response v1: u32 code | verdict fields or error message
//   response v2: u32 sentinel | u32 version | u32 code | v1 body |
//                string class_name | u64 schema_digest   (code 0 only)
//
// The sentinel 0xFFFFFFFF can never open a v1 payload (a request starts
// with a feature count, a response with an ErrorCode — both small), so one
// u32 peek disambiguates. The server answers in the version the request
// used: a v1 client receives byte-identical v1 responses, while a v2
// client gets the schema-aware fields and may pin a schema digest — a
// nonzero pin that disagrees with the serving checkpoint fails the request
// with kFailedPrecondition instead of silently scoring under the wrong
// class set.

inline constexpr std::uint32_t kDetectPayloadSentinel = 0xFFFFFFFFu;
inline constexpr std::uint32_t kDetectPayloadVersion = 2;

/// Decoded detect request: features plus the v2 schema pin (version 1
/// requests leave the defaults).
struct DetectRequestPayload {
  std::vector<double> features;
  std::uint32_t version = 1;
  std::uint64_t schema_digest = 0;  // 0 = not pinned
};

/// v1 request bytes (legacy layout, preserved bit for bit).
std::vector<std::uint8_t> encode_detect_request_payload(
    const std::vector<double>& features);
/// v2 request bytes carrying a schema pin (0 = none).
std::vector<std::uint8_t> encode_detect_request_payload(
    const std::vector<double>& features, std::uint64_t schema_digest);
util::Result<DetectRequestPayload> decode_detect_request_payload(
    std::span<const std::uint8_t> payload);

/// Response bytes in `payload_version` (1 or 2) — the server echoes the
/// request's version here.
std::vector<std::uint8_t> encode_detect_response_payload(
    const util::Result<Verdict>& result, std::uint32_t payload_version = 1);
util::Result<Verdict> decode_detect_response_payload(
    std::span<const std::uint8_t> payload);

// --- Client ----------------------------------------------------------------

struct ClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double connect_timeout_ms = 1'000.0;
  /// Per-attempt ceiling on waiting for a response when the caller gave no
  /// deadline; with a deadline, the remaining budget governs instead.
  double request_timeout_ms = 5'000.0;
  /// Retries after the first attempt. Only transport-level failures and
  /// kUnavailable are retried; server verdicts and hard errors return
  /// immediately.
  std::size_t max_retries = 3;
  double backoff_initial_ms = 5.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 200.0;
  /// Each backoff is scaled by uniform(1 - jitter, 1 + jitter) drawn from a
  /// deterministic stream seeded with jitter_seed.
  double backoff_jitter = 0.25;
  std::uint64_t jitter_seed = 0x6a17;
  /// Start a distributed trace on every Nth detect() call (1 = every call,
  /// 0 = never). The trace context rides the v2 frame header, so the
  /// server's queue/inference spans join the client's send/retry spans
  /// under one trace id.
  std::size_t trace_sample_every = 1;
  /// Detect payload version to emit (encoders write the newest; 1 forces
  /// the legacy bytes for interop testing).
  std::uint32_t payload_version = kDetectPayloadVersion;
  /// Nonzero (v2 payloads only): pin the serving schema — the server fails
  /// the request if the active checkpoint's schema digest differs.
  std::uint64_t schema_digest = 0;
};

/// Client-side counters (single instance = single thread; read after use).
struct ClientStats {
  std::uint64_t requests = 0;    // detect() calls
  std::uint64_t attempts = 0;    // wire attempts (>= requests)
  std::uint64_t retries = 0;     // attempts beyond the first per request
  std::uint64_t reconnects = 0;  // sockets re-established
  std::uint64_t transport_errors = 0;  // attempt failures below the app layer
  std::uint64_t last_trace_id = 0;     // 0 = last detect() was untraced
};

/// Synchronous framed client with retry/backoff. Not thread-safe: one
/// RemoteClient per client thread (each owns one connection), matching the
/// closed-loop bench and test harnesses.
class RemoteClient {
 public:
  explicit RemoteClient(const ClientConfig& config);
  ~RemoteClient();

  RemoteClient(const RemoteClient&) = delete;
  RemoteClient& operator=(const RemoteClient&) = delete;

  /// Framed detect: encode, send, wait for the correlated response.
  /// deadline_ms > 0 is an end-to-end budget across *all* attempts — it
  /// shrinks by elapsed wall time before every retry and rides the frame
  /// header so the server honors whatever remains; when it runs out the
  /// call returns kDeadlineExceeded. deadline_ms <= 0 = no deadline (each
  /// attempt is still bounded by request_timeout_ms).
  util::Result<Verdict> detect(const std::vector<double>& features,
                               double deadline_ms = 0.0);

  bool connected() const { return sock_.valid(); }
  void disconnect();
  const ClientStats& stats() const { return stats_; }

 private:
  struct Attempt {
    util::Result<Verdict> result;
    bool transport = false;  // failed below the app layer (retriable)
    Attempt(util::Result<Verdict> r, bool t)
        : result(std::move(r)), transport(t) {}
  };

  util::Status ensure_connected(double budget_ms);
  Attempt attempt_once(const std::vector<double>& features,
                       std::uint64_t request_id, double budget_ms,
                       bool has_deadline, const obs::TraceContext& ctx);

  ClientConfig config_;
  net::Socket sock_;
  std::vector<std::uint8_t> rbuf_;
  std::uint64_t next_id_ = 1;
  util::Rng jitter_;
  ClientStats stats_;
};

}  // namespace gea::serve
