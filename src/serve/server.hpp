// Detection-as-a-service: a long-lived in-process server that accepts
// programs or precomputed feature vectors, batches them through the CNN,
// and returns scored verdicts.
//
// Request path:
//   submit() — featurize on the caller's thread (program overload), then
//   try_push into a bounded queue. A full queue or missing model rejects
//   immediately with a ready future (kUnavailable); the client never hangs
//   on admission.
//   worker — blocking pop for the first request, then lingers up to
//   max_wait_us (or until max_batch) to coalesce stragglers into one
//   Model::infer call. Deadlines are checked at dequeue: an expired request
//   is failed with kDeadlineExceeded without paying for inference.
//   Each worker owns a private model replica (cloned from the active
//   checkpoint) and refreshes it only when the registry generation moves,
//   so hot-swaps cost one atomic load per batch on the steady path.
//
// Batching is an implementation detail of latency/throughput, never of
// results: the batched path is bitwise-identical to per-sample forward
// (tests/serve_test.cpp asserts this), so a verdict does not depend on
// which requests happened to share a batch.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "features/engine.hpp"
#include "isa/program.hpp"
#include "obs/trace.hpp"
#include "serve/queue.hpp"
#include "serve/registry.hpp"
#include "serve/stats.hpp"
#include "util/status.hpp"

namespace gea::serve {

struct ServerConfig {
  /// Worker threads; 0 = util::default_thread_count().
  std::size_t workers = 0;
  /// Bounded queue capacity; pushes beyond this reject with kUnavailable.
  std::size_t queue_capacity = 256;
  /// Micro-batch ceiling. 1 disables batching entirely (each request runs
  /// the legacy per-sample Model::forward path — the bench's unbatched
  /// baseline).
  std::size_t max_batch = 16;
  /// How long a worker lingers for stragglers after the first dequeue.
  std::size_t max_wait_us = 200;
  /// Deadline applied when submit() is called with deadline_ms < 0;
  /// 0 = no deadline.
  double default_deadline_ms = 0.0;
  /// Server-lifetime feature cache (graph digest -> 23 features) shared by
  /// every submitting thread: a resubmitted program skips the traversal.
  /// 0 disables caching. Extended (41-dim) featurization caches only its
  /// 23-feature base.
  std::size_t feature_cache_capacity = 256;
};

/// One scored detection outcome. `predicted`/`class_name` are read against
/// the checkpoint's LabelSchema (binary default: 0 benign, 1 malicious);
/// `probabilities` has one entry per schema class.
struct Verdict {
  std::size_t predicted = 0;            // argmax class under the schema
  std::string class_name;               // schema name of `predicted`
  std::uint64_t schema_digest = 0;      // pin of the schema that scored it
  std::vector<double> probabilities;    // softmax, max-subtracted
  std::vector<double> logits;           // raw network outputs
  std::string model_version;            // checkpoint that produced it
  std::size_t batch_size = 0;           // how many requests shared the pass
  double queue_ms = 0.0;                // submit -> dequeue
  double infer_ms = 0.0;                // the batch's forward wall time
  double total_ms = 0.0;                // submit -> verdict
};

class DetectionServer {
 public:
  /// Starts `config.workers` threads immediately. The registry may still be
  /// empty; requests are rejected with kUnavailable until a checkpoint is
  /// activated. The registry must outlive the server.
  DetectionServer(ModelRegistry& registry, const ServerConfig& config = {});
  ~DetectionServer();  // stop()

  DetectionServer(const DetectionServer&) = delete;
  DetectionServer& operator=(const DetectionServer&) = delete;

  /// Enqueue a precomputed feature vector (raw feature units; the active
  /// checkpoint's scaler, when present, is applied server-side). The future
  /// is ready immediately on admission failure. deadline_ms: <0 = config
  /// default, 0 = none, >0 = fail with kDeadlineExceeded if still queued
  /// after that many milliseconds. `ctx` (when valid) attributes the
  /// request's queue-wait and inference spans to a distributed trace — the
  /// transport passes the context it decoded from the frame header.
  std::future<util::Result<Verdict>> submit(std::vector<double> features,
                                            double deadline_ms = -1.0,
                                            obs::TraceContext ctx = {});

  /// Extract the CFG (entry function, the paper's convention) and featurize
  /// on the caller's thread, then enqueue. The feature width follows the
  /// active checkpoint's spec (23 or 41).
  std::future<util::Result<Verdict>> submit(const isa::Program& program,
                                            double deadline_ms = -1.0);

  /// Blocking client facade: submit + wait.
  util::Result<Verdict> detect(std::vector<double> features,
                               double deadline_ms = -1.0);
  util::Result<Verdict> detect(const isa::Program& program,
                               double deadline_ms = -1.0);

  /// Fence the workers: queued requests stay queued (admission continues)
  /// until resume(). Tests use this to build deterministic queue states.
  void pause();
  void resume();

  /// Drain the queue and join the workers. Idempotent; called by ~.
  void stop();

  const ServerConfig& config() const { return config_; }
  ModelRegistry& registry() { return registry_; }
  std::size_t queue_depth() const { return queue_.size(); }
  StatsSnapshot stats() const { return stats_.snapshot(queue_.size()); }
  /// The server-lifetime feature cache (null when disabled).
  const std::shared_ptr<features::FeatureCache>& feature_cache() const {
    return feature_cache_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    std::vector<double> features;
    std::promise<util::Result<Verdict>> promise;
    Clock::time_point enqueued;
    std::optional<Clock::time_point> deadline;
    obs::TraceContext ctx;  // invalid = untraced
  };

  std::future<util::Result<Verdict>> reject(util::Status status);
  std::optional<Clock::time_point> resolve_deadline(double deadline_ms) const;
  void worker_loop();
  void process_batch(std::vector<Request>& batch);

  ModelRegistry& registry_;
  ServerConfig config_;
  BoundedQueue<Request> queue_;
  std::shared_ptr<features::FeatureCache> feature_cache_;
  ServerStats stats_;
  std::vector<std::thread> workers_;
  bool stopped_ = false;
};

}  // namespace gea::serve
