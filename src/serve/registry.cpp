#include "serve/registry.hpp"

namespace gea::serve {

util::Status ModelRegistry::load(const std::string& version,
                                 const std::string& dir,
                                 const CheckpointSpec& spec, bool activate) {
  auto loaded = Checkpoint::load(dir, version, spec);
  if (!loaded.is_ok()) {
    return util::Status(loaded.status()).with_context("ModelRegistry::load");
  }
  return install(version, std::move(loaded).value(), activate);
}

util::Status ModelRegistry::install(const std::string& version,
                                    CheckpointPtr checkpoint, bool activate) {
  using util::ErrorCode;
  using util::Status;
  if (checkpoint == nullptr) {
    return Status::error(ErrorCode::kInvalidArgument, "null checkpoint")
        .with_context("ModelRegistry::install");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const bool first = versions_.empty();
  versions_[version] = checkpoint;
  if (activate || first) {
    active_ = std::move(checkpoint);
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }
  return Status::ok();
}

util::Status ModelRegistry::activate(const std::string& version) {
  using util::ErrorCode;
  using util::Status;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = versions_.find(version);
  if (it == versions_.end()) {
    return Status::error(ErrorCode::kNotFound,
                         "version '" + version + "' not installed")
        .with_context("ModelRegistry::activate");
  }
  active_ = it->second;
  generation_.fetch_add(1, std::memory_order_acq_rel);
  return Status::ok();
}

util::Status ModelRegistry::retire(const std::string& version) {
  using util::ErrorCode;
  using util::Status;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = versions_.find(version);
  if (it == versions_.end()) {
    return Status::error(ErrorCode::kNotFound,
                         "version '" + version + "' not installed")
        .with_context("ModelRegistry::retire");
  }
  if (it->second == active_) {
    return Status::error(ErrorCode::kFailedPrecondition,
                         "version '" + version + "' is active")
        .with_context("ModelRegistry::retire");
  }
  versions_.erase(it);
  return Status::ok();
}

CheckpointPtr ModelRegistry::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

std::string ModelRegistry::active_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_ ? active_->version() : "";
}

std::vector<std::string> ModelRegistry::versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(versions_.size());
  for (const auto& [v, _] : versions_) out.push_back(v);
  return out;
}

}  // namespace gea::serve
