// Serving-side observability, exported in the PipelineReport style: a
// snapshot struct the caller can assert on plus a one-paragraph human
// summary() for logs and demos.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "util/stats.hpp"
#include "util/timer.hpp"

namespace gea::obs {
class Counter;
class Histogram;
}  // namespace gea::obs

namespace gea::serve {

/// Point-in-time copy of every serving counter. All latencies are in
/// milliseconds.
struct StatsSnapshot {
  // Admission.
  std::uint64_t submitted = 0;       // requests offered to the queue
  std::uint64_t accepted = 0;        // admitted past admission control
  std::uint64_t rejected_full = 0;   // refused: queue at capacity
  std::uint64_t rejected_invalid = 0;  // refused before/at inference: bad input
  std::uint64_t rejected_no_model = 0; // refused: no active checkpoint
  std::uint64_t expired = 0;         // dropped at dequeue: deadline passed

  // Execution.
  std::uint64_t completed = 0;       // verdicts delivered
  std::uint64_t batches = 0;         // inference calls issued
  std::map<std::size_t, std::uint64_t> batch_sizes;  // batch-size histogram

  // Latency percentiles (ms).
  util::LatencySummary queue_ms;   // submit -> dequeue
  util::LatencySummary infer_ms;   // batch forward, attributed per request
  util::LatencySummary total_ms;   // submit -> verdict

  double elapsed_s = 0.0;  // since server start
  double qps = 0.0;        // completed / elapsed
  std::size_t queue_depth = 0;  // at snapshot time

  /// Mean batch size, computed from the batch-size histogram itself
  /// (sum of size*count over batch_sizes / batches) so the mean and the
  /// histogram can never disagree. Expired requests are dropped at dequeue
  /// and never reach a batch, so they do not enter this mean.
  double mean_batch() const {
    if (batches == 0) return 0.0;
    std::uint64_t in_batches = 0;
    for (const auto& [size, count] : batch_sizes) {
      in_batches += static_cast<std::uint64_t>(size) * count;
    }
    return static_cast<double>(in_batches) / static_cast<double>(batches);
  }

  /// One-paragraph rendering, PipelineReport::summary() style.
  std::string summary() const;
};

/// Thread-safe accumulator behind the snapshot. One mutex guards counters
/// and the latency recorders; the serving hot path takes it twice per
/// request (admission, completion) which is noise next to a CNN forward.
///
/// Every event is also published to obs::MetricsRegistry::global() under
/// "serve.*" (handles resolved once at construction), so serving shares the
/// process-wide exportable surface with the pipeline, trainer, and attacks.
class ServerStats {
 public:
  ServerStats();

  void on_submitted();
  void on_accepted();
  void on_rejected_full();
  void on_rejected_invalid();
  void on_rejected_no_model();
  void on_expired();
  void on_batch(std::size_t batch_size);
  /// `trace_id` (when nonzero) becomes an exemplar candidate on the
  /// serve.queue_ms/infer_ms/total_ms registry histograms, linking the
  /// Prometheus export back to the request's /tracez entry.
  void on_completed(double queue_ms, double infer_ms, double total_ms,
                    std::uint64_t trace_id = 0);

  StatsSnapshot snapshot(std::size_t queue_depth = 0) const;

 private:
  mutable std::mutex mu_;
  StatsSnapshot counts_;  // latency summaries unused here; recorders below
  util::LatencyRecorder queue_ms_;
  util::LatencyRecorder infer_ms_;
  util::LatencyRecorder total_ms_;
  util::Stopwatch started_;

  // Registry mirrors ("serve.*"), shared across ServerStats instances by
  // design: the registry aggregates the process, the snapshot isolates the
  // server.
  struct Registry {
    obs::Counter* submitted;
    obs::Counter* accepted;
    obs::Counter* rejected_full;
    obs::Counter* rejected_invalid;
    obs::Counter* rejected_no_model;
    obs::Counter* expired;
    obs::Counter* completed;
    obs::Counter* batches;
    obs::Histogram* batch_size;
    obs::Histogram* queue_ms;
    obs::Histogram* infer_ms;
    obs::Histogram* total_ms;
  };
  Registry reg_{};
};

}  // namespace gea::serve
