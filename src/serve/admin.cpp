#include "serve/admin.hpp"

#include <poll.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "kernels/config.hpp"
#include "net/socket.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "serve/slo.hpp"
#include "serve/transport.hpp"
#include "util/faultinject.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace gea::serve {

using util::ErrorCode;
using util::Status;

namespace {

const char* status_text(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
  }
  return "Internal Server Error";
}

/// Serialize a Response as a full HTTP/1.0 close-after-response message.
std::vector<std::uint8_t> render_http(const AdminServer::Response& r) {
  std::ostringstream os;
  os << "HTTP/1.0 " << r.status << " " << status_text(r.status) << "\r\n"
     << "Content-Type: " << r.content_type << "\r\n"
     << "Content-Length: " << r.body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << r.body;
  const std::string s = os.str();
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

/// One admin connection: read the request, answer once, flush, close.
struct AConn {
  net::Socket sock;
  std::string req;                  // request bytes until the header end
  std::vector<std::uint8_t> wbuf;   // rendered response
  std::size_t woff = 0;
  bool responded = false;
  bool dead = false;
  util::Stopwatch age;  // connection-scoped deadline clock

  std::size_t pending() const { return wbuf.size() - woff; }
};

}  // namespace

struct AdminServer::Impl {
  AdminServer& self;
  AdminConfig config;
  AdminHooks hooks;
  net::ListenSocket listener;

  std::atomic<bool> started{false};
  std::atomic<bool> stop_requested{false};
  std::atomic<bool> loop_running{false};

  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> accept_failures{0};
  std::atomic<std::uint64_t> slow_clients{0};

  obs::Counter* m_requests;
  obs::Counter* m_accept_failures;
  obs::Counter* m_slow_clients;

  util::Stopwatch uptime;
  std::vector<std::unique_ptr<AConn>> conns;
  util::ThreadPool io_pool{1};

  Impl(AdminServer& s, const AdminConfig& cfg, AdminHooks h)
      : self(s), config(cfg), hooks(h) {
    auto& reg = obs::MetricsRegistry::global();
    m_requests = &reg.counter("admin.requests_total");
    m_accept_failures = &reg.counter("admin.accept_failures_total");
    m_slow_clients = &reg.counter("admin.slow_clients_total");
  }

  void close_conn(AConn& conn) {
    if (conn.dead) return;
    conn.dead = true;
    conn.sock.close();
  }

  void accept_ready() {
    while (true) {
      if (config.fault_injection &&
          util::fault(util::faults::kAdminAcceptFail)) {
        // Synthesized transient accept failure: the pending scrape stays in
        // the backlog and the next poll round retries it.
        accept_failures.fetch_add(1, std::memory_order_relaxed);
        m_accept_failures->inc();
        break;
      }
      auto res = listener.accept_one();
      if (res.would_block) break;
      if (!res.status.is_ok()) {
        accept_failures.fetch_add(1, std::memory_order_relaxed);
        m_accept_failures->inc();
        break;
      }
      auto conn = std::make_unique<AConn>();
      conn->sock = std::move(res.socket);
      conns.push_back(std::move(conn));
    }
  }

  void read_conn(AConn& conn) {
    std::uint8_t chunk[4096];
    while (!conn.responded) {
      auto io = conn.sock.read_some(chunk, sizeof(chunk));
      if (!io.ok() || io.eof) {
        close_conn(conn);
        return;
      }
      if (io.would_block) return;
      conn.req.append(reinterpret_cast<const char*>(chunk), io.bytes);
      if (conn.req.size() > config.max_request_bytes) {
        respond(conn, Response{400, "text/plain; charset=utf-8",
                               "request too large\n"});
        return;
      }
      if (conn.req.find("\r\n\r\n") != std::string::npos ||
          conn.req.find("\n\n") != std::string::npos) {
        dispatch(conn);
        return;
      }
    }
  }

  void dispatch(AConn& conn) {
    // Request line: METHOD SP TARGET [SP VERSION]. Anything unparseable is
    // a 400; the admin plane never guesses.
    std::istringstream line(conn.req.substr(0, conn.req.find('\n')));
    std::string method, target;
    line >> method >> target;
    if (method.empty() || target.empty() || target[0] != '/') {
      respond(conn, Response{400, "text/plain; charset=utf-8",
                             "malformed request line\n"});
      return;
    }
    respond(conn, self.handle(method, target));
  }

  void respond(AConn& conn, const Response& r) {
    if (conn.responded || conn.dead) return;
    conn.responded = true;
    conn.wbuf = render_http(r);
    requests.fetch_add(1, std::memory_order_relaxed);
    m_requests->inc();
    conn.age.reset();  // the write deadline starts at response time
  }

  void write_conn(AConn& conn) {
    while (conn.pending() > 0) {
      if (config.fault_injection &&
          util::fault(util::faults::kAdminSlowClient)) {
        // Synthesized stalled scraper: pretend the kernel accepted nothing;
        // the write deadline below disconnects it.
        return;
      }
      auto io = conn.sock.write_some(conn.wbuf.data() + conn.woff,
                                     conn.pending());
      if (io.would_block) return;
      if (io.eof || !io.ok()) {
        close_conn(conn);
        return;
      }
      conn.woff += io.bytes;
    }
    close_conn(conn);  // close-after-response
  }

  void scan_timeouts() {
    for (auto& conn : conns) {
      if (conn->dead) continue;
      const double limit =
          conn->responded ? config.write_timeout_ms : config.read_timeout_ms;
      if (conn->age.elapsed_ms() > limit) {
        slow_clients.fetch_add(1, std::memory_order_relaxed);
        m_slow_clients->inc();
        util::log_warn("admin: closing slow client (",
                       conn->responded ? "response stalled" : "request stalled",
                       " after ", conn->age.elapsed_ms(), " ms)");
        close_conn(*conn);
      }
    }
  }

  void loop() {
    loop_running.store(true, std::memory_order_release);
    std::vector<struct pollfd> pfds;
    std::vector<AConn*> pfd_conns;

    while (!stop_requested.load(std::memory_order_acquire)) {
      pfds.clear();
      pfd_conns.clear();
      if (listener.valid()) {
        pfds.push_back({listener.fd(), POLLIN, 0});
        pfd_conns.push_back(nullptr);
      }
      for (auto& conn : conns) {
        if (conn->dead) continue;
        short events = 0;
        if (!conn->responded) events |= POLLIN;
        if (conn->pending() > 0) events |= POLLOUT;
        if (events == 0) continue;
        pfds.push_back({conn->sock.fd(), events, 0});
        pfd_conns.push_back(conn.get());
      }

      int rc;
      do {
        rc = ::poll(pfds.data(), pfds.size(), 50);
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) {
        util::log_error("admin: poll failed: ", std::strerror(errno));
        break;
      }

      for (std::size_t i = 0; i < pfds.size(); ++i) {
        if (pfds[i].revents == 0) continue;
        if (pfd_conns[i] == nullptr) {
          accept_ready();
          continue;
        }
        AConn& conn = *pfd_conns[i];
        if (conn.dead) continue;
        if (pfds[i].revents & (POLLERR | POLLNVAL)) {
          close_conn(conn);
          continue;
        }
        if (pfds[i].revents & (POLLIN | POLLHUP)) read_conn(conn);
        if (!conn.dead && conn.pending() > 0) write_conn(conn);
      }
      // Flush responses built this round even when POLLOUT wasn't armed yet.
      for (auto& conn : conns) {
        if (!conn->dead && conn->pending() > 0) write_conn(*conn);
      }
      scan_timeouts();
      std::erase_if(conns,
                    [](const std::unique_ptr<AConn>& c) { return c->dead; });
    }

    for (auto& conn : conns) close_conn(*conn);
    conns.clear();
    listener.close();
    loop_running.store(false, std::memory_order_release);
  }
};

AdminServer::AdminServer(const AdminConfig& config, AdminHooks hooks)
    : impl_(std::make_unique<Impl>(*this, config, hooks)) {}

AdminServer::~AdminServer() { stop(); }

util::Status AdminServer::start() {
  if (impl_->started.exchange(true)) {
    return Status::error(ErrorCode::kFailedPrecondition,
                         "AdminServer already started");
  }
  auto st = impl_->listener.listen(impl_->config.host, impl_->config.port);
  if (!st.is_ok()) {
    impl_->started.store(false);
    return st.with_context("AdminServer::start");
  }
  impl_->io_pool.submit([this] { impl_->loop(); });
  return Status::ok();
}

void AdminServer::stop() {
  impl_->stop_requested.store(true, std::memory_order_release);
  impl_->io_pool.wait_idle();
}

bool AdminServer::running() const {
  return impl_->loop_running.load(std::memory_order_acquire);
}

std::uint16_t AdminServer::port() const { return impl_->listener.port(); }

const AdminConfig& AdminServer::config() const { return impl_->config; }

AdminSnapshot AdminServer::stats() const {
  AdminSnapshot s;
  s.requests = impl_->requests.load(std::memory_order_relaxed);
  s.accept_failures = impl_->accept_failures.load(std::memory_order_relaxed);
  s.slow_clients = impl_->slow_clients.load(std::memory_order_relaxed);
  return s;
}

AdminServer::Response AdminServer::handle(const std::string& method,
                                          const std::string& target) {
  if (method != "GET" && method != "HEAD") {
    return Response{405, "text/plain; charset=utf-8",
                    "only GET is supported\n"};
  }
  const auto qpos = target.find('?');
  const std::string path = target.substr(0, qpos);
  const std::string query =
      qpos == std::string::npos ? std::string() : target.substr(qpos + 1);

  if (path == "/metrics") {
    return Response{
        200, "text/plain; version=0.0.4; charset=utf-8",
        obs::to_prometheus(obs::MetricsRegistry::global().snapshot())};
  }
  if (path == "/healthz") {
    return Response{200, "text/plain; charset=utf-8", "ok\n"};
  }
  if (path == "/readyz") {
    // Readiness is the conjunction of every attached subsystem's view:
    // model activated, transport accepting (not draining), SLO healthy.
    std::ostringstream body;
    bool ready = true;
    auto& hooks = impl_->hooks;
    if (hooks.server != nullptr) {
      const bool has_model = hooks.server->registry().active() != nullptr;
      if (!has_model) ready = false;
      body << "model: " << (has_model ? "active" : "none") << " (generation "
           << hooks.server->registry().generation() << ")\n";
      body << "queue: " << hooks.server->queue_depth() << "/"
           << hooks.server->config().queue_capacity << "\n";
    }
    if (hooks.transport != nullptr) {
      if (hooks.transport->draining()) {
        ready = false;
        body << "transport: draining\n";
      } else if (!hooks.transport->running()) {
        ready = false;
        body << "transport: stopped\n";
      } else {
        body << "transport: accepting (port " << hooks.transport->port()
             << ")\n";
      }
    }
    if (hooks.slo != nullptr) {
      const SloSnapshot slo = hooks.slo->snapshot();
      if (slo.degraded) ready = false;
      body << "slo: " << (slo.degraded ? "degraded" : "healthy")
           << " (burn_rate " << slo.burn_rate << ", p99 " << slo.p99_ms
           << " ms, " << slo.errors << "/" << slo.requests
           << " errors in window, " << slo.breaches << " breaches)\n";
    }
    body << (ready ? "ready\n" : "not ready\n");
    return Response{ready ? 200 : 503, "text/plain; charset=utf-8",
                    body.str()};
  }
  if (path == "/tracez") {
    if (query == "format=json") {
      return Response{200, "application/json",
                      obs::chrome_trace_json(obs::TraceRecorder::global())};
    }
    // ?limit=N widens the view up to everything still in the ring (a scrape
    // joining exemplar ids against /tracez wants more than the default).
    std::size_t limit = impl_->config.tracez_limit;
    if (const std::string key = "limit="; query.rfind(key, 0) == 0) {
      const long parsed = std::atol(query.c_str() + key.size());
      if (parsed > 0) limit = static_cast<std::size_t>(parsed);
    }
    return Response{200, "text/plain; charset=utf-8",
                    obs::tracez_text(obs::TraceRecorder::global(), limit)};
  }
  if (path == "/statusz") {
    std::ostringstream body;
    body << "gea detection server admin plane\n";
#if defined(__VERSION__)
    body << "compiler: " << __VERSION__ << "\n";
#endif
    body << "uptime_s: " << impl_->uptime.elapsed_ms() / 1000.0 << "\n";
    body << "kernels: " << kernels::active_config_summary() << "\n";
    auto& hooks = impl_->hooks;
    if (hooks.server != nullptr) {
      const auto stats = hooks.server->stats();
      body << "serve: " << stats.completed << " completed, "
           << stats.queue_depth << " queued, " << stats.batches
           << " batches\n";
    }
    if (hooks.transport != nullptr) {
      const auto t = hooks.transport->stats();
      body << "transport: " << t.requests << " requests, "
           << t.active_connections << " active connections, " << t.quarantined
           << " quarantined, " << t.shed << " shed\n";
    }
    const auto& rec = obs::TraceRecorder::global();
    body << "trace_ring: " << rec.events().size() << "/" << rec.capacity()
         << " spans, " << rec.dropped() << " dropped\n";
    return Response{200, "text/plain; charset=utf-8", body.str()};
  }
  return Response{404, "text/plain; charset=utf-8",
                  "unknown endpoint " + path +
                      " (try /metrics /healthz /readyz /tracez /statusz)\n"};
}

}  // namespace gea::serve
