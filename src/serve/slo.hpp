// Rolling-window SLO monitor for the serving plane.
//
// Tracks two service-level objectives over a sliding time window — tail
// latency (p99 vs a target) and error fraction (vs an error budget) — and
// derives a degraded/healthy verdict with hysteresis. The admin plane's
// /readyz flips to 503 while degraded; the chaos bench drives the monitor
// through a full degrade/recover cycle.
//
// Window math: the window is a ring of `buckets` time slices, each
// `window_s / buckets` seconds wide. A slice holds an error count and a
// fixed-bound latency histogram (obs::default_latency_buckets_ms bounds);
// reading the window merges the live slices into one histogram and takes
// the interpolated p99. Slices are invalidated lazily by epoch number, so
// an idle monitor costs nothing and a stale window drains by itself.
//
// Burn rate = (window error fraction) / max_error_fraction: 1.0 means the
// error budget is being consumed exactly as fast as it accrues; the
// degrade threshold defaults to 1.0 and the recover threshold sits lower
// (hysteresis) so the verdict does not flap at the boundary.
//
// Time is injectable (every mutation/read has an overload taking `now_s`,
// seconds on the caller's own monotonic timeline) so tests are fully
// deterministic; the no-argument overloads use a steady clock anchored at
// construction. Verdict transitions mirror into the global metrics
// registry (slo.breach counter, slo.degraded / slo.burn_rate gauges).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace gea::serve {

struct SloConfig {
  double window_s = 10.0;   // sliding window length
  std::size_t buckets = 10; // ring granularity (slices per window)
  /// Latency objective: window p99 above this breaches the latency SLO.
  double p99_target_ms = 250.0;
  /// Error budget: tolerated fraction of failed requests in the window.
  double max_error_fraction = 0.02;
  /// Degrade when burn rate (error fraction / budget) reaches this...
  double burn_degrade = 1.0;
  /// ...and recover only once it falls back to this (hysteresis).
  double burn_recover = 0.5;
  /// Verdicts need at least this many requests in the window; an idle or
  /// barely-warmed window is always healthy.
  std::uint64_t min_requests = 50;
};

struct SloSnapshot {
  std::uint64_t requests = 0;  // in window
  std::uint64_t errors = 0;    // in window
  double error_fraction = 0.0;
  double burn_rate = 0.0;
  double p99_ms = 0.0;
  bool degraded = false;
  std::uint64_t breaches = 0;  // all-time healthy→degraded transitions
};

class SloMonitor {
 public:
  explicit SloMonitor(SloConfig config = {});

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  /// Record one finished request (`ok` = the caller got a verdict, not an
  /// error/timeout). The wall-clock overload is the production path; the
  /// `now_s` overload pins the window position for tests.
  void record(double latency_ms, bool ok);
  void record(double latency_ms, bool ok, double now_s);

  /// Current verdict, re-evaluated against the (possibly advanced) clock —
  /// a window that has drained since the last record() reads healthy.
  bool degraded();
  bool degraded(double now_s);

  SloSnapshot snapshot();
  SloSnapshot snapshot(double now_s);

  const SloConfig& config() const { return config_; }

 private:
  struct Slice {
    std::uint64_t epoch = ~0ull;  // which window rotation wrote this slice
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::vector<std::uint64_t> latency;  // bounds.size() + 1, overflow last
  };

  double now_s_unlocked() const;
  Slice& slice_for(double now_s);  // lock held
  SloSnapshot evaluate(double now_s);  // lock held; updates verdict state

  const SloConfig config_;
  const double slice_s_;
  const std::vector<double>& bounds_;
  const std::chrono::steady_clock::time_point origin_;

  std::mutex mu_;
  std::vector<Slice> ring_;
  bool degraded_ = false;
  std::uint64_t breaches_ = 0;
};

}  // namespace gea::serve
