#include "serve/checkpoint.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>

#include "ml/zoo.hpp"

namespace gea::serve {

namespace {

std::string join(const std::string& dir, const char* file) {
  return (std::filesystem::path(dir) / file).string();
}

util::Result<ml::Model> build_arch(const CheckpointSpec& spec,
                                   util::Rng& dropout_rng) {
  using util::ErrorCode;
  using util::Status;
  if (spec.input_dim == 0 || spec.num_classes() < 2) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "bad checkpoint spec: input_dim=" +
                             std::to_string(spec.input_dim) + " num_classes=" +
                             std::to_string(spec.num_classes()));
  }
  switch (spec.arch) {
    case DetectorArch::kPaperCnn:
      // Two valid convs + two pools shrink the length axis; below 8 the
      // Fig. 5 stack underflows.
      if (spec.input_dim < 8) {
        return Status::error(ErrorCode::kInvalidArgument,
                             "paper CNN needs input_dim >= 8, got " +
                                 std::to_string(spec.input_dim));
      }
      return ml::make_family_cnn(spec.input_dim, spec.schema, dropout_rng);
    case DetectorArch::kMlpBaseline:
      return ml::make_mlp_baseline(spec.input_dim, spec.num_classes());
  }
  return Status::error(ErrorCode::kInvalidArgument, "unknown detector arch");
}

}  // namespace

util::Status Checkpoint::write(const std::string& dir, ml::Model& model,
                               const features::FeatureScaler* scaler,
                               const ml::LabelSchema& schema) {
  using util::ErrorCode;
  using util::Status;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::error(ErrorCode::kNotFound,
                         "cannot create " + dir + ": " + ec.message())
        .with_context("Checkpoint::write");
  }
  if (auto st = model.save_checked(join(dir, kModelFile)); !st.is_ok()) {
    return st.with_context("Checkpoint::write");
  }
  if (scaler != nullptr) {
    if (auto st = scaler->save_checked(join(dir, kScalerFile)); !st.is_ok()) {
      return st.with_context("Checkpoint::write");
    }
  }
  {
    const std::string path = join(dir, kSchemaFile);
    std::ofstream out(path, std::ios::trunc);
    out << schema.serialize() << "\n";
    if (!out) {
      return Status::error(ErrorCode::kUnavailable, "write failed on " + path)
          .with_context("Checkpoint::write");
    }
  }
  return Status::ok();
}

util::Result<CheckpointPtr> Checkpoint::load(const std::string& dir,
                                             std::string version,
                                             const CheckpointSpec& spec) {
  using util::ErrorCode;
  using util::Status;
  if (spec.expect_scaler && spec.input_dim != features::kNumFeatures) {
    return Status::error(
               ErrorCode::kInvalidArgument,
               "FeatureScaler covers the " +
                   std::to_string(features::kNumFeatures) +
                   "-feature layout only; set expect_scaler=false for dim " +
                   std::to_string(spec.input_dim))
        .with_context("Checkpoint::load");
  }

  // shared_ptr<Checkpoint> first, const-cast into the public alias at the
  // end: the object is mutated only before publication.
  // Schema gate before any weight I/O: the on-disk schema.txt must agree
  // with the spec's schema (absent file = pre-schema checkpoint = binary).
  // Checking first keeps the failure all-or-nothing and the message about
  // the actual mismatch, not a downstream weight-size complaint.
  {
    std::ifstream in(join(dir, kSchemaFile));
    ml::LabelSchema on_disk;  // binary when schema.txt is absent
    if (in) {
      std::string line;
      std::getline(in, line);
      auto parsed = ml::LabelSchema::deserialize(line);
      if (!parsed.is_ok()) {
        return Status(parsed.status()).with_context("Checkpoint::load " + dir);
      }
      on_disk = std::move(parsed).value();
    }
    if (on_disk != spec.schema) {
      return Status::error(
                 ErrorCode::kFailedPrecondition,
                 "checkpoint schema mismatch: on disk '" +
                     on_disk.serialize() + "' (digest " +
                     std::to_string(on_disk.digest()) + "), spec '" +
                     spec.schema.serialize() + "' (digest " +
                     std::to_string(spec.schema.digest()) + ")")
          .with_context("Checkpoint::load " + dir);
    }
  }

  std::shared_ptr<Checkpoint> ckpt(new Checkpoint());
  ckpt->dropout_rng_ = std::make_unique<util::Rng>(0);  // never drawn at inference
  auto model = build_arch(spec, *ckpt->dropout_rng_);
  if (!model.is_ok()) {
    return Status(model.status()).with_context("Checkpoint::load " + dir);
  }
  ckpt->model_ = std::move(model).value();
  if (auto st = ckpt->model_.load_checked(join(dir, kModelFile)); !st.is_ok()) {
    return st.with_context("Checkpoint::load " + dir);
  }
  if (!ckpt->model_.clonable()) {
    return Status::error(ErrorCode::kFailedPrecondition,
                         "architecture has non-cloneable layers; workers "
                         "cannot build replicas")
        .with_context("Checkpoint::load " + dir);
  }
  if (spec.expect_scaler) {
    if (auto st = ckpt->scaler_.load_checked(join(dir, kScalerFile));
        !st.is_ok()) {
      return st.with_context("Checkpoint::load " + dir);
    }
    ckpt->has_scaler_ = true;
  }
  ckpt->version_ = std::move(version);
  ckpt->dir_ = dir;
  ckpt->spec_ = spec;
  return CheckpointPtr(std::move(ckpt));
}

}  // namespace gea::serve
