// Live admin/introspection plane: a minimal HTTP/1.0 server (std-only,
// reusing src/net sockets and the same poll-loop discipline as the
// transport) that exposes the process's observability surface while it
// serves traffic:
//
//   GET /metrics  Prometheus exposition of the global MetricsRegistry,
//                 histogram buckets carrying exemplar trace ids.
//   GET /healthz  liveness: 200 as long as the process responds at all.
//   GET /readyz   readiness: 200 only when a model is active, the
//                 transport (when attached) is accepting and not draining,
//                 and the SLO monitor (when attached) is not degraded;
//                 otherwise 503 with the reasons in the body.
//   GET /tracez   recent distributed traces, newest first, as text;
//                 ?format=json downloads the ring as Chrome trace JSON.
//   GET /statusz  build info, active kernel config, queue depth/capacity,
//                 uptime.
//
// The admin plane is deliberately subordinate to the data plane: it runs
// one poll loop on its own single-thread pool, every connection is
// close-after-response with bounded request/response buffers and
// timeouts, and its two fault points (admin.accept.fail,
// admin.slow_client) let tests prove a hostile or stalled scraper is
// counted and disconnected without touching serving. Request handling is
// separated from socket I/O: handle() computes a full response from
// (method, target) and is unit-testable without a socket.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/status.hpp"

namespace gea::serve {

class DetectionServer;
class TransportServer;
class SloMonitor;

struct AdminConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; the bound port is readable via port() after start().
  std::uint16_t port = 0;
  /// A connection must deliver its full request within this long.
  double read_timeout_ms = 2'000.0;
  /// ...and drain its response within this long after that (slow scrapers
  /// are closed and counted as admin.slow_client).
  double write_timeout_ms = 2'000.0;
  /// Request-header ceiling; longer requests are answered 400 and closed.
  std::size_t max_request_bytes = 8 * 1024;
  /// How many recent traces /tracez renders.
  std::size_t tracez_limit = 16;
  /// Route this server through the admin.* fault points.
  bool fault_injection = true;
};

/// What the endpoints introspect. All optional; a hook left null simply
/// drops its section from /readyz//statusz. Hooked objects must outlive
/// the AdminServer.
struct AdminHooks {
  DetectionServer* server = nullptr;
  TransportServer* transport = nullptr;
  SloMonitor* slo = nullptr;
};

/// Counters for tests (all monotonic).
struct AdminSnapshot {
  std::uint64_t requests = 0;         // HTTP requests answered
  std::uint64_t accept_failures = 0;  // transient accept() failures
  std::uint64_t slow_clients = 0;     // connections closed for stalling
};

class AdminServer {
 public:
  explicit AdminServer(const AdminConfig& config = {}, AdminHooks hooks = {});
  ~AdminServer();  // stop()

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Bind + listen + launch the poll loop. Safe to call once.
  util::Status start();
  /// Close the listener and every connection; joins the loop. Idempotent.
  void stop();

  bool running() const;
  std::uint16_t port() const;
  const AdminConfig& config() const;
  AdminSnapshot stats() const;

  /// One computed HTTP response, socket-free.
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };

  /// Route (method, target) to an endpoint and render its body. `target`
  /// may carry a query string ("/tracez?format=json"). Unit-testable and
  /// used verbatim by the socket path.
  Response handle(const std::string& method, const std::string& target);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gea::serve
