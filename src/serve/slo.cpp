#include "serve/slo.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"

namespace gea::serve {

namespace {

obs::Counter& breach_counter() {
  static obs::Counter& c = obs::MetricsRegistry::global().counter("slo.breach");
  return c;
}

obs::Gauge& degraded_gauge() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge("slo.degraded");
  return g;
}

obs::Gauge& burn_gauge() {
  static obs::Gauge& g = obs::MetricsRegistry::global().gauge("slo.burn_rate");
  return g;
}

}  // namespace

SloMonitor::SloMonitor(SloConfig config)
    : config_(config),
      slice_s_(config.window_s / static_cast<double>(
                                    std::max<std::size_t>(1, config.buckets))),
      bounds_(obs::default_latency_buckets_ms()),
      origin_(std::chrono::steady_clock::now()),
      ring_(std::max<std::size_t>(1, config.buckets)) {
  for (auto& s : ring_) s.latency.assign(bounds_.size() + 1, 0);
}

double SloMonitor::now_s_unlocked() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       origin_)
      .count();
}

SloMonitor::Slice& SloMonitor::slice_for(double now_s) {
  const auto tick =
      static_cast<std::uint64_t>(std::max(0.0, now_s) / slice_s_);
  const std::uint64_t epoch = tick / ring_.size();
  Slice& s = ring_[tick % ring_.size()];
  if (s.epoch != epoch) {
    // The ring lapped this slice since it was last written: it belongs to
    // an expired window position. Reset in place (no allocation).
    s.epoch = epoch;
    s.requests = 0;
    s.errors = 0;
    std::fill(s.latency.begin(), s.latency.end(), 0);
  }
  return s;
}

void SloMonitor::record(double latency_ms, bool ok) {
  record(latency_ms, ok, now_s_unlocked());
}

void SloMonitor::record(double latency_ms, bool ok, double now_s) {
  std::lock_guard<std::mutex> lock(mu_);
  Slice& s = slice_for(now_s);
  ++s.requests;
  if (!ok) ++s.errors;
  const auto b = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), latency_ms) -
      bounds_.begin());
  ++s.latency[b];
  evaluate(now_s);
}

bool SloMonitor::degraded() { return degraded(now_s_unlocked()); }

bool SloMonitor::degraded(double now_s) {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluate(now_s).degraded;
}

SloSnapshot SloMonitor::snapshot() { return snapshot(now_s_unlocked()); }

SloSnapshot SloMonitor::snapshot(double now_s) {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluate(now_s);
}

SloSnapshot SloMonitor::evaluate(double now_s) {
  // Merge the slices that are still inside the window ending at now_s.
  const auto tick =
      static_cast<std::uint64_t>(std::max(0.0, now_s) / slice_s_);
  SloSnapshot snap;
  std::vector<std::uint64_t> merged(bounds_.size() + 1, 0);
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    // Slice at ring index i is live iff its tick is in (tick - N, tick].
    const std::uint64_t n = ring_.size();
    // Reconstruct the slice's tick from its epoch + index.
    const Slice& s = ring_[i];
    if (s.epoch == ~0ull) continue;
    const std::uint64_t slice_tick = s.epoch * n + i;
    if (slice_tick > tick || tick - slice_tick >= n) continue;
    snap.requests += s.requests;
    snap.errors += s.errors;
    for (std::size_t b = 0; b < merged.size(); ++b) merged[b] += s.latency[b];
  }

  if (snap.requests > 0) {
    snap.error_fraction =
        static_cast<double>(snap.errors) / static_cast<double>(snap.requests);
    // Interpolated p99 over the merged window histogram, mirroring
    // obs::HistogramSnapshot::quantile.
    const double target = 0.99 * static_cast<double>(snap.requests);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < merged.size(); ++b) {
      const std::uint64_t prev = cumulative;
      cumulative += merged[b];
      if (static_cast<double>(cumulative) < target) continue;
      const double lo = b == 0 ? 0.0 : bounds_[b - 1];
      if (b >= bounds_.size() || merged[b] == 0) {
        snap.p99_ms = b >= bounds_.size() ? lo : bounds_[b];
      } else {
        const double frac = (target - static_cast<double>(prev)) /
                            static_cast<double>(merged[b]);
        snap.p99_ms = lo + frac * (bounds_[b] - lo);
      }
      break;
    }
  }
  snap.burn_rate = config_.max_error_fraction > 0.0
                       ? snap.error_fraction / config_.max_error_fraction
                       : (snap.errors > 0 ? 1e9 : 0.0);

  if (snap.requests >= config_.min_requests) {
    const bool latency_breach = snap.p99_ms > config_.p99_target_ms;
    if (!degraded_ &&
        (snap.burn_rate >= config_.burn_degrade || latency_breach)) {
      degraded_ = true;
      ++breaches_;
      breach_counter().inc();
    } else if (degraded_ && snap.burn_rate <= config_.burn_recover &&
               !latency_breach) {
      degraded_ = false;
    }
  } else if (degraded_ && snap.requests == 0) {
    // The window drained completely — nothing left to judge; recover.
    degraded_ = false;
  }

  snap.degraded = degraded_;
  snap.breaches = breaches_;
  degraded_gauge().set(degraded_ ? 1.0 : 0.0);
  burn_gauge().set(snap.burn_rate);
  return snap;
}

}  // namespace gea::serve
