// Versioned (model + scaler) checkpoint: the unit the registry hot-swaps.
//
// On disk a checkpoint is a directory holding the model weights
// ("model.bin", ml::Model format), the fitted feature scaler
// ("scaler.bin", features::FeatureScaler format), and the label schema the
// head was trained against ("schema.txt", ml::LabelSchema::serialize()
// form; absent in pre-schema checkpoints, which imply the binary default).
// Everything loads through the Status-returning *_checked paths, and a
// Checkpoint is only ever published fully constructed — a corrupt or
// truncated file, or a schema that disagrees with the spec's, yields an
// error Result and no partially-initialized object, which is what lets the
// registry promise that a failed hot-swap leaves the serving model
// untouched.
#pragma once

#include <memory>
#include <string>

#include "features/features.hpp"
#include "features/scaler.hpp"
#include "ml/label_schema.hpp"
#include "ml/model.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace gea::serve {

/// Which network to rebuild before loading weights (the weight file stores
/// parameters only; the architecture is part of the serving contract).
enum class DetectorArch {
  kPaperCnn,     // Fig. 5 CNN (ml::make_paper_cnn)
  kMlpBaseline,  // ablation MLP (ml::make_mlp_baseline)
};

struct CheckpointSpec {
  DetectorArch arch = DetectorArch::kPaperCnn;
  /// 23 = Table II features (scaled by the checkpoint's FeatureScaler);
  /// 41 = extended feature set, which has no serializable scaler — such
  /// checkpoints must set expect_scaler = false and receive pre-scaled
  /// vectors.
  std::size_t input_dim = features::kNumFeatures;
  /// Head width, class names, and the benign class all come from here; the
  /// binary default reproduces the pre-schema num_classes=2 contract.
  ml::LabelSchema schema;
  /// When false, no scaler file is loaded and requests are used as-is.
  bool expect_scaler = true;

  std::size_t num_classes() const { return schema.num_classes(); }
};

class Checkpoint {
 public:
  static constexpr const char* kModelFile = "model.bin";
  static constexpr const char* kScalerFile = "scaler.bin";
  static constexpr const char* kSchemaFile = "schema.txt";

  /// Persist `model` (and `scaler`, unless null) into `dir`, creating the
  /// directory if needed. `schema` is written alongside as schema.txt so
  /// the head width travels with the weights.
  static util::Status write(const std::string& dir, ml::Model& model,
                            const features::FeatureScaler* scaler,
                            const ml::LabelSchema& schema = {});

  /// Rebuild the architecture named by `spec`, then load weights and scaler
  /// from `dir`. Errors (missing dir, bad magic, truncation, size
  /// mismatches, non-cloneable architecture, or an on-disk schema.txt that
  /// disagrees with spec.schema) come back as a descriptive Status and
  /// never a half-loaded checkpoint. A directory without schema.txt is a
  /// pre-schema checkpoint and loads only under the binary schema.
  static util::Result<std::shared_ptr<const Checkpoint>> load(
      const std::string& dir, std::string version,
      const CheckpointSpec& spec = {});

  const std::string& version() const { return version_; }
  const CheckpointSpec& spec() const { return spec_; }
  const ml::LabelSchema& schema() const { return spec_.schema; }
  const std::string& dir() const { return dir_; }

  /// Null when spec().expect_scaler is false.
  const features::FeatureScaler* scaler() const {
    return has_scaler_ ? &scaler_ : nullptr;
  }

  /// Fresh per-worker model replica (same weights, private forward caches).
  /// Replicas must not outlive the Checkpoint: dropout layers share its Rng
  /// (never drawn from at inference), which workers guarantee by holding
  /// the shared_ptr alongside the replica.
  ml::Model clone_model() const { return model_.clone(); }

 private:
  Checkpoint() = default;

  std::unique_ptr<util::Rng> dropout_rng_;
  ml::Model model_;
  features::FeatureScaler scaler_;
  bool has_scaler_ = false;
  std::string version_;
  std::string dir_;
  CheckpointSpec spec_;
};

using CheckpointPtr = std::shared_ptr<const Checkpoint>;

}  // namespace gea::serve
