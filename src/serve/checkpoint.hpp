// Versioned (model + scaler) checkpoint: the unit the registry hot-swaps.
//
// On disk a checkpoint is a directory holding the model weights
// ("model.bin", ml::Model format) and the fitted feature scaler
// ("scaler.bin", features::FeatureScaler format). Both load through the
// Status-returning *_checked paths, and a Checkpoint is only ever published
// fully constructed — a corrupt or truncated file yields an error Result
// and no partially-initialized object, which is what lets the registry
// promise that a failed hot-swap leaves the serving model untouched.
#pragma once

#include <memory>
#include <string>

#include "features/features.hpp"
#include "features/scaler.hpp"
#include "ml/model.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace gea::serve {

/// Which network to rebuild before loading weights (the weight file stores
/// parameters only; the architecture is part of the serving contract).
enum class DetectorArch {
  kPaperCnn,     // Fig. 5 CNN (ml::make_paper_cnn)
  kMlpBaseline,  // ablation MLP (ml::make_mlp_baseline)
};

struct CheckpointSpec {
  DetectorArch arch = DetectorArch::kPaperCnn;
  /// 23 = Table II features (scaled by the checkpoint's FeatureScaler);
  /// 41 = extended feature set, which has no serializable scaler — such
  /// checkpoints must set expect_scaler = false and receive pre-scaled
  /// vectors.
  std::size_t input_dim = features::kNumFeatures;
  std::size_t num_classes = 2;
  /// When false, no scaler file is loaded and requests are used as-is.
  bool expect_scaler = true;
};

class Checkpoint {
 public:
  static constexpr const char* kModelFile = "model.bin";
  static constexpr const char* kScalerFile = "scaler.bin";

  /// Persist `model` (and `scaler`, unless null) into `dir`, creating the
  /// directory if needed.
  static util::Status write(const std::string& dir, ml::Model& model,
                            const features::FeatureScaler* scaler);

  /// Rebuild the architecture named by `spec`, then load weights and scaler
  /// from `dir`. Errors (missing dir, bad magic, truncation, size
  /// mismatches, non-cloneable architecture) come back as a descriptive
  /// Status and never a half-loaded checkpoint.
  static util::Result<std::shared_ptr<const Checkpoint>> load(
      const std::string& dir, std::string version,
      const CheckpointSpec& spec = {});

  const std::string& version() const { return version_; }
  const CheckpointSpec& spec() const { return spec_; }
  const std::string& dir() const { return dir_; }

  /// Null when spec().expect_scaler is false.
  const features::FeatureScaler* scaler() const {
    return has_scaler_ ? &scaler_ : nullptr;
  }

  /// Fresh per-worker model replica (same weights, private forward caches).
  /// Replicas must not outlive the Checkpoint: dropout layers share its Rng
  /// (never drawn from at inference), which workers guarantee by holding
  /// the shared_ptr alongside the replica.
  ml::Model clone_model() const { return model_.clone(); }

 private:
  Checkpoint() = default;

  std::unique_ptr<util::Rng> dropout_rng_;
  ml::Model model_;
  features::FeatureScaler scaler_;
  bool has_scaler_ = false;
  std::string version_;
  std::string dir_;
  CheckpointSpec spec_;
};

using CheckpointPtr = std::shared_ptr<const Checkpoint>;

}  // namespace gea::serve
