#include "serve/transport.hpp"

#include <poll.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <thread>
#include <utility>

#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/slo.hpp"
#include "util/log.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace gea::serve {

using util::ErrorCode;
using util::Status;

// --- Payload codecs --------------------------------------------------------

std::vector<std::uint8_t> encode_detect_request_payload(
    const std::vector<double>& features) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + features.size() * 8);
  net::wire::Writer w(out);
  w.put_f64_vector(features);
  return out;
}

std::vector<std::uint8_t> encode_detect_request_payload(
    const std::vector<double>& features, std::uint64_t schema_digest) {
  std::vector<std::uint8_t> out;
  out.reserve(16 + 4 + features.size() * 8);
  net::wire::Writer w(out);
  w.put_u32(kDetectPayloadSentinel);
  w.put_u32(kDetectPayloadVersion);
  w.put_u64(schema_digest);
  w.put_f64_vector(features);
  return out;
}

namespace {

/// Peek the leading u32 of a payload: the v2 sentinel, or a v1 first field
/// (a feature count / an error code — both far below the sentinel).
bool has_v2_sentinel(std::span<const std::uint8_t> payload) {
  if (payload.size() < 4) return false;
  net::wire::Reader r(payload.first(4));
  return r.get_u32() == kDetectPayloadSentinel;
}

}  // namespace

util::Result<DetectRequestPayload> decode_detect_request_payload(
    std::span<const std::uint8_t> payload) {
  DetectRequestPayload out;
  net::wire::Reader r(payload);
  if (has_v2_sentinel(payload)) {
    r.get_u32();  // sentinel
    out.version = r.get_u32();
    if (!r.ok()) return r.parse_error("detect request payload");
    if (out.version != kDetectPayloadVersion) {
      return Status::error(ErrorCode::kParseError,
                           "detect request payload version " +
                               std::to_string(out.version) + " unsupported");
    }
    out.schema_digest = r.get_u64();
  }
  out.features = r.get_f64_vector();
  if (!r.ok()) return r.parse_error("detect request payload");
  if (r.remaining() != 0) {
    return Status::error(ErrorCode::kParseError,
                         "trailing bytes after detect request payload");
  }
  return out;
}

std::vector<std::uint8_t> encode_detect_response_payload(
    const util::Result<Verdict>& result, std::uint32_t payload_version) {
  std::vector<std::uint8_t> out;
  net::wire::Writer w(out);
  if (payload_version >= 2) {
    w.put_u32(kDetectPayloadSentinel);
    w.put_u32(kDetectPayloadVersion);
  }
  if (!result.is_ok()) {
    w.put_u32(static_cast<std::uint32_t>(result.status().code()));
    w.put_string(result.status().to_string());
    return out;
  }
  const Verdict& v = result.value();
  w.put_u32(0);  // ErrorCode::kOk
  w.put_u32(static_cast<std::uint32_t>(v.predicted));
  w.put_u32(static_cast<std::uint32_t>(v.batch_size));
  w.put_string(v.model_version);
  w.put_f64_vector(v.logits);
  w.put_f64_vector(v.probabilities);
  w.put_f64(v.queue_ms);
  w.put_f64(v.infer_ms);
  w.put_f64(v.total_ms);
  if (payload_version >= 2) {
    w.put_string(v.class_name);
    w.put_u64(v.schema_digest);
  }
  return out;
}

util::Result<Verdict> decode_detect_response_payload(
    std::span<const std::uint8_t> payload) {
  net::wire::Reader r(payload);
  std::uint32_t version = 1;
  if (has_v2_sentinel(payload)) {
    r.get_u32();  // sentinel
    version = r.get_u32();
    if (!r.ok()) return r.parse_error("detect response payload");
    if (version != kDetectPayloadVersion) {
      return Status::error(ErrorCode::kParseError,
                           "detect response payload version " +
                               std::to_string(version) + " unsupported");
    }
  }
  const std::uint32_t code = r.get_u32();
  if (!r.ok()) return r.parse_error("detect response payload");
  if (code != 0) {
    if (code > static_cast<std::uint32_t>(ErrorCode::kDeadlineExceeded)) {
      return Status::error(ErrorCode::kParseError,
                           "detect response carries unknown error code " +
                               std::to_string(code));
    }
    const std::string message = r.get_string();
    if (!r.ok()) return r.parse_error("detect response payload");
    return Status::error(static_cast<ErrorCode>(code), message);
  }
  Verdict v;
  v.predicted = r.get_u32();
  v.batch_size = r.get_u32();
  v.model_version = r.get_string();
  v.logits = r.get_f64_vector();
  v.probabilities = r.get_f64_vector();
  v.queue_ms = r.get_f64();
  v.infer_ms = r.get_f64();
  v.total_ms = r.get_f64();
  if (version >= 2) {
    v.class_name = r.get_string();
    v.schema_digest = r.get_u64();
  }
  if (!r.ok() || r.remaining() != 0) {
    return r.parse_error("detect response payload");
  }
  return v;
}

// --- TransportServer -------------------------------------------------------

namespace {

/// Per-connection state owned by the event loop thread.
struct Conn {
  net::Socket sock;
  std::vector<std::uint8_t> rbuf;  // received, not yet decoded
  std::vector<std::uint8_t> wbuf;  // encoded, not yet flushed
  std::size_t woff = 0;            // flushed prefix of wbuf

  struct Pending {
    std::uint64_t id = 0;
    std::future<util::Result<Verdict>> fut;
    util::Stopwatch since;  // request receipt -> response enqueued
    obs::TraceContext ctx;  // decoded from the frame header; invalid = none
    std::uint32_t payload_version = 1;  // echoed into the response payload
    std::uint64_t schema_digest = 0;    // client's pin; 0 = none
  };
  std::deque<Pending> inflight;

  util::Stopwatch idle;     // reset whenever bytes move either way
  util::Stopwatch partial;  // reset when an incomplete frame starts
  bool has_partial = false;
  bool close_after_flush = false;
  bool dead = false;

  std::size_t wbuf_pending() const { return wbuf.size() - woff; }
};

}  // namespace

struct TransportServer::Impl {
  DetectionServer& server;
  TransportConfig config;
  net::ListenSocket listener;

  std::atomic<bool> started{false};
  std::atomic<bool> stop_requested{false};
  std::atomic<bool> loop_running{false};
  std::atomic<bool> drain_active{false};

  struct Counters {
    std::atomic<std::uint64_t> accepted{0}, closed{0}, accept_failures{0},
        frames_read{0}, frames_written{0}, bytes_read{0}, bytes_written{0},
        quarantined{0}, shed{0}, idle_timeouts{0}, read_timeouts{0},
        requests{0}, responses_ok{0}, responses_error{0};
    std::atomic<std::size_t> active{0};
  } c;

  // Registry mirrors ("net.*"), resolved once; shared across instances by
  // design (the registry aggregates the process, stats() isolates this
  // server).
  obs::Counter* m_accepted;
  obs::Counter* m_closed;
  obs::Counter* m_accept_failures;
  obs::Counter* m_frames_read;
  obs::Counter* m_frames_written;
  obs::Counter* m_quarantined;
  obs::Counter* m_shed;
  obs::Counter* m_idle_timeouts;
  obs::Counter* m_read_timeouts;
  obs::Counter* m_requests;
  obs::Gauge* m_active;
  obs::Histogram* m_request_ms;

  std::vector<std::unique_ptr<Conn>> conns;

  // The event loop runs as the single task of a dedicated util::ThreadPool,
  // so transport shutdown reuses the pool's drain-then-join discipline.
  util::ThreadPool io_pool{1};

  Impl(DetectionServer& s, const TransportConfig& cfg)
      : server(s), config(cfg) {
    auto& reg = obs::MetricsRegistry::global();
    m_accepted = &reg.counter("net.connections_accepted_total");
    m_closed = &reg.counter("net.connections_closed_total");
    m_accept_failures = &reg.counter("net.accept_failures_total");
    m_frames_read = &reg.counter("net.frames_read_total");
    m_frames_written = &reg.counter("net.frames_written_total");
    m_quarantined = &reg.counter("net.frames_quarantined_total");
    m_shed = &reg.counter("net.requests_shed_total");
    m_idle_timeouts = &reg.counter("net.idle_timeouts_total");
    m_read_timeouts = &reg.counter("net.read_timeouts_total");
    m_requests = &reg.counter("net.requests_total");
    m_active = &reg.gauge("net.active_connections");
    m_request_ms = &reg.histogram("net.request_ms");
  }

  void close_conn(Conn& conn) {
    if (conn.dead) return;
    conn.dead = true;
    conn.sock.close();
    c.closed.fetch_add(1, std::memory_order_relaxed);
    m_closed->inc();
  }

  /// Append an encoded frame to the connection's write buffer, enforcing
  /// the hard 2x cap: a peer that is not draining responses is closed
  /// rather than buffered for.
  void enqueue_frame(Conn& conn, const net::Frame& frame) {
    const auto bytes = net::encode_frame(frame, config.fault_injection);
    conn.wbuf.insert(conn.wbuf.end(), bytes.begin(), bytes.end());
    c.frames_written.fetch_add(1, std::memory_order_relaxed);
    m_frames_written->inc();
    if (conn.wbuf_pending() > 2 * config.write_buffer_limit) {
      util::log_warn("net: closing connection over hard write-buffer cap (",
                     conn.wbuf_pending(), " bytes pending)");
      close_conn(conn);
    }
  }

  void respond(Conn& conn, std::uint64_t id,
               const util::Result<Verdict>& result,
               std::uint32_t payload_version = 1) {
    net::Frame f;
    f.type = net::FrameType::kDetectResponse;
    f.request_id = id;
    f.payload = encode_detect_response_payload(result, payload_version);
    enqueue_frame(conn, f);
    if (result.is_ok()) {
      c.responses_ok.fetch_add(1, std::memory_order_relaxed);
    } else {
      c.responses_error.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void respond_error(Conn& conn, std::uint64_t id, Status status) {
    respond(conn, id,
            util::Result<Verdict>(
                std::move(status.with_context("TransportServer"))));
  }

  void shed(Conn& conn, std::uint64_t id, const char* why) {
    c.shed.fetch_add(1, std::memory_order_relaxed);
    m_shed->inc();
    // A shed request never reached the queue; it still consumed error
    // budget from the client's point of view.
    if (config.slo != nullptr) config.slo->record(0.0, /*ok=*/false);
    respond_error(conn, id, Status::error(ErrorCode::kUnavailable, why));
  }

  /// A malformed frame: count it, then either answer-and-continue
  /// (lenient + recoverable) or close the connection (strict, or the
  /// stream cannot be resynchronized).
  void quarantine(Conn& conn, std::uint64_t id, const Status& status,
                  bool recoverable) {
    c.quarantined.fetch_add(1, std::memory_order_relaxed);
    m_quarantined->inc();
    if (config.slo != nullptr) config.slo->record(0.0, /*ok=*/false);
    util::log_warn("net: quarantined frame: ", status.to_string());
    if (!recoverable || config.strict) {
      close_conn(conn);
      return;
    }
    respond_error(conn, id, status);
  }

  void dispatch_frame(Conn& conn, net::Frame&& frame) {
    if (frame.type != net::FrameType::kDetectRequest) {
      quarantine(conn, frame.request_id,
                 Status::error(ErrorCode::kInvalidArgument,
                               std::string("unexpected frame type ") +
                                   net::frame_type_name(frame.type)),
                 /*recoverable=*/true);
      return;
    }
    c.requests.fetch_add(1, std::memory_order_relaxed);
    m_requests->inc();

    // Per-connection admission control, layered in front of the queue's
    // global admission control: shed instead of buffering unboundedly.
    if (conn.inflight.size() >= config.max_inflight_per_conn) {
      shed(conn, frame.request_id, "connection in-flight limit reached");
      return;
    }
    if (conn.wbuf_pending() > config.write_buffer_limit) {
      shed(conn, frame.request_id, "connection write buffer full");
      return;
    }

    auto request = decode_detect_request_payload(frame.payload);
    if (!request.is_ok()) {
      respond_error(conn, frame.request_id,
                    Status(request.status()).with_context("detect request"));
      return;
    }

    // 0 budget on the wire = no deadline from the client; inherit the
    // server's default (-1) rather than forcing "none".
    const double deadline_ms =
        frame.deadline_budget_us > 0
            ? static_cast<double>(frame.deadline_budget_us) / 1000.0
            : -1.0;
    Conn::Pending p;
    p.id = frame.request_id;
    p.ctx = frame.trace;
    p.payload_version = request.value().version;
    p.schema_digest = request.value().schema_digest;
    // The decoded trace context flows into the queue with the request, so
    // the batch worker's queue-wait/inference spans land under the same
    // trace as the client's send span.
    p.fut = server.submit(std::move(request.value().features), deadline_ms,
                          frame.trace);
    conn.inflight.push_back(std::move(p));
  }

  /// Drain readable bytes, then decode as many frames as arrived.
  void read_conn(Conn& conn) {
    std::uint8_t chunk[16 * 1024];
    std::size_t round = 0;
    while (round < 256 * 1024) {  // fairness cap per poll round
      auto io = conn.sock.read_some(chunk, sizeof(chunk));
      if (!io.ok()) {
        util::log_warn("net: read error: ", io.status.to_string());
        close_conn(conn);
        return;
      }
      if (io.eof) {
        close_conn(conn);
        return;
      }
      if (io.would_block) break;
      conn.rbuf.insert(conn.rbuf.end(), chunk, chunk + io.bytes);
      round += io.bytes;
      c.bytes_read.fetch_add(io.bytes, std::memory_order_relaxed);
      conn.idle.reset();
      if (io.bytes < sizeof(chunk)) break;  // likely drained
    }

    std::size_t off = 0;
    while (!conn.dead) {
      auto res = net::decode_frame(
          std::span<const std::uint8_t>(conn.rbuf.data() + off,
                                        conn.rbuf.size() - off),
          config.max_payload_bytes, config.fault_injection);
      if (res.kind == net::DecodeResult::Kind::kNeedMore) break;
      off += res.consumed;
      if (res.kind == net::DecodeResult::Kind::kError) {
        quarantine(conn, res.frame.request_id, res.status, res.recoverable);
        if (conn.dead) break;
        continue;
      }
      c.frames_read.fetch_add(1, std::memory_order_relaxed);
      m_frames_read->inc();
      dispatch_frame(conn, std::move(res.frame));
    }
    if (off > 0) conn.rbuf.erase(conn.rbuf.begin(), conn.rbuf.begin() + off);

    // Track how long an incomplete frame has been dribbling in (slow loris).
    if (conn.rbuf.empty()) {
      conn.has_partial = false;
    } else if (!conn.has_partial) {
      conn.has_partial = true;
      conn.partial.reset();
    }
  }

  /// Move completed verdicts from the in-flight set into the write buffer.
  void pump_completions(Conn& conn) {
    for (auto it = conn.inflight.begin();
         it != conn.inflight.end() && !conn.dead;) {
      if (it->fut.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        ++it;
        continue;
      }
      auto result = it->fut.get();
      if (result.is_ok() && it->schema_digest != 0 &&
          result.value().schema_digest != it->schema_digest) {
        // The client pinned a schema and the serving checkpoint moved on
        // (or never matched): refuse rather than let the caller misread
        // class ids that mean something else now.
        result = util::Result<Verdict>(Status::error(
            ErrorCode::kFailedPrecondition,
            "schema digest mismatch: request pinned " +
                std::to_string(it->schema_digest) + ", serving " +
                std::to_string(result.value().schema_digest)));
      }
      const double ms = it->since.elapsed_ms();
      m_request_ms->observe(ms, it->ctx.trace_id);
      if (it->ctx.valid()) {
        // Server-side wall time for the request (receipt -> response
        // enqueued), parented under the client's send span.
        auto& rec = obs::TraceRecorder::global();
        rec.record_interval("net.server_request", it->ctx,
                            rec.now_us() - ms * 1000.0, ms * 1000.0);
      }
      if (config.slo != nullptr) config.slo->record(ms, result.is_ok());
      respond(conn, it->id, result, it->payload_version);
      it = conn.inflight.erase(it);
    }
  }

  void write_conn(Conn& conn) {
    while (conn.wbuf_pending() > 0) {
      auto io = conn.sock.write_some(conn.wbuf.data() + conn.woff,
                                     conn.wbuf_pending());
      if (io.would_block) break;
      if (io.eof || !io.ok()) {
        close_conn(conn);
        return;
      }
      conn.woff += io.bytes;
      c.bytes_written.fetch_add(io.bytes, std::memory_order_relaxed);
      conn.idle.reset();
    }
    if (conn.wbuf_pending() == 0 && !conn.wbuf.empty()) {
      // Frame accounting on flush completion: pending/2 would be a guess,
      // so count frames when the buffer fully drains instead of per write.
      conn.wbuf.clear();
      conn.woff = 0;
      if (conn.close_after_flush) close_conn(conn);
    } else if (conn.woff > 64 * 1024) {
      conn.wbuf.erase(conn.wbuf.begin(), conn.wbuf.begin() + conn.woff);
      conn.woff = 0;
    }
  }

  void accept_ready() {
    while (true) {
      auto res = listener.accept_one();
      if (res.would_block) break;
      if (!res.status.is_ok()) {
        c.accept_failures.fetch_add(1, std::memory_order_relaxed);
        m_accept_failures->inc();
        break;  // retry on the next poll round
      }
      if (conns.size() >= config.max_connections) {
        // Admission control for connection storms: accept to drain the
        // backlog, then close immediately — counted, bounded, no hang.
        c.shed.fetch_add(1, std::memory_order_relaxed);
        m_shed->inc();
        continue;  // res.socket closes on scope exit
      }
      auto conn = std::make_unique<Conn>();
      conn->sock = std::move(res.socket);
      conns.push_back(std::move(conn));
      c.accepted.fetch_add(1, std::memory_order_relaxed);
      m_accepted->inc();
    }
  }

  void scan_timeouts() {
    for (auto& conn : conns) {
      if (conn->dead) continue;
      if (conn->has_partial &&
          conn->partial.elapsed_ms() > config.read_timeout_ms) {
        c.read_timeouts.fetch_add(1, std::memory_order_relaxed);
        m_read_timeouts->inc();
        util::log_warn("net: closing slow-loris connection (partial frame ",
                       conn->partial.elapsed_ms(), " ms old)");
        close_conn(*conn);
        continue;
      }
      if (conn->inflight.empty() &&
          conn->idle.elapsed_ms() > config.idle_timeout_ms) {
        c.idle_timeouts.fetch_add(1, std::memory_order_relaxed);
        m_idle_timeouts->inc();
        close_conn(*conn);
      }
    }
  }

  void reap_dead() {
    std::erase_if(conns, [](const std::unique_ptr<Conn>& conn) {
      return conn->dead;
    });
    c.active.store(conns.size(), std::memory_order_relaxed);
    m_active->set(static_cast<double>(conns.size()));
  }

  void loop() {
    loop_running.store(true, std::memory_order_release);
    bool draining = false;
    util::Stopwatch drain_sw;
    std::vector<struct pollfd> pfds;
    std::vector<Conn*> pfd_conns;

    while (true) {
      if (!draining && stop_requested.load(std::memory_order_acquire)) {
        // Graceful drain: stop accepting first; in-flight requests finish
        // and flush below, then connections close.
        draining = true;
        drain_active.store(true, std::memory_order_release);
        drain_sw.reset();
        listener.close();
      }
      if (draining) {
        bool busy = false;
        for (auto& conn : conns) {
          if (!conn->dead &&
              (!conn->inflight.empty() || conn->wbuf_pending() > 0)) {
            busy = true;
            break;
          }
        }
        if (!busy || drain_sw.elapsed_ms() > config.drain_timeout_ms) break;
      }

      pfds.clear();
      pfd_conns.clear();
      if (!draining && listener.valid()) {
        pfds.push_back({listener.fd(), POLLIN, 0});
        pfd_conns.push_back(nullptr);
      }
      bool any_inflight = false;
      for (auto& conn : conns) {
        if (conn->dead) continue;
        short events = 0;
        // During drain no new requests are read; only responses flush out.
        if (!draining) events |= POLLIN;
        if (conn->wbuf_pending() > 0) events |= POLLOUT;
        if (!conn->inflight.empty()) any_inflight = true;
        if (events == 0 && conn->inflight.empty()) continue;
        if (events == 0) continue;  // in-flight only: completions pump below
        pfds.push_back({conn->sock.fd(), events, 0});
        pfd_conns.push_back(conn.get());
      }

      // In-flight verdicts are detected by polling their futures, so the
      // poll timeout doubles as the completion latency bound: tight while
      // work is outstanding, relaxed when the loop is only watching fds.
      const int timeout_ms = any_inflight || draining ? 1 : 20;
      int rc;
      do {
        rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) {
        util::log_error("net: poll failed: ", std::strerror(errno));
        break;
      }

      for (std::size_t i = 0; i < pfds.size(); ++i) {
        if (pfds[i].revents == 0) continue;
        if (pfd_conns[i] == nullptr) {
          accept_ready();
          continue;
        }
        Conn& conn = *pfd_conns[i];
        if (conn.dead) continue;
        if (pfds[i].revents & (POLLERR | POLLNVAL)) {
          close_conn(conn);
          continue;
        }
        if (pfds[i].revents & (POLLIN | POLLHUP)) read_conn(conn);
      }

      for (auto& conn : conns) {
        if (conn->dead) continue;
        pump_completions(*conn);
        if (!conn->dead && conn->wbuf_pending() > 0) write_conn(*conn);
      }
      if (!draining) scan_timeouts();
      reap_dead();
    }

    for (auto& conn : conns) close_conn(*conn);
    reap_dead();
    listener.close();
    loop_running.store(false, std::memory_order_release);
  }

  TransportSnapshot snapshot() const {
    TransportSnapshot s;
    s.accepted = c.accepted.load(std::memory_order_relaxed);
    s.closed = c.closed.load(std::memory_order_relaxed);
    s.accept_failures = c.accept_failures.load(std::memory_order_relaxed);
    s.frames_read = c.frames_read.load(std::memory_order_relaxed);
    s.frames_written = c.frames_written.load(std::memory_order_relaxed);
    s.bytes_read = c.bytes_read.load(std::memory_order_relaxed);
    s.bytes_written = c.bytes_written.load(std::memory_order_relaxed);
    s.quarantined = c.quarantined.load(std::memory_order_relaxed);
    s.shed = c.shed.load(std::memory_order_relaxed);
    s.idle_timeouts = c.idle_timeouts.load(std::memory_order_relaxed);
    s.read_timeouts = c.read_timeouts.load(std::memory_order_relaxed);
    s.requests = c.requests.load(std::memory_order_relaxed);
    s.responses_ok = c.responses_ok.load(std::memory_order_relaxed);
    s.responses_error = c.responses_error.load(std::memory_order_relaxed);
    s.active_connections = c.active.load(std::memory_order_relaxed);
    return s;
  }
};

TransportServer::TransportServer(DetectionServer& server,
                                 const TransportConfig& config)
    : impl_(std::make_unique<Impl>(server, config)) {}

TransportServer::~TransportServer() { stop(); }

util::Status TransportServer::start() {
  if (impl_->started.exchange(true)) {
    return Status::error(ErrorCode::kFailedPrecondition,
                         "TransportServer already started");
  }
  auto st = impl_->listener.listen(impl_->config.host, impl_->config.port);
  if (!st.is_ok()) {
    impl_->started.store(false);
    return st.with_context("TransportServer::start");
  }
  impl_->listener.set_fault_injection(impl_->config.fault_injection);
  impl_->io_pool.submit([this] { impl_->loop(); });
  return Status::ok();
}

void TransportServer::stop() {
  impl_->stop_requested.store(true, std::memory_order_release);
  impl_->io_pool.wait_idle();
}

bool TransportServer::running() const {
  return impl_->loop_running.load(std::memory_order_acquire);
}

bool TransportServer::draining() const {
  return impl_->drain_active.load(std::memory_order_acquire) &&
         impl_->loop_running.load(std::memory_order_acquire);
}

std::uint16_t TransportServer::port() const { return impl_->listener.port(); }

const TransportConfig& TransportServer::config() const {
  return impl_->config;
}

TransportSnapshot TransportServer::stats() const { return impl_->snapshot(); }

// --- RemoteClient ----------------------------------------------------------

namespace {

obs::Counter& client_counter(const char* name) {
  return obs::MetricsRegistry::global().counter(name);
}

}  // namespace

RemoteClient::RemoteClient(const ClientConfig& config)
    : config_(config), jitter_(config.jitter_seed) {}

RemoteClient::~RemoteClient() = default;

void RemoteClient::disconnect() {
  sock_.close();
  rbuf_.clear();
}

util::Status RemoteClient::ensure_connected(double budget_ms) {
  if (sock_.valid()) return Status::ok();
  const int timeout =
      static_cast<int>(std::ceil(std::max(budget_ms, 1.0)));
  auto sock = net::connect_to(config_.host, config_.port, timeout);
  if (!sock.is_ok()) {
    return Status(sock.status()).with_context("RemoteClient::connect");
  }
  sock_ = std::move(sock).value();
  rbuf_.clear();
  if (stats_.attempts > 0) {
    ++stats_.reconnects;
    client_counter("net.client.reconnects_total").inc();
  }
  return Status::ok();
}

RemoteClient::Attempt RemoteClient::attempt_once(
    const std::vector<double>& features, std::uint64_t request_id,
    double budget_ms, bool has_deadline, const obs::TraceContext& ctx) {
  ++stats_.attempts;
  client_counter("net.client.attempts_total").inc();

  // One send span per wire attempt (retries each get their own), parented
  // under the request's root span. Its context rides the frame header, so
  // every server-side span for this attempt nests under it.
  obs::TraceSpan send_span("client.send", ctx);

  const auto transport_fail = [this](Status st) {
    disconnect();
    ++stats_.transport_errors;
    client_counter("net.client.transport_errors_total").inc();
    return Attempt(util::Result<Verdict>(
                       std::move(st.with_context("RemoteClient"))),
                   /*transport=*/true);
  };

  net::Frame f;
  f.type = net::FrameType::kDetectRequest;
  f.request_id = request_id;
  // The remaining deadline budget rides the header, so the server's queue
  // deadline is exactly what the client has left — not what it started with.
  f.deadline_budget_us = has_deadline
                             ? static_cast<std::uint64_t>(budget_ms * 1000.0)
                             : 0;
  f.trace = ctx.valid() ? send_span.context() : obs::TraceContext{};
  f.payload = config_.payload_version >= 2
                  ? encode_detect_request_payload(features,
                                                  config_.schema_digest)
                  : encode_detect_request_payload(features);
  const auto bytes = net::encode_frame(f, /*inject_fault=*/false);

  util::Stopwatch sw;
  const auto remaining = [&] { return budget_ms - sw.elapsed_ms(); };

  std::size_t off = 0;
  while (off < bytes.size()) {
    if (remaining() <= 0.0) {
      return transport_fail(Status::error(ErrorCode::kDeadlineExceeded,
                                          "send timed out"));
    }
    auto io = sock_.write_some(bytes.data() + off, bytes.size() - off);
    if (!io.ok()) return transport_fail(std::move(io.status));
    if (io.eof) {
      return transport_fail(
          Status::error(ErrorCode::kUnavailable, "connection reset by peer"));
    }
    off += io.bytes;
    if (io.would_block) {
      auto ev = sock_.poll_one(
          POLLOUT, static_cast<int>(std::ceil(std::max(remaining(), 1.0))));
      if (!ev.is_ok()) return transport_fail(Status(ev.status()));
    }
  }

  while (true) {
    // Decode whatever is buffered before waiting for more bytes.
    std::size_t consumed = 0;
    while (true) {
      auto res = net::decode_frame(
          std::span<const std::uint8_t>(rbuf_.data() + consumed,
                                        rbuf_.size() - consumed),
          net::kMaxPayloadBytes, /*inject_fault=*/false);
      if (res.kind == net::DecodeResult::Kind::kNeedMore) break;
      consumed += res.consumed;
      if (res.kind == net::DecodeResult::Kind::kError) {
        // Any malformed response frame means the stream cannot be trusted;
        // drop the connection and let the retry layer rebuild it.
        rbuf_.clear();
        return transport_fail(
            Status(res.status).with_context("response frame"));
      }
      if (res.frame.type != net::FrameType::kDetectResponse ||
          res.frame.request_id != request_id) {
        continue;  // stale response from an abandoned attempt; skip it
      }
      rbuf_.erase(rbuf_.begin(), rbuf_.begin() + consumed);
      auto verdict = decode_detect_response_payload(res.frame.payload);
      if (!verdict.is_ok() &&
          verdict.status().code() == ErrorCode::kParseError) {
        return transport_fail(Status(verdict.status()));
      }
      return Attempt(std::move(verdict), /*transport=*/false);
    }
    if (consumed > 0) rbuf_.erase(rbuf_.begin(), rbuf_.begin() + consumed);

    if (remaining() <= 0.0) {
      return transport_fail(Status::error(ErrorCode::kDeadlineExceeded,
                                          "response timed out"));
    }
    auto ev = sock_.poll_one(
        POLLIN, static_cast<int>(std::ceil(std::max(remaining(), 1.0))));
    if (!ev.is_ok()) return transport_fail(Status(ev.status()));
    if (ev.value() == 0) continue;  // timeout slice; remaining() re-checks
    std::uint8_t chunk[16 * 1024];
    auto io = sock_.read_some(chunk, sizeof(chunk));
    if (!io.ok()) return transport_fail(std::move(io.status));
    if (io.eof) {
      return transport_fail(Status::error(ErrorCode::kUnavailable,
                                          "connection closed by server"));
    }
    if (!io.would_block) {
      rbuf_.insert(rbuf_.end(), chunk, chunk + io.bytes);
    }
  }
}

util::Result<Verdict> RemoteClient::detect(const std::vector<double>& features,
                                           double deadline_ms) {
  ++stats_.requests;
  const bool has_deadline = deadline_ms > 0.0;
  util::Stopwatch overall;
  Status last = Status::error(ErrorCode::kUnavailable, "no attempt made");

  // Sampling decision for this request: every trace_sample_every-th call
  // roots a distributed trace that the send spans (and, over the wire, the
  // server spans) parent under.
  const bool traced =
      config_.trace_sample_every > 0 &&
      (stats_.requests - 1) % config_.trace_sample_every == 0;
  std::optional<obs::TraceSpan> root;
  obs::TraceContext root_ctx;
  if (traced) {
    root.emplace("client.detect", obs::start_trace(/*sampled=*/true));
    root_ctx = root->context();
  }
  stats_.last_trace_id = root_ctx.trace_id;

  for (std::size_t attempt = 0;; ++attempt) {
    double budget = has_deadline ? deadline_ms - overall.elapsed_ms()
                                 : config_.request_timeout_ms;
    if (has_deadline && budget <= 0.0) {
      return Status::error(ErrorCode::kDeadlineExceeded,
                           "deadline exhausted after " +
                               std::to_string(attempt) + " attempts; last: " +
                               last.to_string())
          .with_context("RemoteClient::detect");
    }

    Attempt a = [&] {
      auto st = ensure_connected(std::min(budget, config_.connect_timeout_ms));
      if (!st.is_ok()) {
        ++stats_.attempts;
        client_counter("net.client.attempts_total").inc();
        ++stats_.transport_errors;
        client_counter("net.client.transport_errors_total").inc();
        return Attempt(util::Result<Verdict>(std::move(st)),
                       /*transport=*/true);
      }
      // A fresh id per attempt: a late response to an abandoned attempt can
      // then never be mistaken for the current one.
      return attempt_once(features, next_id_++, budget, has_deadline,
                          root_ctx);
    }();

    if (a.result.is_ok()) return a.result;
    const ErrorCode code = a.result.status().code();
    // Retriable: everything transport-level, the server's transient
    // refusals (kUnavailable: queue full / no model / shed), and
    // kCorruptData (the request was damaged in flight — resend it).
    const bool retriable = a.transport || code == ErrorCode::kUnavailable ||
                           code == ErrorCode::kCorruptData;
    if (!retriable) return a.result;
    last = a.result.status();

    if (attempt >= config_.max_retries) {
      return Status(last).with_context("RemoteClient::detect: retries exhausted");
    }
    double backoff =
        std::min(config_.backoff_initial_ms *
                     std::pow(config_.backoff_multiplier,
                              static_cast<double>(attempt)),
                 config_.backoff_max_ms);
    backoff *= 1.0 + config_.backoff_jitter * (2.0 * jitter_.uniform() - 1.0);
    if (has_deadline) {
      const double rem = deadline_ms - overall.elapsed_ms();
      // Too little budget left to fund the backoff plus a useful attempt.
      if (rem <= backoff + 1.0) {
        return Status::error(ErrorCode::kDeadlineExceeded,
                             "deadline cannot fund another retry; last: " +
                                 last.to_string())
            .with_context("RemoteClient::detect");
      }
    }
    {
      // The backoff gap shows up in the trace as its own span, so a slow
      // traced request is attributable to retries rather than the server.
      obs::TraceSpan backoff_span("client.backoff", root_ctx);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff));
    }
    ++stats_.retries;
    client_counter("net.client.retries_total").inc();
  }
}

}  // namespace gea::serve
