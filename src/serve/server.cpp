#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "cfg/cfg.hpp"
#include "features/extended.hpp"
#include "features/features.hpp"
#include "obs/trace.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace gea::serve {

using util::ErrorCode;
using util::Status;

DetectionServer::DetectionServer(ModelRegistry& registry,
                                 const ServerConfig& config)
    : registry_(registry),
      config_(config),
      queue_(config.queue_capacity == 0 ? 1 : config.queue_capacity),
      feature_cache_(config.feature_cache_capacity == 0
                         ? nullptr
                         : std::make_shared<features::FeatureCache>(
                               config.feature_cache_capacity)) {
  if (config_.workers == 0) config_.workers = util::default_thread_count();
  if (config_.max_batch == 0) config_.max_batch = 1;
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

DetectionServer::~DetectionServer() { stop(); }

void DetectionServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  queue_.close();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void DetectionServer::pause() { queue_.set_hold(true); }
void DetectionServer::resume() { queue_.set_hold(false); }

std::future<util::Result<Verdict>> DetectionServer::reject(
    util::Status status) {
  std::promise<util::Result<Verdict>> p;
  auto f = p.get_future();
  p.set_value(util::Result<Verdict>(std::move(status)));
  return f;
}

std::optional<DetectionServer::Clock::time_point>
DetectionServer::resolve_deadline(double deadline_ms) const {
  if (deadline_ms < 0.0) deadline_ms = config_.default_deadline_ms;
  if (deadline_ms <= 0.0) return std::nullopt;
  return Clock::now() +
         std::chrono::duration_cast<Clock::duration>(
             std::chrono::duration<double, std::milli>(deadline_ms));
}

std::future<util::Result<Verdict>> DetectionServer::submit(
    std::vector<double> features, double deadline_ms, obs::TraceContext ctx) {
  stats_.on_submitted();
  if (registry_.active() == nullptr) {
    stats_.on_rejected_no_model();
    return reject(Status::error(ErrorCode::kUnavailable, "no active model")
                      .with_context("DetectionServer::submit"));
  }
  Request req;
  req.features = std::move(features);
  req.enqueued = Clock::now();
  req.deadline = resolve_deadline(deadline_ms);
  req.ctx = ctx;
  auto future = req.promise.get_future();
  if (!queue_.try_push(req)) {
    stats_.on_rejected_full();
    return reject(Status::error(ErrorCode::kUnavailable,
                                "queue full (capacity " +
                                    std::to_string(queue_.capacity()) + ")")
                      .with_context("DetectionServer::submit"));
  }
  stats_.on_accepted();
  return future;
}

std::future<util::Result<Verdict>> DetectionServer::submit(
    const isa::Program& program, double deadline_ms) {
  auto ckpt = registry_.active();
  if (ckpt == nullptr) {
    stats_.on_submitted();
    stats_.on_rejected_no_model();
    return reject(Status::error(ErrorCode::kUnavailable, "no active model")
                      .with_context("DetectionServer::submit"));
  }
  // Featurize on the caller's thread: keeps worker batches pure inference
  // and makes CFG-extraction cost visible to the client that pays for it.
  // The thread-local engine reuses traversal scratch across submissions;
  // the server-wide cache short-circuits resubmitted graphs.
  cfg::CfgOptions opts;
  opts.main_only = true;  // the paper's per-binary convention
  opts.label_blocks = false;
  std::vector<double> row;
  try {
    const cfg::Cfg graph = cfg::extract_cfg(program, opts);
    auto& engine = features::FeatureEngine::local();
    if (ckpt->spec().input_dim == features::kNumExtendedFeatures) {
      row = features::extract_extended_features(graph.graph, engine,
                                                feature_cache_.get());
    } else {
      const auto fv = engine.extract(graph.graph, feature_cache_.get());
      row.assign(fv.begin(), fv.end());
    }
  } catch (const std::invalid_argument& e) {
    stats_.on_submitted();
    stats_.on_rejected_invalid();
    return reject(Status::error(ErrorCode::kInvalidArgument, e.what())
                      .with_context("DetectionServer::submit(program)"));
  }
  return submit(std::move(row), deadline_ms);
}

util::Result<Verdict> DetectionServer::detect(std::vector<double> features,
                                              double deadline_ms) {
  return submit(std::move(features), deadline_ms).get();
}

util::Result<Verdict> DetectionServer::detect(const isa::Program& program,
                                              double deadline_ms) {
  return submit(program, deadline_ms).get();
}

void DetectionServer::worker_loop() {
  std::vector<Request> batch;
  while (true) {
    auto first = queue_.pop();
    if (!first.has_value()) return;  // closed and drained
    batch.clear();
    batch.push_back(std::move(*first));
    if (config_.max_batch > 1) {
      // Drain whatever is already queued in one lock acquisition (avoids
      // N workers waking and fragmenting a deep queue into singles), then
      // linger for stragglers until the window or the batch cap is hit.
      auto drained = queue_.pop_up_to(config_.max_batch - batch.size());
      for (auto& r : drained) batch.push_back(std::move(r));
      util::Stopwatch linger;
      while (batch.size() < config_.max_batch) {
        const double waited = linger.elapsed_us();
        if (waited >= static_cast<double>(config_.max_wait_us)) break;
        auto more = queue_.pop_for(std::chrono::microseconds(
            config_.max_wait_us - static_cast<std::size_t>(waited)));
        if (!more.has_value()) break;  // timeout, or closed and drained
        batch.push_back(std::move(*more));
        auto extra = queue_.pop_up_to(config_.max_batch - batch.size());
        for (auto& r : extra) batch.push_back(std::move(r));
      }
    }
    process_batch(batch);
  }
}

namespace {

/// Worker-private serving state, refreshed on registry generation change.
struct Replica {
  CheckpointPtr ckpt;            // keeps the dropout Rng + scaler alive
  std::optional<ml::Model> model;
  std::uint64_t generation = 0;  // registry starts at 0; activation bumps
};

thread_local Replica t_replica;

/// Max-subtracted softmax, same expression order as
/// DifferentiableClassifier::probabilities so served probabilities match
/// the offline classifier bit for bit.
std::vector<double> softmax(const std::vector<double>& z) {
  double mx = z[0];
  for (double v : z) mx = std::max(mx, v);
  std::vector<double> p(z.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    p[i] = std::exp(z[i] - mx);
    sum += p[i];
  }
  for (auto& v : p) v /= sum;
  return p;
}

/// First-wins argmax, matching DifferentiableClassifier::predict.
std::size_t argmax(const std::vector<double>& z) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < z.size(); ++i) {
    if (z[i] > z[best]) best = i;
  }
  return best;
}

}  // namespace

void DetectionServer::process_batch(std::vector<Request>& batch) {
  obs::TraceSpan batch_span("serve.batch");
  const auto dequeued = Clock::now();

  // Refresh the private replica iff the registry moved (one atomic load on
  // the steady path; a clone only right after a hot-swap).
  const std::uint64_t gen = registry_.generation();
  if (gen != t_replica.generation || !t_replica.model.has_value()) {
    t_replica.ckpt = registry_.active();
    t_replica.model.reset();
    if (t_replica.ckpt != nullptr) t_replica.model = t_replica.ckpt->clone_model();
    t_replica.generation = gen;
  }
  if (!t_replica.model.has_value()) {
    for (auto& req : batch) {
      stats_.on_rejected_no_model();
      req.promise.set_value(util::Result<Verdict>(
          Status::error(ErrorCode::kUnavailable, "no active model")
              .with_context("DetectionServer::process_batch")));
    }
    return;
  }
  const Checkpoint& ckpt = *t_replica.ckpt;
  const std::size_t dim = ckpt.spec().input_dim;

  // Deadline and shape checks at dequeue: expired or malformed requests
  // never pay for (or pollute) the inference pass.
  std::vector<Request*> live;
  live.reserve(batch.size());
  for (auto& req : batch) {
    if (req.deadline.has_value() && dequeued > *req.deadline) {
      stats_.on_expired();
      req.promise.set_value(util::Result<Verdict>(
          Status::error(ErrorCode::kDeadlineExceeded,
                        "request expired before inference")
              .with_context("DetectionServer::process_batch")));
      continue;
    }
    if (req.features.size() != dim) {
      stats_.on_rejected_invalid();
      req.promise.set_value(util::Result<Verdict>(
          Status::error(ErrorCode::kInvalidArgument,
                        "expected " + std::to_string(dim) + " features, got " +
                            std::to_string(req.features.size()))
              .with_context("DetectionServer::process_batch")));
      continue;
    }
    live.push_back(&req);
  }
  if (live.empty()) return;

  // Server-side scaling with the checkpoint's scaler (23-feature layout).
  std::vector<std::vector<double>> xs;
  xs.reserve(live.size());
  for (Request* req : live) {
    if (const auto* scaler = ckpt.scaler()) {
      features::FeatureVector fv{};
      std::copy(req->features.begin(), req->features.end(), fv.begin());
      const auto scaled = scaler->transform(fv);
      xs.emplace_back(scaled.begin(), scaled.end());
    } else {
      xs.push_back(req->features);
    }
  }

  ml::ModelClassifier clf(*t_replica.model, dim, ckpt.spec().num_classes());
  std::vector<std::vector<double>> logits;
  util::Stopwatch infer_sw;
  if (config_.max_batch == 1) {
    // Unbatched baseline: the legacy per-sample forward path.
    logits.reserve(xs.size());
    for (const auto& x : xs) logits.push_back(clf.logits(x));
  } else {
    logits = clf.logits_batch(xs);
  }
  const double infer_ms = infer_sw.elapsed_ms();
  stats_.on_batch(live.size());

  for (std::size_t i = 0; i < live.size(); ++i) {
    Request& req = *live[i];
    Verdict v;
    v.logits = std::move(logits[i]);
    v.probabilities = softmax(v.logits);
    v.predicted = argmax(v.logits);
    v.class_name = ckpt.schema().name(v.predicted);
    v.schema_digest = ckpt.schema().digest();
    v.model_version = ckpt.version();
    v.batch_size = live.size();
    v.queue_ms = std::chrono::duration<double, std::milli>(dequeued -
                                                           req.enqueued)
                     .count();
    v.infer_ms = infer_ms;
    v.total_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                           req.enqueued)
                     .count();
    if (req.ctx.valid()) {
      // Attribute this request's server-side phases to its distributed
      // trace. The intervals are reconstructed backward from the recorder
      // clock (queue-wait ended at dequeue; inference just ended), so the
      // spans land on the same timeline the client's spans use.
      auto& rec = obs::TraceRecorder::global();
      const double now = rec.now_us();
      rec.record_interval("serve.queue_wait", req.ctx,
                          now - v.total_ms * 1000.0, v.queue_ms * 1000.0);
      rec.record_interval("serve.infer", req.ctx, now - v.infer_ms * 1000.0,
                          v.infer_ms * 1000.0);
    }
    stats_.on_completed(v.queue_ms, v.infer_ms, v.total_ms,
                        req.ctx.trace_id);
    req.promise.set_value(util::Result<Verdict>(std::move(v)));
  }
}

}  // namespace gea::serve
