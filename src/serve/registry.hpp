// Versioned model registry with atomic hot-swap.
//
// The registry maps version strings to immutable Checkpoints and marks one
// of them active. Activation is a shared_ptr swap under a mutex: readers
// (server workers) copy the pointer, so an in-flight batch keeps whatever
// checkpoint it started with while new batches pick up the replacement —
// no torn state, no barrier on the request path. A monotonically increasing
// generation counter lets workers detect staleness with one atomic load
// and re-clone their private model replica only when something actually
// changed.
//
// Loading goes through Checkpoint::load (Status-returning, all-or-nothing),
// so a corrupt checkpoint on disk fails the install and leaves both the
// version map and the active pointer exactly as they were: the server keeps
// serving the old model.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/checkpoint.hpp"
#include "util/status.hpp"

namespace gea::serve {

class ModelRegistry {
 public:
  /// Load `dir` as `version` and install it; activates it too when
  /// `activate` is set (the default) or when the registry is empty.
  /// On any load error the registry is unchanged.
  util::Status load(const std::string& version, const std::string& dir,
                    const CheckpointSpec& spec = {}, bool activate = true);

  /// Install an already-loaded checkpoint under `version` (replacing any
  /// previous checkpoint of that version).
  util::Status install(const std::string& version, CheckpointPtr checkpoint,
                       bool activate = true);

  /// Make `version` the active checkpoint. kNotFound if never installed.
  util::Status activate(const std::string& version);

  /// Drop a non-active version from the map (in-flight batches holding its
  /// shared_ptr finish safely). kFailedPrecondition for the active version.
  util::Status retire(const std::string& version);

  /// Current active checkpoint; null until the first activation.
  CheckpointPtr active() const;
  std::string active_version() const;

  /// Bumped on every activation; workers compare against their cached value
  /// to decide whether to refresh replicas.
  std::uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  std::vector<std::string> versions() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, CheckpointPtr> versions_;
  CheckpointPtr active_;
  std::atomic<std::uint64_t> generation_{0};
};

}  // namespace gea::serve
