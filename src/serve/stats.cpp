#include "serve/stats.hpp"

#include <iomanip>
#include <sstream>

#include "obs/metrics.hpp"

namespace gea::serve {

std::string StatsSnapshot::summary() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << "serve: " << completed << " served / " << submitted << " submitted in "
     << elapsed_s << "s (" << qps << " qps)\n";
  os << "  rejected: " << rejected_full << " queue-full, " << rejected_no_model
     << " no-model, " << rejected_invalid << " invalid, " << expired
     << " deadline-expired; queue depth " << queue_depth << "\n";
  os << "  batches: " << batches << " (mean size " << mean_batch() << ")";
  if (!batch_sizes.empty()) {
    os << " histogram {";
    bool first = true;
    for (const auto& [size, count] : batch_sizes) {
      if (!first) os << ", ";
      os << size << ":" << count;
      first = false;
    }
    os << "}";
  }
  os << "\n";
  os << "  queue " << queue_ms.to_string() << "\n";
  os << "  infer " << infer_ms.to_string() << "\n";
  os << "  total " << total_ms.to_string();
  return os.str();
}

ServerStats::ServerStats() {
  auto& reg = obs::MetricsRegistry::global();
  reg_.submitted = &reg.counter("serve.submitted_total");
  reg_.accepted = &reg.counter("serve.accepted_total");
  reg_.rejected_full = &reg.counter("serve.rejected_full_total");
  reg_.rejected_invalid = &reg.counter("serve.rejected_invalid_total");
  reg_.rejected_no_model = &reg.counter("serve.rejected_no_model_total");
  reg_.expired = &reg.counter("serve.expired_total");
  reg_.completed = &reg.counter("serve.completed_total");
  reg_.batches = &reg.counter("serve.batches_total");
  reg_.batch_size =
      &reg.histogram("serve.batch_size", {1, 2, 4, 8, 16, 32, 64, 128});
  reg_.queue_ms = &reg.histogram("serve.queue_ms");
  reg_.infer_ms = &reg.histogram("serve.infer_ms");
  reg_.total_ms = &reg.histogram("serve.total_ms");
}

void ServerStats::on_submitted() {
  reg_.submitted->inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.submitted;
}

void ServerStats::on_accepted() {
  reg_.accepted->inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.accepted;
}

void ServerStats::on_rejected_full() {
  reg_.rejected_full->inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.rejected_full;
}

void ServerStats::on_rejected_invalid() {
  reg_.rejected_invalid->inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.rejected_invalid;
}

void ServerStats::on_rejected_no_model() {
  reg_.rejected_no_model->inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.rejected_no_model;
}

void ServerStats::on_expired() {
  reg_.expired->inc();
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.expired;
}

void ServerStats::on_batch(std::size_t batch_size) {
  reg_.batches->inc();
  reg_.batch_size->observe(static_cast<double>(batch_size));
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.batches;
  ++counts_.batch_sizes[batch_size];
}

void ServerStats::on_completed(double queue_ms, double infer_ms,
                               double total_ms, std::uint64_t trace_id) {
  reg_.completed->inc();
  reg_.queue_ms->observe(queue_ms, trace_id);
  reg_.infer_ms->observe(infer_ms, trace_id);
  reg_.total_ms->observe(total_ms, trace_id);
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.completed;
  queue_ms_.record(queue_ms);
  infer_ms_.record(infer_ms);
  total_ms_.record(total_ms);
}

StatsSnapshot ServerStats::snapshot(std::size_t queue_depth) const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot snap = counts_;
  snap.queue_ms = queue_ms_.summarize();
  snap.infer_ms = infer_ms_.summarize();
  snap.total_ms = total_ms_.summarize();
  snap.elapsed_s = started_.elapsed_ms() / 1000.0;
  snap.qps = snap.elapsed_s > 0.0
                 ? static_cast<double>(snap.completed) / snap.elapsed_s
                 : 0.0;
  snap.queue_depth = queue_depth;
  return snap;
}

}  // namespace gea::serve
