#include "serve/stats.hpp"

#include <iomanip>
#include <sstream>

namespace gea::serve {

std::string StatsSnapshot::summary() const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  os << "serve: " << completed << " served / " << submitted << " submitted in "
     << elapsed_s << "s (" << qps << " qps)\n";
  os << "  rejected: " << rejected_full << " queue-full, " << rejected_no_model
     << " no-model, " << rejected_invalid << " invalid, " << expired
     << " deadline-expired; queue depth " << queue_depth << "\n";
  os << "  batches: " << batches << " (mean size " << mean_batch() << ")";
  if (!batch_sizes.empty()) {
    os << " histogram {";
    bool first = true;
    for (const auto& [size, count] : batch_sizes) {
      if (!first) os << ", ";
      os << size << ":" << count;
      first = false;
    }
    os << "}";
  }
  os << "\n";
  os << "  queue " << queue_ms.to_string() << "\n";
  os << "  infer " << infer_ms.to_string() << "\n";
  os << "  total " << total_ms.to_string();
  return os.str();
}

void ServerStats::on_submitted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.submitted;
}

void ServerStats::on_accepted() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.accepted;
}

void ServerStats::on_rejected_full() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.rejected_full;
}

void ServerStats::on_rejected_invalid() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.rejected_invalid;
}

void ServerStats::on_rejected_no_model() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.rejected_no_model;
}

void ServerStats::on_expired() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.expired;
}

void ServerStats::on_batch(std::size_t batch_size) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.batches;
  ++counts_.batch_sizes[batch_size];
}

void ServerStats::on_completed(double queue_ms, double infer_ms,
                               double total_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.completed;
  queue_ms_.record(queue_ms);
  infer_ms_.record(infer_ms);
  total_ms_.record(total_ms);
}

StatsSnapshot ServerStats::snapshot(std::size_t queue_depth) const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot snap = counts_;
  snap.queue_ms = queue_ms_.summarize();
  snap.infer_ms = infer_ms_.summarize();
  snap.total_ms = total_ms_.summarize();
  snap.elapsed_s = started_.elapsed_ms() / 1000.0;
  snap.qps = snap.elapsed_s > 0.0
                 ? static_cast<double>(snap.completed) / snap.elapsed_s
                 : 0.0;
  snap.queue_depth = queue_depth;
  return snap;
}

}  // namespace gea::serve
