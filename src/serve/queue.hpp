// Bounded MPMC queue: the admission-control edge of the detection server.
//
// Producers never block — try_push refuses immediately when the queue is at
// capacity (the server turns that into a kUnavailable Status), so a traffic
// spike degrades into fast rejections instead of unbounded memory growth or
// client hangs. Consumers block in pop(), with a timed variant the
// micro-batcher uses to linger for stragglers.
//
// A held queue (set_hold(true)) keeps items from being popped while still
// accepting pushes up to capacity — tests use this to fill the queue
// deterministically, and operators could use it to fence a hot-swap.
// close() overrides hold and drains: pops continue until empty, then
// return nullopt forever; pushes are refused.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace gea::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admission: false when full or closed (the item is left
  /// untouched in that case so the caller can fail it with a Status).
  bool try_push(T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available (and the queue is not held), or the
  /// queue is closed and empty (nullopt: consumer should exit).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return ready_locked(); });
    return take_locked();
  }

  /// pop() bounded by `wait`; nullopt on timeout as well as on
  /// closed-and-empty. The micro-batcher's straggler linger.
  std::optional<T> pop_for(std::chrono::microseconds wait) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, wait, [this] { return ready_locked(); })) {
      return std::nullopt;
    }
    return take_locked();
  }

  /// Non-blocking bulk take of up to `n` items under one lock acquisition
  /// — the micro-batcher's drain step. Returns fewer (possibly zero) items
  /// when the queue is shallower, held, or empty; never waits.
  std::vector<T> pop_up_to(std::size_t n) {
    std::vector<T> out;
    std::lock_guard<std::mutex> lock(mu_);
    if (hold_ && !closed_) return out;
    while (out.size() < n && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return out;
  }

  /// While held, pop() blocks even when items are available; pushes still
  /// admit up to capacity. close() overrides a hold.
  void set_hold(bool hold) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      hold_ = hold;
    }
    cv_.notify_all();
  }

  /// Refuse further pushes; wake all consumers. Items already queued are
  /// still popped (drain-on-shutdown, like util::ThreadPool).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  bool ready_locked() const {
    if (closed_) return true;  // drain or exit
    return !hold_ && !items_.empty();
  }

  std::optional<T> take_locked() {
    if (items_.empty()) return std::nullopt;  // closed and drained
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    return item;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool hold_ = false;
  bool closed_ = false;
};

}  // namespace gea::serve
