#include "kernels/reference.hpp"

namespace gea::kernels::reference {

void conv1d_forward(const Conv1DShape& s, const float* x, const float* w,
                    const float* b, float* y) {
  const std::size_t l_out = s.l_out();
  const std::ptrdiff_t base =
      s.same ? -static_cast<std::ptrdiff_t>(s.k / 2) : 0;
  for (std::size_t i = 0; i < s.n; ++i) {
    for (std::size_t oc = 0; oc < s.out_ch; ++oc) {
      float* yrow = y + (i * s.out_ch + oc) * l_out;
      for (std::size_t j = 0; j < l_out; ++j) yrow[j] = b[oc];
      for (std::size_t ic = 0; ic < s.in_ch; ++ic) {
        const float* xrow = x + (i * s.in_ch + ic) * s.l_in;
        const float* wrow = w + (oc * s.in_ch + ic) * s.k;
        for (std::size_t j = 0; j < l_out; ++j) {
          float acc = 0.0f;
          for (std::size_t t = 0; t < s.k; ++t) {
            const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(j) + base +
                                       static_cast<std::ptrdiff_t>(t);
            if (src >= 0 && src < static_cast<std::ptrdiff_t>(s.l_in)) {
              acc += wrow[t] * xrow[src];
            }
          }
          yrow[j] += acc;
        }
      }
    }
  }
}

void conv1d_backward(const Conv1DShape& s, const float* x, const float* w,
                     const float* grad_out, float* grad_in, float* gw,
                     float* gb) {
  const std::size_t l_out = s.l_out();
  const std::ptrdiff_t base =
      s.same ? -static_cast<std::ptrdiff_t>(s.k / 2) : 0;
  for (std::size_t i = 0; i < s.n; ++i) {
    for (std::size_t oc = 0; oc < s.out_ch; ++oc) {
      const float* grow = grad_out + (i * s.out_ch + oc) * l_out;
      for (std::size_t j = 0; j < l_out; ++j) gb[oc] += grow[j];
      for (std::size_t ic = 0; ic < s.in_ch; ++ic) {
        const float* xrow = x + (i * s.in_ch + ic) * s.l_in;
        float* gxrow = grad_in + (i * s.in_ch + ic) * s.l_in;
        const float* wrow = w + (oc * s.in_ch + ic) * s.k;
        float* gwrow = gw + (oc * s.in_ch + ic) * s.k;
        for (std::size_t j = 0; j < l_out; ++j) {
          const float g = grow[j];
          if (g == 0.0f) continue;
          for (std::size_t t = 0; t < s.k; ++t) {
            const std::ptrdiff_t src = static_cast<std::ptrdiff_t>(j) + base +
                                       static_cast<std::ptrdiff_t>(t);
            if (src >= 0 && src < static_cast<std::ptrdiff_t>(s.l_in)) {
              gwrow[t] += g * xrow[src];
              gxrow[src] += g * wrow[t];
            }
          }
        }
      }
    }
  }
}

void dense_forward(std::size_t n, std::size_t in, std::size_t out,
                   const float* x, const float* w, const float* b, float* y) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* xi = x + i * in;
    float* yi = y + i * out;
    for (std::size_t o = 0; o < out; ++o) {
      const float* wrow = w + o * in;
      float acc = b[o];
      for (std::size_t k = 0; k < in; ++k) acc += wrow[k] * xi[k];
      yi[o] = acc;
    }
  }
}

void dense_backward(std::size_t n, std::size_t in, std::size_t out,
                    const float* x, const float* w, const float* grad_out,
                    float* grad_in, float* gw, float* gb) {
  for (std::size_t i = 0; i < n; ++i) {
    const float* gi = grad_out + i * out;
    const float* xi = x + i * in;
    float* gx = grad_in + i * in;
    for (std::size_t o = 0; o < out; ++o) {
      const float g = gi[o];
      if (g == 0.0f) continue;
      gb[o] += g;
      float* gwrow = gw + o * in;
      const float* wrow = w + o * in;
      for (std::size_t k = 0; k < in; ++k) {
        gwrow[k] += g * xi[k];
        gx[k] += g * wrow[k];
      }
    }
  }
}

}  // namespace gea::kernels::reference
