#include "kernels/conv.hpp"

#include <algorithm>
#include <cstring>

#include "kernels/gemm.hpp"
#include "kernels/scratch.hpp"

namespace gea::kernels {

namespace {

/// First input offset read by output position j: j + base + t for tap t.
inline std::ptrdiff_t pad_base(const Conv1DShape& s) {
  return s.same ? -static_cast<std::ptrdiff_t>(s.k / 2) : 0;
}

/// Write one im2col row: col_row[j] = x_row[j + base + t] for in-bounds
/// positions, 0 at the padded edges. The in-bounds j range is computed
/// once, so the interior is a straight memcpy — no per-element checks.
inline void im2col_row(const float* x_row, std::size_t l_in,
                       std::size_t l_out, std::ptrdiff_t shift,
                       float* col_row) {
  // In bounds when 0 <= j + shift < l_in.
  const std::size_t j_lo = shift < 0 ? static_cast<std::size_t>(-shift) : 0;
  const std::ptrdiff_t hi = static_cast<std::ptrdiff_t>(l_in) - shift;
  const std::size_t j_hi =
      hi <= 0 ? 0
              : std::min(l_out, static_cast<std::size_t>(hi));
  std::size_t j = 0;
  for (; j < std::min(j_lo, l_out); ++j) col_row[j] = 0.0f;
  if (j_hi > j) {
    std::memcpy(col_row + j, x_row + static_cast<std::ptrdiff_t>(j) + shift,
                (j_hi - j) * sizeof(float));
    j = j_hi;
  }
  for (; j < l_out; ++j) col_row[j] = 0.0f;
}

/// Materialize the column matrix for the whole batch: row (ic*k + t),
/// column (i*l_out + j) holds x[i][ic][j + base + t] (0 when padded).
/// k == 3 — every conv in the paper's CNN — takes an unrolled builder.
void im2col(const Conv1DShape& s, const float* x, float* col) {
  const std::size_t l_out = s.l_out();
  const std::size_t ncols = s.n * l_out;
  const std::ptrdiff_t base = pad_base(s);
  for (std::size_t i = 0; i < s.n; ++i) {
    for (std::size_t ic = 0; ic < s.in_ch; ++ic) {
      const float* x_row = x + (i * s.in_ch + ic) * s.l_in;
      float* col_base = col + (ic * s.k) * ncols + i * l_out;
      if (s.k == 3) {
        im2col_row(x_row, s.l_in, l_out, base + 0, col_base);
        im2col_row(x_row, s.l_in, l_out, base + 1, col_base + ncols);
        im2col_row(x_row, s.l_in, l_out, base + 2, col_base + 2 * ncols);
      } else {
        for (std::size_t t = 0; t < s.k; ++t) {
          im2col_row(x_row, s.l_in, l_out, base + static_cast<std::ptrdiff_t>(t),
                     col_base + t * ncols);
        }
      }
    }
  }
}

}  // namespace

void conv1d_forward(const Conv1DShape& s, const float* x, const float* w,
                    const float* b, float* y) {
  const std::size_t l_out = s.l_out();
  const std::size_t kdim = s.in_ch * s.k;
  const std::size_t ncols = s.n * l_out;
  if (ncols == 0 || s.out_ch == 0) return;
  KernelScratch& scratch = KernelScratch::tls();
  float* col = scratch.col(kdim * ncols);
  im2col(s, x, col);

  GemmSpec spec;
  spec.m = s.out_ch;
  spec.n = ncols;
  spec.k = kdim;
  spec.a = w;
  spec.lda = kdim;
  spec.b = col;
  spec.ldb = ncols;
  spec.ldc = ncols;
  spec.bias_row = b;
  if (s.n == 1) {
    // Single sample: y is exactly the (out_ch x l_out) product, written in
    // place — the attack-crafting per-candidate path pays no copy.
    spec.c = y;
    gemm(spec);
    return;
  }
  float* cbuf = scratch.cbuf(s.out_ch * ncols);
  spec.c = cbuf;
  gemm(spec);
  // De-interleave (out_ch, n*l_out) into (n, out_ch, l_out).
  for (std::size_t i = 0; i < s.n; ++i) {
    for (std::size_t oc = 0; oc < s.out_ch; ++oc) {
      std::memcpy(y + (i * s.out_ch + oc) * l_out,
                  cbuf + oc * ncols + i * l_out, l_out * sizeof(float));
    }
  }
}

void conv1d_backward(const Conv1DShape& s, const float* x, const float* w,
                     const float* grad_out, float* grad_in, float* gw,
                     float* gb) {
  const std::size_t l_out = s.l_out();
  const std::size_t kdim = s.in_ch * s.k;
  const std::size_t ncols = s.n * l_out;
  if (ncols == 0 || s.out_ch == 0) return;
  const std::ptrdiff_t base = pad_base(s);

  // Bias gradient in the seed's order (sample-major, position-ascending).
  for (std::size_t i = 0; i < s.n; ++i) {
    for (std::size_t oc = 0; oc < s.out_ch; ++oc) {
      const float* g_row = grad_out + (i * s.out_ch + oc) * l_out;
      float acc = gb[oc];
      for (std::size_t j = 0; j < l_out; ++j) acc += g_row[j];
      gb[oc] = acc;
    }
  }

  KernelScratch& scratch = KernelScratch::tls();
  float* col = scratch.col(kdim * ncols);
  im2col(s, x, col);
  float* dcol = scratch.dcol(kdim * l_out);

  for (std::size_t i = 0; i < s.n; ++i) {
    const float* g_i = grad_out + i * s.out_ch * l_out;

    // gw += G_i * col_i^T: (out_ch x l_out) * (l_out x kdim), sample-major
    // accumulation matching the seed loop's order.
    GemmSpec wspec;
    wspec.m = s.out_ch;
    wspec.n = kdim;
    wspec.k = l_out;
    wspec.a = g_i;
    wspec.lda = l_out;
    wspec.b = col + i * l_out;  // column slice of sample i, transposed view
    wspec.ldb = ncols;
    wspec.trans_b = true;
    wspec.c = gw;
    wspec.ldc = kdim;
    wspec.accumulate = true;
    gemm(wspec);

    // dcol = W^T * G_i: (kdim x out_ch) * (out_ch x l_out).
    GemmSpec xspec;
    xspec.m = kdim;
    xspec.n = l_out;
    xspec.k = s.out_ch;
    xspec.a = w;
    xspec.lda = kdim;
    xspec.trans_a = true;
    xspec.b = g_i;
    xspec.ldb = l_out;
    xspec.c = dcol;
    xspec.ldc = l_out;
    gemm(xspec);

    // col2im: scatter-add dcol rows back into the padded input positions.
    for (std::size_t ic = 0; ic < s.in_ch; ++ic) {
      float* gx_row = grad_in + (i * s.in_ch + ic) * s.l_in;
      for (std::size_t t = 0; t < s.k; ++t) {
        const float* d_row = dcol + (ic * s.k + t) * l_out;
        const std::ptrdiff_t shift = base + static_cast<std::ptrdiff_t>(t);
        const std::size_t j_lo =
            shift < 0 ? static_cast<std::size_t>(-shift) : 0;
        const std::ptrdiff_t hi = static_cast<std::ptrdiff_t>(s.l_in) - shift;
        const std::size_t j_hi =
            hi <= 0 ? 0 : std::min(l_out, static_cast<std::size_t>(hi));
        for (std::size_t j = j_lo; j < j_hi; ++j) {
          gx_row[static_cast<std::ptrdiff_t>(j) + shift] += d_row[j];
        }
      }
    }
  }
}

void dense_forward(std::size_t n, std::size_t in, std::size_t out,
                   const float* x, const float* w, const float* b, float* y) {
  GemmSpec spec;
  spec.m = n;
  spec.n = out;
  spec.k = in;
  spec.a = x;
  spec.lda = in;
  spec.b = w;  // (out, in) row-major read as its (in, out) transpose
  spec.ldb = in;
  spec.trans_b = true;
  spec.c = y;
  spec.ldc = out;
  spec.bias_col = b;
  gemm(spec);
}

void dense_backward(std::size_t n, std::size_t in, std::size_t out,
                    const float* x, const float* w, const float* grad_out,
                    float* grad_in, float* gw, float* gb) {
  // Bias gradient in the seed's sample-major order.
  for (std::size_t i = 0; i < n; ++i) {
    const float* g_i = grad_out + i * out;
    for (std::size_t o = 0; o < out; ++o) gb[o] += g_i[o];
  }

  // gw += G^T * X: (out x n) * (n x in); k' = n is the sample-major
  // accumulation the seed loop performs.
  GemmSpec wspec;
  wspec.m = out;
  wspec.n = in;
  wspec.k = n;
  wspec.a = grad_out;  // (n, out) read as its (out, n) transpose
  wspec.lda = out;
  wspec.trans_a = true;
  wspec.b = x;
  wspec.ldb = in;
  wspec.c = gw;
  wspec.ldc = in;
  wspec.accumulate = true;
  gemm(wspec);

  // grad_in = G * W: (n x out) * (out x in).
  GemmSpec xspec;
  xspec.m = n;
  xspec.n = in;
  xspec.k = out;
  xspec.a = grad_out;
  xspec.lda = out;
  xspec.b = w;
  xspec.ldb = in;
  xspec.c = grad_in;
  xspec.ldc = in;
  gemm(xspec);
}

}  // namespace gea::kernels
