#include "kernels/scratch.hpp"

namespace gea::kernels {

KernelScratch& KernelScratch::tls() {
  thread_local KernelScratch scratch;
  return scratch;
}

}  // namespace gea::kernels
