#include "kernels/config.hpp"

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "util/log.hpp"

namespace gea::kernels {

const char* source_name(KernelConfig::Source source) {
  switch (source) {
    case KernelConfig::Source::kFallback: return "fallback";
    case KernelConfig::Source::kDefault: return "default";
    case KernelConfig::Source::kTuned: return "tuned";
  }
  return "unknown";
}

std::string KernelConfig::summary() const {
  std::ostringstream os;
  if (scalar()) {
    os << "scalar source=" << source_name(source);
  } else {
    os << "mr=" << mr << " nr=" << nr << " mc=" << mc << " kc=" << kc
       << " nc=" << nc << " source=" << source_name(source);
  }
  return os.str();
}

const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
microkernel_variants() {
  // Must match the dispatch table in gemm.cpp. Wide-nr variants favor the
  // batched conv shapes (long rows); tall-mr variants favor dense layers
  // with a large batch.
  static const std::vector<std::pair<std::uint32_t, std::uint32_t>> kVariants =
      {{2, 4}, {4, 4}, {2, 8}, {4, 8}, {6, 8}, {8, 8}, {4, 16}, {8, 4}};
  return kVariants;
}

bool microkernel_supported(std::uint32_t mr, std::uint32_t nr) {
  if (mr == 0 && nr == 0) return true;
  for (const auto& [vm, vn] : microkernel_variants()) {
    if (vm == mr && vn == nr) return true;
  }
  return false;
}

KernelConfig default_config() { return KernelConfig{}; }

KernelConfig scalar_config() {
  KernelConfig cfg;
  cfg.mr = 0;
  cfg.nr = 0;
  cfg.source = KernelConfig::Source::kFallback;
  return cfg;
}

util::Status validate(const KernelConfig& cfg) {
  if (!microkernel_supported(cfg.mr, cfg.nr)) {
    return util::Status::error(
        util::ErrorCode::kInvalidArgument,
        "no compiled microkernel for mr=" + std::to_string(cfg.mr) +
            " nr=" + std::to_string(cfg.nr));
  }
  if (cfg.scalar()) return util::Status::ok();
  constexpr std::uint32_t kMaxBlock = 1u << 20;
  if (cfg.mc == 0 || cfg.kc == 0 || cfg.nc == 0 || cfg.mc > kMaxBlock ||
      cfg.kc > kMaxBlock || cfg.nc > kMaxBlock) {
    return util::Status::error(util::ErrorCode::kInvalidArgument,
                               "block sizes must be in [1, 2^20], got " +
                                   cfg.summary());
  }
  return util::Status::ok();
}

util::Status save_config(const KernelConfig& cfg, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return util::Status::error(util::ErrorCode::kNotFound,
                               "cannot open for write: " + path);
  }
  out << "gea_kernel_config v1\n"
      << "mr " << cfg.mr << "\n"
      << "nr " << cfg.nr << "\n"
      << "mc " << cfg.mc << "\n"
      << "kc " << cfg.kc << "\n"
      << "nc " << cfg.nc << "\n"
      << "source " << source_name(cfg.source) << "\n";
  out.flush();
  if (!out) {
    return util::Status::error(util::ErrorCode::kInternal,
                               "short write: " + path);
  }
  return util::Status::ok();
}

util::Result<KernelConfig> load_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return util::Status::error(util::ErrorCode::kNotFound,
                               "cannot open kernel config: " + path);
  }
  std::string header;
  std::getline(in, header);
  if (header != "gea_kernel_config v1") {
    return util::Status::error(util::ErrorCode::kParseError,
                               "bad kernel config header in " + path);
  }
  KernelConfig cfg;
  cfg.source = KernelConfig::Source::kTuned;
  std::string key;
  while (in >> key) {
    if (key == "source") {
      std::string value;
      if (!(in >> value)) break;
      if (value == "fallback") cfg.source = KernelConfig::Source::kFallback;
      else if (value == "default") cfg.source = KernelConfig::Source::kDefault;
      else cfg.source = KernelConfig::Source::kTuned;
      continue;
    }
    std::uint32_t value = 0;
    if (!(in >> value)) {
      return util::Status::error(util::ErrorCode::kParseError,
                                 "bad value for '" + key + "' in " + path);
    }
    if (key == "mr") cfg.mr = value;
    else if (key == "nr") cfg.nr = value;
    else if (key == "mc") cfg.mc = value;
    else if (key == "kc") cfg.kc = value;
    else if (key == "nc") cfg.nc = value;
    else {
      return util::Status::error(util::ErrorCode::kParseError,
                                 "unknown key '" + key + "' in " + path);
    }
  }
  if (auto st = validate(cfg); !st.is_ok()) {
    return st.with_context("loading " + path);
  }
  return cfg;
}

namespace {

struct ActiveConfig {
  std::mutex mu;
  KernelConfig cfg = default_config();

  ActiveConfig() {
    // One-shot environment hook: a tuned config persisted by gemm_tune is
    // picked up by any process (trainer, server, benches) without call-site
    // changes. Failure to load is loud but non-fatal — the default stays.
    if (const char* path = std::getenv("GEA_KERNEL_CONFIG")) {
      auto loaded = load_config(path);
      if (loaded.is_ok()) {
        cfg = loaded.value();
        util::log_info("kernels: loaded config from GEA_KERNEL_CONFIG");
      } else {
        util::log_warn("kernels: GEA_KERNEL_CONFIG ignored: " +
                       loaded.status().to_string());
      }
    }
  }

  static ActiveConfig& get() {
    static ActiveConfig a;
    return a;
  }
};

}  // namespace

KernelConfig active_config() {
  auto& a = ActiveConfig::get();
  std::lock_guard<std::mutex> lock(a.mu);
  return a.cfg;
}

util::Status set_active_config(const KernelConfig& cfg) {
  if (auto st = validate(cfg); !st.is_ok()) return st;
  auto& a = ActiveConfig::get();
  std::lock_guard<std::mutex> lock(a.mu);
  a.cfg = cfg;
  return util::Status::ok();
}

std::string active_config_summary() { return active_config().summary(); }

}  // namespace gea::kernels
