// Layer-facing entry points: Conv1D and Dense lowered onto kernels::gemm.
//
// Conv1D forward is im2col + GEMM: the (in_ch * k) x (n * l_out) column
// matrix is materialized once per call into thread-local scratch (with a
// k=3-specialized builder for the paper's kernels, edge columns split out
// so the interior copies run without per-element bounds checks), then one
// GEMM per call produces every sample's output. Backward recomputes the
// column matrix and reduces to two GEMMs per sample (weight gradient:
// G * col^T accumulated; input gradient: W^T * G scattered by col2im).
// Dense forward/backward are direct GEMM mappings.
//
// Numeric contract (see kernels/reference.hpp for the preserved seed
// loops): every output element is one k-ordered accumulation chain, so
// results are independent of batch size and tile configuration —
// per-sample forward, batched infer, and any tuning of the active config
// all agree bitwise with each other — and ULP-bounded against the seed
// loops, whose only differences are per-input-channel regrouping and
// skipped zero terms.
#pragma once

#include <cstddef>

namespace gea::kernels {

/// Shape descriptor shared by the Conv1D ops. `same` selects zero padding
/// (l_out == l_in); otherwise valid padding (l_out == l_in - k + 1).
struct Conv1DShape {
  std::size_t n = 0;       // batch
  std::size_t in_ch = 0;
  std::size_t l_in = 0;
  std::size_t out_ch = 0;
  std::size_t k = 0;       // kernel taps (odd)
  bool same = true;
  std::size_t l_out() const { return same ? l_in : l_in - k + 1; }
};

/// y (n, out_ch, l_out) = conv(x (n, in_ch, l_in), w (out_ch, in_ch, k)) + b.
void conv1d_forward(const Conv1DShape& shape, const float* x, const float* w,
                    const float* b, float* y);

/// Accumulates gw (out_ch, in_ch, k) and gb (out_ch); writes grad_in
/// (n, in_ch, l_in), which must be zero-initialized by the caller.
void conv1d_backward(const Conv1DShape& shape, const float* x, const float* w,
                     const float* grad_out, float* grad_in, float* gw,
                     float* gb);

/// y (n, out) = x (n, in) * w^T (w is (out, in) row-major) + b.
void dense_forward(std::size_t n, std::size_t in, std::size_t out,
                   const float* x, const float* w, const float* b, float* y);

/// Accumulates gw (out, in) and gb (out); writes grad_in (n, in).
void dense_backward(std::size_t n, std::size_t in, std::size_t out,
                    const float* x, const float* w, const float* grad_out,
                    float* grad_in, float* gw, float* gb);

}  // namespace gea::kernels
