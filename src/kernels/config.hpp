// Tiling configuration for the dense-math kernel layer.
//
// A KernelConfig names one point in the GEMM tuning space: the register
// tile (mr x nr microkernel variant, compiled ahead of time) and the cache
// block sizes (mc/kc/nc). The process holds one *active* config that every
// kernels::gemm call reads; tools/gemm_tune searches the space on the host,
// persists the winner to a small text file, and anything (trainer, server,
// benches) picks it up at runtime either explicitly via load_config +
// set_active_config or implicitly through the GEA_KERNEL_CONFIG environment
// variable. An unsupported or corrupt config never breaks correctness: the
// layer degrades to a portable scalar fallback (mr = nr = 0) that runs the
// same k-ordered accumulation without tiling.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.hpp"

namespace gea::kernels {

struct KernelConfig {
  /// Where the active config came from — reported by benches so speedup
  /// trajectories are interpretable across machines.
  enum class Source : std::uint8_t { kFallback, kDefault, kTuned };

  /// Register tile (microkernel) size. mr == 0 or nr == 0 selects the
  /// portable scalar fallback path.
  std::uint32_t mr = 4;
  std::uint32_t nr = 8;
  /// Cache block sizes: rows of A, shared depth, and columns of B packed
  /// per block. Clamped to the problem size at run time.
  std::uint32_t mc = 64;
  std::uint32_t kc = 256;
  std::uint32_t nc = 512;
  Source source = Source::kDefault;

  bool scalar() const { return mr == 0 || nr == 0; }
  bool tuned() const { return source == Source::kTuned; }

  /// One-line rendering, e.g. "mr=4 nr=8 mc=64 kc=256 nc=512 source=tuned".
  std::string summary() const;
};

const char* source_name(KernelConfig::Source source);

/// Compiled microkernel variants as (mr, nr) pairs — the register-tile
/// search space the tuner sweeps. The scalar fallback (0, 0) is not listed.
const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
microkernel_variants();

/// True when (mr, nr) is a compiled variant or the scalar pair (0, 0).
bool microkernel_supported(std::uint32_t mr, std::uint32_t nr);

/// Hand-picked portable default (used when nothing was tuned).
KernelConfig default_config();
/// The scalar fallback config.
KernelConfig scalar_config();

/// Reject zero block sizes, absurd values, and unsupported microkernels.
util::Status validate(const KernelConfig& cfg);

/// Persist/load a config as a small self-identifying text file.
util::Status save_config(const KernelConfig& cfg, const std::string& path);
util::Result<KernelConfig> load_config(const std::string& path);

/// Process-wide active config. The first read consults GEA_KERNEL_CONFIG
/// (a path): if set and loadable, the tuned config is installed; otherwise
/// the default stays. Reads copy a small POD under a mutex — cheap next to
/// any gemm call.
KernelConfig active_config();

/// Install `cfg` as the active config. Invalid configs are refused and the
/// previous config stays active.
util::Status set_active_config(const KernelConfig& cfg);

/// summary() of the active config — what benches embed in their JSON.
std::string active_config_summary();

}  // namespace gea::kernels
