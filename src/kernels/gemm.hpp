// Blocked, register-tiled, vectorizable single-precision GEMM.
//
// One entry point owns the dense-math hot path: Conv1D (via im2col
// lowering, see kernels/conv.hpp) and Dense forward/backward/batched-infer
// all reduce to gemm() calls. The implementation is a classic three-level
// blocking scheme (BLIS-style): B is packed into nr-wide column panels and
// A into mr-tall row panels per (kc x nc) / (mc x kc) cache block, and an
// mr x nr register-tile microkernel walks the shared dimension.
//
// Floating-point contract — the property every caller leans on:
//
//   Each output element C[i][j] is produced by ONE sequential accumulation
//   chain in k order: init (bias / existing C / zero), then
//   += A[i][p] * B[p][j] for p = 0 .. k-1, in order.
//
// Tiling never splits or reorders a chain: the k-block loop is outermost
// per column block and partial register tiles run the exact same unrolled
// code as full ones (zero-padded panels, masked stores). Consequently the
// result is independent of the tile parameters, the batch position an
// element lands in, and whether the tiled or scalar-fallback path ran —
// which is what keeps batched inference bitwise-identical to per-sample
// forward, and the whole layer ULP-bounded against the seed loops.
#pragma once

#include <cstddef>

#include "kernels/config.hpp"
#include "kernels/scratch.hpp"

namespace gea::kernels {

/// C (m x n, leading dim ldc) = init + A * B, where A is logically m x k
/// and B is k x n. `trans_*` flips the storage interpretation: with
/// trans_a, A[i][p] is read from a[p * lda + i] (i.e. `a` holds the k x m
/// transpose), likewise for B. Exactly one of bias_row / bias_col may be
/// set; `accumulate` initializes chains from the existing C instead.
struct GemmSpec {
  std::size_t m = 0, n = 0, k = 0;
  const float* a = nullptr;
  std::size_t lda = 0;
  bool trans_a = false;
  const float* b = nullptr;
  std::size_t ldb = 0;
  bool trans_b = false;
  float* c = nullptr;
  std::size_t ldc = 0;
  const float* bias_row = nullptr;  // length m: C[i][*] starts at bias_row[i]
  const float* bias_col = nullptr;  // length n: C[*][j] starts at bias_col[j]
  bool accumulate = false;          // C += A*B (bias_* must be null)
};

/// Run the GEMM with an explicit config and scratch arena. Unsupported
/// configs silently take the scalar path (correct, untiled).
void gemm(const GemmSpec& spec, const KernelConfig& cfg,
          KernelScratch& scratch);

/// Run with the process-wide active config and the calling thread's
/// scratch; records kernels.gemm_ms / kernels.{tuned,fallback} metrics.
void gemm(const GemmSpec& spec);

}  // namespace gea::kernels
