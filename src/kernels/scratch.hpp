// Grow-only, thread-local scratch for the kernel layer.
//
// Every buffer the GEMM/conv path needs between calls — packed A/B panels,
// the materialized im2col matrix, the gradient column buffer, and the
// wide-C staging buffer — lives here instead of being allocated per call.
// Buffers only ever grow (same discipline as features::FeatureEngine), so
// after one warm-up call per shape the steady-state forward/backward path
// performs zero allocations; tests assert footprint stability.
#pragma once

#include <cstddef>
#include <vector>

namespace gea::kernels {

class KernelScratch {
 public:
  /// Grow-only view: returns a pointer to at least `n` floats. Contents
  /// are unspecified — kernels overwrite what they read.
  float* pack_a(std::size_t n) { return ensure(pack_a_, n); }
  float* pack_b(std::size_t n) { return ensure(pack_b_, n); }
  float* col(std::size_t n) { return ensure(col_, n); }
  float* dcol(std::size_t n) { return ensure(dcol_, n); }
  float* cbuf(std::size_t n) { return ensure(cbuf_, n); }

  /// Total bytes currently reserved — the number a footprint-stability
  /// test watches across repeated same-shape calls.
  std::size_t footprint_bytes() const {
    return (pack_a_.capacity() + pack_b_.capacity() + col_.capacity() +
            dcol_.capacity() + cbuf_.capacity()) *
           sizeof(float);
  }

  /// The calling thread's scratch. Each thread owns one arena, so parallel
  /// trainers/servers never contend or share panels.
  static KernelScratch& tls();

 private:
  float* ensure(std::vector<float>& v, std::size_t n) {
    if (v.size() < n) v.resize(n);
    return v.data();
  }

  std::vector<float> pack_a_;
  std::vector<float> pack_b_;
  std::vector<float> col_;
  std::vector<float> dcol_;
  std::vector<float> cbuf_;
};

}  // namespace gea::kernels
