#include "kernels/tune.hpp"

#include <algorithm>

#include "kernels/gemm.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace gea::kernels {

std::vector<TuneShape> paper_cnn_infer_shapes(std::size_t batch) {
  // Fig. 5 architecture on a 23-long input; conv GEMMs are
  // (out_ch) x (batch * l_out) x (in_ch * 3), dense GEMMs are
  // batch x out x in. Lengths: 23 -same-> 23 -valid-> 21 -pool-> 10
  // -same-> 10 -valid-> 8 -pool-> 4.
  return {
      {46, batch * 23, 1 * 3, "conv1"},
      {46, batch * 21, 46 * 3, "conv2"},
      {92, batch * 10, 46 * 3, "conv3"},
      {92, batch * 8, 92 * 3, "conv4"},
      {batch, 512, 368, "dense1"},
      {batch, 2, 512, "dense2"},
  };
}

namespace {

/// One shape's operands, filled once and reused by every candidate.
struct ShapeData {
  TuneShape shape;
  std::vector<float> a, b, bias, c;
};

double time_config(const KernelConfig& cfg, std::vector<ShapeData>& data,
                   int reps, KernelScratch& scratch) {
  double total = 0.0;
  for (auto& d : data) {
    GemmSpec spec;
    spec.m = d.shape.m;
    spec.n = d.shape.n;
    spec.k = d.shape.k;
    spec.a = d.a.data();
    spec.lda = d.shape.k;
    spec.b = d.b.data();
    spec.ldb = d.shape.n;
    spec.c = d.c.data();
    spec.ldc = d.shape.n;
    spec.bias_row = d.bias.data();
    gemm(spec, cfg, scratch);  // warm-up: grows scratch, faults pages
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
      util::Stopwatch sw;
      gemm(spec, cfg, scratch);
      const double ms = sw.elapsed_ms();
      best = r == 0 ? ms : std::min(best, ms);
    }
    total += best;
  }
  return total;
}

}  // namespace

TuneReport tune(const TuneOptions& options) {
  const std::vector<TuneShape> shapes =
      options.shapes.empty() ? paper_cnn_infer_shapes(16) : options.shapes;
  const int reps = options.quick ? std::min(options.reps, 3) : options.reps;

  util::Rng rng(20260809);
  std::vector<ShapeData> data;
  data.reserve(shapes.size());
  for (const auto& sh : shapes) {
    ShapeData d;
    d.shape = sh;
    d.a.resize(sh.m * sh.k);
    d.b.resize(sh.k * sh.n);
    d.bias.resize(sh.m);
    d.c.resize(sh.m * sh.n);
    for (auto& v : d.a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& v : d.b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (auto& v : d.bias) v = static_cast<float>(rng.uniform(-1.0, 1.0));
    data.push_back(std::move(d));
  }

  // Candidate grid: every microkernel at the default blocks; full mode
  // crosses the winners' space with a small mc/kc sweep (nc rarely matters
  // at these widths, so it stays fixed).
  std::vector<KernelConfig> candidates;
  for (const auto& [mr, nr] : microkernel_variants()) {
    KernelConfig cfg = default_config();
    cfg.mr = mr;
    cfg.nr = nr;
    cfg.source = KernelConfig::Source::kTuned;
    candidates.push_back(cfg);
    if (!options.quick) {
      for (std::uint32_t mc : {32u, 128u}) {
        for (std::uint32_t kc : {64u, 128u}) {
          KernelConfig c2 = cfg;
          c2.mc = mc;
          c2.kc = kc;
          candidates.push_back(c2);
        }
      }
    }
  }

  KernelScratch scratch;
  TuneReport report;
  report.scalar_ms = time_config(scalar_config(), data, reps, scratch);
  for (const auto& cfg : candidates) {
    report.candidates.push_back({cfg, time_config(cfg, data, reps, scratch)});
  }
  std::sort(report.candidates.begin(), report.candidates.end(),
            [](const TuneCandidate& a, const TuneCandidate& b) {
              return a.total_ms < b.total_ms;
            });
  report.best = report.candidates.front().config;
  report.best_ms = report.candidates.front().total_ms;
  return report;
}

}  // namespace gea::kernels
