#include "kernels/gemm.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"

namespace gea::kernels {

namespace {

inline float load_a(const GemmSpec& s, std::size_t i, std::size_t p) {
  return s.trans_a ? s.a[p * s.lda + i] : s.a[i * s.lda + p];
}

inline float load_b(const GemmSpec& s, std::size_t p, std::size_t j) {
  return s.trans_b ? s.b[j * s.ldb + p] : s.b[p * s.ldb + j];
}

/// Start every chain: bias broadcast or zero. Accumulate mode keeps the
/// existing C values as the chain head instead.
void init_c(const GemmSpec& s) {
  if (s.accumulate) return;
  for (std::size_t i = 0; i < s.m; ++i) {
    float* crow = s.c + i * s.ldc;
    if (s.bias_row) {
      const float v = s.bias_row[i];
      for (std::size_t j = 0; j < s.n; ++j) crow[j] = v;
    } else if (s.bias_col) {
      for (std::size_t j = 0; j < s.n; ++j) crow[j] = s.bias_col[j];
    } else {
      for (std::size_t j = 0; j < s.n; ++j) crow[j] = 0.0f;
    }
  }
}

/// Portable fallback: the same k-ordered chains, no packing, no tiling.
void scalar_gemm(const GemmSpec& s) {
  init_c(s);
  for (std::size_t i = 0; i < s.m; ++i) {
    float* crow = s.c + i * s.ldc;
    for (std::size_t j = 0; j < s.n; ++j) {
      float acc = crow[j];
      for (std::size_t p = 0; p < s.k; ++p) {
        acc += load_a(s, i, p) * load_b(s, p, j);
      }
      crow[j] = acc;
    }
  }
}

/// Pack the (mb x kb) block of A at (i0, p0) into MR-tall row panels laid
/// out k-major: panel q, offset kk*MR + r holds A[i0 + q*MR + r][p0 + kk].
/// Rows past mb are zero-filled so partial register tiles can run the
/// full-tile microkernel unchanged.
void pack_a_block(const GemmSpec& s, std::size_t i0, std::size_t mb,
                  std::size_t p0, std::size_t kb, std::size_t mr, float* ap) {
  const std::size_t panels = (mb + mr - 1) / mr;
  for (std::size_t q = 0; q < panels; ++q) {
    float* panel = ap + q * mr * kb;
    const std::size_t rows = std::min(mr, mb - q * mr);
    for (std::size_t kk = 0; kk < kb; ++kk) {
      float* dst = panel + kk * mr;
      std::size_t r = 0;
      for (; r < rows; ++r) dst[r] = load_a(s, i0 + q * mr + r, p0 + kk);
      for (; r < mr; ++r) dst[r] = 0.0f;
    }
  }
}

/// Pack the (kb x nb) block of B at (p0, j0) into NR-wide column panels,
/// k-major: panel q, offset kk*NR + t holds B[p0 + kk][j0 + q*NR + t].
void pack_b_block(const GemmSpec& s, std::size_t p0, std::size_t kb,
                  std::size_t j0, std::size_t nb, std::size_t nr, float* bp) {
  const std::size_t panels = (nb + nr - 1) / nr;
  for (std::size_t q = 0; q < panels; ++q) {
    float* panel = bp + q * nr * kb;
    const std::size_t cols = std::min(nr, nb - q * nr);
    for (std::size_t kk = 0; kk < kb; ++kk) {
      float* dst = panel + kk * nr;
      std::size_t t = 0;
      for (; t < cols; ++t) dst[t] = load_b(s, p0 + kk, j0 + q * nr + t);
      for (; t < nr; ++t) dst[t] = 0.0f;
    }
  }
}

/// MR x NR register tile over a kb-deep panel pair. One code path for full
/// and partial tiles: valid lanes load their running chain from C, dead
/// lanes run on zeros and are dropped by the masked store — so the FP op
/// sequence of a chain never depends on where its element fell in the
/// tiling, which is what makes results independent of batch position.
template <int MR, int NR>
void micro_tile(std::size_t kb, const float* __restrict ap,
                const float* __restrict bp, float* __restrict c,
                std::size_t ldc, std::size_t mv, std::size_t nv) {
  float acc[MR][NR];
  for (int r = 0; r < MR; ++r) {
    for (int t = 0; t < NR; ++t) {
      acc[r][t] = (static_cast<std::size_t>(r) < mv &&
                   static_cast<std::size_t>(t) < nv)
                      ? c[static_cast<std::size_t>(r) * ldc + t]
                      : 0.0f;
    }
  }
  for (std::size_t kk = 0; kk < kb; ++kk) {
    const float* __restrict arow = ap + kk * MR;
    const float* __restrict brow = bp + kk * NR;
    for (int r = 0; r < MR; ++r) {
      const float av = arow[r];
      for (int t = 0; t < NR; ++t) acc[r][t] += av * brow[t];
    }
  }
  for (std::size_t r = 0; r < mv; ++r) {
    for (std::size_t t = 0; t < nv; ++t) c[r * ldc + t] = acc[r][t];
  }
}

using MicroFn = void (*)(std::size_t, const float*, const float*, float*,
                         std::size_t, std::size_t, std::size_t);

struct Variant {
  std::uint32_t mr, nr;
  MicroFn fn;
};

/// Must stay in sync with microkernel_variants() in config.cpp.
constexpr Variant kVariantTable[] = {
    {2, 4, micro_tile<2, 4>},   {4, 4, micro_tile<4, 4>},
    {2, 8, micro_tile<2, 8>},   {4, 8, micro_tile<4, 8>},
    {6, 8, micro_tile<6, 8>},   {8, 8, micro_tile<8, 8>},
    {4, 16, micro_tile<4, 16>}, {8, 4, micro_tile<8, 4>},
};

MicroFn find_variant(std::uint32_t mr, std::uint32_t nr) {
  for (const auto& v : kVariantTable) {
    if (v.mr == mr && v.nr == nr) return v.fn;
  }
  return nullptr;
}

void tiled_gemm(const GemmSpec& s, const KernelConfig& cfg,
                KernelScratch& scratch, MicroFn micro) {
  const std::size_t mr = cfg.mr, nr = cfg.nr;
  const std::size_t mc = cfg.mc, kc = cfg.kc, nc = cfg.nc;
  init_c(s);
  for (std::size_t j0 = 0; j0 < s.n; j0 += nc) {
    const std::size_t nb = std::min(nc, s.n - j0);
    const std::size_t npanels = (nb + nr - 1) / nr;
    // k blocks ascend inside the column block, so each chain consumes the
    // whole shared dimension in order before the next column block starts.
    for (std::size_t p0 = 0; p0 < s.k; p0 += kc) {
      const std::size_t kb = std::min(kc, s.k - p0);
      float* bp = scratch.pack_b(npanels * nr * kb);
      pack_b_block(s, p0, kb, j0, nb, nr, bp);
      for (std::size_t i0 = 0; i0 < s.m; i0 += mc) {
        const std::size_t mb = std::min(mc, s.m - i0);
        const std::size_t mpanels = (mb + mr - 1) / mr;
        float* ap = scratch.pack_a(mpanels * mr * kb);
        pack_a_block(s, i0, mb, p0, kb, mr, ap);
        for (std::size_t jq = 0; jq < npanels; ++jq) {
          const std::size_t j = j0 + jq * nr;
          const std::size_t nv = std::min(nr, s.n - j);
          const float* bpanel = bp + jq * nr * kb;
          for (std::size_t iq = 0; iq < mpanels; ++iq) {
            const std::size_t i = i0 + iq * mr;
            const std::size_t mv = std::min(mr, s.m - i);
            micro(kb, ap + iq * mr * kb, bpanel, s.c + i * s.ldc + j, s.ldc,
                  mv, nv);
          }
        }
      }
    }
  }
}

/// Registry handles for the kernel-layer metrics, resolved once.
struct KernelMetrics {
  obs::Counter& calls;
  obs::Counter& tuned;
  obs::Counter& fallback;
  obs::Histogram& gemm_ms;

  static KernelMetrics& get() {
    static KernelMetrics m = [] {
      auto& reg = obs::MetricsRegistry::global();
      return KernelMetrics{reg.counter("kernels.gemm_calls"),
                           reg.counter("kernels.tuned"),
                           reg.counter("kernels.fallback"),
                           reg.histogram("kernels.gemm_ms")};
    }();
    return m;
  }
};

}  // namespace

void gemm(const GemmSpec& spec, const KernelConfig& cfg,
          KernelScratch& scratch) {
  if (spec.m == 0 || spec.n == 0) return;
  MicroFn micro = cfg.scalar() ? nullptr : find_variant(cfg.mr, cfg.nr);
  if (micro == nullptr) {
    scalar_gemm(spec);
    return;
  }
  tiled_gemm(spec, cfg, scratch, micro);
}

void gemm(const GemmSpec& spec) {
  const KernelConfig cfg = active_config();
  auto& metrics = KernelMetrics::get();
  if (!obs::metrics_enabled()) {
    gemm(spec, cfg, KernelScratch::tls());
    return;
  }
  const auto start = std::chrono::steady_clock::now();
  gemm(spec, cfg, KernelScratch::tls());
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                start)
          .count();
  metrics.calls.inc();
  metrics.gemm_ms.observe(ms);
  if (cfg.scalar()) {
    metrics.fallback.inc();
  } else if (cfg.tuned()) {
    metrics.tuned.inc();
  }
}

}  // namespace gea::kernels
