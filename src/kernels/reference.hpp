// Seed-era Conv1D/Dense loops, preserved verbatim as the numeric contract
// for the kernel layer (the PR-5 engine-vs-reference pattern: the old
// implementation stays as an executable specification).
//
// These are the exact loop nests src/ml/conv1d.cpp and src/ml/dense.cpp
// shipped with before the GEMM lowering, lifted onto raw pointers so tests
// and bench/gemm_bench can run them against kernels::conv1d_* /
// kernels::dense_* on identical buffers. tests/kernels_test.cpp pins the
// ULP-bounded equivalence across a randomized shape sweep; gemm_bench
// refuses to time a divergent kernel.
#pragma once

#include <cstddef>

#include "kernels/conv.hpp"

namespace gea::kernels::reference {

/// Seed Conv1D::forward: per-(sample, out-channel, in-channel) tap loops
/// with a per-element bounds check, grouping each input channel's k-tap
/// dot product before adding it to the output row.
void conv1d_forward(const Conv1DShape& shape, const float* x, const float* w,
                    const float* b, float* y);

/// Seed Conv1D::backward, including the g == 0 skip.
void conv1d_backward(const Conv1DShape& shape, const float* x, const float* w,
                     const float* grad_out, float* grad_in, float* gw,
                     float* gb);

/// Seed Dense::forward: row-major dot products, bias first.
void dense_forward(std::size_t n, std::size_t in, std::size_t out,
                   const float* x, const float* w, const float* b, float* y);

/// Seed Dense::backward, including the g == 0 skip.
void dense_backward(std::size_t n, std::size_t in, std::size_t out,
                    const float* x, const float* w, const float* grad_out,
                    float* grad_in, float* gw, float* gb);

}  // namespace gea::kernels::reference
