// Bench-driven search over the GEMM tuning space.
//
// The tuner times every compiled microkernel variant (optionally crossed
// with a small cache-block grid) on a representative shape set — by
// default the paper CNN's batched-inference GEMMs — and returns the
// fastest KernelConfig along with the full candidate table and the scalar
// fallback's time for reference. Callers persist the winner with
// save_config() and install it with set_active_config(); processes on the
// same machine then pick it up via GEA_KERNEL_CONFIG.
//
// Wall-clock timing only perturbs *speed*: every candidate produces
// identical results by the gemm chain-order contract, so a mistuned
// machine is slower, never wrong.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "kernels/config.hpp"

namespace gea::kernels {

struct TuneShape {
  std::size_t m = 0, n = 0, k = 0;
  std::string label;
};

/// The GEMM shapes behind one batched Model::infer of the paper CNN
/// (conv layers lowered via im2col across the batch, dense layers direct)
/// for a 23-feature input — the serving hot path the tuner optimizes.
std::vector<TuneShape> paper_cnn_infer_shapes(std::size_t batch);

struct TuneOptions {
  /// Best-of reps per (candidate, shape); noise-damping.
  int reps = 5;
  /// Quick mode: microkernel sweep only at default blocks, fewer reps —
  /// the gemm_bench --smoke / CI setting.
  bool quick = false;
  std::vector<TuneShape> shapes;  // empty = paper_cnn_infer_shapes(16)
};

struct TuneCandidate {
  KernelConfig config;
  double total_ms = 0.0;  // summed best-of-reps over all shapes
};

struct TuneReport {
  KernelConfig best;            // source == kTuned
  double best_ms = 0.0;
  double scalar_ms = 0.0;       // fallback on the same shapes
  std::vector<TuneCandidate> candidates;  // sorted fastest first
};

TuneReport tune(const TuneOptions& options);

}  // namespace gea::kernels
