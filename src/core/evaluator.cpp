#include "core/evaluator.hpp"

namespace gea::core {

std::vector<attacks::AttackRow> AdversarialEvaluator::run_generic_attacks(
    const EvaluationOptions& opts) {
  const ml::LabeledData test = pipeline_->scaled_data(pipeline_->split().test);

  attacks::HarnessOptions hopts = opts.attack;
  if (opts.max_samples != 0) hopts.max_samples = opts.max_samples;

  std::vector<attacks::AttackRow> rows;
  for (auto& attack : attacks::make_paper_attacks()) {
    rows.push_back(attacks::run_attack(*attack, pipeline_->classifier(),
                                       test.rows, test.labels,
                                       &pipeline_->validator(), hopts));
  }
  return rows;
}

std::vector<aug::GeaRow> AdversarialEvaluator::run_gea_size_sweep(
    std::uint8_t source_label, const EvaluationOptions& opts) {
  aug::GeaHarness harness(pipeline_->corpus(), pipeline_->scaler(),
                          pipeline_->classifier());
  aug::GeaHarnessOptions gopts = opts.gea;
  if (opts.max_samples != 0) gopts.max_samples = opts.max_samples;
  return harness.size_sweep(source_label, gopts);
}

std::vector<aug::GeaRow> AdversarialEvaluator::run_gea_density_sweep(
    std::uint8_t source_label, const EvaluationOptions& opts) {
  aug::GeaHarness harness(pipeline_->corpus(), pipeline_->scaler(),
                          pipeline_->classifier());
  aug::GeaHarnessOptions gopts = opts.gea;
  if (opts.max_samples != 0) gopts.max_samples = opts.max_samples;
  return harness.density_sweep(source_label, 3, 3, gopts);
}

}  // namespace gea::core
