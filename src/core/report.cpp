#include "core/report.hpp"

#include <sstream>

namespace gea::core {

void PipelineReport::add(const std::string& stage, const std::string& family,
                         const std::string& detail) {
  ++quarantined;
  ++by_stage[stage];
  if (!family.empty()) ++by_family[family];
  if (diagnostics.size() < max_diagnostics) {
    diagnostics.push_back({stage, family, detail});
  }
}

std::string PipelineReport::summary() const {
  std::ostringstream ss;
  ss << "pipeline report: " << samples_used << "/" << samples_requested
     << " samples used, " << quarantined << " quarantined";
  if (!by_stage.empty()) {
    ss << " (";
    bool first = true;
    for (const auto& [stage, n] : by_stage) {
      if (!first) ss << ", ";
      ss << stage << ": " << n;
      first = false;
    }
    ss << ")";
  }
  for (const auto& note : notes) ss << "; note: " << note;
  if (!stage_times.empty()) {
    ss << "; timings:";
    for (const auto& [stage, t] : stage_times) {
      ss << ' ' << stage << ' ' << static_cast<long long>(t.wall_ms + 0.5)
         << "ms";
    }
    ss << " (threads: " << threads_used << ")";
  }
  return ss.str();
}

}  // namespace gea::core
