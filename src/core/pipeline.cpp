#include "core/pipeline.hpp"

#include "ml/zoo.hpp"

namespace gea::core {

PipelineConfig quick_config() {
  PipelineConfig cfg;
  cfg.corpus.num_malicious = 400;
  cfg.corpus.num_benign = 80;
  cfg.train.epochs = 60;
  cfg.train.early_stop_loss = 0.02;
  return cfg;
}

ml::LabeledData DetectionPipeline::scaled_data(
    const std::vector<std::size_t>& indices) const {
  ml::LabeledData data;
  data.rows.reserve(indices.size());
  data.labels.reserve(indices.size());
  for (std::size_t i : indices) {
    const auto scaled = scaler_.transform(corpus_.samples()[i].features);
    data.rows.emplace_back(scaled.begin(), scaled.end());
    data.labels.push_back(corpus_.samples()[i].label);
  }
  return data;
}

void DetectionPipeline::reevaluate() {
  train_metrics_ = ml::evaluate(model_, scaled_data(split_.train));
  test_metrics_ = ml::evaluate(model_, scaled_data(split_.test));
}

DetectionPipeline DetectionPipeline::run(const PipelineConfig& cfg) {
  DetectionPipeline p;
  p.cfg_ = cfg;
  p.corpus_ = dataset::Corpus::generate(cfg.corpus);

  util::Rng split_rng(cfg.split_seed);
  p.split_ = dataset::stratified_split(p.corpus_, cfg.test_fraction, split_rng);

  // Fit scaling on training rows only.
  {
    std::vector<features::FeatureVector> train_rows;
    train_rows.reserve(p.split_.train.size());
    for (std::size_t i : p.split_.train) {
      train_rows.push_back(p.corpus_.samples()[i].features);
    }
    p.scaler_.fit(train_rows);
  }
  p.validator_ = std::make_unique<features::DistortionValidator>(p.scaler_);

  p.dropout_rng_ = std::make_unique<util::Rng>(cfg.weight_seed + 1);
  p.model_ = cfg.detector == DetectorKind::kPaperCnn
                 ? ml::make_paper_cnn(features::kNumFeatures, 2, *p.dropout_rng_)
                 : ml::make_mlp_baseline(features::kNumFeatures, 2);
  util::Rng weight_rng(cfg.weight_seed);
  p.model_.init(weight_rng);

  const ml::LabeledData train_data = p.scaled_data(p.split_.train);
  p.train_stats_ = ml::train(p.model_, train_data, cfg.train);

  p.train_metrics_ = ml::evaluate(p.model_, train_data);
  p.test_metrics_ = ml::evaluate(p.model_, p.scaled_data(p.split_.test));

  p.classifier_ = std::make_unique<ml::ModelClassifier>(
      p.model_, features::kNumFeatures, 2);
  return p;
}

}  // namespace gea::core
