#include "core/pipeline.hpp"

#include <cmath>
#include <stdexcept>

#include "ml/zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace gea::core {

using util::ErrorCode;
using util::Status;

namespace {

/// Span-backed stage timer: emits an obs::TraceSpan named
/// "pipeline.<stage>" (so stages nest under the run span in the trace) and
/// mirrors the wall time into PipelineReport::stage_times at finish,
/// keeping the report API — and every caller of stage_times — intact.
class StageSpan {
 public:
  StageSpan(PipelineReport& report, std::string stage)
      : report_(&report),
        stage_(std::move(stage)),
        span_("pipeline." + stage_) {}

  ~StageSpan() { finish(); }

  /// Record the stage as serial: worker time == wall time.
  void finish() {
    if (report_ == nullptr) return;
    span_.close();
    const double wall = span_.elapsed_ms();
    record(wall, wall);
  }

  /// Record a stage with a parallel phase inside: that phase's wall time is
  /// swapped out of the worker total and its summed per-worker busy time
  /// swapped in (worker = wall - phase_wall + phase_worker).
  void finish_parallel(double phase_wall_ms, double phase_worker_ms) {
    if (report_ == nullptr) return;
    span_.close();
    const double wall = span_.elapsed_ms();
    record(wall, wall - phase_wall_ms + phase_worker_ms);
  }

 private:
  void record(double wall_ms, double worker_ms) {
    report_->stage_times[stage_] = {wall_ms, worker_ms};
    obs::MetricsRegistry::global()
        .histogram("pipeline.stage_ms." + stage_)
        .observe(wall_ms);
    report_ = nullptr;
  }

  PipelineReport* report_;
  std::string stage_;
  obs::TraceSpan span_;
};

}  // namespace

PipelineConfig quick_config() {
  PipelineConfig cfg;
  cfg.corpus.num_malicious = 400;
  cfg.corpus.num_benign = 80;
  cfg.train.epochs = 60;
  cfg.train.early_stop_loss = 0.02;
  return cfg;
}

ml::LabeledData DetectionPipeline::scaled_data(
    const std::vector<std::size_t>& indices) const {
  ml::LabeledData data;
  data.rows.reserve(indices.size());
  data.labels.reserve(indices.size());
  for (std::size_t i : indices) {
    const auto scaled = scaler_.transform(corpus_.samples()[i].features);
    data.rows.emplace_back(scaled.begin(), scaled.end());
    data.labels.push_back(corpus_.samples()[i].label);
  }
  return data;
}

void DetectionPipeline::reevaluate() {
  train_metrics_ = ml::evaluate(model_, scaled_data(split_.train));
  test_metrics_ = ml::evaluate(model_, scaled_data(split_.test));
}

Status DetectionPipeline::assemble_corpus(const PipelineConfig& cfg) {
  const bool strict = cfg.mode == RobustnessMode::kStrict;

  if (!cfg.features_csv.empty()) {
    StageSpan stage(report_, "csv");
    dataset::CsvReadOptions csv_opts;
    csv_opts.strict = strict;
    auto loaded =
        dataset::read_features_csv_checked(cfg.features_csv, csv_opts);
    if (!loaded.is_ok()) {
      return Status(loaded.status()).with_context("pipeline");
    }
    const dataset::LoadedFeatures& lf = loaded.value();
    report_.samples_requested = lf.report.rows_total;
    for (const auto& diag : lf.report.diagnostics) {
      report_.add("csv", "", diag);
    }
    // Counts are exact even when diagnostics were capped.
    report_.quarantined = lf.report.rows_quarantined;
    report_.by_stage["csv"] = lf.report.rows_quarantined;

    for (std::size_t r = 0; r < lf.rows.size(); ++r) {
      dataset::Sample s;
      s.id = static_cast<std::uint32_t>(r);
      s.label = lf.labels[r];
      s.features = lf.rows[r];
      if (auto fam = bingen::family_from_name(lf.families[r])) {
        s.family = *fam;
      } else {
        const std::string diag = "row " + std::to_string(r) +
                                 ": unknown family '" + lf.families[r] + "'";
        if (strict) {
          return Status::error(ErrorCode::kCorruptData, diag)
              .with_context("pipeline");
        }
        report_.add("csv", lf.families[r], diag);
        util::log_warn("pipeline: quarantined ", diag);
        continue;
      }
      corpus_.samples().push_back(std::move(s));
    }
    return Status::ok();
  }

  StageSpan stage(report_, "synthesis");
  dataset::SynthesisReport synth;
  synth.max_diagnostics = report_.max_diagnostics;
  auto generated =
      dataset::Corpus::generate_checked(cfg.corpus, &synth, strict);
  report_.samples_requested = synth.requested;
  if (!generated.is_ok()) {
    return Status(generated.status()).with_context("pipeline");
  }
  corpus_ = std::move(generated).value();
  report_.quarantined = synth.quarantined;
  if (synth.quarantined > 0) report_.by_stage["synthesis"] = synth.quarantined;
  for (const auto& [family, n] : synth.quarantined_by_family) {
    report_.by_family[family] += n;
  }
  for (const auto& diag : synth.diagnostics) {
    if (report_.diagnostics.size() < report_.max_diagnostics) {
      report_.diagnostics.push_back({"synthesis", "", diag});
    }
  }
  // Worker time = the serial portion (counted once) plus the featurize
  // phase's summed per-worker busy time, merged here at the join.
  stage.finish_parallel(synth.featurize_wall_ms, synth.featurize_worker_ms);
  report_.threads_used = synth.threads_used;
  return Status::ok();
}

util::Result<std::unique_ptr<DetectionPipeline>> DetectionPipeline::run_checked(
    const PipelineConfig& cfg) {
  const bool strict = cfg.mode == RobustnessMode::kStrict;
  obs::TraceSpan run_span("pipeline.run");
  auto& registry = obs::MetricsRegistry::global();
  registry.counter("pipeline.runs_total").inc();
  auto p = std::unique_ptr<DetectionPipeline>(new DetectionPipeline());
  p->cfg_ = cfg;
  // The pipeline-level knob feeds stages whose own knob is on auto.
  if (p->cfg_.corpus.threads == 0) p->cfg_.corpus.threads = cfg.threads;

  if (auto st = p->assemble_corpus(p->cfg_); !st.is_ok()) return st;
  p->report_.samples_used = p->corpus_.size();
  registry.counter("pipeline.samples_used_total").inc(p->report_.samples_used);
  registry.counter("pipeline.quarantined_total").inc(p->report_.quarantined);

  // A detector needs at least two samples of each class to split and train;
  // heavy quarantining (or a hostile CSV) can starve a class entirely.
  const std::size_t n_benign = p->corpus_.count_label(dataset::kBenign);
  const std::size_t n_malicious = p->corpus_.count_label(dataset::kMalicious);
  if (n_benign < 2 || n_malicious < 2) {
    return Status::error(ErrorCode::kFailedPrecondition,
                         "too few surviving samples to train (benign " +
                             std::to_string(n_benign) + ", malicious " +
                             std::to_string(n_malicious) + "); " +
                             p->report_.summary())
        .with_context("pipeline");
  }

  util::Rng split_rng(cfg.split_seed);
  p->split_ = dataset::stratified_split(p->corpus_, cfg.test_fraction, split_rng);

  // Scaler: load if requested, else fit on training rows only.
  bool scaler_ready = false;
  if (!cfg.scaler_in.empty()) {
    // load_checked stages before committing, so a failed load leaves the
    // scaler untouched for the refit fallback below.
    if (auto st = p->scaler_.load_checked(cfg.scaler_in); st.is_ok()) {
      scaler_ready = true;
    } else if (strict) {
      return st.with_context("pipeline");
    } else {
      const std::string note =
          "scaler load failed, refitting: " + st.to_string();
      p->report_.notes.push_back(note);
      util::log_warn("pipeline: ", note);
    }
  }
  if (!scaler_ready) {
    std::vector<features::FeatureVector> train_rows;
    train_rows.reserve(p->split_.train.size());
    for (std::size_t i : p->split_.train) {
      train_rows.push_back(p->corpus_.samples()[i].features);
    }
    p->scaler_.fit(train_rows);
  }
  p->validator_ = std::make_unique<features::DistortionValidator>(p->scaler_);

  p->dropout_rng_ = std::make_unique<util::Rng>(cfg.weight_seed + 1);
  // The paper pipeline is the binary special case of the label schema.
  const std::size_t k = ml::LabelSchema::binary().num_classes();
  p->model_ = cfg.detector == DetectorKind::kPaperCnn
                  ? ml::make_paper_cnn(features::kNumFeatures, k, *p->dropout_rng_)
                  : ml::make_mlp_baseline(features::kNumFeatures, k);
  util::Rng weight_rng(cfg.weight_seed);
  p->model_.init(weight_rng);

  // Weights: load if requested; a lenient run falls back to training.
  bool need_training = true;
  if (!cfg.weights_in.empty()) {
    if (auto st = p->model_.load_checked(cfg.weights_in); st.is_ok()) {
      need_training = false;
    } else if (strict) {
      return st.with_context("pipeline");
    } else {
      const std::string note =
          "weights load failed, training from scratch: " + st.to_string();
      p->report_.notes.push_back(note);
      util::log_warn("pipeline: ", note);
    }
  }

  const ml::LabeledData train_data = p->scaled_data(p->split_.train);
  if (need_training) {
    StageSpan stage(p->report_, "train");
    p->train_stats_ = ml::train(p->model_, train_data, cfg.train);
    stage.finish();
    if (!std::isfinite(p->train_stats_.final_loss)) {
      return Status::error(ErrorCode::kInternal,
                           "training diverged to a non-finite loss")
          .with_context("pipeline");
    }
  }

  {
    StageSpan stage(p->report_, "evaluate");
    p->train_metrics_ = ml::evaluate(p->model_, train_data);
    p->test_metrics_ = ml::evaluate(p->model_, p->scaled_data(p->split_.test));
  }
  registry.gauge("pipeline.test_accuracy").set(p->test_metrics_.accuracy());

  p->classifier_ = std::make_unique<ml::ModelClassifier>(
      p->model_, features::kNumFeatures, 2);
  if (!p->report_.clean()) {
    util::log_info("pipeline: ", p->report_.summary());
  }
  return p;
}

DetectionPipeline DetectionPipeline::run(const PipelineConfig& cfg) {
  auto res = run_checked(cfg);
  if (!res.is_ok()) throw std::runtime_error(res.status().to_string());
  DetectionPipeline p = std::move(*res.value());
  // The classifier and validator capture references to the model and scaler
  // members, which just moved; rebind them to this instance's members.
  p.classifier_ = std::make_unique<ml::ModelClassifier>(
      p.model_, features::kNumFeatures, 2);
  p.validator_ = std::make_unique<features::DistortionValidator>(p.scaler_);
  return p;
}

}  // namespace gea::core
