// End-to-end detection pipeline (Fig. 1, upper half): corpus synthesis ->
// CFG feature extraction -> min-max scaling -> CNN training -> evaluation.
//
// This is the library's main entry point; examples and benches build one
// of these, then hand its classifier to the attack harnesses.
#pragma once

#include <memory>

#include "dataset/corpus.hpp"
#include "dataset/split.hpp"
#include "features/scaler.hpp"
#include "features/validator.hpp"
#include "ml/metrics.hpp"
#include "ml/model.hpp"
#include "ml/trainer.hpp"

namespace gea::core {

enum class DetectorKind {
  kPaperCnn,     // Fig. 5 architecture
  kMlpBaseline,  // ablation: small MLP
};

struct PipelineConfig {
  dataset::CorpusConfig corpus{};
  double test_fraction = 0.2;
  ml::TrainConfig train{
      .epochs = 200,
      .batch_size = 100,
      .learning_rate = 1e-3,
      .seed = 42,
      .early_stop_loss = 0.0,
  };
  DetectorKind detector = DetectorKind::kPaperCnn;
  std::uint64_t split_seed = 7;
  std::uint64_t weight_seed = 13;
};

/// A moderate configuration for tests and quick examples: a reduced corpus
/// and an early-stopped training run (the full Table I corpus with 200
/// epochs lives in the benches).
PipelineConfig quick_config();

class DetectionPipeline {
 public:
  /// Generate the corpus, split, fit the scaler on the training rows,
  /// train the detector, and evaluate both splits.
  static DetectionPipeline run(const PipelineConfig& cfg);

  const PipelineConfig& config() const { return cfg_; }
  const dataset::Corpus& corpus() const { return corpus_; }
  const dataset::Split& split() const { return split_; }
  const features::FeatureScaler& scaler() const { return scaler_; }
  const features::DistortionValidator& validator() const { return *validator_; }

  ml::Model& model() { return model_; }
  ml::ModelClassifier& classifier() { return *classifier_; }

  const ml::ConfusionMatrix& train_metrics() const { return train_metrics_; }
  const ml::ConfusionMatrix& test_metrics() const { return test_metrics_; }
  const ml::TrainStats& train_stats() const { return train_stats_; }

  /// Scaled rows + labels for a split's indices.
  ml::LabeledData scaled_data(const std::vector<std::size_t>& indices) const;

  /// Recompute train/test metrics (after loading external weights).
  void reevaluate();

 private:
  DetectionPipeline() = default;

  PipelineConfig cfg_;
  dataset::Corpus corpus_;
  dataset::Split split_;
  features::FeatureScaler scaler_;
  std::unique_ptr<features::DistortionValidator> validator_;
  std::unique_ptr<util::Rng> dropout_rng_;
  ml::Model model_;
  std::unique_ptr<ml::ModelClassifier> classifier_;
  ml::ConfusionMatrix train_metrics_;
  ml::ConfusionMatrix test_metrics_;
  ml::TrainStats train_stats_;
};

}  // namespace gea::core
