// End-to-end detection pipeline (Fig. 1, upper half): corpus synthesis ->
// CFG feature extraction -> min-max scaling -> CNN training -> evaluation.
//
// This is the library's main entry point; examples and benches build one
// of these, then hand its classifier to the attack harnesses.
//
// Robustness (ROBUSTNESS.md): every input stage is quarantine-gated. In
// lenient mode (the default) malformed samples, hostile CSV rows, and
// unloadable model/scaler files degrade the run — dropped samples land in
// the PipelineReport and training proceeds on the survivors. In strict mode
// the first such fault aborts with a Status naming it.
#pragma once

#include <memory>

#include "core/report.hpp"
#include "dataset/corpus.hpp"
#include "dataset/io.hpp"
#include "dataset/split.hpp"
#include "features/scaler.hpp"
#include "features/validator.hpp"
#include "ml/metrics.hpp"
#include "ml/model.hpp"
#include "ml/trainer.hpp"
#include "util/status.hpp"

namespace gea::core {

enum class DetectorKind {
  kPaperCnn,     // Fig. 5 architecture
  kMlpBaseline,  // ablation: small MLP
};

/// How the pipeline reacts to quarantinable input.
enum class RobustnessMode {
  kLenient,  // drop + report, finish on the survivors
  kStrict,   // first fault aborts the run with an error Status
};

struct PipelineConfig {
  dataset::CorpusConfig corpus{};
  double test_fraction = 0.2;
  ml::TrainConfig train{
      .epochs = 200,
      .batch_size = 100,
      .learning_rate = 1e-3,
      .seed = 42,
      .early_stop_loss = 0.0,
      .on_epoch = {},
      .threads = 1,
  };
  DetectorKind detector = DetectorKind::kPaperCnn;
  std::uint64_t split_seed = 7;
  std::uint64_t weight_seed = 13;

  /// Worker threads for parallel stages (corpus featurization): 0 = auto
  /// (GEA_THREADS / hardware_concurrency), 1 = serial. Results are bitwise
  /// identical at any value. Forwarded to corpus.threads when that is 0
  /// (auto). Training stays on TrainConfig::threads (default 1, the exact
  /// legacy numerics) — its chunked path is deterministic but sums floats
  /// in a different order, so it is opted into separately.
  std::size_t threads = 0;

  RobustnessMode mode = RobustnessMode::kLenient;
  /// Non-empty: load features/labels from this CSV (write_features_csv
  /// schema) instead of synthesizing a corpus. Loaded samples carry no
  /// program/CFG, so GEA crafting is unavailable on such a run.
  std::string features_csv;
  /// Non-empty: initialize the scaler from this file (FeatureScaler::save)
  /// instead of fitting. Lenient fallback on failure: refit + report note.
  std::string scaler_in;
  /// Non-empty: load model weights from this file (Model::save) and skip
  /// training. Lenient fallback on failure: train from scratch + report note.
  std::string weights_in;
};

/// A moderate configuration for tests and quick examples: a reduced corpus
/// and an early-stopped training run (the full Table I corpus with 200
/// epochs lives in the benches).
PipelineConfig quick_config();

class DetectionPipeline {
 public:
  /// Generate the corpus, split, fit the scaler on the training rows,
  /// train the detector, and evaluate both splits.
  /// Throws std::runtime_error if run_checked would return an error.
  static DetectionPipeline run(const PipelineConfig& cfg);

  /// Status-returning variant. Errors (rather than degrading) when:
  ///  - strict mode sees any quarantinable fault, or
  ///  - either class has fewer than two surviving samples (un-trainable).
  static util::Result<std::unique_ptr<DetectionPipeline>> run_checked(
      const PipelineConfig& cfg);

  const PipelineConfig& config() const { return cfg_; }
  const dataset::Corpus& corpus() const { return corpus_; }
  const dataset::Split& split() const { return split_; }
  const features::FeatureScaler& scaler() const { return scaler_; }
  const features::DistortionValidator& validator() const { return *validator_; }

  /// Quarantine accounting for this run (empty when nothing degraded).
  const PipelineReport& report() const { return report_; }

  ml::Model& model() { return model_; }
  ml::ModelClassifier& classifier() { return *classifier_; }

  const ml::ConfusionMatrix& train_metrics() const { return train_metrics_; }
  const ml::ConfusionMatrix& test_metrics() const { return test_metrics_; }
  const ml::TrainStats& train_stats() const { return train_stats_; }

  /// Scaled rows + labels for a split's indices.
  ml::LabeledData scaled_data(const std::vector<std::size_t>& indices) const;

  /// Recompute train/test metrics (after loading external weights).
  void reevaluate();

 private:
  DetectionPipeline() = default;

  util::Status assemble_corpus(const PipelineConfig& cfg);

  PipelineConfig cfg_;
  dataset::Corpus corpus_;
  dataset::Split split_;
  features::FeatureScaler scaler_;
  std::unique_ptr<features::DistortionValidator> validator_;
  std::unique_ptr<util::Rng> dropout_rng_;
  ml::Model model_;
  std::unique_ptr<ml::ModelClassifier> classifier_;
  ml::ConfusionMatrix train_metrics_;
  ml::ConfusionMatrix test_metrics_;
  ml::TrainStats train_stats_;
  PipelineReport report_;
};

}  // namespace gea::core
