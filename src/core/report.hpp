// Quarantine accounting for one DetectionPipeline run.
//
// Lenient runs finish on the surviving samples and describe everything that
// was dropped here: totals, per-stage and per-family counts, and the first
// few full diagnostics. Strict runs never produce a partial report — the
// first quarantined item escalates to an error Status instead.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace gea::core {

struct QuarantineRecord {
  std::string stage;   // "synthesis", "csv", "scaler", "weights", ...
  std::string family;  // originating family when known, "" otherwise
  std::string detail;  // full diagnostic (Status::to_string form)
};

/// Wall-clock and worker timing for one pipeline stage. `worker_ms` is
/// accumulated per worker and merged at the join, so it stays exact under
/// concurrency; worker_ms / wall_ms approximates the realized parallelism.
/// For serial stages the two coincide.
struct StageTime {
  double wall_ms = 0.0;
  double worker_ms = 0.0;
};

struct PipelineReport {
  /// Samples the run was asked to produce (corpus config or CSV data rows).
  std::size_t samples_requested = 0;
  /// Samples that survived every quarantine gate and entered the split.
  std::size_t samples_used = 0;
  /// Everything dropped, summed over stages.
  std::size_t quarantined = 0;

  std::map<std::string, std::size_t> by_stage;
  std::map<std::string, std::size_t> by_family;

  /// First max_diagnostics quarantine records, in occurrence order.
  std::vector<QuarantineRecord> diagnostics;
  std::size_t max_diagnostics = 16;

  /// Non-sample degradations (e.g. "weights file truncated; retrained") —
  /// events a lenient run survived that an operator should still see.
  std::vector<std::string> notes;

  /// Per-stage wall/worker timings ("synthesis", "train", "evaluate", ...).
  std::map<std::string, StageTime> stage_times;
  /// Worker threads the synthesis stage actually used.
  std::size_t threads_used = 1;

  bool clean() const { return quarantined == 0 && notes.empty(); }

  void add(const std::string& stage, const std::string& family,
           const std::string& detail);

  /// One-paragraph human rendering for logs and examples.
  std::string summary() const;
};

}  // namespace gea::core
