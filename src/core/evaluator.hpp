// AdversarialEvaluator: the full SIV evaluation — Table III (eight generic
// attacks over the test split) plus Tables IV-VII (GEA sweeps) — against a
// trained DetectionPipeline.
#pragma once

#include <vector>

#include "attacks/harness.hpp"
#include "core/pipeline.hpp"
#include "gea/harness.hpp"

namespace gea::core {

struct EvaluationOptions {
  /// Cap on attacked samples per attack/table row (0 = all). Benches use 0;
  /// tests cap for speed.
  std::size_t max_samples = 0;
  attacks::HarnessOptions attack{};
  aug::GeaHarnessOptions gea{};
};

class AdversarialEvaluator {
 public:
  explicit AdversarialEvaluator(DetectionPipeline& pipeline)
      : pipeline_(&pipeline) {}

  /// Table III: all eight generic attacks over the test split (both attack
  /// directions, as in the paper's "malicious as benign and vice versa").
  std::vector<attacks::AttackRow> run_generic_attacks(
      const EvaluationOptions& opts = {});

  /// Table IV (malicious -> benign) / Table V (benign -> malicious).
  std::vector<aug::GeaRow> run_gea_size_sweep(std::uint8_t source_label,
                                              const EvaluationOptions& opts = {});

  /// Table VI / VII.
  std::vector<aug::GeaRow> run_gea_density_sweep(
      std::uint8_t source_label, const EvaluationOptions& opts = {});

 private:
  DetectionPipeline* pipeline_;
};

}  // namespace gea::core
