// Autotune the dense-math kernel layer for this machine.
//
// Sweeps every compiled microkernel variant (and, in full mode, a small
// cache-block grid) over the paper CNN's batched-inference GEMM shapes,
// prints the candidate table, and persists the winner as a small text
// config. Point GEA_KERNEL_CONFIG at the file and every gea process
// (trainer, gea_serve, benches) runs its conv/dense math under the tuned
// tiling — correctness is untouched by construction (every candidate
// produces identical results; see kernels/gemm.hpp).
//
//   $ ./tools/gemm_tune [--quick] [--batch N] [--out PATH]
//
//   --quick    microkernel sweep only, fewer reps (CI / sanity runs)
//   --batch N  tune for serving batch N (default 16)
//   --out PATH where to write the config (default gemm_tuned.cfg)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "kernels/config.hpp"
#include "kernels/tune.hpp"

int main(int argc, char** argv) {
  using namespace gea;

  bool quick = false;
  std::size_t batch = 16;
  std::string out = "gemm_tuned.cfg";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      batch = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (batch == 0) batch = 1;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: gemm_tune [--quick] [--batch N] [--out PATH]\n");
      return 2;
    }
  }

  kernels::TuneOptions opts;
  opts.quick = quick;
  opts.reps = quick ? 2 : 5;
  opts.shapes = kernels::paper_cnn_infer_shapes(batch);
  std::printf("gemm_tune: %zu shapes (batch %zu), %zu microkernel variants%s\n",
              opts.shapes.size(), batch, kernels::microkernel_variants().size(),
              quick ? " [quick]" : " + cache-block grid");

  const auto report = kernels::tune(opts);
  std::printf("%-40s %10s\n", "config", "total ms");
  for (const auto& c : report.candidates) {
    std::printf("%-40s %10.3f%s\n", c.config.summary().c_str(), c.total_ms,
                &c == &report.candidates.front() ? "  <- best" : "");
  }
  std::printf("%-40s %10.3f\n", "scalar fallback", report.scalar_ms);
  if (report.best_ms > 0.0) {
    std::printf("best vs scalar: %.2fx\n", report.scalar_ms / report.best_ms);
  }

  if (auto st = kernels::save_config(report.best, out); !st.is_ok()) {
    std::fprintf(stderr, "gemm_tune: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("wrote %s — export GEA_KERNEL_CONFIG=%s to use it\n",
              out.c_str(), out.c_str());
  return 0;
}
