// Example: craft adversarial feature vectors with all eight off-the-shelf
// methods against one malicious sample, and inspect what each attack did —
// which features moved, by how much, whether the prediction flipped, and
// whether the crafted point would pass the distortion validator (i.e.
// whether any real CFG could plausibly have those features).
//
//   $ ./examples/craft_adversarial
#include <cmath>
#include <cstdio>

#include "attacks/harness.hpp"
#include "core/pipeline.hpp"
#include "util/table.hpp"

namespace core = gea::core;
namespace dataset = gea::dataset;
namespace attacks = gea::attacks;
namespace features = gea::features;
namespace util = gea::util;

int main() {
  std::printf("training detector (reduced corpus)...\n");
  auto pipeline = core::DetectionPipeline::run(core::quick_config());
  auto& clf = pipeline.classifier();

  // Pick the first malicious test sample the detector gets right.
  const auto test = pipeline.scaled_data(pipeline.split().test);
  std::vector<double> x;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (test.labels[i] == dataset::kMalicious &&
        clf.predict(test.rows[i]) == dataset::kMalicious) {
      x = test.rows[i];
      break;
    }
  }
  if (x.empty()) {
    std::printf("no correctly-classified malicious sample found\n");
    return 1;
  }
  std::printf("victim sample: P(malicious) = %.4f\n\n",
              clf.probabilities(x)[dataset::kMalicious]);

  util::AsciiTable t({"Attack", "flipped?", "P(mal) after", "features changed",
                      "Linf", "validator"});
  for (auto& attack : attacks::make_paper_attacks()) {
    const auto adv = attack->craft(clf, x, dataset::kBenign);

    std::size_t changed = 0;
    double linf = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = std::abs(adv[i] - x[i]);
      if (d > 1e-4) ++changed;
      linf = std::max(linf, d);
    }
    features::FeatureVector fv{};
    for (std::size_t i = 0; i < fv.size(); ++i) fv[i] = adv[i];
    const auto report = pipeline.validator().validate(fv);

    t.add_row({attack->name(),
               clf.predict(adv) == dataset::kBenign ? "yes" : "no",
               util::AsciiTable::fmt(clf.probabilities(adv)[dataset::kMalicious], 4),
               util::AsciiTable::fmt_int(static_cast<long long>(changed)),
               util::AsciiTable::fmt(linf, 3),
               report.admissible()
                   ? "admissible"
                   : (report.violations.empty() ? "rejected"
                                                : report.violations.front())});
  }
  std::printf("%s\n", t.to_string().c_str());

  std::printf(
      "Note how several attacks succeed only by pushing features outside the\n"
      "range any real CFG exhibits — exactly the practicality gap (SVI) that\n"
      "motivates GEA (see examples/gea_campaign).\n");
  return 0;
}
