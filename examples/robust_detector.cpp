// Example: hardening the detector. Trains the plain CNN, then a
// PGD-adversarially-trained one, then one trained with GEA-augmented data,
// and shows each model's accuracy and its resistance to a PGD attack and a
// GEA splice — the defensive follow-up the paper's conclusion asks for.
//
//   $ ./examples/robust_detector
#include <cstdio>

#include "cfg/cfg.hpp"
#include "attacks/harness.hpp"
#include "core/pipeline.hpp"
#include "defense/adversarial_training.hpp"
#include "defense/gea_augmentation.hpp"
#include "gea/selection.hpp"
#include "ml/zoo.hpp"
#include "util/table.hpp"

namespace core = gea::core;
namespace dataset = gea::dataset;
namespace attacks = gea::attacks;
namespace defense = gea::defense;
namespace aug = gea::aug;
namespace features = gea::features;
namespace ml = gea::ml;
namespace cfg = gea::cfg;
namespace util = gea::util;

int main() {
  std::printf("building corpus and baseline pipeline...\n");
  auto config = core::quick_config();
  auto pipeline = core::DetectionPipeline::run(config);
  const auto& corpus = pipeline.corpus();
  const auto train = pipeline.scaled_data(pipeline.split().train);
  const auto test = pipeline.scaled_data(pipeline.split().test);

  // GEA probe: splice the largest benign CFG into malware test samples.
  const auto target_idx = aug::select_by_size(corpus, dataset::kBenign,
                                              aug::SizeRank::kMaximum);
  const auto& target = corpus.samples()[target_idx];
  auto gea_mr = [&](ml::ModelClassifier& clf) {
    std::size_t attacked = 0, flipped = 0;
    for (const auto& s : corpus.samples()) {
      if (s.label != dataset::kMalicious || attacked >= 60) continue;
      const auto sc = pipeline.scaler().transform(s.features);
      if (clf.predict({sc.begin(), sc.end()}) != dataset::kMalicious) continue;
      ++attacked;
      const auto merged = aug::embed_program(s.program, target.program);
      const auto fv = features::extract_features(
          cfg::extract_cfg(merged, {.main_only = true}).graph);
      const auto msc = pipeline.scaler().transform(fv);
      if (clf.predict({msc.begin(), msc.end()}) != dataset::kMalicious) {
        ++flipped;
      }
    }
    return attacked ? static_cast<double>(flipped) / attacked : 0.0;
  };
  auto pgd_mr = [&](ml::ModelClassifier& clf) {
    attacks::Pgd pgd;
    attacks::HarnessOptions opts;
    opts.max_samples = 40;
    return attacks::run_attack(pgd, clf, test.rows, test.labels, nullptr, opts)
        .mr();
  };

  util::AsciiTable t({"Model", "Test acc (%)", "PGD MR (%)", "GEA MR (%)"});
  auto report = [&](const char* name, ml::Model& m) {
    ml::ModelClassifier clf(m, features::kNumFeatures, 2);
    const double acc = ml::evaluate(m, test).accuracy();
    t.add_row({std::string(name), util::AsciiTable::fmt_pct(acc),
               util::AsciiTable::fmt_pct(pgd_mr(clf)),
               util::AsciiTable::fmt_pct(gea_mr(clf))});
  };

  report("plain CNN", pipeline.model());

  std::printf("adversarially training a second CNN (PGD in the loop)...\n");
  util::Rng drng(41);
  ml::Model robust = ml::make_paper_cnn(features::kNumFeatures, 2, drng);
  util::Rng wrng(42);
  robust.init(wrng);
  defense::AdvTrainConfig acfg;
  acfg.base.epochs = 40;
  acfg.base.early_stop_loss = 0.03;
  acfg.adversarial_fraction = 0.5;
  defense::adversarial_train(robust, train, acfg);
  report("PGD-adversarial CNN", robust);

  std::printf("training a third CNN on GEA-augmented data...\n");
  util::Rng drng2(43);
  ml::Model gea_aware = ml::make_paper_cnn(features::kNumFeatures, 2, drng2);
  util::Rng wrng2(44);
  gea_aware.init(wrng2);
  defense::GeaAugmentConfig gcfg;
  gcfg.num_augmented = 300;
  util::Rng arng(45);
  const auto augmented = defense::augment_with_gea(
      corpus, pipeline.split().train, pipeline.scaler(), gcfg, arng);
  ml::TrainConfig tcfg;
  tcfg.epochs = 60;
  tcfg.early_stop_loss = 0.03;
  ml::train(gea_aware, augmented, tcfg);
  report("GEA-augmented CNN", gea_aware);

  std::printf("\n%s\n", t.to_string().c_str());
  std::printf(
      "Adversarial training trades clean accuracy for attack resistance; at\n"
      "this reduced corpus scale it can blunt even GEA (small benign grafts\n"
      "only go so far), but at full scale a large-enough graft beats every\n"
      "defense tried — see bench/ablation_defense. The weakness is the CFG\n"
      "feature space itself, not the model on top of it.\n");
  return 0;
}
