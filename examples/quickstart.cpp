// Quickstart: train the CFG-feature CNN detector on a reduced synthetic
// corpus, attack it with one gradient attack and one GEA splice, serve the
// trained model through the batched detection server, and finish with the
// run's unified observability: one metrics dump (every subsystem reports
// into obs::MetricsRegistry::global()) plus a Chrome trace of the spans.
//
//   $ ./examples/quickstart [--threads N]
//
// --threads N (or GEA_THREADS=N) parallelizes corpus featurization; the
// trained detector and every number printed are identical at any N.
// Artifacts: quickstart_metrics.prom (Prometheus exposition) and
// quickstart_trace.json (open in chrome://tracing or Perfetto).
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "attacks/fgsm.hpp"
#include "attacks/harness.hpp"
#include "core/evaluator.hpp"
#include "core/pipeline.hpp"
#include "gea/embed.hpp"
#include "gea/selection.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/checkpoint.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace core = gea::core;
namespace dataset = gea::dataset;
namespace attacks = gea::attacks;
namespace gealib = gea::aug;
namespace cfg = gea::cfg;
namespace features = gea::features;
namespace serve = gea::serve;
namespace obs = gea::obs;

int main(int argc, char** argv) {

  // 1. Train the detector on a reduced corpus (fast; the full Table I
  //    corpus lives in the benches).
  std::printf("== training detector on synthetic IoT corpus ==\n");
  auto config = core::quick_config();
  config.threads = gea::util::threads_from_cli(argc, argv, config.threads);
  auto pipeline = core::DetectionPipeline::run(config);

  const auto& tm = pipeline.test_metrics();
  std::printf("corpus: %zu samples (%zu benign / %zu malicious)\n",
              pipeline.corpus().size(),
              pipeline.corpus().count_label(dataset::kBenign),
              pipeline.corpus().count_label(dataset::kMalicious));
  std::printf("test accuracy %.2f%%  FNR %.2f%%  FPR %.2f%%  (%s)\n",
              tm.accuracy() * 100, tm.fnr() * 100, tm.fpr() * 100,
              tm.to_string().c_str());
  std::printf("%s\n\n", pipeline.report().summary().c_str());

  // 2. One off-the-shelf attack: FGSM on the first correctly-classified
  //    malicious test sample.
  std::printf("== FGSM on one malicious sample ==\n");
  auto& clf = pipeline.classifier();
  const auto test = pipeline.scaled_data(pipeline.split().test);
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (test.labels[i] != dataset::kMalicious) continue;
    if (clf.predict(test.rows[i]) != dataset::kMalicious) continue;
    attacks::Fgsm fgsm;
    const auto adv = fgsm.craft(clf, test.rows[i], dataset::kBenign);
    std::printf("original predicted: %zu, adversarial predicted: %zu\n",
                clf.predict(test.rows[i]), clf.predict(adv));
    break;
  }

  // The harness run (the Table III driver) is what feeds the attacks.*
  // metrics the observability step dumps below.
  {
    attacks::Fgsm fgsm;
    const auto row = attacks::run_attack(fgsm, clf, test.rows, test.labels,
                                         nullptr, {.max_samples = 16});
    std::printf("FGSM harness: %zu/%zu samples misclassified "
                "(%.2f ms/sample crafting)\n\n",
                row.misclassified, row.samples, row.craft_ms_per_sample);
  }

  // 3. One GEA splice: largest benign CFG into the first malicious sample.
  std::printf("== GEA: embed largest benign CFG into a malicious sample ==\n");
  const auto& corpus = pipeline.corpus();
  const std::size_t target_idx = gealib::select_by_size(
      corpus, dataset::kBenign, gealib::SizeRank::kMaximum);
  const auto& target = corpus.samples()[target_idx];

  for (const auto& s : corpus.samples()) {
    if (s.label != dataset::kMalicious) continue;
    const auto merged = gealib::embed_program(s.program, target.program);
    const auto merged_cfg = cfg::extract_cfg(merged, {.main_only = true});
    const auto fv = features::extract_features(merged_cfg.graph);
    const auto scaled = pipeline.scaler().transform(fv);
    const std::vector<double> x(scaled.begin(), scaled.end());

    std::printf("original: %zu nodes; target: %zu nodes; merged: %zu nodes\n",
                s.num_nodes(), target.num_nodes(), merged_cfg.num_nodes());
    std::printf("merged predicted class: %zu (0=benign, 1=malicious)\n",
                clf.predict(x));
    std::printf("functionality preserved: %s\n",
                gealib::functionally_equivalent(s.program, merged) ? "yes" : "NO");
    break;
  }

  // 4. Serve the trained detector: persist a checkpoint, load it into a
  //    registry, and push a few test rows through the batched server.
  std::printf("\n== serving the trained detector ==\n");
  {
    const auto ckpt_dir =
        (std::filesystem::temp_directory_path() / "gea_quickstart_ckpt")
            .string();
    auto scaler = pipeline.scaler();  // copy; write takes a const pointer
    if (auto st = serve::Checkpoint::write(ckpt_dir, pipeline.model(), &scaler);
        !st.is_ok()) {
      std::printf("checkpoint write failed: %s\n", st.to_string().c_str());
    } else {
      serve::ModelRegistry registry;
      if (auto st = registry.load("v1", ckpt_dir); !st.is_ok()) {
        std::printf("checkpoint load failed: %s\n", st.to_string().c_str());
      } else {
        serve::DetectionServer server(registry, {.workers = 1});
        std::size_t served = 0;
        for (std::size_t i = 0; i < test.size() && served < 8; ++i, ++served) {
          // The server scales raw features itself; hand it unscaled rows.
          const auto& fv =
              pipeline.corpus().samples()[pipeline.split().test[i]].features;
          auto verdict = server.detect({fv.begin(), fv.end()});
          if (!verdict.is_ok()) {
            std::printf("detect failed: %s\n",
                        verdict.status().to_string().c_str());
            break;
          }
        }
        std::printf("%s\n", server.stats().summary().c_str());
      }
    }
    std::filesystem::remove_all(ckpt_dir);
  }

  // 5. The run's observability: every subsystem above (pipeline stages,
  //    training epochs, the attack, serving) reported into the same
  //    process-wide registry and trace recorder.
  std::printf("\n== observability: unified metrics + trace ==\n");
  const auto snapshot = obs::MetricsRegistry::global().snapshot();
  std::printf("%s\n", obs::summary(snapshot).c_str());
  std::printf("\n%s\n", obs::span_summary(obs::TraceRecorder::global()).c_str());

  std::ofstream prom("quickstart_metrics.prom");
  prom << obs::to_prometheus(snapshot);
  std::printf("\nwrote quickstart_metrics.prom\n");
  if (obs::write_chrome_trace("quickstart_trace.json")) {
    std::printf("wrote quickstart_trace.json (open in chrome://tracing)\n");
  }
  return 0;
}
