// Quickstart: train the CFG-feature CNN detector on a reduced synthetic
// corpus, attack it with one gradient attack and one GEA splice, and print
// what happened at every step.
//
//   $ ./examples/quickstart [--threads N]
//
// --threads N (or GEA_THREADS=N) parallelizes corpus featurization; the
// trained detector and every number printed are identical at any N.
#include <cstdio>

#include "attacks/fgsm.hpp"
#include "core/evaluator.hpp"
#include "core/pipeline.hpp"
#include "gea/embed.hpp"
#include "gea/selection.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace core = gea::core;
namespace dataset = gea::dataset;
namespace attacks = gea::attacks;
namespace gealib = gea::aug;
namespace cfg = gea::cfg;
namespace features = gea::features;

int main(int argc, char** argv) {

  // 1. Train the detector on a reduced corpus (fast; the full Table I
  //    corpus lives in the benches).
  std::printf("== training detector on synthetic IoT corpus ==\n");
  auto config = core::quick_config();
  config.threads = gea::util::threads_from_cli(argc, argv, config.threads);
  auto pipeline = core::DetectionPipeline::run(config);

  const auto& tm = pipeline.test_metrics();
  std::printf("corpus: %zu samples (%zu benign / %zu malicious)\n",
              pipeline.corpus().size(),
              pipeline.corpus().count_label(dataset::kBenign),
              pipeline.corpus().count_label(dataset::kMalicious));
  std::printf("test accuracy %.2f%%  FNR %.2f%%  FPR %.2f%%  (%s)\n",
              tm.accuracy() * 100, tm.fnr() * 100, tm.fpr() * 100,
              tm.to_string().c_str());
  std::printf("%s\n\n", pipeline.report().summary().c_str());

  // 2. One off-the-shelf attack: FGSM on the first correctly-classified
  //    malicious test sample.
  std::printf("== FGSM on one malicious sample ==\n");
  auto& clf = pipeline.classifier();
  const auto test = pipeline.scaled_data(pipeline.split().test);
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (test.labels[i] != dataset::kMalicious) continue;
    if (clf.predict(test.rows[i]) != dataset::kMalicious) continue;
    attacks::Fgsm fgsm;
    const auto adv = fgsm.craft(clf, test.rows[i], dataset::kBenign);
    std::printf("original predicted: %zu, adversarial predicted: %zu\n\n",
                clf.predict(test.rows[i]), clf.predict(adv));
    break;
  }

  // 3. One GEA splice: largest benign CFG into the first malicious sample.
  std::printf("== GEA: embed largest benign CFG into a malicious sample ==\n");
  const auto& corpus = pipeline.corpus();
  const std::size_t target_idx = gealib::select_by_size(
      corpus, dataset::kBenign, gealib::SizeRank::kMaximum);
  const auto& target = corpus.samples()[target_idx];

  for (const auto& s : corpus.samples()) {
    if (s.label != dataset::kMalicious) continue;
    const auto merged = gealib::embed_program(s.program, target.program);
    const auto merged_cfg = cfg::extract_cfg(merged, {.main_only = true});
    const auto fv = features::extract_features(merged_cfg.graph);
    const auto scaled = pipeline.scaler().transform(fv);
    const std::vector<double> x(scaled.begin(), scaled.end());

    std::printf("original: %zu nodes; target: %zu nodes; merged: %zu nodes\n",
                s.num_nodes(), target.num_nodes(), merged_cfg.num_nodes());
    std::printf("merged predicted class: %zu (0=benign, 1=malicious)\n",
                clf.predict(x));
    std::printf("functionality preserved: %s\n",
                gealib::functionally_equivalent(s.program, merged) ? "yes" : "NO");
    break;
  }
  return 0;
}
