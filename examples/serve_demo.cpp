// Detection-as-a-service demo: train the detector, persist it as a
// versioned checkpoint, stand up a DetectionServer, and score live traffic
// through the batched path — including a hot-swap to a retrained model and
// a corrupt-checkpoint swap that must fail without interrupting service.
//
//   $ ./examples/serve_demo [--threads N]
#include <cstdio>
#include <filesystem>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/checkpoint.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "util/threadpool.hpp"

namespace core = gea::core;
namespace serve = gea::serve;
namespace dataset = gea::dataset;

int main(int argc, char** argv) {
  // 1. Train the paper CNN on the reduced corpus and persist it as v1.
  std::printf("== training detector ==\n");
  auto config = core::quick_config();
  config.threads = gea::util::threads_from_cli(argc, argv, config.threads);
  auto pipeline = core::DetectionPipeline::run(config);
  std::printf("test accuracy %.2f%%\n\n",
              pipeline.test_metrics().accuracy() * 100);

  const auto root = std::filesystem::temp_directory_path() / "gea_serve_demo";
  const auto v1_dir = (root / "v1").string();
  if (auto st = serve::Checkpoint::write(v1_dir, pipeline.model(),
                                         &pipeline.scaler());
      !st.is_ok()) {
    std::fprintf(stderr, "checkpoint write failed: %s\n", st.to_string().c_str());
    return 1;
  }

  // 2. Registry + server: two workers, micro-batching up to 8.
  serve::ModelRegistry registry;
  if (auto st = registry.load("v1", v1_dir); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  serve::ServerConfig server_cfg;
  server_cfg.workers = 2;
  server_cfg.max_batch = 8;
  serve::DetectionServer server(registry, server_cfg);

  // 3. Score corpus programs through the synchronous client facade.
  std::printf("== serving verdicts (model %s) ==\n",
              registry.active_version().c_str());
  std::size_t agree = 0, served = 0;
  for (const auto& sample : pipeline.corpus().samples()) {
    if (served >= 16) break;
    auto verdict = server.detect(sample.program);
    if (!verdict.is_ok()) {
      std::fprintf(stderr, "detect failed: %s\n",
                   verdict.status().to_string().c_str());
      continue;
    }
    const auto& v = verdict.value();
    ++served;
    if (v.predicted == sample.label) ++agree;
    if (served <= 4) {
      std::printf("  sample %u: predicted %s (p=%.3f) label %s batch=%zu\n",
                  sample.id, v.predicted == dataset::kMalicious ? "malware" : "benign",
                  v.probabilities[v.predicted],
                  sample.label == dataset::kMalicious ? "malware" : "benign",
                  v.batch_size);
    }
  }
  std::printf("served %zu samples, %zu verdicts match the training label\n\n",
              served, agree);

  // 4. Hot-swap: retrain with a different weight seed and publish as v2
  //    while the server stays up. In-flight requests finish on v1; new
  //    requests pick up v2 at the next batch boundary.
  std::printf("== hot swap ==\n");
  auto config2 = config;
  config2.weight_seed = 1337;
  auto retrained = core::DetectionPipeline::run(config2);
  const auto v2_dir = (root / "v2").string();
  if (auto st = serve::Checkpoint::write(v2_dir, retrained.model(),
                                         &retrained.scaler());
      !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  if (auto st = registry.load("v2", v2_dir); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("active model is now %s\n", registry.active_version().c_str());

  // A corrupt checkpoint must be refused atomically: the load fails, v2
  // keeps serving, nothing is torn.
  auto bad = registry.load("v3", (root / "missing").string());
  std::printf("corrupt swap refused as expected: %s\n",
              bad.to_string().c_str());
  std::printf("still serving %s\n\n", registry.active_version().c_str());

  auto after = server.detect(pipeline.corpus().samples().front().program);
  if (after.is_ok()) {
    std::printf("post-swap verdict from model %s\n\n",
                after.value().model_version.c_str());
  }

  // 5. Server-side observability.
  server.stop();
  std::printf("%s\n", server.stats().summary().c_str());
  std::filesystem::remove_all(root);
  return 0;
}
