// Example: the binary-analysis substrate on its own — assemble a program
// (from a file, or a built-in demo), extract its CFG the way the paper's
// Radare2 stage does, print the 23 Table II features, run it in the
// interpreter, and emit a DOT rendering.
//
//   $ ./examples/binary_analysis [program.asm]
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cfg/cfg.hpp"
#include "features/features.hpp"
#include "graph/dot.hpp"
#include "isa/assembler.hpp"
#include "isa/interpreter.hpp"
#include "util/table.hpp"

namespace cfg = gea::cfg;
namespace features = gea::features;
namespace isa = gea::isa;
namespace util = gea::util;

namespace {

const char* kDemoProgram = R"(
; a toy "scanner": read targets until EOF, probe each, tally successes
func main
  movi r1, 0          ; success counter
scan:
  syscall 2, r0       ; read next target (0 = EOF)
  cmpi r0, 0
  je report
  mov r2, r0
  call probe
  cmpi r0, 0
  je scan
  addi r1, 1
  jmp scan
report:
  syscall 3, r1       ; write tally
  mov r0, r1
  halt
endfunc

func probe
  syscall 5, r2       ; connect
  syscall 7, r0       ; recv banner
  and r0, r2
  ret
endfunc
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDemoProgram;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  }

  const auto program = isa::assemble(source);
  std::printf("assembled %zu instructions in %zu functions\n\n",
              program.size(), program.functions().size());
  std::printf("%s\n", program.disassemble().c_str());

  const auto c = cfg::extract_cfg(program);
  std::printf("CFG: %zu basic blocks, %zu edges, entry block %u, %zu exit "
              "block(s)\n\n",
              c.num_nodes(), c.num_edges(), c.entry, c.exit_nodes.size());

  const auto fv = features::extract_features(c.graph);
  util::AsciiTable t({"feature", "value"});
  for (std::size_t i = 0; i < features::kNumFeatures; ++i) {
    t.add_row({features::feature_name(i), util::AsciiTable::fmt(fv[i], 5)});
  }
  std::printf("%s\n", t.to_string().c_str());

  const auto result = isa::execute(program);
  std::printf("execution: result=%lld, %llu steps, %zu syscalls traced\n",
              static_cast<long long>(result.result),
              static_cast<unsigned long long>(result.steps),
              result.trace.size());

  std::filesystem::create_directories("artifacts");
  gea::graph::write_dot(c.graph, "artifacts/binary_analysis_cfg.dot");
  std::printf("CFG written to artifacts/binary_analysis_cfg.dot\n");
  return 0;
}
