// Example: a GEA evasion "campaign". Take one malicious program and walk
// benign targets of increasing CFG size until the spliced binary is
// classified benign; then prove, by execution, that the evasive binary
// still behaves exactly like the malware it hides.
//
//   $ ./examples/gea_campaign
#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "cfg/cfg.hpp"
#include "core/pipeline.hpp"
#include "gea/embed.hpp"
#include "graph/dot.hpp"
#include "isa/interpreter.hpp"
#include "util/table.hpp"

namespace core = gea::core;
namespace dataset = gea::dataset;
namespace aug = gea::aug;
namespace cfg = gea::cfg;
namespace features = gea::features;
namespace isa = gea::isa;
namespace util = gea::util;

int main() {
  std::printf("training detector (reduced corpus)...\n");
  auto pipeline = core::DetectionPipeline::run(core::quick_config());
  auto& clf = pipeline.classifier();
  const auto& corpus = pipeline.corpus();

  // Victim: the first malicious sample the detector classifies correctly.
  const dataset::Sample* victim = nullptr;
  for (const auto& s : corpus.samples()) {
    if (s.label != dataset::kMalicious) continue;
    const auto scaled = pipeline.scaler().transform(s.features);
    if (clf.predict({scaled.begin(), scaled.end()}) == dataset::kMalicious) {
      victim = &s;
      break;
    }
  }
  if (victim == nullptr) return 1;
  std::printf("victim: sample #%u (%s), %zu CFG nodes\n\n", victim->id,
              gea::bingen::family_name(victim->family), victim->num_nodes());

  // Benign targets sorted by CFG size.
  std::vector<std::size_t> targets = corpus.indices_of(dataset::kBenign);
  std::sort(targets.begin(), targets.end(), [&](std::size_t a, std::size_t b) {
    return corpus.samples()[a].num_nodes() < corpus.samples()[b].num_nodes();
  });

  util::AsciiTable t({"target nodes", "merged nodes", "P(malicious)",
                      "verdict", "func-equiv"});
  bool evaded = false;
  // Walk a spread of target sizes from smallest to largest.
  for (std::size_t k = 0; k < 8 && !evaded; ++k) {
    const std::size_t ti = targets[k * (targets.size() - 1) / 7];
    const auto& target = corpus.samples()[ti];

    const auto merged = aug::embed_program(victim->program, target.program);
    const auto merged_cfg = cfg::extract_cfg(merged, {.main_only = true});
    const auto fv = features::extract_features(merged_cfg.graph);
    const auto scaled = pipeline.scaler().transform(fv);
    const std::vector<double> x(scaled.begin(), scaled.end());

    const double p_mal = clf.probabilities(x)[dataset::kMalicious];
    const bool flipped = clf.predict(x) == dataset::kBenign;
    const bool equiv = aug::functionally_equivalent(victim->program, merged);
    t.add_row({util::AsciiTable::fmt_int(static_cast<long long>(target.num_nodes())),
               util::AsciiTable::fmt_int(static_cast<long long>(merged_cfg.num_nodes())),
               util::AsciiTable::fmt(p_mal, 4),
               flipped ? "BENIGN (evaded)" : "malicious",
               equiv ? "yes" : "NO"});
    if (flipped) {
      evaded = true;
      std::filesystem::create_directories("artifacts");
      gea::graph::write_dot(merged_cfg.graph, "artifacts/gea_evasive_sample.dot");
      std::printf("%s\n", t.to_string().c_str());
      std::printf("evasion succeeded with a %zu-node benign graft; combined CFG "
                  "written to artifacts/gea_evasive_sample.dot\n",
                  target.num_nodes());
      std::printf("the evasive binary still executes the malware: %s\n",
                  equiv ? "verified" : "VERIFICATION FAILED");
      return 0;
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("no target in the sweep flipped this victim — rerun with a "
              "larger corpus (more / larger benign targets).\n");
  return 0;
}
