// Reproduces Table III — evaluation of the eight off-the-shelf adversarial
// attacks: misclassification rate (MR), average number of features changed
// (Avg.FG), and crafting time per sample (CT, ms).
//
// Expected shape (paper): C&W / ElasticNet / MIM / PGD reach 100% MR;
// JSMA ~99.8% with the fewest features changed (~4); FGSM (25.84%) and VAM
// (28.80%) lag; ElasticNet and C&W are the slowest crafts, FGSM the
// fastest. Absolute CT differs (CPU C++ here vs the paper's GPU Python).
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"

int main() {
  using namespace gea;
  bench::banner("Table III — generic adversarial attack evaluation",
                "MR: C&W 100 / DeepFool 86.39 / EAD 100 / FGSM 25.84 / "
                "JSMA 99.80 / MIM 100 / PGD 100 / VAM 28.80 (%)");

  auto& p = bench::paper_pipeline();
  core::AdversarialEvaluator eval(p);

  core::EvaluationOptions opts;
  // The iterative optimizers (C&W, EAD) cost ~0.5 s per sample on CPU;
  // 200 samples give rates stable to ~+-3% while keeping the bench fast.
  // Set GEA_TABLE3_SAMPLES=0 to attack the whole test split.
  opts.max_samples = 200;
  if (const char* n = std::getenv("GEA_TABLE3_SAMPLES")) {
    opts.max_samples = static_cast<std::size_t>(std::atoll(n));
  }

  const auto rows = eval.run_generic_attacks(opts);

  util::AsciiTable t({"Attack Method", "MR (%)", "Avg.FG", "CT (ms)",
                      "valid-AE (%)", "mean L2"});
  for (const auto& r : rows) {
    t.add_row({r.attack, bench::pct(r.mr()),
               util::AsciiTable::fmt(r.avg_features_changed, 2),
               util::AsciiTable::fmt(r.craft_ms_per_sample, 2),
               bench::pct(r.valid_fraction),
               util::AsciiTable::fmt(r.mean_l2, 3)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("(%zu correctly-classified test samples attacked per method; "
              "valid-AE = fraction passing the Fig. 1 distortion validator, a\n"
              "column the paper discusses but does not tabulate.)\n",
              rows.empty() ? 0 : rows.front().samples);
  return 0;
}
