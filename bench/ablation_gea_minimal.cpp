// Extension (paper SVI future work) — GEA size minimization: "investigate
// more effective methods to minimize the size of the generated AEs". For a
// sample of malware victims, find the smallest benign target whose splice
// evades the detector, and report the size-overhead distribution an
// attacker actually pays.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "gea/minimize.hpp"
#include "util/stats.hpp"

int main() {
  using namespace gea;
  bench::banner("Extension — GEA size minimization (paper SVI future work)",
                "smallest benign graft that evades, and the bytes it costs");

  auto& p = bench::paper_pipeline();
  const auto malicious = p.corpus().indices_of(dataset::kMalicious);

  std::vector<double> target_nodes, overheads, tried;
  std::size_t evaded = 0, victims = 0;
  aug::MinimizeOptions opts;
  opts.max_targets = 0;  // full scan, sorted by size

  for (std::size_t k = 0; k < malicious.size() && victims < 120; k += 7) {
    const auto res = aug::find_minimal_target(p.corpus(), malicious[k],
                                              p.classifier(), p.scaler(), opts);
    ++victims;
    tried.push_back(static_cast<double>(res.targets_tried));
    if (!res.evaded) continue;
    ++evaded;
    target_nodes.push_back(static_cast<double>(res.target_nodes));
    overheads.push_back(res.size_overhead);
  }

  std::printf("victims probed: %zu; evasion found for %zu (%.1f%%)\n\n",
              victims, evaded,
              victims ? 100.0 * static_cast<double>(evaded) / victims : 0.0);

  if (!target_nodes.empty()) {
    util::AsciiTable t({"metric", "min", "median", "mean", "max"});
    auto add = [&](const char* name, const std::vector<double>& v) {
      const auto s = util::summary5(v);
      t.add_row({name, util::AsciiTable::fmt(s.min, 2),
                 util::AsciiTable::fmt(s.median, 2),
                 util::AsciiTable::fmt(s.mean, 2),
                 util::AsciiTable::fmt(s.max, 2)});
    };
    add("minimal target CFG nodes", target_nodes);
    add("program size overhead (x)", overheads);
    add("targets scanned per victim", tried);
    std::printf("%s\n", t.to_string().c_str());
  }
  std::printf("(Greedy-by-size scan; Tables VI-VII show size/MR is not\n"
              "monotone, so this is an upper bound on the attacker's cost.)\n");
  return 0;
}
