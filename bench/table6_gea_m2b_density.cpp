// Reproduces Table VI — GEA malware-to-benign misclassification with the
// target node count fixed and the edge count varying.
//
// Expected shape (paper): no monotone relationship between edge count and
// MR (e.g. at 33 nodes: 94.78 / 57.47 / 95.74 % for 46/50/53 edges); MR is
// driven by the classifier's confidence on the particular target.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace gea;
  bench::banner("Table VI — GEA: malware -> benign, fixed nodes, edge sweep",
                "nodes in {8, 33, 63}; MR varies non-monotonically with edges");

  auto& p = bench::paper_pipeline();
  core::AdversarialEvaluator eval(p);

  core::EvaluationOptions opts;
  opts.gea.verify_every = 20;

  const auto rows = eval.run_gea_density_sweep(dataset::kMalicious, opts);

  util::AsciiTable t({"# Nodes", "# Edges", "MR (%)", "CT (ms)",
                      "func-equiv (%)"});
  for (const auto& r : rows) {
    t.add_row({util::AsciiTable::fmt_int(static_cast<long long>(r.target_nodes)),
               util::AsciiTable::fmt_int(static_cast<long long>(r.target_edges)),
               bench::pct(r.mr()),
               util::AsciiTable::fmt(r.craft_ms_per_sample, 2),
               bench::pct(r.equivalence_rate)});
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}
