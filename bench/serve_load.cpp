// Load generator for the detection server, written to BENCH_serve.json.
//
// Sweeps worker count {1, 2, 8} x micro-batching {off (max_batch=1, the
// legacy per-sample forward path), on (max_batch=16, the batched infer
// path)} under a closed loop (16 synchronous clients, each submit->wait),
// then runs one open-loop stage that offers ~2x the measured capacity to
// exercise admission control: the overflow must show up as fast
// kUnavailable rejections, never as client hangs or queue growth.
//
// The headline number is batched_speedup_8w: closed-loop QPS with batching
// on vs off at 8 workers. Batching never changes verdicts (the batched
// path is bitwise-identical to per-sample forward; tests/serve_test.cpp),
// so this is pure throughput.
//
// With --loopback the closed loop is repeated over the real wire: a
// TransportServer on 127.0.0.1 with one RemoteClient per client thread,
// reported as loopback_slowdown_8w (in-process QPS / loopback QPS). With
// --chaos the loopback run repeats with all five net.* fault points armed
// probabilistically; the gate is zero crashes and a bounded error rate
// (>= 90% of requests still produce a verdict through retry/quarantine).
//
//   $ ./bench/serve_load [--smoke] [--loopback] [--chaos] [--threads N]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "features/scaler.hpp"
#include "kernels/config.hpp"
#include "ml/zoo.hpp"
#include "serve/checkpoint.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"
#include "util/faultinject.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace {

using namespace gea;

constexpr std::size_t kDim = features::kNumFeatures;

std::vector<double> synthetic_row(util::Rng& rng) {
  std::vector<double> row(kDim);
  for (auto& v : row) v = rng.uniform(0.0, 50.0);
  return row;
}

/// Random-init paper CNN + fitted scaler: serving cost does not depend on
/// the weight values, so the bench skips training entirely.
std::string write_bench_checkpoint() {
  util::Rng weight_rng(1), dropout_rng(0), data_rng(7);
  auto model = ml::make_paper_cnn(kDim, 2, dropout_rng);
  model.init(weight_rng);
  std::vector<features::FeatureVector> rows;
  for (int i = 0; i < 64; ++i) {
    features::FeatureVector fv{};
    const auto row = synthetic_row(data_rng);
    std::copy(row.begin(), row.end(), fv.begin());
    rows.push_back(fv);
  }
  features::FeatureScaler scaler;
  scaler.fit(rows);
  const auto dir =
      (std::filesystem::temp_directory_path() / "gea_serve_bench").string();
  std::filesystem::remove_all(dir);
  auto st = serve::Checkpoint::write(dir, model, &scaler);
  if (!st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    std::exit(1);
  }
  return dir;
}

struct RunResult {
  std::string mode;
  std::size_t workers = 0;
  std::size_t max_batch = 0;
  std::size_t clients = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double mean_batch = 0.0;
  // Wire-path extras (loopback/chaos modes only).
  std::uint64_t retries = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t shed = 0;
};

serve::ServerConfig server_config(std::size_t workers, std::size_t max_batch,
                                  std::size_t queue_capacity) {
  serve::ServerConfig cfg;
  cfg.workers = workers;
  cfg.max_batch = max_batch;
  // A generous linger: with many workers racing one queue, a short window
  // fragments batches (each worker grabs a couple of requests); 1 ms is
  // still well under the per-batch inference cost, so it buys batch size
  // without adding visible latency.
  cfg.max_wait_us = 1000;
  cfg.queue_capacity = queue_capacity;
  return cfg;
}

/// Closed loop: `clients` threads, each submit->wait `per_client` times.
RunResult run_closed(serve::ModelRegistry& registry, std::size_t workers,
                     std::size_t max_batch, std::size_t clients,
                     std::size_t per_client,
                     const std::vector<std::vector<double>>& rows) {
  serve::DetectionServer server(
      registry, server_config(workers, max_batch, clients * 2));

  util::LatencyRecorder latency;
  std::mutex latency_mu;
  std::atomic<std::uint64_t> rejected{0};
  util::Stopwatch wall;
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      std::vector<double> local;
      local.reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        auto r = server.detect(rows[(c * per_client + i) % rows.size()]);
        if (r.is_ok()) {
          local.push_back(r.value().total_ms);
        } else {
          rejected.fetch_add(1);
        }
      }
      std::lock_guard<std::mutex> lock(latency_mu);
      for (double v : local) latency.record(v);
    });
  }
  for (auto& t : pool) t.join();
  const double wall_s = wall.elapsed_ms() / 1000.0;
  server.stop();
  const auto snap = server.stats();

  RunResult res;
  res.mode = "closed";
  res.workers = workers;
  res.max_batch = max_batch;
  res.clients = clients;
  res.completed = snap.completed;
  res.rejected = rejected.load();
  res.wall_s = wall_s;
  res.qps = wall_s > 0 ? static_cast<double>(snap.completed) / wall_s : 0.0;
  const auto lat = latency.summarize();
  res.p50_ms = lat.p50;
  res.p95_ms = lat.p95;
  res.p99_ms = lat.p99;
  res.mean_batch = snap.mean_batch();
  return res;
}

/// Open loop: one dispatcher offers `total` requests at a fixed rate
/// without waiting for verdicts; admission control absorbs the overload.
RunResult run_open(serve::ModelRegistry& registry, std::size_t workers,
                   std::size_t max_batch, double offered_qps,
                   std::size_t total,
                   const std::vector<std::vector<double>>& rows) {
  serve::DetectionServer server(registry,
                                server_config(workers, max_batch, 64));

  const auto interval = std::chrono::duration<double, std::micro>(
      offered_qps > 0 ? 1e6 / offered_qps : 0.0);
  std::vector<std::future<util::Result<serve::Verdict>>> futures;
  futures.reserve(total);
  util::Stopwatch wall;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < total; ++i) {
    futures.push_back(server.submit(rows[i % rows.size()]));
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    interval * static_cast<double>(i + 1)));
  }
  util::LatencyRecorder latency;
  std::uint64_t rejected = 0;
  for (auto& f : futures) {
    auto r = f.get();
    if (r.is_ok()) {
      latency.record(r.value().total_ms);
    } else {
      ++rejected;
    }
  }
  const double wall_s = wall.elapsed_ms() / 1000.0;
  server.stop();
  const auto snap = server.stats();

  RunResult res;
  res.mode = "open";
  res.workers = workers;
  res.max_batch = max_batch;
  res.clients = 1;
  res.completed = snap.completed;
  res.rejected = rejected;
  res.wall_s = wall_s;
  res.qps = wall_s > 0 ? static_cast<double>(snap.completed) / wall_s : 0.0;
  const auto lat = latency.summarize();
  res.p50_ms = lat.p50;
  res.p95_ms = lat.p95;
  res.p99_ms = lat.p99;
  res.mean_batch = snap.mean_batch();
  return res;
}

/// Closed loop over the real wire: a TransportServer on loopback with one
/// RemoteClient per client thread. With `chaos`, all five net.* fault
/// points are armed probabilistically (deterministic seeds) on the server
/// side; clients must recover through retry/backoff, the server through
/// quarantine/shed/timeout — crashing or hanging is the only failure.
RunResult run_loopback(serve::ModelRegistry& registry, std::size_t workers,
                       std::size_t max_batch, std::size_t clients,
                       std::size_t per_client,
                       const std::vector<std::vector<double>>& rows,
                       bool chaos, double* ok_fraction_out) {
  serve::DetectionServer server(
      registry, server_config(workers, max_batch, clients * 2));
  serve::TransportConfig tcfg;
  tcfg.fault_injection = chaos;
  if (chaos) tcfg.read_timeout_ms = 250.0;  // mop up desyncs fast
  serve::TransportServer transport(server, tcfg);
  if (auto st = transport.start(); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    std::exit(1);
  }

  if (chaos) {
    auto& inj = util::FaultInjector::instance();
    inj.arm_random(util::faults::kNetAcceptFail, 0.10, 101);
    inj.arm_random(util::faults::kNetReadShort, 0.01, 102);
    inj.arm_random(util::faults::kNetFrameCorrupt, 0.02, 103);
    inj.arm_random(util::faults::kNetWriteStall, 0.02, 104);
    inj.arm_random(util::faults::kNetConnDrop, 0.01, 105);
  }

  util::LatencyRecorder latency;
  std::mutex latency_mu;
  std::atomic<std::uint64_t> ok{0}, failed{0}, retries{0};
  util::Stopwatch wall;
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      serve::ClientConfig ccfg;
      ccfg.port = transport.port();
      ccfg.request_timeout_ms = 2'000.0;
      ccfg.max_retries = chaos ? 5 : 3;
      ccfg.jitter_seed = 0x6a17 + c;
      serve::RemoteClient client(ccfg);
      std::vector<double> local;
      local.reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        util::Stopwatch sw;
        auto r = client.detect(rows[(c * per_client + i) % rows.size()]);
        if (r.is_ok()) {
          local.push_back(sw.elapsed_ms());  // client-observed, wire included
          ok.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
      retries.fetch_add(client.stats().retries);
      std::lock_guard<std::mutex> lock(latency_mu);
      for (double v : local) latency.record(v);
    });
  }
  for (auto& t : pool) t.join();
  const double wall_s = wall.elapsed_ms() / 1000.0;
  transport.stop();
  const auto net = transport.stats();
  server.stop();
  if (chaos) util::FaultInjector::instance().reset();

  const std::uint64_t total = ok.load() + failed.load();
  if (ok_fraction_out) {
    *ok_fraction_out =
        total > 0 ? static_cast<double>(ok.load()) / total : 0.0;
  }

  RunResult res;
  res.mode = chaos ? "chaos" : "loopback";
  res.workers = workers;
  res.max_batch = max_batch;
  res.clients = clients;
  res.completed = ok.load();
  res.rejected = failed.load();
  res.wall_s = wall_s;
  res.qps = wall_s > 0 ? static_cast<double>(ok.load()) / wall_s : 0.0;
  const auto lat = latency.summarize();
  res.p50_ms = lat.p50;
  res.p95_ms = lat.p95;
  res.p99_ms = lat.p99;
  res.mean_batch = server.stats().mean_batch();
  res.retries = retries.load();
  res.quarantined = net.quarantined;
  res.shed = net.shed;
  return res;
}

void print_result(const RunResult& r) {
  std::printf(
      "%-6s workers=%zu batch=%-2zu  qps=%8.1f  p50=%6.2fms p95=%6.2fms "
      "p99=%6.2fms  completed=%llu rejected=%llu mean_batch=%.2f\n",
      r.mode.c_str(), r.workers, r.max_batch, r.qps, r.p50_ms, r.p95_ms,
      r.p99_ms, static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.rejected), r.mean_batch);
  if (r.mode == "loopback" || r.mode == "chaos") {
    std::printf("       retries=%llu quarantined=%llu shed=%llu\n",
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.quarantined),
                static_cast<unsigned long long>(r.shed));
  }
}

void write_json(const std::vector<RunResult>& results, double speedup_8w,
                double loopback_slowdown_8w, double chaos_ok_fraction,
                bool smoke) {
  std::ofstream out("BENCH_serve.json");
  out << "{\n  \"benchmark\": \"serve_load\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n  \"kernel_config\": \"" << kernels::active_config_summary()
      << "\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"mode\": \"" << r.mode << "\", \"workers\": " << r.workers
        << ", \"max_batch\": " << r.max_batch << ", \"clients\": " << r.clients
        << ", \"completed\": " << r.completed << ", \"rejected\": " << r.rejected
        << ", \"wall_s\": " << r.wall_s << ", \"qps\": " << r.qps
        << ", \"p50_ms\": " << r.p50_ms << ", \"p95_ms\": " << r.p95_ms
        << ", \"p99_ms\": " << r.p99_ms << ", \"mean_batch\": " << r.mean_batch
        << ", \"retries\": " << r.retries
        << ", \"quarantined\": " << r.quarantined << ", \"shed\": " << r.shed
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"batched_speedup_8w\": " << speedup_8w
      << ",\n  \"loopback_slowdown_8w\": " << loopback_slowdown_8w
      << ",\n  \"chaos_ok_fraction\": " << chaos_ok_fraction << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, loopback = false, chaos = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--loopback") == 0) loopback = true;
    if (std::strcmp(argv[i], "--chaos") == 0) chaos = true;
  }
  const std::size_t clients = util::threads_from_cli(argc, argv, 48);
  const std::size_t per_client = smoke ? 12 : 120;

  const auto dir = write_bench_checkpoint();
  serve::ModelRegistry registry;
  if (auto st = registry.load("bench", dir); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }

  util::Rng data_rng(99);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 64; ++i) rows.push_back(synthetic_row(data_rng));

  std::printf("serve_load: %zu clients x %zu requests per run%s\n", clients,
              per_client, smoke ? " (smoke)" : "");
  std::vector<RunResult> results;
  double qps_8w_batched = 0.0, qps_8w_unbatched = 0.0;
  for (std::size_t workers : {1u, 2u, 8u}) {
    for (std::size_t max_batch : {1u, 16u}) {
      auto r = run_closed(registry, workers, max_batch, clients, per_client,
                          rows);
      print_result(r);
      if (workers == 8) {
        (max_batch == 1 ? qps_8w_unbatched : qps_8w_batched) = r.qps;
      }
      results.push_back(std::move(r));
    }
  }

  // Open loop at ~2x the batched capacity: overload must turn into fast
  // rejects, not hangs. (Capacity estimate from the 2-worker batched run.)
  const double capacity = results[3].qps;  // workers=2, batch=16
  auto open = run_open(registry, 2, 16, capacity * 2.0,
                       smoke ? 200 : 2000, rows);
  print_result(open);
  results.push_back(std::move(open));

  const double speedup =
      qps_8w_unbatched > 0 ? qps_8w_batched / qps_8w_unbatched : 0.0;
  std::printf("batched speedup at 8 workers: %.2fx\n", speedup);

  double loopback_slowdown = 0.0, chaos_ok_fraction = 0.0;
  if (loopback) {
    auto r = run_loopback(registry, 8, 16, clients, per_client, rows,
                          /*chaos=*/false, nullptr);
    print_result(r);
    loopback_slowdown = r.qps > 0 ? qps_8w_batched / r.qps : 0.0;
    std::printf("loopback slowdown at 8 workers: %.2fx\n", loopback_slowdown);
    results.push_back(std::move(r));
  }
  int rc = 0;
  if (chaos) {
    auto r = run_loopback(registry, 8, 16, clients, per_client, rows,
                          /*chaos=*/true, &chaos_ok_fraction);
    print_result(r);
    std::printf("chaos ok fraction: %.3f (gate: >= 0.90, no crashes)\n",
                chaos_ok_fraction);
    // The whole point of the chaos stage: under all five wire faults at
    // once the system degrades but does not fall over. Reaching this line
    // proves no crash; the fraction bounds the error rate.
    if (chaos_ok_fraction < 0.90) {
      std::fprintf(stderr, "chaos gate FAILED: ok fraction %.3f < 0.90\n",
                   chaos_ok_fraction);
      rc = 1;
    }
    results.push_back(std::move(r));
  }

  write_json(results, speedup, loopback_slowdown, chaos_ok_fraction, smoke);
  std::printf("wrote BENCH_serve.json\n");
  std::filesystem::remove_all(dir);
  return rc;
}
