// Load generator for the detection server, written to BENCH_serve.json.
//
// Sweeps worker count {1, 2, 8} x micro-batching {off (max_batch=1, the
// legacy per-sample forward path), on (max_batch=16, the batched infer
// path)} under a closed loop (16 synchronous clients, each submit->wait),
// then runs one open-loop stage that offers ~2x the measured capacity to
// exercise admission control: the overflow must show up as fast
// kUnavailable rejections, never as client hangs or queue growth.
//
// The headline number is batched_speedup_8w: closed-loop QPS with batching
// on vs off at 8 workers. Batching never changes verdicts (the batched
// path is bitwise-identical to per-sample forward; tests/serve_test.cpp),
// so this is pure throughput.
//
// With --loopback the closed loop is repeated over the real wire: a
// TransportServer on 127.0.0.1 with one RemoteClient per client thread,
// reported as loopback_slowdown_8w (in-process QPS / loopback QPS). With
// --chaos the loopback run repeats with all five net.* fault points armed
// probabilistically; the gate is zero crashes and a bounded error rate
// (>= 90% of requests still produce a verdict through retry/quarantine).
//
// The loopback/chaos stages also host the live admin plane: an AdminServer
// wired to the DetectionServer, TransportServer and an SloMonitor, scraped
// over real HTTP *while the load runs*. The scrape bodies are written to
// ADMIN_*.{prom,txt} next to BENCH_serve.json, a /metrics exemplar trace id
// is cross-checked against /tracez (the Prometheus<->trace join), and the
// chaos stage must drive the SLO monitor degraded (readyz 503) and back to
// healthy once the faults clear — slo_degraded_observed / slo_recovered in
// the JSON gate that cycle.
//
// With --family the binary instead runs the continuous-learning family-
// classification scenario (train the K-class family CNN, prove chunked-
// retrain determinism, run targeted GEA over the schema, and hot-swap a
// retrained schema-tagged checkpoint under live traffic with zero dropped
// requests), written to BENCH_family.json.
//
//   $ ./bench/serve_load [--smoke] [--loopback] [--chaos] [--family]
//                        [--threads N] [--admin-port P] [--admin-linger-ms T]
#include <poll.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dataset/corpus.hpp"
#include "dataset/labels.hpp"
#include "features/scaler.hpp"
#include "gea/harness.hpp"
#include "kernels/config.hpp"
#include "ml/metrics.hpp"
#include "ml/trainer.hpp"
#include "ml/zoo.hpp"
#include "net/socket.hpp"
#include "serve/admin.hpp"
#include "serve/checkpoint.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/slo.hpp"
#include "serve/transport.hpp"
#include "util/faultinject.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace {

using namespace gea;

constexpr std::size_t kDim = features::kNumFeatures;

std::vector<double> synthetic_row(util::Rng& rng) {
  std::vector<double> row(kDim);
  for (auto& v : row) v = rng.uniform(0.0, 50.0);
  return row;
}

/// Random-init paper CNN + fitted scaler: serving cost does not depend on
/// the weight values, so the bench skips training entirely.
std::string write_bench_checkpoint() {
  util::Rng weight_rng(1), dropout_rng(0), data_rng(7);
  auto model = ml::make_paper_cnn(kDim, 2, dropout_rng);
  model.init(weight_rng);
  std::vector<features::FeatureVector> rows;
  for (int i = 0; i < 64; ++i) {
    features::FeatureVector fv{};
    const auto row = synthetic_row(data_rng);
    std::copy(row.begin(), row.end(), fv.begin());
    rows.push_back(fv);
  }
  features::FeatureScaler scaler;
  scaler.fit(rows);
  const auto dir =
      (std::filesystem::temp_directory_path() / "gea_serve_bench").string();
  std::filesystem::remove_all(dir);
  auto st = serve::Checkpoint::write(dir, model, &scaler);
  if (!st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    std::exit(1);
  }
  return dir;
}

struct RunResult {
  std::string mode;
  std::size_t workers = 0;
  std::size_t max_batch = 0;
  std::size_t clients = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double mean_batch = 0.0;
  // Wire-path extras (loopback/chaos modes only).
  std::uint64_t retries = 0;
  std::uint64_t quarantined = 0;
  std::uint64_t shed = 0;
};

serve::ServerConfig server_config(std::size_t workers, std::size_t max_batch,
                                  std::size_t queue_capacity) {
  serve::ServerConfig cfg;
  cfg.workers = workers;
  cfg.max_batch = max_batch;
  // A generous linger: with many workers racing one queue, a short window
  // fragments batches (each worker grabs a couple of requests); 1 ms is
  // still well under the per-batch inference cost, so it buys batch size
  // without adding visible latency.
  cfg.max_wait_us = 1000;
  cfg.queue_capacity = queue_capacity;
  return cfg;
}

/// Closed loop: `clients` threads, each submit->wait `per_client` times.
RunResult run_closed(serve::ModelRegistry& registry, std::size_t workers,
                     std::size_t max_batch, std::size_t clients,
                     std::size_t per_client,
                     const std::vector<std::vector<double>>& rows) {
  serve::DetectionServer server(
      registry, server_config(workers, max_batch, clients * 2));

  util::LatencyRecorder latency;
  std::mutex latency_mu;
  std::atomic<std::uint64_t> rejected{0};
  util::Stopwatch wall;
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      std::vector<double> local;
      local.reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        auto r = server.detect(rows[(c * per_client + i) % rows.size()]);
        if (r.is_ok()) {
          local.push_back(r.value().total_ms);
        } else {
          rejected.fetch_add(1);
        }
      }
      std::lock_guard<std::mutex> lock(latency_mu);
      for (double v : local) latency.record(v);
    });
  }
  for (auto& t : pool) t.join();
  const double wall_s = wall.elapsed_ms() / 1000.0;
  server.stop();
  const auto snap = server.stats();

  RunResult res;
  res.mode = "closed";
  res.workers = workers;
  res.max_batch = max_batch;
  res.clients = clients;
  res.completed = snap.completed;
  res.rejected = rejected.load();
  res.wall_s = wall_s;
  res.qps = wall_s > 0 ? static_cast<double>(snap.completed) / wall_s : 0.0;
  const auto lat = latency.summarize();
  res.p50_ms = lat.p50;
  res.p95_ms = lat.p95;
  res.p99_ms = lat.p99;
  res.mean_batch = snap.mean_batch();
  return res;
}

/// Open loop: one dispatcher offers `total` requests at a fixed rate
/// without waiting for verdicts; admission control absorbs the overload.
RunResult run_open(serve::ModelRegistry& registry, std::size_t workers,
                   std::size_t max_batch, double offered_qps,
                   std::size_t total,
                   const std::vector<std::vector<double>>& rows) {
  serve::DetectionServer server(registry,
                                server_config(workers, max_batch, 64));

  const auto interval = std::chrono::duration<double, std::micro>(
      offered_qps > 0 ? 1e6 / offered_qps : 0.0);
  std::vector<std::future<util::Result<serve::Verdict>>> futures;
  futures.reserve(total);
  util::Stopwatch wall;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < total; ++i) {
    futures.push_back(server.submit(rows[i % rows.size()]));
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    interval * static_cast<double>(i + 1)));
  }
  util::LatencyRecorder latency;
  std::uint64_t rejected = 0;
  for (auto& f : futures) {
    auto r = f.get();
    if (r.is_ok()) {
      latency.record(r.value().total_ms);
    } else {
      ++rejected;
    }
  }
  const double wall_s = wall.elapsed_ms() / 1000.0;
  server.stop();
  const auto snap = server.stats();

  RunResult res;
  res.mode = "open";
  res.workers = workers;
  res.max_batch = max_batch;
  res.clients = 1;
  res.completed = snap.completed;
  res.rejected = rejected;
  res.wall_s = wall_s;
  res.qps = wall_s > 0 ? static_cast<double>(snap.completed) / wall_s : 0.0;
  const auto lat = latency.summarize();
  res.p50_ms = lat.p50;
  res.p95_ms = lat.p95;
  res.p99_ms = lat.p99;
  res.mean_batch = snap.mean_batch();
  return res;
}

/// One blocking HTTP/1.0 GET against the in-process admin plane. Returns
/// the full response text (status line + headers + body) or nullopt on any
/// socket error/timeout — the bench treats a failed scrape as a miss, not
/// a crash.
std::optional<std::string> http_get(std::uint16_t port,
                                    const std::string& target,
                                    int timeout_ms = 2000) {
  auto sock = net::connect_to("127.0.0.1", port, timeout_ms);
  if (!sock.is_ok()) return std::nullopt;
  const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  util::Stopwatch sw;
  while (sent < req.size()) {
    auto io = sock.value().write_some(
        reinterpret_cast<const std::uint8_t*>(req.data()) + sent,
        req.size() - sent);
    if (!io.ok() || io.eof) return std::nullopt;
    sent += io.bytes;
    if (io.would_block) {
      if (sw.elapsed_ms() > timeout_ms) return std::nullopt;
      (void)sock.value().poll_one(POLLOUT, 10);
    }
  }
  std::string out;
  std::uint8_t buf[4096];
  for (;;) {
    auto io = sock.value().read_some(buf, sizeof buf);
    if (!io.ok()) return std::nullopt;
    if (io.bytes > 0) out.append(reinterpret_cast<char*>(buf), io.bytes);
    if (io.eof) break;  // close-after-response: EOF delimits the body
    if (io.would_block) {
      if (sw.elapsed_ms() > timeout_ms) return std::nullopt;
      (void)sock.value().poll_one(POLLIN, 10);
    }
  }
  return out;
}

/// What the in-bench admin scrapes observed (merged into BENCH_serve.json).
struct AdminReport {
  std::uint64_t scrapes = 0;       // successful GET /metrics under load
  double scrape_p50_ms = 0.0;      // median /metrics latency under load
  int endpoints_ok = 0;            // of the 5 endpoints, answered 200/503
  bool exemplar_joined = false;    // /metrics exemplar id found in /tracez
  int slo_degraded_observed = 0;   // chaos: /readyz flipped to 503-degraded
  int slo_recovered = 0;           // ...and back to 200 after faults cleared
};

void save_admin_body(const char* path, const std::optional<std::string>& r) {
  if (!r) return;
  std::ofstream out(path);
  out << *r;
}

/// All exemplar trace ids in a Prometheus exposition
/// ("... # {trace_id=\"<16 hex>\"} ...").
std::vector<std::string> exemplar_ids(const std::string& metrics) {
  std::vector<std::string> ids;
  const std::string key = "# {trace_id=\"";
  for (auto pos = metrics.find(key); pos != std::string::npos;
       pos = metrics.find(key, pos + 1)) {
    const auto start = pos + key.size();
    const auto end = metrics.find('"', start);
    if (end == std::string::npos) break;
    ids.push_back(metrics.substr(start, end - start));
  }
  return ids;
}

/// Closed loop over the real wire: a TransportServer on loopback with one
/// RemoteClient per client thread. With `chaos`, all five net.* fault
/// points are armed probabilistically (deterministic seeds) on the server
/// side; clients must recover through retry/backoff, the server through
/// quarantine/shed/timeout — crashing or hanging is the only failure.
/// With `admin` non-null, the run hosts the live admin plane and scrapes
/// it over HTTP while the load is in flight.
RunResult run_loopback(serve::ModelRegistry& registry, std::size_t workers,
                       std::size_t max_batch, std::size_t clients,
                       std::size_t per_client,
                       const std::vector<std::vector<double>>& rows,
                       bool chaos, double* ok_fraction_out,
                       AdminReport* admin = nullptr,
                       std::uint16_t admin_port = 0,
                       double admin_linger_ms = 0.0) {
  serve::DetectionServer server(
      registry, server_config(workers, max_batch, clients * 2));

  // An SLO window tight enough for a smoke-length chaos stage to fill and
  // trip: ~2s of traffic, a verdict after 30 requests, and — in chaos mode
  // — an error budget well under the armed faults' quarantine rate, so the
  // monitor must degrade while the faults run and recover once they clear.
  serve::SloConfig scfg;
  scfg.window_s = 2.0;
  scfg.buckets = 8;
  scfg.min_requests = 30;
  if (chaos) scfg.max_error_fraction = 0.002;
  serve::SloMonitor slo(scfg);

  serve::TransportConfig tcfg;
  tcfg.fault_injection = chaos;
  if (chaos) tcfg.read_timeout_ms = 250.0;  // mop up desyncs fast
  if (admin != nullptr) tcfg.slo = &slo;
  serve::TransportServer transport(server, tcfg);
  if (auto st = transport.start(); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    std::exit(1);
  }

  std::optional<serve::AdminServer> admin_server;
  if (admin != nullptr) {
    serve::AdminConfig acfg;
    acfg.port = admin_port;
    admin_server.emplace(acfg,
                         serve::AdminHooks{&server, &transport, &slo});
    if (auto st = admin_server->start(); !st.is_ok()) {
      std::fprintf(stderr, "admin: %s\n", st.to_string().c_str());
      std::exit(1);
    }
    std::printf("admin plane on 127.0.0.1:%u\n", admin_server->port());
  }

  if (chaos) {
    auto& inj = util::FaultInjector::instance();
    inj.arm_random(util::faults::kNetAcceptFail, 0.10, 101);
    inj.arm_random(util::faults::kNetReadShort, 0.01, 102);
    inj.arm_random(util::faults::kNetFrameCorrupt, 0.02, 103);
    inj.arm_random(util::faults::kNetWriteStall, 0.02, 104);
    inj.arm_random(util::faults::kNetConnDrop, 0.01, 105);
  }

  util::LatencyRecorder latency;
  std::mutex latency_mu;
  std::atomic<std::uint64_t> ok{0}, failed{0}, retries{0};
  std::atomic<bool> load_running{true};

  // Scrape the admin plane over real HTTP while the load is in flight —
  // the point is that introspection works *under* load, not after it.
  std::thread scraper;
  std::vector<double> scrape_ms;
  if (admin != nullptr) {
    scraper = std::thread([&] {
      const std::uint16_t aport = admin_server->port();
      while (load_running.load(std::memory_order_relaxed)) {
        util::Stopwatch sw;
        if (auto r = http_get(aport, "/metrics"); r) {
          scrape_ms.push_back(sw.elapsed_ms());
        }
        if (chaos && admin->slo_degraded_observed == 0) {
          if (auto r = http_get(aport, "/readyz");
              r && r->rfind("HTTP/1.0 503", 0) == 0 &&
              r->find("slo: degraded") != std::string::npos) {
            admin->slo_degraded_observed = 1;
          }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    });
  }

  util::Stopwatch wall;
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      serve::ClientConfig ccfg;
      ccfg.port = transport.port();
      ccfg.request_timeout_ms = 2'000.0;
      ccfg.max_retries = chaos ? 5 : 3;
      ccfg.jitter_seed = 0x6a17 + c;
      serve::RemoteClient client(ccfg);
      std::vector<double> local;
      local.reserve(per_client);
      for (std::size_t i = 0; i < per_client; ++i) {
        util::Stopwatch sw;
        auto r = client.detect(rows[(c * per_client + i) % rows.size()]);
        if (r.is_ok()) {
          local.push_back(sw.elapsed_ms());  // client-observed, wire included
          ok.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
      retries.fetch_add(client.stats().retries);
      std::lock_guard<std::mutex> lock(latency_mu);
      for (double v : local) latency.record(v);
    });
  }
  for (auto& t : pool) t.join();
  const double wall_s = wall.elapsed_ms() / 1000.0;
  load_running.store(false);
  if (scraper.joinable()) scraper.join();
  if (chaos) util::FaultInjector::instance().reset();

  if (admin != nullptr) {
    const std::uint16_t aport = admin_server->port();
    // Under-load scrape summary.
    admin->scrapes = scrape_ms.size();
    if (!scrape_ms.empty()) {
      admin->scrape_p50_ms = util::median(scrape_ms);
    }
    if (chaos && admin->slo_degraded_observed != 0) {
      // Faults are gone; a clean trickle must bring /readyz back to 200
      // (the window drains and the burn rate collapses).
      serve::ClientConfig ccfg;
      ccfg.port = transport.port();
      serve::RemoteClient client(ccfg);
      util::Stopwatch recover;
      while (recover.elapsed_ms() < 8'000.0) {
        (void)client.detect(rows[0]);
        if (auto r = http_get(aport, "/readyz");
            r && r->rfind("HTTP/1.0 200", 0) == 0) {
          admin->slo_recovered = 1;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    // Final pass over all five endpoints; bodies land next to the JSON so
    // CI can archive exactly what the plane served.
    const auto metrics = http_get(aport, "/metrics");
    const auto healthz = http_get(aport, "/healthz");
    const auto readyz = http_get(aport, "/readyz");
    const auto tracez = http_get(aport, "/tracez");
    const auto statusz = http_get(aport, "/statusz");
    save_admin_body("ADMIN_metrics.prom", metrics);
    save_admin_body("ADMIN_healthz.txt", healthz);
    save_admin_body("ADMIN_readyz.txt", readyz);
    save_admin_body("ADMIN_tracez.txt", tracez);
    save_admin_body("ADMIN_statusz.txt", statusz);
    for (const auto* r : {&metrics, &healthz, &readyz, &tracez, &statusz}) {
      if (r->has_value() && (*r)->find("HTTP/1.0") == 0) ++admin->endpoints_ok;
    }
    // The Prometheus<->trace join: an exemplar trace id on a histogram
    // bucket must name a trace /tracez can show. Join against the widest
    // view of the ring (exemplars are slowest-wins, so the very slowest
    // may predate the default 16-trace window).
    if (metrics) {
      const auto wide = http_get(aport, "/tracez?limit=4096");
      if (wide) {
        for (const auto& id : exemplar_ids(*metrics)) {
          if (wide->find(id) != std::string::npos) {
            admin->exemplar_joined = true;
            break;
          }
        }
      }
    }
    if (admin_linger_ms > 0.0) {
      std::printf("admin plane lingering %.0f ms on 127.0.0.1:%u ...\n",
                  admin_linger_ms, aport);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(admin_linger_ms));
    }
    admin_server->stop();
  }

  transport.stop();
  const auto net = transport.stats();
  server.stop();

  const std::uint64_t total = ok.load() + failed.load();
  if (ok_fraction_out) {
    *ok_fraction_out =
        total > 0 ? static_cast<double>(ok.load()) / total : 0.0;
  }

  RunResult res;
  res.mode = chaos ? "chaos" : "loopback";
  res.workers = workers;
  res.max_batch = max_batch;
  res.clients = clients;
  res.completed = ok.load();
  res.rejected = failed.load();
  res.wall_s = wall_s;
  res.qps = wall_s > 0 ? static_cast<double>(ok.load()) / wall_s : 0.0;
  const auto lat = latency.summarize();
  res.p50_ms = lat.p50;
  res.p95_ms = lat.p95;
  res.p99_ms = lat.p99;
  res.mean_batch = server.stats().mean_batch();
  res.retries = retries.load();
  res.quarantined = net.quarantined;
  res.shed = net.shed;
  return res;
}

void print_result(const RunResult& r) {
  std::printf(
      "%-6s workers=%zu batch=%-2zu  qps=%8.1f  p50=%6.2fms p95=%6.2fms "
      "p99=%6.2fms  completed=%llu rejected=%llu mean_batch=%.2f\n",
      r.mode.c_str(), r.workers, r.max_batch, r.qps, r.p50_ms, r.p95_ms,
      r.p99_ms, static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.rejected), r.mean_batch);
  if (r.mode == "loopback" || r.mode == "chaos") {
    std::printf("       retries=%llu quarantined=%llu shed=%llu\n",
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.quarantined),
                static_cast<unsigned long long>(r.shed));
  }
}

void write_json(const std::vector<RunResult>& results, double speedup_8w,
                double loopback_slowdown_8w, double chaos_ok_fraction,
                bool smoke, const AdminReport& admin) {
  std::ofstream out("BENCH_serve.json");
  out << "{\n  \"benchmark\": \"serve_load\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ",\n  \"kernel_config\": \"" << kernels::active_config_summary()
      << "\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out << "    {\"mode\": \"" << r.mode << "\", \"workers\": " << r.workers
        << ", \"max_batch\": " << r.max_batch << ", \"clients\": " << r.clients
        << ", \"completed\": " << r.completed << ", \"rejected\": " << r.rejected
        << ", \"wall_s\": " << r.wall_s << ", \"qps\": " << r.qps
        << ", \"p50_ms\": " << r.p50_ms << ", \"p95_ms\": " << r.p95_ms
        << ", \"p99_ms\": " << r.p99_ms << ", \"mean_batch\": " << r.mean_batch
        << ", \"retries\": " << r.retries
        << ", \"quarantined\": " << r.quarantined << ", \"shed\": " << r.shed
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"batched_speedup_8w\": " << speedup_8w
      << ",\n  \"loopback_slowdown_8w\": " << loopback_slowdown_8w
      << ",\n  \"chaos_ok_fraction\": " << chaos_ok_fraction
      << ",\n  \"admin_scrapes\": " << admin.scrapes
      << ",\n  \"admin_scrape_p50_ms\": " << admin.scrape_p50_ms
      << ",\n  \"admin_endpoints_ok\": " << admin.endpoints_ok
      << ",\n  \"admin_exemplar_joined\": " << (admin.exemplar_joined ? 1 : 0)
      << ",\n  \"slo_degraded_observed\": " << admin.slo_degraded_observed
      << ",\n  \"slo_recovered\": " << admin.slo_recovered << "\n}\n";
}

// ---------------------------------------------------------------------------
// --family: continuous-learning family-classification scenario, written to
// BENCH_family.json.
//
// 1. Synthesize a corpus, relabel it under the K-class family schema, and
//    train the family CNN; report held-out accuracy / macro-F1 and check
//    >= 3 malicious families are present.
// 2. Retrain determinism: the same init trained with the chunked trainer at
//    2 vs 4 threads must produce bitwise-identical held-out predictions and
//    final loss (the property the live hot-swap below relies on).
// 3. Targeted GEA: the source->predicted misclassification matrix over the
//    schema (gea::aug::GeaHarness::family_evasion_matrix).
// 4. Continuous learning: serve checkpoint v1 under live closed-loop
//    traffic while new family variants stream in, retrain in the
//    background, write a schema-tagged checkpoint v2, and hot-swap it via
//    ModelRegistry. The gate is zero dropped requests and verdicts observed
//    from both versions.
// ---------------------------------------------------------------------------

/// Rows scaled with `scaler` + schema-class labels, ready for the trainer.
ml::LabeledData scaled_data(const dataset::Corpus& corpus,
                            const features::FeatureScaler& scaler) {
  ml::LabeledData data;
  data.rows.reserve(corpus.size());
  for (const auto& s : corpus.samples()) {
    const auto t = scaler.transform(s.features);
    data.rows.emplace_back(t.begin(), t.end());
    data.labels.push_back(s.label);
  }
  return data;
}

/// Every 5th sample held out for evaluation.
void split_data(const ml::LabeledData& all, ml::LabeledData& train,
                ml::LabeledData& test) {
  for (std::size_t i = 0; i < all.size(); ++i) {
    auto& dst = (i % 5 == 0) ? test : train;
    dst.rows.push_back(all.rows[i]);
    dst.labels.push_back(all.labels[i]);
  }
}

struct FamilyReport {
  std::size_t num_classes = 0;
  std::size_t families_present = 0;  // malicious families with samples
  std::size_t train_rows = 0, test_rows = 0;
  double test_accuracy = 0.0;
  double macro_f1 = 0.0;
  ml::MultiConfusion test_matrix;
  int retrain_deterministic = 0;
  std::size_t gea_samples = 0;
  std::size_t gea_quarantined = 0;
  double gea_targeted_rate = 0.0;
  double gea_evasion_rate = 0.0;
  ml::MultiConfusion gea_matrix;
  std::uint64_t hotswap_requests = 0;
  std::uint64_t hotswap_dropped = 0;
  std::uint64_t verdicts_v1 = 0, verdicts_v2 = 0;
  int schema_digest_match = 0;
  double retrain_s = 0.0;
};

void write_matrix(std::ofstream& out, const ml::MultiConfusion& m) {
  out << "[";
  for (std::size_t r = 0; r < m.k; ++r) {
    out << (r ? ", [" : "[");
    for (std::size_t c = 0; c < m.k; ++c) {
      out << (c ? ", " : "") << m.at(r, c);
    }
    out << "]";
  }
  out << "]";
}

void write_family_json(const FamilyReport& rep, bool smoke) {
  std::ofstream out("BENCH_family.json");
  out << "{\n  \"benchmark\": \"family\",\n"
      << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
      << "  \"num_classes\": " << rep.num_classes << ",\n"
      << "  \"families_present\": " << rep.families_present << ",\n"
      << "  \"train_rows\": " << rep.train_rows << ",\n"
      << "  \"test_rows\": " << rep.test_rows << ",\n"
      << "  \"test_accuracy\": " << rep.test_accuracy << ",\n"
      << "  \"macro_f1\": " << rep.macro_f1 << ",\n  \"test_matrix\": ";
  write_matrix(out, rep.test_matrix);
  out << ",\n  \"retrain_deterministic\": " << rep.retrain_deterministic
      << ",\n  \"gea_samples\": " << rep.gea_samples
      << ",\n  \"gea_quarantined\": " << rep.gea_quarantined
      << ",\n  \"gea_targeted_rate\": " << rep.gea_targeted_rate
      << ",\n  \"gea_evasion_rate\": " << rep.gea_evasion_rate
      << ",\n  \"gea_matrix\": ";
  write_matrix(out, rep.gea_matrix);
  out << ",\n  \"hotswap_requests\": " << rep.hotswap_requests
      << ",\n  \"hotswap_dropped\": " << rep.hotswap_dropped
      << ",\n  \"verdicts_v1\": " << rep.verdicts_v1
      << ",\n  \"verdicts_v2\": " << rep.verdicts_v2
      << ",\n  \"schema_digest_match\": " << rep.schema_digest_match
      << ",\n  \"retrain_s\": " << rep.retrain_s << "\n}\n";
}

int run_family(bool smoke) {
  const auto schema = dataset::family_label_schema();
  FamilyReport rep;
  rep.num_classes = schema.num_classes();
  rep.test_matrix = ml::MultiConfusion(schema.num_classes());
  rep.gea_matrix = ml::MultiConfusion(schema.num_classes());

  // -- Corpus, relabeled to family classes -------------------------------
  dataset::CorpusConfig ccfg;
  ccfg.num_malicious = smoke ? 90 : 400;
  ccfg.num_benign = smoke ? 45 : 150;
  auto corpus = dataset::Corpus::generate(ccfg);
  if (auto st = dataset::relabel_corpus(corpus, schema); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  for (const auto& [family, n] : corpus.family_histogram()) {
    if (bingen::is_malicious(family) && n > 0) ++rep.families_present;
  }
  std::printf("family: %zu samples, %zu malicious families, K=%zu\n",
              corpus.size(), rep.families_present, schema.num_classes());

  features::FeatureScaler scaler;
  scaler.fit(corpus.feature_rows());
  const auto all = scaled_data(corpus, scaler);
  ml::LabeledData train, test;
  split_data(all, train, test);
  rep.train_rows = train.size();
  rep.test_rows = test.size();

  // -- Train the family CNN; determinism pair at 2 vs 4 threads ----------
  ml::TrainConfig tcfg;
  tcfg.epochs = smoke ? 25 : 60;
  tcfg.threads = 2;
  util::Stopwatch train_sw;
  util::Rng dropout_rng(11), weight_rng(12);
  auto model = ml::make_family_cnn(kDim, schema, dropout_rng);
  model.init(weight_rng);
  auto stats = ml::train(model, train, tcfg);
  rep.retrain_s = train_sw.elapsed_ms() / 1000.0;
  const auto test_pred = ml::predict_all(model, test);
  rep.test_matrix = ml::confusion_k(schema.num_classes(), test_pred,
                                    test.labels);
  rep.test_accuracy = rep.test_matrix.accuracy();
  rep.macro_f1 = rep.test_matrix.macro_f1();
  std::printf("family: test accuracy %.3f macro-F1 %.3f (final loss %.4f)\n",
              rep.test_accuracy, rep.macro_f1, stats.final_loss);
  std::printf("%s\n", rep.test_matrix.to_string(schema).c_str());

  {
    ml::TrainConfig t4 = tcfg;
    t4.threads = 4;
    util::Rng dr(11), wr(12);
    auto twin = ml::make_family_cnn(kDim, schema, dr);
    twin.init(wr);
    auto twin_stats = ml::train(twin, train, t4);
    const auto twin_pred = ml::predict_all(twin, test);
    rep.retrain_deterministic =
        (twin_pred == test_pred && twin_stats.final_loss == stats.final_loss)
            ? 1
            : 0;
    std::printf("family: chunked retrain 2t vs 4t bitwise-identical: %s\n",
                rep.retrain_deterministic ? "yes" : "NO");
  }

  // -- Targeted GEA over the schema --------------------------------------
  {
    ml::ModelClassifier clf(model, kDim, schema.num_classes());
    aug::GeaHarness harness(corpus, scaler, clf);
    aug::GeaHarnessOptions gopts;
    gopts.max_samples = smoke ? 12 : 40;
    gopts.verify_every = 4;
    auto evasion = harness.family_evasion_matrix(schema, gopts);
    rep.gea_samples = evasion.samples;
    rep.gea_quarantined = evasion.quarantined;
    rep.gea_targeted_rate = evasion.targeted_rate();
    rep.gea_evasion_rate = evasion.evasion_rate();
    rep.gea_matrix = evasion.matrix;
    std::printf(
        "family: targeted GEA over %zu samples: targeted %.3f evaded %.3f\n",
        evasion.samples, evasion.targeted_rate(), evasion.evasion_rate());
    std::printf("%s\n", evasion.matrix.to_string(schema).c_str());
  }

  // -- Continuous learning: hot-swap a retrained checkpoint under load ---
  const auto dir_v1 =
      (std::filesystem::temp_directory_path() / "gea_family_v1").string();
  const auto dir_v2 =
      (std::filesystem::temp_directory_path() / "gea_family_v2").string();
  std::filesystem::remove_all(dir_v1);
  std::filesystem::remove_all(dir_v2);
  if (auto st = serve::Checkpoint::write(dir_v1, model, &scaler, schema);
      !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }
  serve::ModelRegistry registry;
  serve::CheckpointSpec fspec;
  fspec.schema = schema;  // pin: a binary checkpoint must NOT serve here
  if (auto st = registry.load("fam-v1", dir_v1, fspec); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }

  const std::size_t clients = 8;
  serve::DetectionServer server(registry,
                                server_config(2, 8, clients * 2));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> requests{0}, dropped{0};
  std::atomic<std::uint64_t> v1_seen{0}, v2_seen{0}, digest_bad{0};
  const std::uint64_t want_digest = schema.digest();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      std::size_t i = c;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& fv = corpus.samples()[i % corpus.size()].features;
        auto r = server.detect({fv.begin(), fv.end()});
        requests.fetch_add(1);
        if (!r.is_ok()) {
          dropped.fetch_add(1);
        } else {
          if (r.value().model_version == "fam-v1") v1_seen.fetch_add(1);
          if (r.value().model_version == "fam-v2") v2_seen.fetch_add(1);
          if (r.value().schema_digest != want_digest) digest_bad.fetch_add(1);
        }
        i += clients;
      }
    });
  }

  // New variants stream in (a fresh synthesis seed), and the background
  // retrain fine-tunes the serving weights on old + new data while the
  // closed loop above keeps hammering the server.
  dataset::CorpusConfig vcfg = ccfg;
  vcfg.seed = ccfg.seed + 1;
  vcfg.num_malicious = smoke ? 45 : 200;
  vcfg.num_benign = smoke ? 20 : 75;
  auto variants = dataset::Corpus::generate(vcfg);
  int rc = 0;
  if (auto st = dataset::relabel_corpus(variants, schema); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    rc = 1;
  } else {
    ml::LabeledData grown = train;
    for (const auto& s : variants.samples()) {
      const auto t = scaler.transform(s.features);
      grown.rows.emplace_back(t.begin(), t.end());
      grown.labels.push_back(s.label);
    }
    ml::TrainConfig rcfg = tcfg;
    rcfg.epochs = smoke ? 8 : 20;
    util::Stopwatch retrain_sw;
    auto retrain_stats = ml::train(model, grown, rcfg);  // fine-tune in place
    std::printf("family: retrained on %zu rows in %.2fs (loss %.4f)\n",
                grown.size(), retrain_sw.elapsed_ms() / 1000.0,
                retrain_stats.final_loss);
    if (auto st2 = serve::Checkpoint::write(dir_v2, model, &scaler, schema);
        !st2.is_ok()) {
      std::fprintf(stderr, "%s\n", st2.to_string().c_str());
      rc = 1;
    } else if (auto st3 = registry.load("fam-v2", dir_v2, fspec);
               !st3.is_ok()) {
      std::fprintf(stderr, "%s\n", st3.to_string().c_str());
      rc = 1;
    }
  }

  // Let post-swap traffic accumulate, then drain.
  const util::Stopwatch linger;
  while (linger.elapsed_ms() < (smoke ? 150.0 : 500.0)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop.store(true);
  for (auto& t : pool) t.join();
  server.stop();

  rep.hotswap_requests = requests.load();
  rep.hotswap_dropped = dropped.load();
  rep.verdicts_v1 = v1_seen.load();
  rep.verdicts_v2 = v2_seen.load();
  rep.schema_digest_match = digest_bad.load() == 0 ? 1 : 0;
  std::printf(
      "family: hot-swap under load: %llu requests, %llu dropped, "
      "v1=%llu v2=%llu, digest match: %s\n",
      static_cast<unsigned long long>(rep.hotswap_requests),
      static_cast<unsigned long long>(rep.hotswap_dropped),
      static_cast<unsigned long long>(rep.verdicts_v1),
      static_cast<unsigned long long>(rep.verdicts_v2),
      rep.schema_digest_match ? "yes" : "NO");

  // Gates: >= 3 families, deterministic retrain, zero dropped requests,
  // traffic observed from both checkpoint versions, digests intact.
  if (rep.families_present < 3) {
    std::fprintf(stderr, "family gate FAILED: %zu families < 3\n",
                 rep.families_present);
    rc = 1;
  }
  if (rep.retrain_deterministic != 1) {
    std::fprintf(stderr, "family gate FAILED: retrain not deterministic\n");
    rc = 1;
  }
  if (rep.hotswap_dropped != 0 || rep.verdicts_v1 == 0 ||
      rep.verdicts_v2 == 0 || rep.schema_digest_match != 1) {
    std::fprintf(stderr,
                 "family gate FAILED: dropped=%llu v1=%llu v2=%llu digest=%d\n",
                 static_cast<unsigned long long>(rep.hotswap_dropped),
                 static_cast<unsigned long long>(rep.verdicts_v1),
                 static_cast<unsigned long long>(rep.verdicts_v2),
                 rep.schema_digest_match);
    rc = 1;
  }

  write_family_json(rep, smoke);
  std::printf("wrote BENCH_family.json\n");
  std::filesystem::remove_all(dir_v1);
  std::filesystem::remove_all(dir_v2);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false, loopback = false, chaos = false, family = false;
  std::uint16_t admin_port = 0;      // 0 = ephemeral
  double admin_linger_ms = 0.0;      // keep admin up after loopback for curl
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--loopback") == 0) loopback = true;
    if (std::strcmp(argv[i], "--chaos") == 0) chaos = true;
    if (std::strcmp(argv[i], "--family") == 0) family = true;
    if (std::strcmp(argv[i], "--admin-port") == 0 && i + 1 < argc) {
      admin_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    }
    if (std::strcmp(argv[i], "--admin-linger-ms") == 0 && i + 1 < argc) {
      admin_linger_ms = std::atof(argv[++i]);
    }
  }
  if (family) return run_family(smoke);
  const std::size_t clients = util::threads_from_cli(argc, argv, 48);
  const std::size_t per_client = smoke ? 12 : 120;

  const auto dir = write_bench_checkpoint();
  serve::ModelRegistry registry;
  if (auto st = registry.load("bench", dir); !st.is_ok()) {
    std::fprintf(stderr, "%s\n", st.to_string().c_str());
    return 1;
  }

  util::Rng data_rng(99);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 64; ++i) rows.push_back(synthetic_row(data_rng));

  std::printf("serve_load: %zu clients x %zu requests per run%s\n", clients,
              per_client, smoke ? " (smoke)" : "");
  std::vector<RunResult> results;
  double qps_8w_batched = 0.0, qps_8w_unbatched = 0.0;
  for (std::size_t workers : {1u, 2u, 8u}) {
    for (std::size_t max_batch : {1u, 16u}) {
      auto r = run_closed(registry, workers, max_batch, clients, per_client,
                          rows);
      print_result(r);
      if (workers == 8) {
        (max_batch == 1 ? qps_8w_unbatched : qps_8w_batched) = r.qps;
      }
      results.push_back(std::move(r));
    }
  }

  // Open loop at ~2x the batched capacity: overload must turn into fast
  // rejects, not hangs. (Capacity estimate from the 2-worker batched run.)
  const double capacity = results[3].qps;  // workers=2, batch=16
  auto open = run_open(registry, 2, 16, capacity * 2.0,
                       smoke ? 200 : 2000, rows);
  print_result(open);
  results.push_back(std::move(open));

  const double speedup =
      qps_8w_unbatched > 0 ? qps_8w_batched / qps_8w_unbatched : 0.0;
  std::printf("batched speedup at 8 workers: %.2fx\n", speedup);

  double loopback_slowdown = 0.0, chaos_ok_fraction = 0.0;
  AdminReport admin;
  if (loopback) {
    auto r = run_loopback(registry, 8, 16, clients, per_client, rows,
                          /*chaos=*/false, nullptr, &admin, admin_port,
                          chaos ? 0.0 : admin_linger_ms);
    print_result(r);
    loopback_slowdown = r.qps > 0 ? qps_8w_batched / r.qps : 0.0;
    std::printf("loopback slowdown at 8 workers: %.2fx\n", loopback_slowdown);
    std::printf(
        "admin: %llu scrapes under load (p50 %.2f ms), %d/5 endpoints ok, "
        "exemplar joined to /tracez: %s\n",
        static_cast<unsigned long long>(admin.scrapes), admin.scrape_p50_ms,
        admin.endpoints_ok, admin.exemplar_joined ? "yes" : "NO");
    results.push_back(std::move(r));
  }
  int rc = 0;
  if (loopback && (admin.endpoints_ok < 5 || !admin.exemplar_joined)) {
    std::fprintf(stderr,
                 "admin gate FAILED: endpoints_ok=%d/5 exemplar_joined=%d\n",
                 admin.endpoints_ok, admin.exemplar_joined ? 1 : 0);
    rc = 1;
  }
  if (chaos) {
    AdminReport chaos_admin;
    auto r = run_loopback(registry, 8, 16, clients, per_client, rows,
                          /*chaos=*/true, &chaos_ok_fraction, &chaos_admin,
                          admin_port, admin_linger_ms);
    print_result(r);
    std::printf("chaos ok fraction: %.3f (gate: >= 0.90, no crashes)\n",
                chaos_ok_fraction);
    std::printf("chaos slo: degraded observed=%d recovered=%d\n",
                chaos_admin.slo_degraded_observed, chaos_admin.slo_recovered);
    // The whole point of the chaos stage: under all five wire faults at
    // once the system degrades but does not fall over. Reaching this line
    // proves no crash; the fraction bounds the error rate.
    if (chaos_ok_fraction < 0.90) {
      std::fprintf(stderr, "chaos gate FAILED: ok fraction %.3f < 0.90\n",
                   chaos_ok_fraction);
      rc = 1;
    }
    admin.slo_degraded_observed = chaos_admin.slo_degraded_observed;
    admin.slo_recovered = chaos_admin.slo_recovered;
    results.push_back(std::move(r));
  }

  write_json(results, speedup, loopback_slowdown, chaos_ok_fraction, smoke,
             admin);
  std::printf("wrote BENCH_serve.json\n");
  std::filesystem::remove_all(dir);
  return rc;
}
