// Reproduces Table II — distribution of extracted features — and reports
// per-category value ranges over the corpus together with feature
// extraction throughput.
#include <cstdio>

#include "bench_common.hpp"
#include "dataset/corpus.hpp"
#include "features/features.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

int main() {
  using namespace gea;
  using features::Category;
  bench::banner("Table II — distribution of extracted features",
                "7 categories, 23 features: 5x betweenness/closeness/degree/"
                "shortest-path + density + #edges + #nodes");

  util::AsciiTable t({"Feature category", "# of features"});
  std::size_t total = 0;
  for (Category c : {Category::kBetweenness, Category::kCloseness,
                     Category::kDegree, Category::kShortestPath,
                     Category::kDensity, Category::kEdges, Category::kNodes}) {
    t.add_row({features::category_name(c),
               util::AsciiTable::fmt_int(
                   static_cast<long long>(features::category_size(c)))});
    total += features::category_size(c);
  }
  t.add_row({"Total", util::AsciiTable::fmt_int(static_cast<long long>(total))});
  std::printf("%s\n", t.to_string().c_str());

  // Per-feature ranges over the corpus, with extraction timing.
  const auto cfg = bench::effective_config();
  const auto corpus = dataset::Corpus::generate(cfg.corpus);

  util::Stopwatch sw;
  std::vector<features::FeatureVector> rows;
  rows.reserve(corpus.size());
  for (const auto& s : corpus.samples()) {
    rows.push_back(features::extract_features(s.cfg.graph));
  }
  const double ms = sw.elapsed_ms();

  std::printf("Per-feature ranges over %zu samples "
              "(extraction: %.2f ms total, %.3f ms/sample):\n",
              corpus.size(), ms, ms / static_cast<double>(corpus.size()));
  util::AsciiTable ranges({"feature", "min", "median", "max"});
  for (std::size_t i = 0; i < features::kNumFeatures; ++i) {
    std::vector<double> col;
    col.reserve(rows.size());
    for (const auto& r : rows) col.push_back(r[i]);
    ranges.add_row({features::feature_name(i),
                    util::AsciiTable::fmt(util::min_of(col), 4),
                    util::AsciiTable::fmt(util::median(col), 4),
                    util::AsciiTable::fmt(util::max_of(col), 4)});
  }
  std::printf("%s", ranges.to_string().c_str());
  return 0;
}
