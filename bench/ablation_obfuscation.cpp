// Extension (paper SVI) — hand-rolled obfuscation vs the detector: how far
// do classic behaviour-preserving CFG transforms (opaque predicates, block
// splitting) get an attacker compared with GEA, and what does packing do?
//
// This quantifies the paper's SVI discussion: obfuscation changes the CFG
// "for free" but without steering it anywhere in particular, while GEA
// steers it at a chosen target-class sample.
#include <cstdio>

#include "bench_common.hpp"
#include "cfg/cfg.hpp"
#include "obfus/transforms.hpp"

int main() {
  using namespace gea;
  bench::banner("Extension — CFG obfuscation vs the detector (paper SVI)",
                "opaque predicates / block splits mutate features blindly; "
                "packing collapses them; GEA steers them");

  auto& p = bench::paper_pipeline();
  auto& clf = p.classifier();

  struct Row {
    const char* name;
    std::size_t attacked = 0;
    std::size_t flipped = 0;
    std::size_t equivalent = 0;
  };
  util::Rng rng(77);

  auto classify = [&](const isa::Program& prog) {
    const auto fv = features::extract_features(
        cfg::extract_cfg(prog, {.main_only = true}).graph);
    const auto scaled = p.scaler().transform(fv);
    return clf.predict({scaled.begin(), scaled.end()});
  };

  std::vector<Row> rows = {{"opaque predicates x8"},
                           {"opaque predicates x32"},
                           {"block splits x32"},
                           {"opaque x16 + splits x16"},
                           {"packed (static view)"}};

  for (const auto& s : p.corpus().samples()) {
    if (s.label != dataset::kMalicious) continue;
    if (rows[0].attacked >= 250) break;
    {
      const auto scaled = p.scaler().transform(s.features);
      if (clf.predict({scaled.begin(), scaled.end()}) != dataset::kMalicious) {
        continue;
      }
    }
    auto measure = [&](Row& row, const isa::Program& variant,
                       bool check_equiv) {
      ++row.attacked;
      if (classify(variant) != dataset::kMalicious) ++row.flipped;
      if (check_equiv && isa::execute(s.program)
                             .equivalent(isa::execute(variant))) {
        ++row.equivalent;
      }
    };
    measure(rows[0], obfus::add_opaque_predicates(s.program, rng, 8), true);
    measure(rows[1], obfus::add_opaque_predicates(s.program, rng, 32), true);
    measure(rows[2], obfus::split_blocks(s.program, rng, 32), true);
    measure(rows[3],
            obfus::split_blocks(
                obfus::add_opaque_predicates(s.program, rng, 16), rng, 16),
            true);
    measure(rows[4], obfus::pack_static_view(s.program, rng), false);
  }

  util::AsciiTable t({"Transform", "MR (%)", "func-equiv (%)", "# attacked"});
  for (const auto& r : rows) {
    t.add_row({r.name,
               bench::pct(r.attacked ? static_cast<double>(r.flipped) / r.attacked : 0),
               r.name == std::string("packed (static view)")
                   ? "n/a (by design)"
                   : bench::pct(r.attacked ? static_cast<double>(r.equivalent) / r.attacked
                                           : 0),
               util::AsciiTable::fmt_int(static_cast<long long>(r.attacked))});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("(Compare with Table IV: a maximum-size GEA graft reaches ~100%% "
              "MR with the same functionality guarantee. Packing hits a "
              "detector exactly as hard as its training corpus was packed-"
              "blind — see ablation_packing.)\n");
  return 0;
}
