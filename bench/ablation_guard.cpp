// Ablation (DESIGN.md S5.1) — GEA guard-branch placement: the paper's
// opaque predicate puts the original on the fall-through path; does placing
// the *target* body first (original behind an always-taken jump) change the
// misclassification rate? The merged CFG topology is the same, so MR should
// match closely — confirming that the graph features, not the instruction
// placement, carry the attack.
#include <cstdio>

#include "bench_common.hpp"
#include "gea/harness.hpp"

int main() {
  using namespace gea;
  bench::banner("Ablation — GEA guard placement (original-first vs target-first)",
                "not in the paper; tests that merged-graph topology alone "
                "drives the MR");

  auto& p = bench::paper_pipeline();
  aug::GeaHarness harness(p.corpus(), p.scaler(), p.classifier());

  util::AsciiTable t({"Guard", "Direction", "Target size", "MR (%)",
                      "func-equiv (%)"});
  for (auto guard : {aug::GuardKind::kOpaquePredicate, aug::GuardKind::kTargetFirst}) {
    aug::GeaHarnessOptions opts;
    opts.embed.guard = guard;
    opts.verify_every = 10;
    opts.max_samples = 400;
    for (std::uint8_t source : {dataset::kMalicious, dataset::kBenign}) {
      const std::uint8_t target_label =
          source == dataset::kBenign ? dataset::kMalicious : dataset::kBenign;
      const auto target =
          aug::select_by_size(p.corpus(), target_label, aug::SizeRank::kMaximum);
      const auto row = harness.attack_with_target(source, target, opts);
      t.add_row({guard == aug::GuardKind::kOpaquePredicate ? "opaque (paper)"
                                                           : "target-first",
                 source == dataset::kMalicious ? "mal->ben" : "ben->mal",
                 util::AsciiTable::fmt_int(static_cast<long long>(row.target_nodes)),
                 bench::pct(row.mr()), bench::pct(row.equivalence_rate)});
    }
  }
  std::printf("%s", t.to_string().c_str());
  return 0;
}
