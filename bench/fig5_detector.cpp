// Reproduces Fig. 5 and SIV-C.1 — the CNN detector: architecture summary,
// parameter shapes, and the headline detection metrics.
//
// Paper: 97.13% accuracy, 11.26% FNR, 1.55% FPR, with the note that "the
// high value of FNR is due to the imbalanced number of malware and benign
// samples". With positive=malicious (our convention), malware is the
// *majority* class, so imbalance inflates errors on the benign minority —
// i.e. the paper's quoted FNR behaves like an error rate on the minority
// class. We therefore print both conventions.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace gea;
  bench::banner("Fig. 5 + SIV-C.1 — CNN-based IoT malware detector",
                "accuracy 97.13%, FNR 11.26%, FPR 1.55% (200 epochs, batch 100)");

  auto& p = bench::paper_pipeline();

  std::printf("Architecture (Fig. 5):\n%s\n", p.model().summary().c_str());

  const auto& train = p.train_metrics();
  const auto& test = p.test_metrics();

  util::AsciiTable t({"Split", "Accuracy", "FNR(mal)", "FPR(mal)",
                      "minority-class error", "Confusion"});
  auto add = [&](const char* name, const ml::ConfusionMatrix& m) {
    t.add_row({name, bench::pct(m.accuracy()) + "%", bench::pct(m.fnr()) + "%",
               bench::pct(m.fpr()) + "%", bench::pct(m.fpr()) + "%",
               m.to_string()});
  };
  add("train", train);
  add("test", test);
  std::printf("%s\n", t.to_string().c_str());

  std::printf(
      "Note: FNR/FPR above use positive=malicious. The paper's 11.26%% FNR /\n"
      "1.55%% FPR pattern (high error on the class the imbalance starves) maps\n"
      "to our minority-class (benign) error of %s%% vs majority error of %s%%.\n",
      bench::pct(test.fpr()).c_str(), bench::pct(test.fnr()).c_str());

  std::printf("\nTraining: %zu epochs run, final loss %.4f\n",
              p.train_stats().epoch_losses.size(), p.train_stats().final_loss);
  return 0;
}
