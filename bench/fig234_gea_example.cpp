// Reproduces Figures 2, 3 and 4 — the worked GEA example: the CFG of a
// counting-loop program (Fig. 2), the CFG of a straight-line assignment
// program (Fig. 3), and the combined graph with shared entry and exit
// (Fig. 4). Emits Graphviz DOT for all three and verifies, by execution,
// that the combined program behaves exactly like the original.
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "cfg/cfg.hpp"
#include "gea/embed.hpp"
#include "graph/dot.hpp"
#include "isa/assembler.hpp"
#include "isa/interpreter.hpp"

int main() {
  using namespace gea;

  bench::banner("Figures 2/3/4 — the worked GEA example",
                "a 3-node loop CFG + a 1-node straight-line CFG merge into a "
                "combined CFG sharing entry and exit; functionality preserved");

  // Fig. 2: the counting loop (x_org). Mirrors the paper's
  //   local = 0; while (local <= 9) local += 1;
  const auto original = isa::assemble(R"(
    func main
      movi r1, 0
    loop:
      addi r1, 1
      cmpi r1, 9
      jle loop
      mov r0, r1
      halt
    endfunc
  )");

  // Fig. 3: straight-line assignments (x_sel).
  const auto selected = isa::assemble(R"(
    func main
      movi r1, 1
      movi r2, 2
      movi r3, 10
      nop
      nop
      halt
    endfunc
  )");

  const auto cfg_org = cfg::extract_cfg(original, {.main_only = true});
  const auto cfg_sel = cfg::extract_cfg(selected, {.main_only = true});
  const auto merged = aug::embed_program(original, selected);
  const auto cfg_merged = cfg::extract_cfg(merged, {.main_only = true});

  std::printf("Fig. 2 (original):  %zu nodes, %zu edges\n",
              cfg_org.num_nodes(), cfg_org.num_edges());
  std::printf("Fig. 3 (selected):  %zu nodes, %zu edges\n",
              cfg_sel.num_nodes(), cfg_sel.num_edges());
  std::printf("Fig. 4 (combined):  %zu nodes, %zu edges "
              "(shared entry out-degree %zu, shared exit in-degree %zu)\n\n",
              cfg_merged.num_nodes(), cfg_merged.num_edges(),
              cfg_merged.graph.out_degree(cfg_merged.entry),
              cfg_merged.graph.in_degree(cfg_merged.exit_nodes.at(0)));

  std::filesystem::create_directories("artifacts");
  graph::write_dot(cfg_org.graph, "artifacts/fig2_original_cfg.dot",
                   {.graph_name = "fig2"});
  graph::write_dot(cfg_sel.graph, "artifacts/fig3_selected_cfg.dot",
                   {.graph_name = "fig3"});
  graph::write_dot(cfg_merged.graph, "artifacts/fig4_combined_cfg.dot",
                   {.graph_name = "fig4"});
  std::printf("DOT written to artifacts/: fig2_original_cfg.dot "
              "fig3_selected_cfg.dot fig4_combined_cfg.dot "
              "(render with `dot -Tpng`)\n\n");

  std::printf("Combined program disassembly:\n%s\n",
              merged.disassemble().c_str());

  const auto r_org = isa::execute(original);
  const auto r_merged = isa::execute(merged);
  std::printf("original run:  result=%lld steps=%llu\n",
              static_cast<long long>(r_org.result),
              static_cast<unsigned long long>(r_org.steps));
  std::printf("combined run:  result=%lld steps=%llu\n",
              static_cast<long long>(r_merged.result),
              static_cast<unsigned long long>(r_merged.steps));
  std::printf("functionality preserved: %s\n",
              r_org.equivalent(r_merged) ? "YES (verified by execution)"
                                         : "NO — BUG");
  return r_org.equivalent(r_merged) ? 0 : 1;
}
