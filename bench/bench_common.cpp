#include "bench_common.hpp"

#include <cstdlib>
#include <filesystem>
#include <memory>

#include "util/log.hpp"
#include "util/timer.hpp"

namespace gea::bench {

core::PipelineConfig paper_config() {
  core::PipelineConfig cfg;
  cfg.corpus.num_malicious = 2281;  // Table I
  cfg.corpus.num_benign = 276;      // Table I
  cfg.corpus.seed = 2019;
  cfg.test_fraction = 0.2;
  cfg.train.epochs = 200;    // SIV-B.1
  cfg.train.batch_size = 100;
  cfg.train.learning_rate = 1e-3;
  // Converged epochs add nothing but wall-clock; stop once the training
  // loss is essentially zero.
  cfg.train.early_stop_loss = 0.005;
  return cfg;
}

core::PipelineConfig effective_config() {
  core::PipelineConfig cfg = paper_config();
  if (const char* fast = std::getenv("GEA_BENCH_FAST"); fast && fast[0] == '1') {
    cfg.corpus.num_malicious = 300;
    cfg.corpus.num_benign = 60;
    cfg.train.epochs = 40;
    cfg.train.early_stop_loss = 0.05;
  }
  return cfg;
}

namespace {

std::string cache_path() {
  if (const char* dir = std::getenv("GEA_BENCH_CACHE_DIR")) {
    return std::string(dir) + "/gea_paper_cnn.weights";
  }
  return (std::filesystem::temp_directory_path() / "gea_paper_cnn.weights")
      .string();
}

bool fast_mode() {
  const char* fast = std::getenv("GEA_BENCH_FAST");
  return fast && fast[0] == '1';
}

}  // namespace

core::DetectionPipeline& paper_pipeline() {
  static core::DetectionPipeline* pipeline = [] {
    const auto cfg = effective_config();
    const std::string cache = cache_path();
    // The corpus, split and scaler are deterministic in the config seeds;
    // only the trained weights are worth caching.
    const bool use_cache = !fast_mode() && std::filesystem::exists(cache);
    auto run_cfg = cfg;
    if (use_cache) run_cfg.train.epochs = 0;

    util::Stopwatch sw;
    util::log_info("building corpus (", cfg.corpus.num_benign, " benign + ",
                   cfg.corpus.num_malicious, " malicious) and ",
                   use_cache ? "loading cached weights" : "training the CNN");
    auto* p = new core::DetectionPipeline(core::DetectionPipeline::run(run_cfg));
    if (use_cache) {
      p->model().load(cache);
      p->reevaluate();
    } else if (!fast_mode()) {
      p->model().save(cache);
      util::log_info("weights cached at ", cache);
    }
    util::log_info("pipeline ready in ", static_cast<long>(sw.elapsed_ms()),
                   " ms");
    return p;
  }();
  return *pipeline;
}

void banner(const std::string& title, const std::string& paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("================================================================\n");
}

std::string pct(double fraction) {
  return util::AsciiTable::fmt(fraction * 100.0, 2);
}

}  // namespace gea::bench
