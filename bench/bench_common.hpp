// Shared helpers for the table/figure reproduction binaries.
//
// Every bench that needs the trained detector calls paper_pipeline(); the
// first call trains the Fig. 5 CNN on the full Table I corpus (200 epochs,
// batch 100) and caches the weights to a file, so subsequent bench binaries
// skip straight to evaluation. Delete the cache file (path printed at
// train time) to force a retrain.
#pragma once

#include <cstdio>
#include <string>

#include "core/evaluator.hpp"
#include "core/pipeline.hpp"
#include "util/table.hpp"

namespace gea::bench {

/// The paper's experimental configuration (SIV): Table I corpus, Fig. 5
/// CNN, 200 epochs, batch 100, 80/20 split.
core::PipelineConfig paper_config();

/// A scaled-down configuration honoring GEA_BENCH_FAST=1 (used in smoke
/// runs); otherwise identical to paper_config().
core::PipelineConfig effective_config();

/// Process-wide trained pipeline, with on-disk weight caching.
core::DetectionPipeline& paper_pipeline();

/// Print a banner naming the paper artifact being reproduced.
void banner(const std::string& title, const std::string& paper_claim);

/// "MR (%)" formatting helpers shared by the table benches.
std::string pct(double fraction);

}  // namespace gea::bench
