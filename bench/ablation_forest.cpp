// Extension — non-differentiable victim: a random forest trained on the
// same 23 CFG features. White-box gradient attacks cannot run against it
// directly, so this measures (a) how CNN-crafted AEs *transfer* to the
// forest (the black-box surrogate play) and (b) how GEA — which needs no
// gradients at all — fares. If GEA beats the forest too, the weakness is
// provably the feature space, not the CNN: the paper's thesis at full
// strength.
#include <cstdio>

#include "bench_common.hpp"
#include "cfg/cfg.hpp"
#include "gea/selection.hpp"
#include "ml/forest.hpp"

int main() {
  using namespace gea;
  bench::banner("Extension — random-forest victim (no gradients to follow)",
                "CFG features are the weakness: attacks must also beat a "
                "model family immune to white-box gradient descent");

  auto& p = bench::paper_pipeline();
  const auto train = p.scaled_data(p.split().train);
  const auto test = p.scaled_data(p.split().test);

  ml::RandomForest forest;
  forest.fit(train.rows, train.labels);
  const auto cm = ml::confusion(forest.predict_all(test.rows), test.labels);
  std::printf("forest: %zu trees, test accuracy %s%%  FNR %s%%  FPR %s%%\n\n",
              forest.num_trees(), bench::pct(cm.accuracy()).c_str(),
              bench::pct(cm.fnr()).c_str(), bench::pct(cm.fpr()).c_str());

  // (a) transfer: craft on the CNN, replay on the forest.
  util::AsciiTable t({"Attack on CNN", "CNN MR (%)", "forest transfer MR (%)",
                      "# samples"});
  auto transfer = [&](attacks::Attack& attack) {
    std::size_t n = 0, cnn_flips = 0, forest_flips = 0;
    for (std::size_t i = 0; i < test.size() && n < 150; ++i) {
      const auto& x = test.rows[i];
      const auto label = test.labels[i];
      if (p.classifier().predict(x) != label || forest.predict(x) != label) {
        continue;
      }
      ++n;
      const auto adv = attack.craft(p.classifier(), x, label == 0 ? 1 : 0);
      if (p.classifier().predict(adv) != label) ++cnn_flips;
      if (forest.predict(adv) != label) ++forest_flips;
    }
    t.add_row({attack.name(),
               bench::pct(n ? static_cast<double>(cnn_flips) / n : 0),
               bench::pct(n ? static_cast<double>(forest_flips) / n : 0),
               util::AsciiTable::fmt_int(static_cast<long long>(n))});
  };
  attacks::Pgd pgd;
  attacks::Jsma jsma;
  transfer(pgd);
  transfer(jsma);
  std::printf("%s\n", t.to_string().c_str());

  // (b) GEA against the forest directly (no gradients involved).
  util::AsciiTable g({"GEA target (benign)", "# Nodes", "forest MR (%)"});
  for (auto rank : {aug::SizeRank::kMedian, aug::SizeRank::kMaximum}) {
    const auto ti = aug::select_by_size_confident(
        p.corpus(), dataset::kBenign, rank, [&](const dataset::Sample& s) {
          const auto sc = p.scaler().transform(s.features);
          return 1.0 - forest.prob1({sc.begin(), sc.end()});
        });
    const auto& target = p.corpus().samples()[ti];
    std::size_t attacked = 0, flipped = 0;
    for (const auto& s : p.corpus().samples()) {
      if (s.label != dataset::kMalicious || attacked >= 300) continue;
      const auto sc = p.scaler().transform(s.features);
      if (forest.predict({sc.begin(), sc.end()}) != dataset::kMalicious) {
        continue;
      }
      const auto merged = aug::embed_program(s.program, target.program);
      const auto fv = features::extract_features(
          cfg::extract_cfg(merged, {.main_only = true}).graph);
      const auto msc = p.scaler().transform(fv);
      ++attacked;
      if (forest.predict({msc.begin(), msc.end()}) != dataset::kMalicious) {
        ++flipped;
      }
    }
    g.add_row({aug::size_rank_name(rank),
               util::AsciiTable::fmt_int(static_cast<long long>(target.num_nodes())),
               bench::pct(attacked ? static_cast<double>(flipped) / attacked : 0)});
  }
  std::printf("%s", g.to_string().c_str());
  return 0;
}
